/**
 * @file
 * Ablation: eager vs lazy NOrec (Section 3.1: "we found that for the
 * low concurrency in our benchmarks, the eager NOrec design delivers
 * better performance"). Compares the two pure-software designs on the
 * red-black tree at two mutation ratios and on Vacation-Low.
 *
 * Usage: bench_ablation_eager_lazy [common flags]
 */

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/workloads/rbtree_bench.h"
#include "src/workloads/vacation.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    cfg.algos = {AlgoKind::kNOrec, AlgoKind::kNOrecLazy};

    for (unsigned mutation : {10u, 40u}) {
        RbTreeBenchParams params;
        params.mutationPct = mutation;
        bench::runBenchmark(
            "eager-lazy-rbtree-" + std::to_string(mutation) + "pct",
            [params] {
                return std::make_unique<RbTreeBenchWorkload>(params);
            },
            cfg);
    }
    bench::runBenchmark("eager-lazy-vacation-low", [] {
        return std::make_unique<VacationWorkload>(VacationParams::low());
    }, cfg);
    return 0;
}
