/**
 * @file
 * Ablation: dynamic prefix-length adaptation (Section 2.4). Compares
 * adaptive adjustment against fixed prefix lengths on the red-black
 * tree (long read phases before the first write).
 *
 * Usage: bench_ablation_prefix_len [--mutation=10] [common flags]
 */

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/workloads/rbtree_bench.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig base = bench::parseBenchConfig(opts);

    RbTreeBenchParams params;
    params.mutationPct =
        static_cast<unsigned>(opts.getInt("mutation", 10));
    auto factory = [params] {
        return std::make_unique<RbTreeBenchWorkload>(params);
    };

    {
        bench::BenchConfig cfg = base;
        cfg.algos = {AlgoKind::kRhNOrec};
        cfg.runtime.rh.adaptivePrefix = true;
        bench::runBenchmark("prefix-adaptive", factory, cfg);
    }
    for (unsigned len : {8u, 64u, 1024u}) {
        bench::BenchConfig cfg = base;
        cfg.algos = {AlgoKind::kRhNOrec};
        cfg.runtime.rh.adaptivePrefix = false;
        cfg.runtime.rh.maxPrefixLength = len;
        cfg.runtime.rh.minPrefixLength = len;
        bench::runBenchmark("prefix-fixed-" + std::to_string(len),
                            factory, cfg);
    }
    return 0;
}
