/**
 * @file
 * Ablation: the static retry policy (Section 3.3: 10 fast-path
 * retries; Section 3.4: one attempt per small HTM). Sweeps the
 * fast-path retry budget and the small-HTM attempt budget on the
 * high-contention intruder kernel.
 *
 * Usage: bench_ablation_retry [common flags]
 */

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/workloads/intruder.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig base = bench::parseBenchConfig(opts);

    auto factory = [] {
        IntruderParams params;
        return std::make_unique<IntruderWorkload>(params);
    };

    for (unsigned retries : {1u, 3u, 10u, 20u}) {
        bench::BenchConfig cfg = base;
        cfg.algos = {AlgoKind::kRhNOrec, AlgoKind::kHybridNOrec};
        cfg.runtime.retry.maxFastPathRetries = retries;
        bench::runBenchmark("retry-fast-" + std::to_string(retries),
                            factory, cfg);
    }
    {
        // Dynamic-adaptive fast-path budget (the paper's future-work
        // direction).
        bench::BenchConfig cfg = base;
        cfg.algos = {AlgoKind::kRhNOrec, AlgoKind::kHybridNOrec};
        cfg.runtime.retry.adaptive = true;
        bench::runBenchmark("retry-fast-adaptive", factory, cfg);
    }
    for (unsigned attempts : {1u, 2u, 4u}) {
        bench::BenchConfig cfg = base;
        cfg.algos = {AlgoKind::kRhNOrec};
        cfg.runtime.retry.smallHtmAttempts = attempts;
        bench::runBenchmark("retry-small-htm-" +
                                std::to_string(attempts),
                            factory, cfg);
    }
    return 0;
}
