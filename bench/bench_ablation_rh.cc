/**
 * @file
 * Ablation: the contribution of RH NOrec's two small hardware
 * transactions (DESIGN.md ablation index). Runs RH NOrec with the
 * prefix and postfix independently disabled on the 10%-mutation
 * red-black tree; "neither" reduces the mixed slow path to the Hybrid
 * NOrec software path, and Hybrid NOrec itself is included as the
 * reference row.
 *
 * Usage: bench_ablation_rh [--mutation=10] [common flags]
 */

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/workloads/rbtree_bench.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig base = bench::parseBenchConfig(opts);

    RbTreeBenchParams params;
    params.mutationPct =
        static_cast<unsigned>(opts.getInt("mutation", 10));
    auto factory = [params] {
        return std::make_unique<RbTreeBenchWorkload>(params);
    };

    struct Variant
    {
        const char *name;
        bool prefix;
        bool postfix;
    };
    const Variant variants[] = {
        {"rh-both", true, true},
        {"rh-prefix-only", true, false},
        {"rh-postfix-only", false, true},
        {"rh-neither", false, false},
    };

    for (const Variant &v : variants) {
        bench::BenchConfig cfg = base;
        cfg.algos = {AlgoKind::kRhNOrec};
        cfg.runtime.rh.enablePrefix = v.prefix;
        cfg.runtime.rh.enablePostfix = v.postfix;
        bench::runBenchmark(v.name, factory, cfg);
    }

    // Reference: true Hybrid NOrec.
    bench::BenchConfig cfg = base;
    cfg.algos = {AlgoKind::kHybridNOrec};
    bench::runBenchmark("hy-norec-ref", factory, cfg);
    return 0;
}
