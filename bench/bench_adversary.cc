/**
 * @file
 * Adversarial pathology harness (docs/OVERLOAD.md).
 *
 * For every (pathology, algorithm, thread count) cell this runs a
 * fixed per-thread op count of one named pathology twice: the baseline
 * arm (admission off, unbounded transactions -- the tail collapses)
 * and the protected arm (admission gate on, every op carrying a
 * wall-clock deadline -- the tail stays bounded and the shed/deadline
 * counters account for the load the gate refused). The CSV rows carry
 * the standard columns including deadline_exceeded / admission_shed /
 * admission_queued_ticks; --json emits a BENCH_7-style machine-
 * readable report; the summary block states, per pathology, the
 * off/on p99 ratio at the highest measured concurrency.
 *
 * Usage: bench_adversary [--threads=1,2,4,8] [--algos=all]
 *                        [--pathologies=adv-capacity-bomb,...]
 *                        [--ops=150] [--deadline-ms=5]
 *                        [--admission=off|on|both] [--seed=N]
 *                        [--json=FILE]
 *
 * Exit status: 0 when every cell's invariant verified, 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/util/barrier.h"
#include "src/util/rng.h"
#include "src/workloads/adversary.h"

namespace rhtm
{
namespace
{

/** Everything bench_adversary adds on top of the common sweep flags. */
struct AdvConfig
{
    uint64_t opsPerThread = 150;
    uint64_t deadlineMs = 5;
    bool runOff = true;
    bool runOn = true;
    std::vector<Pathology> pathologies;
    std::string jsonPath;
};

/** One cell's outcome, CSV fields plus the JSON extras. */
struct AdvCell
{
    bench::CellResult csv;
    Pathology pathology;
    bool admission = false;
    uint64_t committed = 0;
    uint64_t deadlineExceeded = 0;
    uint64_t shed = 0;
    uint64_t queuedTicks = 0;
};

AdvCell
runAdversaryCell(Pathology pathology, AlgoKind algo, unsigned threads,
                 bool admission, const bench::BenchConfig &cfg,
                 const AdvConfig &ac)
{
    RuntimeConfig rt_cfg = cfg.runtime;
    rt_cfg.rngSeed = cfg.seed;
    rt_cfg.admission.enabled = admission;
    TmRuntime rt(algo, rt_cfg);

    AdversaryParams params;
    params.pathology = pathology;
    AdversaryWorkload workload(params);
    if (admission) {
        // The protected arm: every op is sheddable and carries a
        // wall-clock deadline, so no single transaction can be dragged
        // into an unbounded wait by the pathology.
        TxnOptions opts;
        opts.deadline = std::chrono::milliseconds(ac.deadlineMs);
        opts.allowShed = true;
        workload.setTxnOptions(opts);
    }

    {
        ThreadCtx &setup_ctx = rt.registerThread();
        workload.setup(rt, setup_ctx);
    }
    rt.resetStats(); // Exclude setup from the measured window.

    std::vector<ThreadCtx *> ctxs(threads);
    for (unsigned t = 0; t < threads; ++t)
        ctxs[t] = &rt.registerThread();

    std::vector<LatencyHistogram> per_thread_lat(threads);
    SenseBarrier barrier(threads + 1);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(cfg.seed * 1000003 + t * 7919 + 1);
            LatencyHistogram &lat = per_thread_lat[t];
            using LatClock = std::chrono::steady_clock;
            barrier.arriveAndWait();
            for (uint64_t op = 0; op < ac.opsPerThread; ++op) {
                auto op_start = LatClock::now();
                workload.runOp(rt, *ctxs[t], rng);
                auto delta = LatClock::now() - op_start;
                lat.record(static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(delta)
                        .count()));
            }
        });
    }
    barrier.arriveAndWait();
    auto t0 = std::chrono::steady_clock::now();
    for (auto &w : workers)
        w.join();
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    AdvCell cell;
    cell.pathology = pathology;
    cell.admission = admission;
    cell.csv.algo = algo;
    cell.csv.threads = threads;
    cell.csv.seconds = elapsed;
    cell.csv.ops = ac.opsPerThread * threads; // Attempted, not committed.
    for (const LatencyHistogram &h : per_thread_lat)
        cell.csv.latency.merge(h);
    cell.csv.stats = rt.stats();
    cell.committed = cell.csv.stats.get(Counter::kOperations);
    cell.deadlineExceeded =
        cell.csv.stats.get(Counter::kDeadlineExceeded);
    cell.shed = cell.csv.stats.get(Counter::kAdmissionShed);
    cell.queuedTicks =
        cell.csv.stats.get(Counter::kAdmissionQueuedTicks);
    cell.csv.verified = true;
    if (cfg.verify) {
        std::string why;
        cell.csv.verified = workload.verify(rt, &why);
        if (!cell.csv.verified)
            std::fprintf(stderr, "VERIFY FAILED: %s\n", why.c_str());
    }
    return cell;
}

void
writeJson(const std::string &path, const bench::BenchConfig &cfg,
          const AdvConfig &ac, const std::vector<AdvCell> &cells)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"adversary\",\n");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(f, "  \"ops_per_thread\": %llu,\n",
                 static_cast<unsigned long long>(ac.opsPerThread));
    std::fprintf(f, "  \"deadline_ms\": %llu,\n",
                 static_cast<unsigned long long>(ac.deadlineMs));
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
        const AdvCell &c = cells[i];
        std::fprintf(
            f,
            "    {\"pathology\": \"%s\", \"algo\": \"%s\", "
            "\"threads\": %u, \"admission\": %s, \"ops\": %llu, "
            "\"committed\": %llu, \"deadline_exceeded\": %llu, "
            "\"admission_shed\": %llu, \"admission_queued_ticks\": "
            "%llu, \"seconds\": %.4f, \"p50_us\": %.2f, "
            "\"p99_us\": %.2f, \"max_us\": %.2f, \"verified\": %s}%s\n",
            pathologyName(c.pathology), algoKindName(c.csv.algo),
            c.csv.threads, c.admission ? "true" : "false",
            static_cast<unsigned long long>(c.csv.ops),
            static_cast<unsigned long long>(c.committed),
            static_cast<unsigned long long>(c.deadlineExceeded),
            static_cast<unsigned long long>(c.shed),
            static_cast<unsigned long long>(c.queuedTicks),
            c.csv.seconds, c.csv.latency.percentileNs(50) / 1000.0,
            c.csv.latency.percentileNs(99) / 1000.0,
            c.csv.latency.maxNs() / 1000.0,
            c.csv.verified ? "true" : "false",
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

double
medianP99Us(const std::vector<AdvCell> &cells, Pathology p,
            unsigned threads, bool admission)
{
    std::vector<double> vals;
    for (const AdvCell &c : cells) {
        if (c.pathology == p && c.csv.threads == threads &&
            c.admission == admission)
            vals.push_back(c.csv.latency.percentileNs(99) / 1000.0);
    }
    if (vals.empty())
        return 0.0;
    std::sort(vals.begin(), vals.end());
    return vals[vals.size() / 2];
}

} // namespace
} // namespace rhtm

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);

    AdvConfig ac;
    ac.opsPerThread = static_cast<uint64_t>(opts.getInt("ops", 150));
    ac.deadlineMs =
        static_cast<uint64_t>(opts.getInt("deadline-ms", 5));
    ac.jsonPath = opts.getString("json", "");
    std::string admission = opts.getString("admission", "both");
    if (admission == "off") {
        ac.runOn = false;
    } else if (admission == "on") {
        ac.runOff = false;
    } else if (admission != "both") {
        std::fprintf(stderr,
                     "--admission must be off, on, or both (got %s)\n",
                     admission.c_str());
        return 2;
    }

    std::string list = opts.getString("pathologies", "");
    if (list.empty()) {
        ac.pathologies = allPathologies();
    } else {
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t comma = list.find(',', pos);
            std::string name = list.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            if (!name.empty()) {
                Pathology p;
                if (!pathologyFromString(name, p)) {
                    std::fprintf(stderr, "unknown pathology: %s\n",
                                 name.c_str());
                    return 2;
                }
                ac.pathologies.push_back(p);
            }
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    bench::printCsvHeader();
    std::vector<AdvCell> cells;
    bool all_ok = true;
    for (Pathology p : ac.pathologies) {
        for (AlgoKind algo : cfg.algos) {
            for (int64_t threads : cfg.threads) {
                for (int arm = 0; arm < 2; ++arm) {
                    bool admit_on = arm == 1;
                    if ((admit_on && !ac.runOn) ||
                        (!admit_on && !ac.runOff))
                        continue;
                    AdvCell cell = runAdversaryCell(
                        p, algo, static_cast<unsigned>(threads),
                        admit_on, cfg, ac);
                    std::string name = std::string(pathologyName(p)) +
                                       (admit_on ? "-on" : "-off");
                    bench::printCsvRow(name, cell.csv);
                    all_ok &= cell.csv.verified;
                    cells.push_back(std::move(cell));
                }
            }
        }
    }
    if (!ac.jsonPath.empty())
        writeJson(ac.jsonPath, cfg, ac, cells);

    // Per-pathology headline at the highest measured concurrency: the
    // A/B the acceptance criterion asks for (median p99 across the
    // measured algorithms, plus the gate's accounting).
    if (ac.runOff && ac.runOn && !cfg.threads.empty()) {
        unsigned max_threads =
            static_cast<unsigned>(cfg.threads.back());
        unsigned bounded = 0;
        for (Pathology p : ac.pathologies) {
            double off = medianP99Us(cells, p, max_threads, false);
            double on = medianP99Us(cells, p, max_threads, true);
            uint64_t shed = 0, dl = 0;
            for (const AdvCell &c : cells) {
                if (c.pathology == p && c.admission &&
                    c.csv.threads == max_threads) {
                    shed += c.shed;
                    dl += c.deadlineExceeded;
                }
            }
            bool demonstrated = on > 0 && off / on >= 2.0 &&
                                (shed + dl) > 0;
            bounded += demonstrated ? 1 : 0;
            std::printf("# summary %s @%u threads: p99 off=%.0fus "
                        "on=%.0fus ratio=%.1fx shed=%llu "
                        "deadline=%llu%s\n",
                        pathologyName(p), max_threads, off, on,
                        on > 0 ? off / on : 0.0,
                        static_cast<unsigned long long>(shed),
                        static_cast<unsigned long long>(dl),
                        demonstrated ? " [bounded]" : "");
        }
        std::printf("# summary adversary: %u/%zu pathologies bounded "
                    "by admission control\n",
                    bounded, ac.pathologies.size());
    }
    return all_ok ? 0 : 1;
}
