/**
 * @file
 * Chaos soak benchmark: runs the invariant-conserving bank-transfer
 * workload for a timed window under each named fault schedule,
 * sweeping algorithms and thread counts. Every sum-reader transaction
 * checks opacity (no torn total) and verify() checks conservation and
 * that no coordination word leaked, so a long soak doubles as a
 * robustness stress test. The CSV rows carry the fault columns
 * (injected/subscription aborts, fast-path attempts, kill-switch
 * activations and bypass ratio) and a per-cell stats block prints the
 * per-cause abort breakdown.
 *
 * Usage: bench_chaos [--schedule=prefix-kill,...] [--accounts=64]
 *                    [--threads=...] [--seconds=...] [--algos=...]
 *                    [--seed=N] [--stats]
 */

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/fault_points.h"
#include "src/fault/schedules.h"
#include "src/structures/tx_hashmap.h"

namespace rhtm
{
namespace
{

/**
 * Bank transfers over the transactional hash map: account i holds its
 * balance under key i. Writers move random amounts between two
 * accounts (no overdrafts, so the total is conserved exactly);
 * readers sum every account in one transaction and count any total
 * that is not the expected constant -- a torn snapshot is an opacity
 * violation.
 */
class ChaosBankWorkload : public Workload
{
  public:
    explicit ChaosBankWorkload(unsigned accounts)
        : accounts_(accounts), total_(uint64_t(accounts) * kBalance),
          bank_(8)
    {
    }

    const char *name() const override { return "chaos-bank"; }

    void
    setup(TmRuntime &rt, ThreadCtx &ctx) override
    {
        rt.run(ctx, [&](Txn &tx) {
            for (uint64_t a = 0; a < accounts_; ++a)
                bank_.put(tx, a, kBalance);
        });
    }

    void
    runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override
    {
        if (rng.nextPercent(70)) {
            uint64_t from = rng.nextBounded(accounts_);
            uint64_t to = rng.nextBounded(accounts_);
            uint64_t amount = 1 + rng.nextBounded(50);
            // Decided outside the transaction: a transfer that must
            // also notify an external system (the irrevocability use
            // case) makes the same choice on every replayed attempt.
            bool want_irrevocable = irrevocablePct_ > 0 &&
                                    rng.nextPercent(irrevocablePct_);
            bool upgraded = false;
            try {
                rt.run(ctx, [&](Txn &tx) {
                    // Opt-in: lets the schedule script a user
                    // exception at the top of the body, before any
                    // upgrade (docs/LIFECYCLE.md).
                    userExceptionFaultPoint(ctx.injector());
                    uint64_t balance = 0;
                    bank_.get(tx, from, balance);
                    if (balance < amount)
                        return; // No overdrafts; still conserves.
                    if (want_irrevocable) {
                        tx.becomeIrrevocable();
                        // Simulated external side effect: runs exactly
                        // once per granted transaction, never replayed
                        // (verify() counts it against upgraded
                        // commits).
                        sideEffects_.fetch_add(1,
                                               std::memory_order_relaxed);
                        upgraded = true;
                    }
                    bank_.put(tx, from, balance - amount);
                    bank_.addTo(tx, to, amount);
                });
            } catch (const InjectedUserException &) {
                return; // Aborted cleanly; conservation is unchanged.
            }
            if (upgraded)
                irrevocableCommits_.fetch_add(1,
                                              std::memory_order_relaxed);
        } else {
            uint64_t sum = 0;
            try {
                rt.run(ctx, [&](Txn &tx) {
                    userExceptionFaultPoint(ctx.injector());
                    sum = 0; // The body may re-execute under faults.
                    for (uint64_t a = 0; a < accounts_; ++a) {
                        uint64_t balance = 0;
                        bank_.get(tx, a, balance);
                        sum += balance;
                    }
                });
            } catch (const InjectedUserException &) {
                return; // Aborted mid-sum; the snapshot is void.
            }
            if (sum != total_)
                tornTotals_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    bool
    verify(TmRuntime &rt, std::string *why) const override
    {
        if (uint64_t torn = tornTotals_.load()) {
            if (why)
                *why = std::to_string(torn) +
                       " torn bank totals (opacity violation)";
            return false;
        }
        uint64_t effects = sideEffects_.load();
        uint64_t upgrades = irrevocableCommits_.load();
        if (effects != upgrades) {
            if (why)
                *why = "irrevocable side effects ran " +
                       std::to_string(effects) + " times for " +
                       std::to_string(upgrades) +
                       " upgraded commits (replayed grant)";
            return false;
        }
        uint64_t final_total = 0;
        bank_.forEachUnsync(
            [&](uint64_t, uint64_t value) { final_total += value; });
        if (final_total != total_) {
            if (why)
                *why = "bank total " + std::to_string(final_total) +
                       " != " + std::to_string(total_) +
                       " (money created or destroyed)";
            return false;
        }
        TmGlobals &g = rt.globals();
        if (clockIsLocked(rt.peek(&g.clock)) ||
            rt.peek(&g.htmLock) != 0 || rt.peek(&g.fallbacks) != 0 ||
            rt.peek(&g.serialLock) != 0) {
            if (why)
                *why = "a coordination word leaked out of the run";
            return false;
        }
        // Ticket balance: at quiescence every taken serial ticket must
        // have been served, or some thread exited holding (or still
        // queued on) the serial lock.
        uint64_t next = rt.peek(&g.serialNextTicket);
        uint64_t serving = rt.peek(&g.serialServing);
        if (next != serving) {
            if (why)
                *why = "serial ticket imbalance: next=" +
                       std::to_string(next) +
                       " serving=" + std::to_string(serving);
            return false;
        }
        return true;
    }

  private:
    static constexpr uint64_t kBalance = 1000;

    unsigned accounts_;
    uint64_t total_;
    TxHashMap bank_;
    std::atomic<uint64_t> tornTotals_{0};
    std::atomic<uint64_t> sideEffects_{0};
    std::atomic<uint64_t> irrevocableCommits_{0};
};

/** Per-cell per-cause abort and kill-switch breakdown. */
void
printStatsBlock(const std::string &name,
                const std::vector<bench::CellResult> &cells)
{
    for (const bench::CellResult &c : cells) {
        const StatsSummary &s = c.stats;
        std::printf(
            "# stats %s %s@%u: conflict=%llu capacity=%llu "
            "explicit=%llu other=%llu injected=%llu subscription=%llu "
            "attempts=%llu ks-activations=%llu ks-bypasses=%llu "
            "irrev-upgrades=%llu user-exc-aborts=%llu\n",
            name.c_str(), algoKindName(c.algo), c.threads,
            (unsigned long long)s.get(Counter::kHtmConflictAborts),
            (unsigned long long)s.get(Counter::kHtmCapacityAborts),
            (unsigned long long)s.get(Counter::kHtmExplicitAborts),
            (unsigned long long)s.get(Counter::kHtmOtherAborts),
            (unsigned long long)s.get(Counter::kHtmInjectedAborts),
            (unsigned long long)s.get(Counter::kHtmSubscriptionAborts),
            (unsigned long long)s.get(Counter::kFastPathAttempts),
            (unsigned long long)s.get(Counter::kKillSwitchActivations),
            (unsigned long long)s.get(Counter::kKillSwitchBypasses),
            (unsigned long long)s.get(Counter::kIrrevocableUpgrades),
            (unsigned long long)s.get(Counter::kUserExceptionAborts));
    }
}

} // namespace
} // namespace rhtm

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    unsigned accounts =
        static_cast<unsigned>(opts.getInt("accounts", 64));
    bool want_stats = opts.has("stats");

    std::vector<std::string> schedules = chaosScheduleNames();
    if (opts.has("schedule")) {
        schedules.clear();
        std::string list = opts.getString("schedule", "");
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t comma = list.find(',', pos);
            std::string name =
                list.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            if (!name.empty())
                schedules.push_back(name);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (schedules.empty()) {
            std::fprintf(stderr, "--schedule needs at least one name\n");
            return 2;
        }
    }

    bool all_ok = true;
    for (const std::string &schedule : schedules) {
        bench::BenchConfig run_cfg = cfg;
        if (!makeChaosSchedule(schedule, cfg.seed, run_cfg.runtime.fault)) {
            std::fprintf(stderr, "unknown fault schedule: %s\n",
                         schedule.c_str());
            return 2;
        }
        std::string name = "chaos-" + schedule;
        std::vector<bench::CellResult> cells =
            bench::runBenchmark(name, [accounts] {
                return std::make_unique<ChaosBankWorkload>(accounts);
            }, run_cfg);
        if (want_stats)
            printStatsBlock(name, cells);
        for (const bench::CellResult &c : cells)
            all_ok &= c.verified;
    }
    return all_ok ? 0 : 1;
}
