/**
 * @file
 * Interleaving-explorer driver (docs/CHECKING.md): runs the curated
 * program matrix (or one program) under one or all AlgoKinds and one
 * exploration mode, printing runs / distinct schedules / verdicts and
 * any minimized failing replay token. The tools/ci.sh `check` leg
 * drives the full matrix exhaustively through this binary.
 *
 * Usage:
 *   bench_check [--algo=rh-norec|all] [--program=write-skew|all]
 *               [--mode=random|pct|dfs] [--runs=N] [--seed=S]
 *               [--depth=D] [--expected-steps=K] [--max-steps=N]
 *               [--no-sleep-sets] [--replay=TOKEN] [--history]
 *               [--regression=first-try-budget|kill-switch-streak|
 *                            policy-snapshot|deadline-unwind|
 *                            ts-extension|filter-collision] [--revert]
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/explorer.h"
#include "src/check/program.h"
#include "src/util/cli.h"

using namespace rhtm;
using namespace rhtm::check;

namespace
{

int
runOne(AlgoKind kind, const CheckProgram &program,
       const ExploreOptions &opts)
{
    Explorer explorer(kind, program);
    auto start = std::chrono::steady_clock::now();
    ExploreResult res = explorer.explore(opts);
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf(
        "%-14s %-22s %-6s runs=%-6zu distinct=%-6zu %s%.2fs  %s\n",
        algoKindName(kind), program.name.c_str(),
        exploreModeName(opts.mode), res.runs, res.distinct,
        res.exhausted ? "exhausted " : "", secs,
        res.failed ? "FAIL" : "ok");
    if (res.failed) {
        const RunOutcome &f = res.failure;
        if (!f.completed)
            std::printf("  step-limit: schedule poisoned after %zu "
                        "steps\n",
                        f.steps);
        if (!f.invariantOk)
            std::printf("  invariant: %s\n", f.invariantWhy.c_str());
        if (!f.check.ok())
            std::printf("  checker: %s: %s\n",
                        checkVerdictName(f.check.verdict),
                        f.check.detail.c_str());
        std::printf("  failing token:   %s\n", f.token.c_str());
        std::printf("  minimized token: %s\n",
                    res.minimizedToken.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli(argc, argv);
    if (!cli.errors().empty()) {
        for (const std::string &e : cli.errors())
            std::fprintf(stderr, "bad argument: %s\n", e.c_str());
        return 2;
    }

    ExploreOptions opts;
    std::string modeName = cli.getString("mode", "random");
    if (!exploreModeFromString(modeName, opts.mode)) {
        std::fprintf(stderr, "unknown mode '%s'\n", modeName.c_str());
        return 2;
    }
    opts.runs = static_cast<size_t>(
        cli.getInt("runs", opts.mode == ExploreMode::kDfs ? 2000 : 256));
    opts.seed = static_cast<uint64_t>(cli.getInt("seed", 1));
    opts.pctDepth =
        static_cast<unsigned>(cli.getInt("depth", opts.pctDepth));
    opts.pctExpectedSteps = static_cast<unsigned>(
        cli.getInt("expected-steps", opts.pctExpectedSteps));
    opts.maxStepsPerRun = static_cast<size_t>(
        cli.getInt("max-steps", opts.maxStepsPerRun));
    if (cli.has("no-sleep-sets"))
        opts.dfsSleepSets = false;

    std::vector<AlgoKind> kinds;
    std::string algo = cli.getString("algo", "all");
    if (algo == "all") {
        kinds = allAlgoKinds();
    } else {
        AlgoKind k;
        if (!algoKindFromString(algo, k)) {
            std::fprintf(stderr, "unknown algo '%s'\n", algo.c_str());
            return 2;
        }
        kinds.push_back(k);
    }

    std::vector<CheckProgram> programs;
    std::string regression = cli.getString("regression", "");
    if (!regression.empty()) {
        bool revert = cli.has("revert");
        if (regression == "first-try-budget")
            programs.push_back(makeFirstTryBudgetProgram(revert));
        else if (regression == "kill-switch-streak")
            programs.push_back(makeKillSwitchStreakProgram(revert));
        else if (regression == "policy-snapshot")
            programs.push_back(makePolicySnapshotProgram(revert));
        else if (regression == "deadline-unwind")
            programs.push_back(makeDeadlineUnwindProgram(revert));
        else if (regression == "ts-extension")
            programs.push_back(makeTsExtensionProgram(revert));
        else if (regression == "filter-collision")
            programs.push_back(makeFilterCollisionProgram());
        else {
            std::fprintf(stderr, "unknown regression '%s'\n",
                         regression.c_str());
            return 2;
        }
    } else {
        std::string name = cli.getString("program", "all");
        if (name == "all") {
            programs = curatedPrograms();
        } else {
            CheckProgram p;
            if (!curatedProgram(name, p)) {
                std::fprintf(stderr, "unknown program '%s'\n",
                             name.c_str());
                return 2;
            }
            programs.push_back(p);
        }
    }

    if (cli.has("replay")) {
        // Re-execute one schedule token (as printed on failure) and
        // show its verdict -- with --history, the recorded events too.
        std::string tok = cli.getString("replay", "");
        int failures = 0;
        for (AlgoKind kind : kinds) {
            for (const CheckProgram &p : programs) {
                Explorer explorer(kind, p);
                RunOutcome out =
                    explorer.replay(tok, opts.maxStepsPerRun);
                std::printf("%-14s %-22s replay steps=%-6zu %s\n",
                            algoKindName(kind), p.name.c_str(),
                            out.steps, out.failed() ? "FAIL" : "ok");
                if (!out.completed)
                    std::printf("  step-limit after %zu steps\n",
                                out.steps);
                if (!out.invariantOk)
                    std::printf("  invariant: %s\n",
                                out.invariantWhy.c_str());
                if (!out.check.ok())
                    std::printf("  checker: %s: %s\n",
                                checkVerdictName(out.check.verdict),
                                out.check.detail.c_str());
                if (cli.has("history"))
                    std::printf("%s", out.historyText.c_str());
                failures += out.failed() ? 1 : 0;
            }
        }
        return failures == 0 ? 0 : 1;
    }

    int failures = 0;
    for (AlgoKind kind : kinds)
        for (const CheckProgram &p : programs)
            failures += runOne(kind, p, opts);
    return failures == 0 ? 0 : 1;
}
