/**
 * @file
 * Crash/recover soak for the simulated-NVM persistence overlay
 * (docs/PERSISTENCE.md).
 *
 * For every (algorithm, crash site, thread count) cell: run a fixed
 * number of tagged-write transactions over a durable array with a
 * scripted crash schedule hitting that site several times, then
 * recover every captured snapshot AND the final durable image, and
 * verify each against the seal-order history with the recovery-
 * consistency checker (src/check/recovery.h). The CSV rows carry the
 * recovery columns (crashes injected, records replayed/discarded,
 * recovery time); --json additionally emits a machine-readable
 * BENCH_6-style report.
 *
 * Usage: bench_crash [--threads=1,2,4] [--algos=all] [--ops=300]
 *                    [--words=256] [--sites=pre-seal,post-seal,
 *                     mid-writeback,post-marker]
 *                    [--seed=N] [--crash-seed=N] [--torn]
 *                    [--reordered] [--revert=replay-unsealed]
 *                    [--json=FILE]
 *
 * Exit status: 0 when every recovery check passed, 1 otherwise (the
 * --revert=replay-unsealed leg in tools/ci.sh asserts the 1).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/check/recovery.h"
#include "src/util/barrier.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

struct SiteSpec
{
    const char *key;
    FaultSite site;
};

constexpr SiteSpec kSites[] = {
    {"pre-seal", FaultSite::kCrashPreLogSeal},
    {"post-seal", FaultSite::kCrashPostSealPreWriteback},
    {"mid-writeback", FaultSite::kCrashMidWriteback},
    {"post-marker", FaultSite::kCrashPostMarker},
};

bool
siteFromKey(const std::string &key, FaultSite *out)
{
    for (const SiteSpec &s : kSites) {
        if (key == s.key) {
            *out = s.site;
            return true;
        }
    }
    return false;
}

const char *
siteKey(FaultSite site)
{
    for (const SiteSpec &s : kSites) {
        if (site == s.site)
            return s.key;
    }
    return "unknown";
}

/** Everything bench_crash adds on top of the common sweep flags. */
struct CrashConfig
{
    uint64_t opsPerThread = 300;
    size_t words = 256;
    uint64_t crashSeed = 0; //!< 0 inherits --seed.
    bool torn = false;
    bool reordered = false;
    bool revertReplayUnsealed = false;
    std::vector<FaultSite> sites;
    std::string jsonPath;
};

/** One cell's outcome, CSV fields plus the JSON extras. */
struct CrashCell
{
    bench::CellResult csv;
    FaultSite site;
    uint64_t snapshots = 0;
    uint64_t recordsSealed = 0;
    uint64_t marksWritten = 0;
    uint64_t escalations = 0;
    uint64_t entriesReplayed = 0;
};

/**
 * Spread the scripted crashes across the run: early (first commits),
 * mid-soak, and deep. Hits are global across threads.
 */
constexpr uint64_t kCrashHits[] = {1, 2, 5, 13, 34, 89};

CrashCell
runCrashCell(AlgoKind algo, FaultSite site, unsigned threads,
             const bench::BenchConfig &cfg, const CrashConfig &cc)
{
    RuntimeConfig rt_cfg = cfg.runtime;
    rt_cfg.rngSeed = cfg.seed;
    rt_cfg.persist.enabled = true;
    rt_cfg.persist.seed = cc.crashSeed ? cc.crashSeed : cfg.seed;
    rt_cfg.persist.tornWrites = cc.torn;
    rt_cfg.persist.reorderedFlushes = cc.reordered;
    for (uint64_t hit : kCrashHits)
        rt_cfg.persist.crashes.at(site, hit);

    TmRuntime rt(algo, rt_cfg);

    // The durable heap: a plain array registered with the device. The
    // workload writes distinct tagged values so any replay confusion
    // (wrong record, wrong order, wrong slot) changes the state.
    std::vector<uint64_t> arr(cc.words, 0);
    rt.nvm()->registerRegion(arr.data(), arr.size());

    std::vector<ThreadCtx *> ctxs(threads);
    for (unsigned t = 0; t < threads; ++t)
        ctxs[t] = &rt.registerThread();

    SenseBarrier barrier(threads + 1);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(cfg.seed * 1000003 + t * 7919 + 1);
            uint64_t *base = arr.data();
            size_t words = arr.size();
            barrier.arriveAndWait();
            for (uint64_t op = 0; op < cc.opsPerThread; ++op) {
                // Unique tag per (thread, op): top bits identify the
                // writer, low bits the op, so every committed value is
                // globally distinct.
                uint64_t tag =
                    (uint64_t(t + 1) << 40) | ((op + 1) << 8);
                size_t burst = 1 + rng.nextBounded(4);
                rt.run(*ctxs[t], [&](Txn &tx) {
                    for (size_t i = 0; i < burst; ++i) {
                        uint64_t *slot =
                            base + rng.nextBounded(uint64_t(words));
                        uint64_t old = tx.load(slot);
                        (void)old;
                        tx.store(slot, tag + i);
                    }
                });
            }
        });
    }
    barrier.arriveAndWait();
    auto t0 = std::chrono::steady_clock::now();
    for (auto &w : workers)
        w.join();
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    NvmSim &nvm = *rt.nvm();
    RecoveryOptions opts;
    opts.bugReplayUnsealed = cc.revertReplayUnsealed;

    CrashCell cell;
    cell.site = site;
    cell.csv.algo = algo;
    cell.csv.threads = threads;
    cell.csv.seconds = elapsed;
    cell.csv.ops = cc.opsPerThread * threads;
    cell.csv.stats = rt.stats();
    cell.csv.verified = true;

    // Recover and check every captured crash snapshot.
    for (const CrashSnapshot &snap : nvm.snapshots()) {
        RecoveryReport report;
        RecoveryCheckResult check = recoverAndCheck(snap, opts, &report);
        cell.csv.recordsReplayed += report.recordsReplayed;
        cell.csv.recordsDiscarded += report.recordsDiscarded;
        cell.csv.recoveryMs += report.seconds * 1000.0;
        cell.entriesReplayed += report.entriesReplayed;
        if (check.verdict != RecoveryVerdict::kOk) {
            cell.csv.verified = false;
            std::fprintf(stderr,
                         "RECOVERY FAILED: %s@%u site=%s hit=%llu "
                         "tid=%u verdict=%s: %s\n",
                         algoKindName(algo), threads, siteKey(snap.site),
                         static_cast<unsigned long long>(snap.siteHit),
                         snap.tid, recoveryVerdictName(check.verdict),
                         check.detail.c_str());
        }
    }

    // The quiescent final image must also recover to the full history.
    {
        NvmImage final_image = nvm.durableImage();
        auto history = nvm.historyCopy();
        RecoveryReport report = recoverImage(final_image, opts);
        cell.csv.recordsReplayed += report.recordsReplayed;
        cell.csv.recordsDiscarded += report.recordsDiscarded;
        cell.csv.recoveryMs += report.seconds * 1000.0;
        cell.entriesReplayed += report.entriesReplayed;
        RecoveryCheckResult check = checkRecoveryConsistency(
            nvm.initialData(), history, nvm.durableImage(),
            final_image.data);
        bool full = check.prefixLength == history.size();
        if (check.verdict != RecoveryVerdict::kOk || !full) {
            cell.csv.verified = false;
            std::fprintf(stderr,
                         "FINAL-IMAGE RECOVERY FAILED: %s@%u site=%s "
                         "verdict=%s prefix=%llu/%llu: %s\n",
                         algoKindName(algo), threads, siteKey(site),
                         recoveryVerdictName(check.verdict),
                         static_cast<unsigned long long>(
                             check.prefixLength),
                         static_cast<unsigned long long>(history.size()),
                         check.detail.c_str());
        }
    }

    cell.csv.crashesInjected = nvm.crashesCaptured();
    cell.snapshots = nvm.snapshots().size();
    cell.recordsSealed = nvm.recordsSealed();
    cell.marksWritten = nvm.marksWritten();
    cell.escalations =
        cell.csv.stats.get(Counter::kPersistEscalations);
    return cell;
}

void
writeJson(const std::string &path, const bench::BenchConfig &cfg,
          const CrashConfig &cc, const std::vector<CrashCell> &cells)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"crash\",\n");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(cfg.seed));
    std::fprintf(
        f, "  \"crash_seed\": %llu,\n",
        static_cast<unsigned long long>(cc.crashSeed ? cc.crashSeed
                                                     : cfg.seed));
    std::fprintf(f, "  \"torn_writes\": %s,\n",
                 cc.torn ? "true" : "false");
    std::fprintf(f, "  \"reordered_flushes\": %s,\n",
                 cc.reordered ? "true" : "false");
    std::fprintf(f, "  \"ops_per_thread\": %llu,\n",
                 static_cast<unsigned long long>(cc.opsPerThread));
    std::fprintf(f, "  \"durable_words\": %llu,\n",
                 static_cast<unsigned long long>(cc.words));
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
        const CrashCell &c = cells[i];
        std::fprintf(
            f,
            "    {\"algo\": \"%s\", \"site\": \"%s\", \"threads\": %u, "
            "\"ops\": %llu, \"seconds\": %.4f, "
            "\"crashes_injected\": %llu, \"snapshots\": %llu, "
            "\"records_sealed\": %llu, \"marks_written\": %llu, "
            "\"records_replayed\": %llu, \"records_discarded\": %llu, "
            "\"entries_replayed\": %llu, \"recovery_ms\": %.3f, "
            "\"persist_escalations\": %llu, \"verified\": %s}%s\n",
            algoKindName(c.csv.algo), siteKey(c.site), c.csv.threads,
            static_cast<unsigned long long>(c.csv.ops), c.csv.seconds,
            static_cast<unsigned long long>(c.csv.crashesInjected),
            static_cast<unsigned long long>(c.snapshots),
            static_cast<unsigned long long>(c.recordsSealed),
            static_cast<unsigned long long>(c.marksWritten),
            static_cast<unsigned long long>(c.csv.recordsReplayed),
            static_cast<unsigned long long>(c.csv.recordsDiscarded),
            static_cast<unsigned long long>(c.entriesReplayed),
            c.csv.recoveryMs,
            static_cast<unsigned long long>(c.escalations),
            c.csv.verified ? "true" : "false",
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace
} // namespace rhtm

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);

    CrashConfig cc;
    cc.opsPerThread =
        static_cast<uint64_t>(opts.getInt("ops", 300));
    cc.words = static_cast<size_t>(opts.getInt("words", 256));
    cc.crashSeed =
        static_cast<uint64_t>(opts.getInt("crash-seed", 0));
    cc.torn = opts.has("torn");
    cc.reordered = opts.has("reordered");
    cc.jsonPath = opts.getString("json", "");
    std::string revert = opts.getString("revert", "");
    if (!revert.empty()) {
        if (revert != "replay-unsealed") {
            std::fprintf(stderr, "unknown --revert bug: %s\n",
                         revert.c_str());
            return 2;
        }
        cc.revertReplayUnsealed = true;
    }

    std::string sites = opts.getString(
        "sites", "pre-seal,post-seal,mid-writeback,post-marker");
    size_t pos = 0;
    while (pos <= sites.size()) {
        size_t comma = sites.find(',', pos);
        std::string key = sites.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!key.empty()) {
            FaultSite site;
            if (!siteFromKey(key, &site)) {
                std::fprintf(stderr, "unknown crash site: %s\n",
                             key.c_str());
                return 2;
            }
            cc.sites.push_back(site);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (cc.sites.empty()) {
        std::fprintf(stderr, "--sites needs at least one site\n");
        return 2;
    }

    bench::printCsvHeader();
    std::vector<CrashCell> cells;
    bool all_ok = true;
    for (AlgoKind algo : cfg.algos) {
        for (FaultSite site : cc.sites) {
            for (int64_t threads : cfg.threads) {
                CrashCell cell = runCrashCell(
                    algo, site, static_cast<unsigned>(threads), cfg,
                    cc);
                std::string name =
                    std::string("crash-") + siteKey(site);
                bench::printCsvRow(name, cell.csv);
                all_ok &= cell.csv.verified;
                cells.push_back(std::move(cell));
            }
        }
    }
    if (!cc.jsonPath.empty())
        writeJson(cc.jsonPath, cfg, cc, cells);
    std::printf("# summary crash: %zu cells, %s\n", cells.size(),
                all_ok ? "all recovered consistently"
                       : "RECOVERY INCONSISTENCIES FOUND");
    return all_ok ? 0 : 1;
}
