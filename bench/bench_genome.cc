/**
 * @file
 * Figure 5 column 3: the STAMP Genome kernel (moderate transactions,
 * low-to-moderate contention, high instrumentation cost).
 *
 * Usage: bench_genome [--length=N] [--dup=N] [common flags]
 */

#include <memory>

#include "bench/harness.h"
#include "src/workloads/genome.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    GenomeParams params;
    params.genomeLength =
        static_cast<unsigned>(opts.getInt("length", 32768));
    params.duplication = static_cast<unsigned>(opts.getInt("dup", 4));

    bench::runBenchmark("genome", [params] {
        return std::make_unique<GenomeWorkload>(params);
    }, cfg);
    return 0;
}
