/**
 * @file
 * Figure 5 column 2: the STAMP Intruder kernel (short, high-contention
 * transactions over a shared packet queue).
 *
 * Usage: bench_intruder [--flows=N] [common flags]
 */

#include <memory>

#include "bench/harness.h"
#include "src/workloads/intruder.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    IntruderParams params;
    // The stream wraps with fresh flow ids, so any run length works.
    params.flows = static_cast<unsigned>(opts.getInt("flows", 4096));

    bench::runBenchmark("intruder", [params] {
        return std::make_unique<IntruderWorkload>(params);
    }, cfg);
    return 0;
}
