/**
 * @file
 * Section 3.6 ("Kmeans ... similar to SSCA2"): the STAMP Kmeans
 * kernel (small transactions; contention set by the cluster count).
 *
 * Usage: bench_kmeans [--clusters=N] [common flags]
 */

#include <memory>

#include "bench/harness.h"
#include "src/workloads/kmeans.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    KmeansParams params;
    params.clusters =
        static_cast<unsigned>(opts.getInt("clusters", 16));

    bench::runBenchmark("kmeans", [params] {
        return std::make_unique<KmeansWorkload>(params);
    }, cfg);
    return 0;
}
