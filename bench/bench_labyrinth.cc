/**
 * @file
 * Section 3.6 ("Labyrinth ... similar to SSCA2" in its RH-vs-HY
 * deltas, but with the long capacity-bound transactions that drive
 * fallbacks): the STAMP Labyrinth kernel.
 *
 * Usage: bench_labyrinth [--width=N] [--height=N] [common flags]
 */

#include <memory>

#include "bench/harness.h"
#include "src/workloads/labyrinth.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    LabyrinthParams params;
    params.width = static_cast<unsigned>(opts.getInt("width", 128));
    params.height = static_cast<unsigned>(opts.getInt("height", 128));

    bench::runBenchmark("labyrinth", [params] {
        return std::make_unique<LabyrinthWorkload>(params);
    }, cfg);
    return 0;
}
