/**
 * @file
 * Google-benchmark microbenchmarks: single-threaded per-transaction
 * latency of each TM algorithm on three canonical bodies (counter
 * increment, 32-word read-only scan, red-black tree lookup). These
 * quantify the instrumentation-cost gap the paper attributes to
 * STM-vs-HTM paths (e.g. Genome's "very high instrumentation costs").
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "src/api/runtime.h"
#include "src/structures/tx_rbtree.h"

namespace
{

using namespace rhtm;

void
BM_Increment(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    TmRuntime rt(kind);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t counter = 0;
    for (auto _ : state) {
        rt.run(ctx, [&](Txn &tx) {
            tx.store(&counter, tx.load(&counter) + 1);
        });
    }
    state.SetLabel(algoKindName(kind));
}

void
BM_ReadOnlyScan(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    TmRuntime rt(kind);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t words[32] = {};
    for (auto _ : state) {
        uint64_t sum = 0;
        rt.run(ctx,
               [&](Txn &tx) {
                   for (auto &w : words)
                       sum += tx.load(&w);
               },
               TxnHint::kReadOnly);
        benchmark::DoNotOptimize(sum);
    }
    state.SetLabel(algoKindName(kind));
}

void
BM_RbTreeGet(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    TmRuntime rt(kind);
    ThreadCtx &ctx = rt.registerThread();
    TxRbTree tree;
    for (int64_t k = 0; k < 1024; ++k)
        rt.run(ctx, [&](Txn &tx) { tree.put(tx, k * 2, k); });
    int64_t key = 0;
    for (auto _ : state) {
        int64_t v = 0;
        rt.run(ctx,
               [&](Txn &tx) {
                   benchmark::DoNotOptimize(tree.get(tx, key, v));
               },
               TxnHint::kReadOnly);
        key = (key + 97) % 2048;
    }
    state.SetLabel(algoKindName(kind));
}

void
addAllAlgos(benchmark::internal::Benchmark *bench)
{
    for (AlgoKind kind : allAlgoKinds())
        bench->Arg(static_cast<int>(kind));
}

BENCHMARK(BM_Increment)->Apply(addAllAlgos);
BENCHMARK(BM_ReadOnlyScan)->Apply(addAllAlgos);
BENCHMARK(BM_RbTreeGet)->Apply(addAllAlgos);

} // namespace

BENCHMARK_MAIN();
