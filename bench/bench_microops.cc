/**
 * @file
 * Google-benchmark microbenchmarks: single-threaded per-transaction
 * latency of each TM algorithm on three canonical bodies (counter
 * increment, 32-word read-only scan, red-black tree lookup). These
 * quantify the instrumentation-cost gap the paper attributes to
 * STM-vs-HTM paths (e.g. Genome's "very high instrumentation costs").
 *
 * The `/on:` microops are the commit-path campaign's A/B cells
 * (docs/COMMIT_PATH.md): each pins ONE front's flag off (A) and on (B)
 * on the exact path that front optimizes -- redo-buffer read-own-writes
 * for the hash index, foreign-commit validation for the read filter,
 * restart-vs-extend for timestamp extension, and a contended
 * disjoint-writer pool for group commit. tools/ab_microops.py drives
 * them in alternating rounds and folds the result into a
 * "microops-ab" BENCH capture.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "src/structures/tx_rbtree.h"
#include "src/util/barrier.h"

namespace
{

using namespace rhtm;

void
BM_Increment(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    TmRuntime rt(kind);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t counter = 0;
    for (auto _ : state) {
        rt.run(ctx, [&](Txn &tx) {
            tx.store(&counter, tx.load(&counter) + 1);
        });
    }
    state.SetLabel(algoKindName(kind));
}

void
BM_ReadOnlyScan(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    TmRuntime rt(kind);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t words[32] = {};
    for (auto _ : state) {
        uint64_t sum = 0;
        rt.run(ctx,
               [&](Txn &tx) {
                   for (auto &w : words)
                       sum += tx.load(&w);
               },
               TxnHint::kReadOnly);
        benchmark::DoNotOptimize(sum);
    }
    state.SetLabel(algoKindName(kind));
}

void
BM_RbTreeGet(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    TmRuntime rt(kind);
    ThreadCtx &ctx = rt.registerThread();
    TxRbTree tree;
    for (int64_t k = 0; k < 1024; ++k)
        rt.run(ctx, [&](Txn &tx) { tree.put(tx, k * 2, k); });
    int64_t key = 0;
    for (auto _ : state) {
        int64_t v = 0;
        rt.run(ctx,
               [&](Txn &tx) {
                   benchmark::DoNotOptimize(tree.get(tx, key, v));
               },
               TxnHint::kReadOnly);
        key = (key + 97) % 2048;
    }
    state.SetLabel(algoKindName(kind));
}

void
addAllAlgos(benchmark::internal::Benchmark *bench)
{
    for (AlgoKind kind : allAlgoKinds())
        bench->Arg(static_cast<int>(kind));
}

// ---------------------------------------------------------------------
// Commit-path campaign A/B cells (docs/COMMIT_PATH.md). range(0) is
// the AlgoKind, range(1) toggles exactly one front's flag: 0 = the
// honest baseline (A), 1 = the optimization (B). The instrumentation-
// cost model is zeroed so the A/B delta is the commit path itself, not
// the modeled libitm overhead both variants would pay equally.
// ---------------------------------------------------------------------

RuntimeConfig
abConfig()
{
    RuntimeConfig cfg;
    cfg.stmAccessPenalty = 0;
    return cfg;
}

void
setAbLabel(benchmark::State &state, AlgoKind kind)
{
    state.SetLabel(std::string(algoKindName(kind)) +
                   (state.range(1) != 0 ? "/on" : "/off"));
}

/** Drive a complete single-location write transaction on @p s. */
void
writeTxn(TxSession &s, uint64_t *addr, uint64_t value)
{
    s.begin(TxnHint::kNone);
    s.write(addr, value);
    s.commit();
    s.onComplete();
}

/**
 * Front 2 (redo-buffer hash index): one lazy transaction buffers 64
 * distinct words, then performs 512 read-own-writes lookups. Every
 * lookup must come from the redo buffer -- linear scan (off) vs
 * stamped open-addressing probe (on).
 */
void
BM_ReadOwnWrites(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    RuntimeConfig cfg = abConfig();
    cfg.commitPath.redoIndex = state.range(1) != 0;
    TmRuntime rt(kind, cfg);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t words[64] = {};
    for (auto _ : state) {
        uint64_t sum = 0;
        rt.run(ctx, [&](Txn &tx) {
            for (uint64_t i = 0; i < 64; ++i)
                tx.store(&words[i], i);
            for (uint64_t i = 0; i < 512; ++i)
                sum += tx.load(&words[(i * 17) % 64]);
        });
        benchmark::DoNotOptimize(sum);
    }
    setAbLabel(state, kind);
}

/**
 * Front 1 (read-set filter ring): a lazy reader re-reads 8 hot words
 * 32 times each -- NOrec's value log keeps duplicates, so the log is
 * 256 entries long while the read summary stays 8 addresses sparse.
 * A second session then commits 8 disjoint writes; each commit forces
 * the reader's next read to validate -- a full 256-entry value walk
 * (off) vs a filter-ring disjointness skip (on).
 */
void
BM_ValidateAcrossCommits(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    RuntimeConfig cfg = abConfig();
    cfg.commitPath.readFilter = state.range(1) != 0;
    TmRuntime rt(kind, cfg);
    TxSession &reader = rt.registerThread().session();
    TxSession &writer = rt.registerThread().session();
    alignas(64) uint64_t reads[8] = {};
    alignas(64) uint64_t foreign[8] = {};
    for (auto _ : state) {
        uint64_t sum = 0;
        reader.begin(TxnHint::kNone);
        for (unsigned rep = 0; rep < 32; ++rep)
            for (auto &w : reads)
                sum += reader.read(&w);
        for (uint64_t i = 0; i < 8; ++i) {
            writeTxn(writer, &foreign[i], i);
            sum += reader.read(&reads[i]);
        }
        reader.commit();
        reader.onComplete();
        benchmark::DoNotOptimize(sum);
    }
    StatsSummary ss = rt.stats();
    state.counters["revals"] =
        static_cast<double>(ss.get(Counter::kRevalidations));
    state.counters["skips"] =
        static_cast<double>(ss.get(Counter::kRevalidationsSkipped));
    setAbLabel(state, kind);
}

/**
 * Front 3 (timestamp extension): an eager reader interleaves 8 reads
 * with 8 disjoint foreign commits. The classic protocol (off) restarts
 * on every commit and redoes the prior reads in the quiet window; the
 * extension (on) absorbs each commit in place. Both variants perform
 * exactly 8 foreign commits, so the protocol is the only difference.
 */
void
BM_ExtendAcrossCommits(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    RuntimeConfig cfg = abConfig();
    cfg.commitPath.tsExtension = state.range(1) != 0;
    TmRuntime rt(kind, cfg);
    TxSession &reader = rt.registerThread().session();
    TxSession &writer = rt.registerThread().session();
    alignas(64) uint64_t reads[8] = {};
    alignas(64) uint64_t foreign[8] = {};
    for (auto _ : state) {
        uint64_t sum = 0;
        reader.begin(TxnHint::kNone);
        unsigned i = 0;
        while (i < 8) {
            try {
                sum += reader.read(&reads[i]);
            } catch (const TxRestart &) {
                reader.onRestart();
                reader.begin(TxnHint::kNone);
                for (unsigned j = 0; j < i; ++j)
                    sum += reader.read(&reads[j]);
                continue; // Retry read i on the fresh snapshot.
            }
            writeTxn(writer, &foreign[i], i);
            ++i;
        }
        reader.commit(); // Read-only eager commit: never restarts.
        reader.onComplete();
        benchmark::DoNotOptimize(sum);
    }
    setAbLabel(state, kind);
}

/**
 * Front 4 (group commit): up to 4 software writers (clamped to the
 * host's core count -- combining needs real parallelism; on fewer
 * cores the cell degenerates to the solo-overhead question) hammer
 * disjoint cache lines through the full run() loop -- every commit
 * takes the global clock. Solo publication (off) vs flat-combining
 * batches (on). Wall-clock timed (the measuring thread only joins
 * the pool).
 */
void
BM_GroupCommitWriters(benchmark::State &state)
{
    auto kind = static_cast<AlgoKind>(state.range(0));
    RuntimeConfig cfg = abConfig();
    cfg.commitPath.groupCommit = state.range(1) != 0;
    TmRuntime rt(kind, cfg);
    const unsigned kThreads = std::max(
        1u, std::min(4u, std::thread::hardware_concurrency()));
    constexpr unsigned kOpsPerThread = 2048;
    std::vector<ThreadCtx *> ctxs;
    for (unsigned t = 0; t < kThreads; ++t)
        ctxs.push_back(&rt.registerThread());
    alignas(64) uint64_t words[4 * 8] = {};
    for (auto _ : state) {
        SenseBarrier barrier(kThreads);
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < kThreads; ++t) {
            pool.emplace_back([&, t] {
                ThreadCtx &ctx = *ctxs[t];
                uint64_t *word = &words[t * 8];
                barrier.arriveAndWait();
                for (unsigned op = 0; op < kOpsPerThread; ++op)
                    rt.run(ctx, [&](Txn &tx) {
                        tx.store(word, tx.load(word) + 1);
                    });
            });
        }
        for (auto &th : pool)
            th.join();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * kThreads *
        kOpsPerThread);
    state.counters["threads"] = kThreads;
    setAbLabel(state, kind);
}

BENCHMARK(BM_Increment)->Apply(addAllAlgos);
BENCHMARK(BM_ReadOnlyScan)->Apply(addAllAlgos);
BENCHMARK(BM_RbTreeGet)->Apply(addAllAlgos);

BENCHMARK(BM_ReadOwnWrites)
    ->ArgNames({"algo", "on"})
    ->Args({static_cast<int>(AlgoKind::kNOrecLazy), 0})
    ->Args({static_cast<int>(AlgoKind::kNOrecLazy), 1});
BENCHMARK(BM_ValidateAcrossCommits)
    ->ArgNames({"algo", "on"})
    ->Args({static_cast<int>(AlgoKind::kNOrecLazy), 0})
    ->Args({static_cast<int>(AlgoKind::kNOrecLazy), 1});
BENCHMARK(BM_ExtendAcrossCommits)
    ->ArgNames({"algo", "on"})
    ->Args({static_cast<int>(AlgoKind::kNOrec), 0})
    ->Args({static_cast<int>(AlgoKind::kNOrec), 1});
BENCHMARK(BM_GroupCommitWriters)
    ->ArgNames({"algo", "on"})
    ->Args({static_cast<int>(AlgoKind::kNOrecLazy), 0})
    ->Args({static_cast<int>(AlgoKind::kNOrecLazy), 1})
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
