/**
 * @file
 * Figure 4: the red-black tree microbenchmark. One run per mutation
 * ratio (default: the paper's 4%, 10% and 40% columns) over a 10,000
 * node tree, sweeping algorithms and thread counts and emitting the
 * throughput plus all four analysis rows.
 *
 * Usage: bench_rbtree [--mutation=4,10,40] [--size=10000]
 *                     [--threads=...] [--seconds=...] [--algos=...]
 */

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/workloads/rbtree_bench.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    auto mutations = opts.getIntList("mutation", {4, 10, 40});
    unsigned size = static_cast<unsigned>(opts.getInt("size", 10000));

    for (int64_t mutation : mutations) {
        RbTreeBenchParams params;
        params.initialSize = size;
        params.mutationPct = static_cast<unsigned>(mutation);
        std::string name =
            "rbtree-" + std::to_string(mutation) + "pct";
        bench::runBenchmark(name, [params] {
            return std::make_unique<RbTreeBenchWorkload>(params);
        }, cfg);
    }
    return 0;
}
