/**
 * @file
 * Figure 6 column 2: the STAMP SSCA2 kernel (tiny, mostly uncontended
 * read-modify-write transactions).
 *
 * Usage: bench_ssca2 [--nodes=N] [common flags]
 */

#include <memory>

#include "bench/harness.h"
#include "src/workloads/ssca2.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    Ssca2Params params;
    params.nodes = static_cast<unsigned>(opts.getInt("nodes", 16384));

    bench::runBenchmark("ssca2", [params] {
        return std::make_unique<Ssca2Workload>(params);
    }, cfg);
    return 0;
}
