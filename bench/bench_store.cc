/**
 * @file
 * Sharded transactional store benchmark (docs/STORE.md).
 *
 * Three legs over the ShardedStore:
 *
 *  1. Mixed OLTP sweep: for every (algo, shards, threads) cell, a
 *     multi-threaded loop of Zipfian point gets/puts, per-shard range
 *     scans and multi-key RMWs (cross-shard whenever shards > 1), each
 *     request carrying a wall-clock deadline. Reports per-op-class
 *     p50/p99/max latency and committed counts, plus an "all" cell
 *     with throughput and the cross-shard commit/restart/escalation
 *     counters.
 *  2. History-check leg (--check, on by default): a smaller run per
 *     algorithm with the StoreObserver recording every committed
 *     operation's read/write sets; the recorded history (including
 *     cross-shard RMWs) must pass the strict-serializability checker.
 *  3. Saturation leg: disjoint-key workloads (no logical conflicts) at
 *     the highest requested thread count, 1 shard vs the maximum
 *     requested shard count -- the multi-domain design must scale:
 *     more shards must not be slower.
 *
 * Usage: bench_store [--threads=1,8] [--shards=1,4] [--algos=all]
 *                    [--ops=2000] [--keys=8192] [--zipf=0.8]
 *                    [--deadline-ms=100] [--admission=on|off]
 *                    [--check=on|off] [--check-ops=120]
 *                    [--saturation=on|off] [--group-commit=on|off]
 *                    [--seed=1] [--json=FILE]
 *
 * Exit status: 0 when every history check passed and the saturation
 * invariant held (when measured), 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/check/history.h"
#include "src/stats/latency.h"
#include "src/store/sharded_store.h"
#include "src/util/barrier.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace rhtm
{
namespace
{

enum OpClass : unsigned
{
    kOpGet = 0,
    kOpPut,
    kOpScan,
    kOpRmw,
    kNumOpClasses
};

const char *kOpClassName[kNumOpClasses] = {"get", "put", "scan", "rmw"};

/** Mix percentages (cumulative draw out of 100). */
constexpr unsigned kPctGet = 50;
constexpr unsigned kPctPut = 75;  // 25% puts
constexpr unsigned kPctScan = 85; // 10% scans
                                  // 15% multi-key RMWs

constexpr uint64_t kSeedValue = 1000;
constexpr unsigned kRmwKeys = 3;
constexpr uint64_t kScanWidth = 64;
constexpr size_t kScanLimit = 32;

struct Config
{
    std::vector<unsigned> threads{1, 8};
    std::vector<unsigned> shards{1, 4};
    std::vector<AlgoKind> algos = allAlgoKinds();
    uint64_t opsPerThread = 2000;
    uint64_t keys = 8192;
    double zipfTheta = 0.8;
    uint64_t deadlineMs = 100;
    bool admission = false;
    bool runCheck = true;
    uint64_t checkOps = 120;
    unsigned checkThreads = 3;
    bool runSaturation = true;
    bool groupCommit = false;
    uint64_t seed = 1;
    std::string jsonPath;
};

struct Cell
{
    std::string mode;    //!< "oltp", "check" or "saturation".
    std::string algo;
    std::string opclass; //!< Per-class cells; "all" for totals.
    unsigned shards = 0;
    unsigned threads = 0;
    uint64_t ops = 0;
    uint64_t committed = 0;
    double p50Us = 0, p99Us = 0, maxUs = 0;
    double seconds = 0;
    double throughput = 0;
    uint64_t crossCommits = 0, crossRestarts = 0, crossEscalations = 0;
    uint64_t deadlineExceeded = 0, shed = 0;
    bool hasVerified = false;
    bool verified = false;
};

double
usOf(uint64_t ns)
{
    return static_cast<double>(ns) / 1000.0;
}

/** History recorder: StoreObserver -> checker event stream. */
class HistoryObserver final : public StoreObserver
{
  public:
    void
    onTxnBegin(unsigned worker) override
    {
        std::lock_guard<std::mutex> guard(lock_);
        history_.push(worker, check::HistKind::kBegin);
    }

    void
    onTxnCommit(const StoreOpRecord &rec) override
    {
        std::lock_guard<std::mutex> guard(lock_);
        // The committed attempt's accesses, reported wholesale at
        // commit time (still inside the txn's real-time window).
        history_.push(rec.worker, check::HistKind::kAttempt);
        for (const auto &[key, value] : rec.reads)
            history_.push(rec.worker, check::HistKind::kRead,
                          static_cast<unsigned>(key), value);
        for (const auto &[key, value] : rec.writes)
            history_.push(rec.worker, check::HistKind::kWrite,
                          static_cast<unsigned>(key), value);
        history_.push(rec.worker, check::HistKind::kCommit);
    }

    const check::History &history() const { return history_; }

  private:
    std::mutex lock_;
    check::History history_;
};

StoreConfig
makeStoreConfig(AlgoKind algo, unsigned shards, const Config &cfg)
{
    StoreConfig sc;
    sc.shards = shards;
    sc.kind = algo;
    sc.runtime.rngSeed = cfg.seed;
    sc.runtime.admission.enabled = cfg.admission;
    // Opt-in group commit (docs/COMMIT_PATH.md front 4): slow-path
    // lazy writers batch under one clock bump; the check leg then
    // vets the batched histories for strict serializability.
    sc.runtime.commitPath.groupCommit = cfg.groupCommit;
    return sc;
}

/** One mixed-OLTP cell; returns per-class cells plus the totals cell. */
std::vector<Cell>
runOltpCell(AlgoKind algo, unsigned shards, unsigned threads,
            const Config &cfg)
{
    ShardedStore store(makeStoreConfig(algo, shards, cfg));
    StoreWorker &seeder = store.registerWorker();
    store.seed(seeder, cfg.keys, kSeedValue);
    store.resetStats();

    std::vector<StoreWorker *> workers(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers[t] = &store.registerWorker();

    struct PerThread
    {
        LatencyHistogram lat[kNumOpClasses];
        uint64_t issued[kNumOpClasses] = {0, 0, 0, 0};
        uint64_t committed[kNumOpClasses] = {0, 0, 0, 0};
    };
    std::vector<PerThread> per(threads);

    SenseBarrier barrier(threads + 1);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(cfg.seed * 1000003 + t * 7919 + 1);
            ZipfGenerator zipf(cfg.keys, cfg.zipfTheta,
                               cfg.seed * 31 + t + 1);
            StoreOpts opts;
            opts.deadline =
                std::chrono::milliseconds(cfg.deadlineMs);
            PerThread &mine = per[t];
            std::vector<std::pair<uint64_t, uint64_t>> scanOut;
            std::vector<uint64_t> rmwKeys(kRmwKeys);
            using LatClock = std::chrono::steady_clock;
            barrier.arriveAndWait();
            for (uint64_t op = 0; op < cfg.opsPerThread; ++op) {
                unsigned draw =
                    static_cast<unsigned>(rng.nextBounded(100));
                unsigned cls;
                if (draw < kPctGet)
                    cls = kOpGet;
                else if (draw < kPctPut)
                    cls = kOpPut;
                else if (draw < kPctScan)
                    cls = kOpScan;
                else
                    cls = kOpRmw;
                uint64_t key = zipf.next();
                auto start = LatClock::now();
                TxnOutcome out = TxnOutcome::kCommitted;
                switch (cls) {
                case kOpGet: {
                    uint64_t v = 0;
                    bool found = false;
                    out = store.get(*workers[t], key, v, found, opts);
                    break;
                }
                case kOpPut:
                    out = store.put(*workers[t], key,
                                    rng.next() >> 1, opts);
                    break;
                case kOpScan: {
                    unsigned shard = static_cast<unsigned>(
                        rng.nextBounded(shards));
                    uint64_t hi =
                        std::min(key + kScanWidth - 1, cfg.keys - 1);
                    out = store.scan(*workers[t], shard, key, hi,
                                     kScanLimit, scanOut, opts);
                    break;
                }
                case kOpRmw:
                default:
                    for (unsigned k = 0; k < kRmwKeys; ++k)
                        rmwKeys[k] = zipf.next();
                    out = store.multiRmw(*workers[t], rmwKeys, 1,
                                         opts);
                    break;
                }
                auto delta = LatClock::now() - start;
                mine.lat[cls].record(static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(delta)
                        .count()));
                ++mine.issued[cls];
                if (out == TxnOutcome::kCommitted)
                    ++mine.committed[cls];
            }
        });
    }
    auto wallStart = std::chrono::steady_clock::now();
    barrier.arriveAndWait();
    for (auto &th : pool)
        th.join();
    double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    StatsSummary totals = store.stats();
    std::vector<Cell> cells;
    uint64_t allIssued = 0, allCommitted = 0;
    for (unsigned cls = 0; cls < kNumOpClasses; ++cls) {
        LatencyHistogram merged;
        uint64_t issued = 0, committed = 0;
        for (const auto &pt : per) {
            merged.merge(pt.lat[cls]);
            issued += pt.issued[cls];
            committed += pt.committed[cls];
        }
        allIssued += issued;
        allCommitted += committed;
        Cell c;
        c.mode = "oltp";
        c.algo = algoKindName(algo);
        c.opclass = kOpClassName[cls];
        c.shards = shards;
        c.threads = threads;
        c.ops = issued;
        c.committed = committed;
        c.p50Us = usOf(merged.percentileNs(50));
        c.p99Us = usOf(merged.percentileNs(99));
        c.maxUs = usOf(merged.maxNs());
        c.seconds = seconds;
        cells.push_back(c);
    }
    Cell all;
    all.mode = "oltp";
    all.algo = algoKindName(algo);
    all.opclass = "all";
    all.shards = shards;
    all.threads = threads;
    all.ops = allIssued;
    all.committed = allCommitted;
    all.seconds = seconds;
    all.throughput =
        seconds > 0 ? static_cast<double>(allCommitted) / seconds : 0;
    all.crossCommits = totals.get(Counter::kCrossShardCommits);
    all.crossRestarts = totals.get(Counter::kCrossShardRestarts);
    all.crossEscalations =
        totals.get(Counter::kCrossShardEscalations);
    all.deadlineExceeded = totals.get(Counter::kDeadlineExceeded);
    all.shed = totals.get(Counter::kAdmissionShed);
    cells.push_back(all);
    return cells;
}

/**
 * History-check leg: record every committed op's read/write sets and
 * run the strict-serializability checker over them.
 */
Cell
runCheckCell(AlgoKind algo, const Config &cfg)
{
    const unsigned shards = 3;
    const unsigned threads = cfg.checkThreads;
    const uint64_t keys = 96; // Var ids must fit the checker's u16.

    Config small = cfg;
    small.admission = false;
    ShardedStore store(makeStoreConfig(algo, shards, small));
    StoreWorker &seeder = store.registerWorker();
    store.seed(seeder, keys, kSeedValue);

    HistoryObserver observer;
    store.setObserver(&observer);

    std::vector<StoreWorker *> workers(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers[t] = &store.registerWorker();

    std::vector<uint64_t> committedPer(threads, 0);
    SenseBarrier barrier(threads + 1);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(cfg.seed * 7907 + t * 131 + 1);
            ZipfGenerator zipf(keys, 0.6, cfg.seed * 17 + t + 1);
            StoreOpts opts; // Unbounded: every op must commit.
            std::vector<std::pair<uint64_t, uint64_t>> scanOut;
            std::vector<uint64_t> rmwKeys(kRmwKeys);
            barrier.arriveAndWait();
            for (uint64_t op = 0; op < cfg.checkOps; ++op) {
                unsigned draw =
                    static_cast<unsigned>(rng.nextBounded(100));
                uint64_t key = zipf.next();
                TxnOutcome out;
                if (draw < 40) {
                    uint64_t v = 0;
                    bool found = false;
                    out = store.get(*workers[t], key, v, found, opts);
                } else if (draw < 60) {
                    out = store.put(*workers[t], key, rng.next() >> 1,
                                    opts);
                } else if (draw < 70) {
                    unsigned shard = static_cast<unsigned>(
                        rng.nextBounded(shards));
                    out = store.scan(*workers[t], shard, key,
                                     std::min(key + 15, keys - 1), 8,
                                     scanOut, opts);
                } else {
                    // RMW-heavy so cross-shard commits dominate the
                    // checked history.
                    for (unsigned k = 0; k < kRmwKeys; ++k)
                        rmwKeys[k] = zipf.next();
                    out = store.multiRmw(*workers[t], rmwKeys, 1,
                                         opts);
                }
                if (out == TxnOutcome::kCommitted)
                    ++committedPer[t];
            }
        });
    }
    barrier.arriveAndWait();
    for (auto &th : pool)
        th.join();
    store.setObserver(nullptr);

    std::vector<uint64_t> initial(keys, kSeedValue);
    check::CheckResult result =
        check::checkHistory(observer.history(), initial);

    StatsSummary totals = store.stats();
    Cell c;
    c.mode = "check";
    c.algo = algoKindName(algo);
    c.opclass = "all";
    c.shards = shards;
    c.threads = threads;
    c.ops = cfg.checkOps * threads;
    for (uint64_t n : committedPer)
        c.committed += n;
    c.crossCommits = totals.get(Counter::kCrossShardCommits);
    c.crossRestarts = totals.get(Counter::kCrossShardRestarts);
    c.crossEscalations =
        totals.get(Counter::kCrossShardEscalations);
    c.hasVerified = true;
    c.verified = result.ok();
    if (!result.ok()) {
        std::fprintf(stderr,
                     "bench_store: history check FAILED for %s: %s\n%s\n",
                     algoKindName(algo),
                     check::checkVerdictName(result.verdict),
                     result.detail.c_str());
        if (observer.history().size() < 600)
            std::fprintf(stderr, "history:\n%s",
                         observer.history().format().c_str());
    }
    return c;
}

/**
 * Saturation leg: disjoint keys (worker-private slices, no logical
 * conflicts), measuring pure coordination-domain scaling.
 */
Cell
runSaturationCell(AlgoKind algo, unsigned shards, unsigned threads,
                  const Config &cfg)
{
    ShardedStore store(makeStoreConfig(algo, shards, cfg));
    StoreWorker &seeder = store.registerWorker();
    store.seed(seeder, cfg.keys, kSeedValue);
    store.resetStats();

    std::vector<StoreWorker *> workers(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers[t] = &store.registerWorker();

    const uint64_t slice = std::max<uint64_t>(cfg.keys / threads, 1);
    std::vector<uint64_t> committedPer(threads, 0);
    SenseBarrier barrier(threads + 1);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(cfg.seed * 90001 + t * 577 + 1);
            StoreOpts opts; // Unbounded; measure raw throughput.
            uint64_t base = t * slice;
            barrier.arriveAndWait();
            for (uint64_t op = 0; op < cfg.opsPerThread; ++op) {
                uint64_t key = base + rng.nextBounded(slice);
                TxnOutcome out;
                if (rng.nextBounded(100) < 70) {
                    uint64_t v = 0;
                    bool found = false;
                    out = store.get(*workers[t], key, v, found, opts);
                } else {
                    out = store.put(*workers[t], key, rng.next() >> 1,
                                    opts);
                }
                if (out == TxnOutcome::kCommitted)
                    ++committedPer[t];
            }
        });
    }
    auto wallStart = std::chrono::steady_clock::now();
    barrier.arriveAndWait();
    for (auto &th : pool)
        th.join();
    double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    Cell c;
    c.mode = "saturation";
    c.algo = algoKindName(algo);
    c.opclass = "all";
    c.shards = shards;
    c.threads = threads;
    c.ops = cfg.opsPerThread * threads;
    for (uint64_t n : committedPer)
        c.committed += n;
    c.seconds = seconds;
    c.throughput =
        seconds > 0 ? static_cast<double>(c.committed) / seconds : 0;
    return c;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseArgs(int argc, char **argv, Config &cfg)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto valueOf = [&](const char *prefix,
                           std::string &out) -> bool {
            size_t len = std::strlen(prefix);
            if (arg.compare(0, len, prefix) != 0)
                return false;
            out = arg.substr(len);
            return true;
        };
        std::string v;
        if (valueOf("--threads=", v)) {
            cfg.threads.clear();
            for (const auto &tok : splitList(v))
                cfg.threads.push_back(
                    static_cast<unsigned>(std::stoul(tok)));
        } else if (valueOf("--shards=", v)) {
            cfg.shards.clear();
            for (const auto &tok : splitList(v))
                cfg.shards.push_back(
                    static_cast<unsigned>(std::stoul(tok)));
        } else if (valueOf("--algos=", v)) {
            if (v != "all") {
                cfg.algos.clear();
                for (const auto &tok : splitList(v)) {
                    AlgoKind kind;
                    if (!algoKindFromString(tok, kind)) {
                        std::fprintf(stderr,
                                     "bench_store: unknown algo %s\n",
                                     tok.c_str());
                        return false;
                    }
                    cfg.algos.push_back(kind);
                }
            }
        } else if (valueOf("--ops=", v)) {
            cfg.opsPerThread = std::stoull(v);
        } else if (valueOf("--keys=", v)) {
            cfg.keys = std::stoull(v);
        } else if (valueOf("--zipf=", v)) {
            cfg.zipfTheta = std::stod(v);
        } else if (valueOf("--deadline-ms=", v)) {
            cfg.deadlineMs = std::stoull(v);
        } else if (valueOf("--admission=", v)) {
            cfg.admission = (v == "on");
        } else if (valueOf("--check=", v)) {
            cfg.runCheck = (v == "on");
        } else if (valueOf("--check-ops=", v)) {
            cfg.checkOps = std::stoull(v);
        } else if (valueOf("--check-threads=", v)) {
            cfg.checkThreads =
                static_cast<unsigned>(std::stoul(v));
        } else if (valueOf("--saturation=", v)) {
            cfg.runSaturation = (v == "on");
        } else if (valueOf("--group-commit=", v)) {
            cfg.groupCommit = (v == "on");
        } else if (valueOf("--seed=", v)) {
            cfg.seed = std::stoull(v);
        } else if (valueOf("--json=", v)) {
            cfg.jsonPath = v;
        } else {
            std::fprintf(stderr, "bench_store: unknown flag %s\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

void
printCell(const Cell &c)
{
    std::printf("%s,%s,%s,%u,%u,%llu,%llu,%.1f,%.1f,%.1f,%.3f,%.0f,"
                "%llu,%llu,%llu",
                c.mode.c_str(), c.algo.c_str(), c.opclass.c_str(),
                c.shards, c.threads,
                static_cast<unsigned long long>(c.ops),
                static_cast<unsigned long long>(c.committed), c.p50Us,
                c.p99Us, c.maxUs, c.seconds, c.throughput,
                static_cast<unsigned long long>(c.crossCommits),
                static_cast<unsigned long long>(c.crossRestarts),
                static_cast<unsigned long long>(c.crossEscalations));
    if (c.hasVerified)
        std::printf(",%s", c.verified ? "ok" : "FAIL");
    std::printf("\n");
}

void
writeJson(const std::string &path, const Config &cfg,
          const std::vector<Cell> &cells)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_store: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"store\",\n  \"seed\": %llu,\n"
                    "  \"cells\": [\n",
                 static_cast<unsigned long long>(cfg.seed));
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"algo\": \"%s\", "
            "\"opclass\": \"%s\", \"shards\": %u, \"threads\": %u, "
            "\"ops\": %llu, \"committed\": %llu, "
            "\"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, "
            "\"seconds\": %.3f, \"throughput\": %.0f, "
            "\"cross_commits\": %llu, \"cross_restarts\": %llu, "
            "\"cross_escalations\": %llu, "
            "\"deadline_exceeded\": %llu, \"admission_shed\": %llu",
            c.mode.c_str(), c.algo.c_str(), c.opclass.c_str(),
            c.shards, c.threads,
            static_cast<unsigned long long>(c.ops),
            static_cast<unsigned long long>(c.committed), c.p50Us,
            c.p99Us, c.maxUs, c.seconds, c.throughput,
            static_cast<unsigned long long>(c.crossCommits),
            static_cast<unsigned long long>(c.crossRestarts),
            static_cast<unsigned long long>(c.crossEscalations),
            static_cast<unsigned long long>(c.deadlineExceeded),
            static_cast<unsigned long long>(c.shed));
        if (c.hasVerified)
            std::fprintf(f, ", \"verified\": %s",
                         c.verified ? "true" : "false");
        std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

int
benchMain(int argc, char **argv)
{
    Config cfg;
    if (!parseArgs(argc, argv, cfg))
        return 2;

    std::vector<Cell> cells;
    bool failed = false;

    std::printf("mode,algo,opclass,shards,threads,ops,committed,"
                "p50_us,p99_us,max_us,seconds,throughput,"
                "cross_commits,cross_restarts,cross_escalations\n");

    for (AlgoKind algo : cfg.algos) {
        for (unsigned shards : cfg.shards) {
            for (unsigned threads : cfg.threads) {
                auto cs = runOltpCell(algo, shards, threads, cfg);
                for (const auto &c : cs) {
                    printCell(c);
                    cells.push_back(c);
                }
            }
        }
    }

    if (cfg.runCheck) {
        for (AlgoKind algo : cfg.algos) {
            Cell c = runCheckCell(algo, cfg);
            printCell(c);
            cells.push_back(c);
            if (!c.verified)
                failed = true;
        }
    }

    if (cfg.runSaturation && !cfg.threads.empty() &&
        !cfg.shards.empty()) {
        unsigned maxThreads =
            *std::max_element(cfg.threads.begin(), cfg.threads.end());
        unsigned minShards =
            *std::min_element(cfg.shards.begin(), cfg.shards.end());
        unsigned maxShards =
            *std::max_element(cfg.shards.begin(), cfg.shards.end());
        // The scaling invariant needs physical parallelism: on a
        // single-core (or dual-core) host, extra shards are pure
        // overhead for timeshared threads and the comparison says
        // nothing about the design. Measure everywhere, enforce only
        // where the hardware can actually run shards concurrently.
        unsigned hw = std::thread::hardware_concurrency();
        bool enforce = hw >= 4;
        if (!enforce)
            std::printf("# saturation: %u hardware thread(s); "
                        "scaling invariant reported, not enforced\n",
                        hw);
        for (AlgoKind algo : cfg.algos) {
            Cell base =
                runSaturationCell(algo, minShards, maxThreads, cfg);
            printCell(base);
            cells.push_back(base);
            if (maxShards == minShards)
                continue;
            Cell wide =
                runSaturationCell(algo, maxShards, maxThreads, cfg);
            // The acceptance invariant (>= 4 shards beats 1 shard at
            // >= 8 threads) only binds where sharding can win.
            if (enforce && minShards == 1 && maxShards >= 4 &&
                maxThreads >= 8) {
                wide.hasVerified = true;
                wide.verified = wide.throughput > base.throughput;
                if (!wide.verified) {
                    failed = true;
                    std::fprintf(
                        stderr,
                        "bench_store: saturation FAILED for %s: "
                        "%u shards %.0f ops/s vs 1 shard %.0f ops/s\n",
                        algoKindName(algo), maxShards,
                        wide.throughput, base.throughput);
                }
            }
            printCell(wide);
            cells.push_back(wide);
        }
    }

    if (!cfg.jsonPath.empty())
        writeJson(cfg.jsonPath, cfg, cells);

    std::printf("# bench_store: %s\n", failed ? "FAIL" : "ok");
    return failed ? 1 : 0;
}

} // namespace
} // namespace rhtm

int
main(int argc, char **argv)
{
    return rhtm::benchMain(argc, argv);
}
