/**
 * @file
 * Figure 5 column 1 (Vacation-Low) and Figure 6 column 1
 * (Vacation-High): the STAMP travel-reservation OLTP kernel.
 *
 * Usage: bench_vacation [--contention=low|high|both] [common flags]
 */

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/workloads/vacation.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    std::string contention = opts.getString("contention", "both");

    if (contention == "low" || contention == "both") {
        bench::runBenchmark("vacation-low", [] {
            return std::make_unique<VacationWorkload>(
                VacationParams::low());
        }, cfg);
    }
    if (contention == "high" || contention == "both") {
        bench::runBenchmark("vacation-high", [] {
            return std::make_unique<VacationWorkload>(
                VacationParams::high());
        }, cfg);
    }
    return 0;
}
