/**
 * @file
 * Figure 6 column 3: the STAMP Yada kernel (mesh refinement;
 * moderate-to-long transactions over a contended work queue).
 *
 * Usage: bench_yada [--triangles=N] [common flags]
 */

#include <memory>

#include "bench/harness.h"
#include "src/workloads/yada.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    bench::BenchConfig cfg = bench::parseBenchConfig(opts);
    YadaParams params;
    params.initialTriangles =
        static_cast<unsigned>(opts.getInt("triangles", 8192));

    bench::runBenchmark("yada", [params] {
        return std::make_unique<YadaWorkload>(params);
    }, cfg);
    return 0;
}
