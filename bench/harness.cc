#include "bench/harness.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/fault/schedules.h"
#include "src/util/barrier.h"
#include "src/util/timer.h"

namespace rhtm
{
namespace bench
{

BenchConfig::BenchConfig()
{
    algos = allAlgoKinds();
    // Model the paper's HyperThreading effect: threads beyond the
    // 8 physical cores halve the per-transaction HTM capacity.
    runtime.htm.scaledThreadsFrom = 8;
    runtime.htm.capacityScale = 2;
    // Real best-effort HTM aborts on every interrupt, context switch,
    // page fault and TLB miss; the simulated HTM survives them, so an
    // injected per-access abort probability restores the background
    // fallback traffic that feeds the hybrid dynamics (DESIGN.md).
    runtime.htm.randomAbortProb = 5e-4;
}

BenchConfig
parseBenchConfig(const CliOptions &opts)
{
    BenchConfig cfg;
    if (!opts.errors().empty()) {
        std::fprintf(stderr, "unrecognized argument: %s\n",
                     opts.errors()[0].c_str());
        std::exit(2);
    }
    cfg.threads = opts.getIntList("threads", cfg.threads);
    cfg.seconds = opts.getDouble("seconds", cfg.seconds);
    cfg.seed = static_cast<uint64_t>(opts.getInt("seed", 1));
    cfg.verify = !opts.has("no-verify");
    cfg.runtime.htm.scaledThreadsFrom = static_cast<unsigned>(
        opts.getInt("ht-from", cfg.runtime.htm.scaledThreadsFrom));
    cfg.runtime.htm.capacityScale = static_cast<size_t>(
        opts.getInt("ht-scale", cfg.runtime.htm.capacityScale));
    cfg.runtime.htm.randomAbortProb =
        opts.getDouble("abort-prob", cfg.runtime.htm.randomAbortProb);
    cfg.runtime.stmAccessPenalty = static_cast<unsigned>(
        opts.getInt("stm-penalty", cfg.runtime.stmAccessPenalty));
    cfg.runtime.retry.stallBudgetTicks = static_cast<uint64_t>(
        opts.getInt("stall-budget",
                    static_cast<int64_t>(
                        cfg.runtime.retry.stallBudgetTicks)));
    int64_t irrev = opts.getInt("irrevocable-pct", 0);
    if (irrev < 0 || irrev > 100) {
        std::fprintf(stderr,
                     "--irrevocable-pct must be in [0,100] (got %lld)\n",
                     static_cast<long long>(irrev));
        std::exit(2);
    }
    cfg.irrevocablePct = static_cast<unsigned>(irrev);
    if (opts.has("cm")) {
        std::string cm = opts.getString("cm", "");
        if (cm == "static") {
            cfg.runtime.retry.cm = CmKind::kStatic;
        } else if (cm == "causeaware") {
            cfg.runtime.retry.cm = CmKind::kCauseAware;
        } else {
            std::fprintf(stderr,
                         "unknown contention manager: %s "
                         "(known: static causeaware)\n",
                         cm.c_str());
            std::exit(2);
        }
    }

    // Commit-path campaign switches (docs/COMMIT_PATH.md): the first
    // three fronts default on, group commit is opt-in; each flag
    // overrides its default for A/B runs.
    auto onOff = [&opts](const char *flag, bool &out) {
        if (!opts.has(flag))
            return;
        std::string v = opts.getString(flag, "");
        if (v == "on") {
            out = true;
        } else if (v == "off") {
            out = false;
        } else {
            std::fprintf(stderr, "--%s must be on|off (got '%s')\n",
                         flag, v.c_str());
            std::exit(2);
        }
    };
    onOff("read-filter", cfg.runtime.commitPath.readFilter);
    onOff("redo-index", cfg.runtime.commitPath.redoIndex);
    onOff("ts-extension", cfg.runtime.commitPath.tsExtension);
    onOff("group-commit", cfg.runtime.commitPath.groupCommit);

    if (opts.has("fault-schedule")) {
        std::string name = opts.getString("fault-schedule", "");
        if (!makeChaosSchedule(name, cfg.seed, cfg.runtime.fault)) {
            std::fprintf(stderr, "unknown fault schedule: %s (known:",
                         name.c_str());
            for (const std::string &n : chaosScheduleNames())
                std::fprintf(stderr, " %s", n.c_str());
            std::fprintf(stderr, ")\n");
            std::exit(2);
        }
    }

    if (opts.has("algos")) {
        cfg.algos.clear();
        std::string list = opts.getString("algos", "");
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t comma = list.find(',', pos);
            std::string name =
                list.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            if (name == "all") {
                // Sweep mode: every registered algorithm, in the
                // canonical allAlgoKinds() order.
                for (AlgoKind kind : allAlgoKinds())
                    cfg.algos.push_back(kind);
            } else if (!name.empty()) {
                AlgoKind kind;
                if (!algoKindFromString(name, kind)) {
                    std::fprintf(stderr, "unknown algorithm: %s\n",
                                 name.c_str());
                    std::exit(2);
                }
                cfg.algos.push_back(kind);
            }
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    return cfg;
}

void
printCsvHeader()
{
    std::printf(
        "bench,algo,threads,seconds,ops,throughput_ops_per_sec,"
        "conflict_aborts_per_op,capacity_aborts_per_op,"
        "restarts_per_slowpath,slowpath_ratio,"
        "prefix_success_ratio,postfix_success_ratio,"
        "injected_aborts_per_op,subscription_aborts_per_op,"
        "fastpath_attempts_per_op,killswitch_activations,"
        "killswitch_bypass_ratio,p50_us,p99_us,max_us,"
        "stalls_detected,irrevocable_upgrades,accesses_per_op,"
        "crashes_injected,records_replayed,records_discarded,"
        "recovery_ms,deadline_exceeded,admission_shed,"
        "admission_queued_ticks,verified\n");
}

void
printCsvRow(const std::string &bench_name, const CellResult &cell)
{
    const StatsSummary &s = cell.stats;
    uint64_t ops = s.operations();
    double attempts_per_op =
        ops ? double(s.get(Counter::kFastPathAttempts)) / ops : 0.0;
    double bypass_ratio =
        ops ? double(s.get(Counter::kKillSwitchBypasses)) / ops : 0.0;
    std::printf("%s,%s,%u,%.2f,%llu,%.0f,%.4f,%.4f,%.4f,%.4f,%.4f,"
                "%.4f,%.4f,%.4f,%.4f,%llu,%.4f,%.2f,%.2f,%.2f,%llu,"
                "%llu,%.4f,%llu,%llu,%llu,%.3f,%llu,%llu,%llu,%s\n",
                bench_name.c_str(), algoKindName(cell.algo),
                cell.threads, cell.seconds,
                static_cast<unsigned long long>(cell.ops),
                cell.ops / cell.seconds, s.conflictAbortsPerOp(),
                s.capacityAbortsPerOp(), s.restartsPerSlowPath(),
                s.slowPathRatio(), s.prefixSuccessRatio(),
                s.postfixSuccessRatio(), s.injectedAbortsPerOp(),
                s.subscriptionAbortsPerOp(), attempts_per_op,
                static_cast<unsigned long long>(
                    s.get(Counter::kKillSwitchActivations)),
                bypass_ratio,
                cell.latency.percentileNs(50) / 1000.0,
                cell.latency.percentileNs(99) / 1000.0,
                cell.latency.maxNs() / 1000.0,
                static_cast<unsigned long long>(
                    s.get(Counter::kStallsDetected)),
                static_cast<unsigned long long>(
                    s.get(Counter::kIrrevocableUpgrades)),
                s.accessesPerOp(),
                static_cast<unsigned long long>(cell.crashesInjected),
                static_cast<unsigned long long>(cell.recordsReplayed),
                static_cast<unsigned long long>(cell.recordsDiscarded),
                cell.recoveryMs,
                static_cast<unsigned long long>(
                    s.get(Counter::kDeadlineExceeded)),
                static_cast<unsigned long long>(
                    s.get(Counter::kAdmissionShed)),
                static_cast<unsigned long long>(
                    s.get(Counter::kAdmissionQueuedTicks)),
                cell.verified ? "ok" : "FAIL");
    std::fflush(stdout);
}

namespace
{

CellResult
runCell(const WorkloadFactory &make, const BenchConfig &cfg,
        AlgoKind algo, unsigned threads)
{
    RuntimeConfig rt_cfg = cfg.runtime;
    rt_cfg.rngSeed = cfg.seed;
    TmRuntime rt(algo, rt_cfg);
    std::unique_ptr<Workload> workload = make();
    workload->setIrrevocablePct(cfg.irrevocablePct);

    {
        ThreadCtx &setup_ctx = rt.registerThread();
        workload->setup(rt, setup_ctx);
    }
    rt.resetStats(); // Exclude setup from the measured window.

    std::vector<ThreadCtx *> ctxs(threads);
    for (unsigned t = 0; t < threads; ++t)
        ctxs[t] = &rt.registerThread();

    std::atomic<bool> stop{false};
    std::vector<uint64_t> per_thread_ops(threads, 0);
    std::vector<LatencyHistogram> per_thread_lat(threads);
    SenseBarrier barrier(threads + 1);

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(cfg.seed * 1000003 + t * 7919 + 1);
            LatencyHistogram &lat = per_thread_lat[t];
            barrier.arriveAndWait();
            uint64_t ops = 0;
            using LatClock = std::chrono::steady_clock;
            while (!stop.load(std::memory_order_relaxed)) {
                auto op_start = LatClock::now();
                workload->runOp(rt, *ctxs[t], rng);
                auto delta = LatClock::now() - op_start;
                lat.record(static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        delta)
                        .count()));
                ++ops;
            }
            per_thread_ops[t] = ops;
        });
    }

    barrier.arriveAndWait();
    Timer timer;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg.seconds));
    stop.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    double elapsed = timer.elapsedSeconds();

    CellResult cell;
    cell.algo = algo;
    cell.threads = threads;
    cell.seconds = elapsed;
    cell.ops = 0;
    for (uint64_t n : per_thread_ops)
        cell.ops += n;
    for (const LatencyHistogram &h : per_thread_lat)
        cell.latency.merge(h);
    cell.stats = rt.stats();
    cell.verified = true;
    if (cfg.verify) {
        std::string why;
        cell.verified = workload->verify(rt, &why);
        if (!cell.verified)
            std::fprintf(stderr, "VERIFY FAILED: %s\n", why.c_str());
    }
    return cell;
}

double
throughputOf(const std::vector<CellResult> &cells, AlgoKind algo,
             unsigned threads)
{
    for (const CellResult &c : cells) {
        if (c.algo == algo && c.threads == threads && c.seconds > 0)
            return c.ops / c.seconds;
    }
    return 0.0;
}

double
conflictsOf(const std::vector<CellResult> &cells, AlgoKind algo,
            unsigned threads)
{
    for (const CellResult &c : cells) {
        if (c.algo == algo && c.threads == threads)
            return c.stats.conflictAbortsPerOp();
    }
    return 0.0;
}

} // namespace

std::vector<CellResult>
runBenchmark(const std::string &bench_name, const WorkloadFactory &make,
             const BenchConfig &cfg)
{
    printCsvHeader();
    std::vector<CellResult> cells;
    for (AlgoKind algo : cfg.algos) {
        for (int64_t threads : cfg.threads) {
            CellResult cell = runCell(make, cfg, algo,
                                      static_cast<unsigned>(threads));
            printCsvRow(bench_name, cell);
            cells.push_back(cell);
        }
    }

    // Headline summary (paper Sections 1.3 / 3.5-3.6): RH NOrec vs
    // Hybrid NOrec at the highest measured concurrency.
    bool have_rh = false, have_hy = false;
    for (AlgoKind a : cfg.algos) {
        have_rh |= (a == AlgoKind::kRhNOrec);
        have_hy |= (a == AlgoKind::kHybridNOrec);
    }
    if (have_rh && have_hy && !cfg.threads.empty()) {
        unsigned max_threads =
            static_cast<unsigned>(cfg.threads.back());
        double rh = throughputOf(cells, AlgoKind::kRhNOrec, max_threads);
        double hy =
            throughputOf(cells, AlgoKind::kHybridNOrec, max_threads);
        double rh_conf =
            conflictsOf(cells, AlgoKind::kRhNOrec, max_threads);
        double hy_conf =
            conflictsOf(cells, AlgoKind::kHybridNOrec, max_threads);
        std::printf("# summary %s @%u threads: "
                    "rh/hy throughput = %.2fx, "
                    "hy/rh HTM conflicts = %.2fx\n",
                    bench_name.c_str(), max_threads,
                    hy > 0 ? rh / hy : 0.0,
                    rh_conf > 0 ? hy_conf / rh_conf : 0.0);
    }
    return cells;
}

} // namespace bench
} // namespace rhtm
