/**
 * @file
 * Benchmark harness shared by every figure/table binary.
 *
 * Each binary reproduces one column of the paper's Figures 4-6: for
 * every (algorithm, thread count) cell it runs a timed window of the
 * workload and emits a CSV row with the throughput (figure row 1) and
 * the four analysis series (rows 2-5): HTM conflict/capacity aborts
 * per operation, slow-path restarts per slow-path, slow-path execution
 * ratio, and the RH prefix/postfix success ratios. A summary block
 * then prints the paper-style headline ratios (RH NOrec vs Hybrid
 * NOrec throughput and HTM-conflict reduction).
 */

#ifndef RHTM_BENCH_HARNESS_H
#define RHTM_BENCH_HARNESS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/stats/latency.h"
#include "src/util/cli.h"
#include "src/workloads/workload.h"

namespace rhtm
{
namespace bench
{

/** Factory building a fresh workload instance per cell. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** Sweep configuration, parsed from the common CLI flags. */
struct BenchConfig
{
    std::vector<int64_t> threads{1, 2, 4, 8};
    double seconds = 1.0;               //!< Timed window per cell.
    std::vector<AlgoKind> algos;        //!< Default: all six.
    RuntimeConfig runtime;              //!< Base runtime config.
    bool verify = true;                 //!< Check invariants per cell.
    uint64_t seed = 1;
    unsigned irrevocablePct = 0;        //!< Upgraded-op percentage.

    BenchConfig();
};

/**
 * Parse the common flags:
 *   --threads=1,2,4,8  --seconds=1.0  --algos=rh-norec,hy-norec
 *   --algos=all                (sweep every registered algorithm)
 *   --seed=N           --no-verify
 *   --ht-from=8 --ht-scale=2   (HyperThreading capacity model)
 *   --abort-prob=5e-4          (interrupt-style HTM abort injection)
 *   --stm-penalty=64           (instrumentation-cost model, cycles)
 *   --fault-schedule=NAME      (named chaos schedule, seeded by --seed)
 *   --stall-budget=N           (watchdog stall budget in wait ticks;
 *                               0 disables the watchdog)
 *   --cm=static|causeaware     (contention manager: legacy doubling
 *                               backoff vs cause-keyed randomized)
 *   --irrevocable-pct=N        (percent of ops upgraded to
 *                               irrevocability, workloads permitting)
 *   --read-filter=on|off --redo-index=on|off --ts-extension=on|off
 *   --group-commit=on|off      (commit-path campaign switches,
 *                               docs/COMMIT_PATH.md; the first three
 *                               default on, group commit defaults off)
 * Exits with a message on unknown algorithms or stray arguments.
 */
BenchConfig parseBenchConfig(const CliOptions &opts);

/** One cell's outcome. */
struct CellResult
{
    AlgoKind algo;
    unsigned threads;
    double seconds;
    uint64_t ops;
    StatsSummary stats;
    LatencyHistogram latency; //!< Per-operation latency (merged).

    // Persistence-overlay recovery counters (docs/PERSISTENCE.md);
    // zero for benches that run without the overlay.
    uint64_t crashesInjected = 0;
    uint64_t recordsReplayed = 0;
    uint64_t recordsDiscarded = 0;
    double recoveryMs = 0.0; //!< Total recovery replay time.

    bool verified;
};

/**
 * Run the full sweep for one benchmark and print the CSV plus the
 * headline-summary block to stdout.
 *
 * @param bench_name Name for the CSV's first column.
 * @param make Workload factory (fresh instance per cell).
 * @param cfg Sweep configuration.
 * @return All cell results (for binaries that post-process).
 */
std::vector<CellResult> runBenchmark(const std::string &bench_name,
                                     const WorkloadFactory &make,
                                     const BenchConfig &cfg);

/** Print the CSV header (called by runBenchmark; exposed for reuse). */
void printCsvHeader();

/** Print one CSV row. */
void printCsvRow(const std::string &bench_name, const CellResult &cell);

} // namespace bench
} // namespace rhtm

#endif // RHTM_BENCH_HARNESS_H
