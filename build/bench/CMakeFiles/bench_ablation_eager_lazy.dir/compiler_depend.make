# Empty compiler generated dependencies file for bench_ablation_eager_lazy.
# This may be replaced when dependencies are built.
