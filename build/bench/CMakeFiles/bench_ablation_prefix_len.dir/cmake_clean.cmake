file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prefix_len.dir/bench_ablation_prefix_len.cc.o"
  "CMakeFiles/bench_ablation_prefix_len.dir/bench_ablation_prefix_len.cc.o.d"
  "bench_ablation_prefix_len"
  "bench_ablation_prefix_len.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prefix_len.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
