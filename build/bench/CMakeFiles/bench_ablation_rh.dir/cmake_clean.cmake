file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rh.dir/bench_ablation_rh.cc.o"
  "CMakeFiles/bench_ablation_rh.dir/bench_ablation_rh.cc.o.d"
  "bench_ablation_rh"
  "bench_ablation_rh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
