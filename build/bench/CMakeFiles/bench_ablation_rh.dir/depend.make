# Empty dependencies file for bench_ablation_rh.
# This may be replaced when dependencies are built.
