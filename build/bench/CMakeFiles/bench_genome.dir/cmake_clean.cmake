file(REMOVE_RECURSE
  "CMakeFiles/bench_genome.dir/bench_genome.cc.o"
  "CMakeFiles/bench_genome.dir/bench_genome.cc.o.d"
  "bench_genome"
  "bench_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
