# Empty compiler generated dependencies file for bench_genome.
# This may be replaced when dependencies are built.
