file(REMOVE_RECURSE
  "CMakeFiles/bench_intruder.dir/bench_intruder.cc.o"
  "CMakeFiles/bench_intruder.dir/bench_intruder.cc.o.d"
  "bench_intruder"
  "bench_intruder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intruder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
