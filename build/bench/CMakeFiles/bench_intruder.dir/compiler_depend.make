# Empty compiler generated dependencies file for bench_intruder.
# This may be replaced when dependencies are built.
