file(REMOVE_RECURSE
  "CMakeFiles/bench_kmeans.dir/bench_kmeans.cc.o"
  "CMakeFiles/bench_kmeans.dir/bench_kmeans.cc.o.d"
  "bench_kmeans"
  "bench_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
