# Empty dependencies file for bench_kmeans.
# This may be replaced when dependencies are built.
