file(REMOVE_RECURSE
  "CMakeFiles/bench_labyrinth.dir/bench_labyrinth.cc.o"
  "CMakeFiles/bench_labyrinth.dir/bench_labyrinth.cc.o.d"
  "bench_labyrinth"
  "bench_labyrinth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_labyrinth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
