# Empty compiler generated dependencies file for bench_labyrinth.
# This may be replaced when dependencies are built.
