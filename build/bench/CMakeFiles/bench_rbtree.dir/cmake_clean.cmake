file(REMOVE_RECURSE
  "CMakeFiles/bench_rbtree.dir/bench_rbtree.cc.o"
  "CMakeFiles/bench_rbtree.dir/bench_rbtree.cc.o.d"
  "bench_rbtree"
  "bench_rbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
