# Empty compiler generated dependencies file for bench_rbtree.
# This may be replaced when dependencies are built.
