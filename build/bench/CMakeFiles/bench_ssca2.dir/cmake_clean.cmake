file(REMOVE_RECURSE
  "CMakeFiles/bench_ssca2.dir/bench_ssca2.cc.o"
  "CMakeFiles/bench_ssca2.dir/bench_ssca2.cc.o.d"
  "bench_ssca2"
  "bench_ssca2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssca2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
