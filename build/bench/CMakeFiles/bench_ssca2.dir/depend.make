# Empty dependencies file for bench_ssca2.
# This may be replaced when dependencies are built.
