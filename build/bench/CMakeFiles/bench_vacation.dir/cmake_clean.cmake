file(REMOVE_RECURSE
  "CMakeFiles/bench_vacation.dir/bench_vacation.cc.o"
  "CMakeFiles/bench_vacation.dir/bench_vacation.cc.o.d"
  "bench_vacation"
  "bench_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
