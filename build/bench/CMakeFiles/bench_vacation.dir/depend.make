# Empty dependencies file for bench_vacation.
# This may be replaced when dependencies are built.
