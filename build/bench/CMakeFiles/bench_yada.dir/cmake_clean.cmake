file(REMOVE_RECURSE
  "CMakeFiles/bench_yada.dir/bench_yada.cc.o"
  "CMakeFiles/bench_yada.dir/bench_yada.cc.o.d"
  "bench_yada"
  "bench_yada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
