# Empty compiler generated dependencies file for bench_yada.
# This may be replaced when dependencies are built.
