file(REMOVE_RECURSE
  "../lib/librhtm_bench_harness.a"
  "../lib/librhtm_bench_harness.pdb"
  "CMakeFiles/rhtm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/rhtm_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
