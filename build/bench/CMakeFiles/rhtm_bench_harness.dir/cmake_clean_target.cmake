file(REMOVE_RECURSE
  "../lib/librhtm_bench_harness.a"
)
