# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rhtm_bench_harness.
