# Empty dependencies file for rhtm_bench_harness.
# This may be replaced when dependencies are built.
