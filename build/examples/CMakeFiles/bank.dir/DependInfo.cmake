
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bank.cpp" "examples/CMakeFiles/bank.dir/bank.cpp.o" "gcc" "examples/CMakeFiles/bank.dir/bank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/structures/CMakeFiles/rhtm_structures.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rhtm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/rhtm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rhtm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/rhtm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/rhtm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rhtm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rhtm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
