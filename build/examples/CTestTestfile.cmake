# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank "/root/repo/build/examples/bank" "--transfers=5000")
set_tests_properties(example_bank PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/kv_store" "--ops=5000")
set_tests_properties(example_kv_store PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store_tl2 "/root/repo/build/examples/kv_store" "--ops=3000" "--algo=tl2")
set_tests_properties(example_kv_store_tl2 PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_filter "/root/repo/build/examples/packet_filter" "--packets=5000")
set_tests_properties(example_packet_filter PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
