file(REMOVE_RECURSE
  "CMakeFiles/rhtm_api.dir/runtime.cc.o"
  "CMakeFiles/rhtm_api.dir/runtime.cc.o.d"
  "librhtm_api.a"
  "librhtm_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
