file(REMOVE_RECURSE
  "librhtm_api.a"
)
