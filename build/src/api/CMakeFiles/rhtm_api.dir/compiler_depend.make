# Empty compiler generated dependencies file for rhtm_api.
# This may be replaced when dependencies are built.
