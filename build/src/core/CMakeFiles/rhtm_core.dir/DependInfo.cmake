
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hybrid_norec.cc" "src/core/CMakeFiles/rhtm_core.dir/hybrid_norec.cc.o" "gcc" "src/core/CMakeFiles/rhtm_core.dir/hybrid_norec.cc.o.d"
  "/root/repo/src/core/hybrid_norec_lazy.cc" "src/core/CMakeFiles/rhtm_core.dir/hybrid_norec_lazy.cc.o" "gcc" "src/core/CMakeFiles/rhtm_core.dir/hybrid_norec_lazy.cc.o.d"
  "/root/repo/src/core/lock_elision.cc" "src/core/CMakeFiles/rhtm_core.dir/lock_elision.cc.o" "gcc" "src/core/CMakeFiles/rhtm_core.dir/lock_elision.cc.o.d"
  "/root/repo/src/core/rh_norec.cc" "src/core/CMakeFiles/rhtm_core.dir/rh_norec.cc.o" "gcc" "src/core/CMakeFiles/rhtm_core.dir/rh_norec.cc.o.d"
  "/root/repo/src/core/rh_tl2.cc" "src/core/CMakeFiles/rhtm_core.dir/rh_tl2.cc.o" "gcc" "src/core/CMakeFiles/rhtm_core.dir/rh_tl2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/htm/CMakeFiles/rhtm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rhtm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rhtm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
