file(REMOVE_RECURSE
  "CMakeFiles/rhtm_core.dir/hybrid_norec.cc.o"
  "CMakeFiles/rhtm_core.dir/hybrid_norec.cc.o.d"
  "CMakeFiles/rhtm_core.dir/hybrid_norec_lazy.cc.o"
  "CMakeFiles/rhtm_core.dir/hybrid_norec_lazy.cc.o.d"
  "CMakeFiles/rhtm_core.dir/lock_elision.cc.o"
  "CMakeFiles/rhtm_core.dir/lock_elision.cc.o.d"
  "CMakeFiles/rhtm_core.dir/rh_norec.cc.o"
  "CMakeFiles/rhtm_core.dir/rh_norec.cc.o.d"
  "CMakeFiles/rhtm_core.dir/rh_tl2.cc.o"
  "CMakeFiles/rhtm_core.dir/rh_tl2.cc.o.d"
  "librhtm_core.a"
  "librhtm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
