file(REMOVE_RECURSE
  "librhtm_core.a"
)
