# Empty compiler generated dependencies file for rhtm_core.
# This may be replaced when dependencies are built.
