file(REMOVE_RECURSE
  "CMakeFiles/rhtm_htm.dir/htm_engine.cc.o"
  "CMakeFiles/rhtm_htm.dir/htm_engine.cc.o.d"
  "CMakeFiles/rhtm_htm.dir/htm_txn.cc.o"
  "CMakeFiles/rhtm_htm.dir/htm_txn.cc.o.d"
  "librhtm_htm.a"
  "librhtm_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
