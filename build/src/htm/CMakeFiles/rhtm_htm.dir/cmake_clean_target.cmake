file(REMOVE_RECURSE
  "librhtm_htm.a"
)
