# Empty dependencies file for rhtm_htm.
# This may be replaced when dependencies are built.
