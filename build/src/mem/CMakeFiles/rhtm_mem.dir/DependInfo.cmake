
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/epoch.cc" "src/mem/CMakeFiles/rhtm_mem.dir/epoch.cc.o" "gcc" "src/mem/CMakeFiles/rhtm_mem.dir/epoch.cc.o.d"
  "/root/repo/src/mem/memory_manager.cc" "src/mem/CMakeFiles/rhtm_mem.dir/memory_manager.cc.o" "gcc" "src/mem/CMakeFiles/rhtm_mem.dir/memory_manager.cc.o.d"
  "/root/repo/src/mem/pool_allocator.cc" "src/mem/CMakeFiles/rhtm_mem.dir/pool_allocator.cc.o" "gcc" "src/mem/CMakeFiles/rhtm_mem.dir/pool_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rhtm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
