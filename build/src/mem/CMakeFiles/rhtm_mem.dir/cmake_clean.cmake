file(REMOVE_RECURSE
  "CMakeFiles/rhtm_mem.dir/epoch.cc.o"
  "CMakeFiles/rhtm_mem.dir/epoch.cc.o.d"
  "CMakeFiles/rhtm_mem.dir/memory_manager.cc.o"
  "CMakeFiles/rhtm_mem.dir/memory_manager.cc.o.d"
  "CMakeFiles/rhtm_mem.dir/pool_allocator.cc.o"
  "CMakeFiles/rhtm_mem.dir/pool_allocator.cc.o.d"
  "librhtm_mem.a"
  "librhtm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
