file(REMOVE_RECURSE
  "librhtm_mem.a"
)
