# Empty compiler generated dependencies file for rhtm_mem.
# This may be replaced when dependencies are built.
