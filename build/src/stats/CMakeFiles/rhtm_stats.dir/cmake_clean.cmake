file(REMOVE_RECURSE
  "CMakeFiles/rhtm_stats.dir/stats.cc.o"
  "CMakeFiles/rhtm_stats.dir/stats.cc.o.d"
  "librhtm_stats.a"
  "librhtm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
