file(REMOVE_RECURSE
  "librhtm_stats.a"
)
