# Empty dependencies file for rhtm_stats.
# This may be replaced when dependencies are built.
