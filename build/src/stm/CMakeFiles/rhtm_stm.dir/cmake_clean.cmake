file(REMOVE_RECURSE
  "CMakeFiles/rhtm_stm.dir/norec.cc.o"
  "CMakeFiles/rhtm_stm.dir/norec.cc.o.d"
  "CMakeFiles/rhtm_stm.dir/tl2.cc.o"
  "CMakeFiles/rhtm_stm.dir/tl2.cc.o.d"
  "librhtm_stm.a"
  "librhtm_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
