file(REMOVE_RECURSE
  "librhtm_stm.a"
)
