# Empty compiler generated dependencies file for rhtm_stm.
# This may be replaced when dependencies are built.
