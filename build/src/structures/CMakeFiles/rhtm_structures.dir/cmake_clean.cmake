file(REMOVE_RECURSE
  "CMakeFiles/rhtm_structures.dir/tx_hashmap.cc.o"
  "CMakeFiles/rhtm_structures.dir/tx_hashmap.cc.o.d"
  "CMakeFiles/rhtm_structures.dir/tx_list.cc.o"
  "CMakeFiles/rhtm_structures.dir/tx_list.cc.o.d"
  "CMakeFiles/rhtm_structures.dir/tx_queue.cc.o"
  "CMakeFiles/rhtm_structures.dir/tx_queue.cc.o.d"
  "CMakeFiles/rhtm_structures.dir/tx_rbtree.cc.o"
  "CMakeFiles/rhtm_structures.dir/tx_rbtree.cc.o.d"
  "librhtm_structures.a"
  "librhtm_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
