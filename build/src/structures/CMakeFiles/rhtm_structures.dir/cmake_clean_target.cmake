file(REMOVE_RECURSE
  "librhtm_structures.a"
)
