# Empty compiler generated dependencies file for rhtm_structures.
# This may be replaced when dependencies are built.
