file(REMOVE_RECURSE
  "CMakeFiles/rhtm_util.dir/cli.cc.o"
  "CMakeFiles/rhtm_util.dir/cli.cc.o.d"
  "librhtm_util.a"
  "librhtm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
