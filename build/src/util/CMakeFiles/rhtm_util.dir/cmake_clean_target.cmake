file(REMOVE_RECURSE
  "librhtm_util.a"
)
