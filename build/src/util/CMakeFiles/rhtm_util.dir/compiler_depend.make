# Empty compiler generated dependencies file for rhtm_util.
# This may be replaced when dependencies are built.
