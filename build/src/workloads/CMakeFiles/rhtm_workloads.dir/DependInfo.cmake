
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/genome.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/genome.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/genome.cc.o.d"
  "/root/repo/src/workloads/intruder.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/intruder.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/intruder.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/labyrinth.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/labyrinth.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/labyrinth.cc.o.d"
  "/root/repo/src/workloads/rbtree_bench.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/rbtree_bench.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/rbtree_bench.cc.o.d"
  "/root/repo/src/workloads/ssca2.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/ssca2.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/ssca2.cc.o.d"
  "/root/repo/src/workloads/vacation.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/vacation.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/vacation.cc.o.d"
  "/root/repo/src/workloads/yada.cc" "src/workloads/CMakeFiles/rhtm_workloads.dir/yada.cc.o" "gcc" "src/workloads/CMakeFiles/rhtm_workloads.dir/yada.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/structures/CMakeFiles/rhtm_structures.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/rhtm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rhtm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/rhtm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/rhtm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rhtm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rhtm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rhtm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
