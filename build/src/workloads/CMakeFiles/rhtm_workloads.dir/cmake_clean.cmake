file(REMOVE_RECURSE
  "CMakeFiles/rhtm_workloads.dir/genome.cc.o"
  "CMakeFiles/rhtm_workloads.dir/genome.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/intruder.cc.o"
  "CMakeFiles/rhtm_workloads.dir/intruder.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/kmeans.cc.o"
  "CMakeFiles/rhtm_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/labyrinth.cc.o"
  "CMakeFiles/rhtm_workloads.dir/labyrinth.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/rbtree_bench.cc.o"
  "CMakeFiles/rhtm_workloads.dir/rbtree_bench.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/ssca2.cc.o"
  "CMakeFiles/rhtm_workloads.dir/ssca2.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/vacation.cc.o"
  "CMakeFiles/rhtm_workloads.dir/vacation.cc.o.d"
  "CMakeFiles/rhtm_workloads.dir/yada.cc.o"
  "CMakeFiles/rhtm_workloads.dir/yada.cc.o.d"
  "librhtm_workloads.a"
  "librhtm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhtm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
