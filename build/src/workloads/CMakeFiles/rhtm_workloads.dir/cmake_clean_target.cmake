file(REMOVE_RECURSE
  "librhtm_workloads.a"
)
