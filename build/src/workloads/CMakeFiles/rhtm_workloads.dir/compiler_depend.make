# Empty compiler generated dependencies file for rhtm_workloads.
# This may be replaced when dependencies are built.
