
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/hybrid_lazy_whitebox_test.cc" "tests/CMakeFiles/core_tests.dir/core/hybrid_lazy_whitebox_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hybrid_lazy_whitebox_test.cc.o.d"
  "/root/repo/tests/core/hybrid_whitebox_test.cc" "tests/CMakeFiles/core_tests.dir/core/hybrid_whitebox_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hybrid_whitebox_test.cc.o.d"
  "/root/repo/tests/core/retry_policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/retry_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/retry_policy_test.cc.o.d"
  "/root/repo/tests/core/rh_tl2_whitebox_test.cc" "tests/CMakeFiles/core_tests.dir/core/rh_tl2_whitebox_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rh_tl2_whitebox_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/rhtm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rhtm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/rhtm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/rhtm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rhtm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rhtm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rhtm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
