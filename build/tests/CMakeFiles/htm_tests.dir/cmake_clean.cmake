file(REMOVE_RECURSE
  "CMakeFiles/htm_tests.dir/htm/fixed_table_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/fixed_table_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/htm_property_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/htm_property_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/htm_txn_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/htm_txn_test.cc.o.d"
  "htm_tests"
  "htm_tests.pdb"
  "htm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
