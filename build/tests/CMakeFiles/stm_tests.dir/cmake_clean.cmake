file(REMOVE_RECURSE
  "CMakeFiles/stm_tests.dir/stm/stm_whitebox_test.cc.o"
  "CMakeFiles/stm_tests.dir/stm/stm_whitebox_test.cc.o.d"
  "stm_tests"
  "stm_tests.pdb"
  "stm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
