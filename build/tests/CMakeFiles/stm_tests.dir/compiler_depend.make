# Empty compiler generated dependencies file for stm_tests.
# This may be replaced when dependencies are built.
