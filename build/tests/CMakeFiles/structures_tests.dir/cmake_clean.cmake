file(REMOVE_RECURSE
  "CMakeFiles/structures_tests.dir/structures/containers_test.cc.o"
  "CMakeFiles/structures_tests.dir/structures/containers_test.cc.o.d"
  "CMakeFiles/structures_tests.dir/structures/rbtree_test.cc.o"
  "CMakeFiles/structures_tests.dir/structures/rbtree_test.cc.o.d"
  "structures_tests"
  "structures_tests.pdb"
  "structures_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structures_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
