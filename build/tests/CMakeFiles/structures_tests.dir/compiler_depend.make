# Empty compiler generated dependencies file for structures_tests.
# This may be replaced when dependencies are built.
