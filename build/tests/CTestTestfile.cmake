# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/mem_tests[1]_include.cmake")
include("/root/repo/build/tests/htm_tests[1]_include.cmake")
include("/root/repo/build/tests/api_tests[1]_include.cmake")
include("/root/repo/build/tests/stm_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/structures_tests[1]_include.cmake")
include("/root/repo/build/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
