/**
 * @file
 * Bank: concurrent money transfers with audits, demonstrating
 * composability (multi-account transactions), opacity (auditors see a
 * constant total inside their transaction) and privatization (an
 * account is closed transactionally, then settled with plain reads).
 *
 * Build & run:  ./build/examples/bank [--threads=4] [--accounts=64]
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "src/util/cli.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    const unsigned threads =
        static_cast<unsigned>(opts.getInt("threads", 4));
    const unsigned n_accounts =
        static_cast<unsigned>(opts.getInt("accounts", 64));
    const unsigned transfers =
        static_cast<unsigned>(opts.getInt("transfers", 40000));
    constexpr uint64_t kOpening = 1000;

    TmRuntime rt(AlgoKind::kRhNOrec);

    struct alignas(64) Account
    {
        uint64_t balance;
        uint64_t open; // 1 while the account accepts transfers.
    };
    std::vector<Account> accounts(n_accounts);
    for (auto &a : accounts) {
        a.balance = kOpening;
        a.open = 1;
    }

    std::atomic<uint64_t> audits_ok{0}, audits_bad{0};
    std::atomic<uint64_t> settled_total{0};

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            ThreadCtx &ctx = rt.registerThread();
            Rng rng(t * 31 + 7);
            for (unsigned i = 0; i < transfers; ++i) {
                unsigned from = rng.nextBounded(n_accounts);
                unsigned to = rng.nextBounded(n_accounts);
                unsigned roll = rng.nextBounded(100);
                if (roll < 90) {
                    // Transfer: atomic across two accounts.
                    rt.run(ctx, [&](Txn &tx) {
                        if (from == to)
                            return;
                        if (!tx.load(&accounts[from].open) ||
                            !tx.load(&accounts[to].open)) {
                            return; // Closed account: no transfer.
                        }
                        uint64_t f = tx.load(&accounts[from].balance);
                        if (f == 0)
                            return;
                        uint64_t amount = 1 + rng.nextBounded(f);
                        tx.store(&accounts[from].balance, f - amount);
                        tx.store(&accounts[to].balance,
                                 tx.load(&accounts[to].balance) +
                                     amount);
                    });
                } else {
                    // Audit: money only moves between accounts, so the
                    // sum over all balances is constant -- and must
                    // already look constant *inside* the transaction
                    // (opacity: no half-finished transfer is visible).
                    uint64_t sum = 0;
                    rt.run(ctx,
                           [&](Txn &tx) {
                               sum = 0;
                               for (auto &a : accounts)
                                   sum += tx.load(&a.balance);
                           },
                           TxnHint::kReadOnly);
                    if (sum == uint64_t(n_accounts) * kOpening)
                        audits_ok.fetch_add(1);
                    else
                        audits_bad.fetch_add(1);
                }
            }

        });
    }

    // Privatization: while workers still run, the main thread closes
    // one account transactionally, then settles it with plain reads --
    // safe because after the closing transaction commits, no transfer
    // can touch the account (they check `open` in the same
    // transaction).
    {
        ThreadCtx &main_ctx = rt.registerThread();
        unsigned victim = n_accounts / 2;
        rt.run(main_ctx, [&](Txn &tx) {
            tx.store(&accounts[victim].open, 0);
        });
        uint64_t residual = rt.peek(&accounts[victim].balance);
        std::printf("settled account %u holding %llu\n", victim,
                    static_cast<unsigned long long>(residual));
        // Reopen it with the same balance so concurrent audits keep
        // seeing the full opening total; the settled money "returns".
        rt.run(main_ctx, [&](Txn &tx) {
            tx.store(&accounts[victim].open, 1);
        });
        (void)settled_total;
    }

    for (auto &w : workers)
        w.join();

    uint64_t grand = 0;
    for (auto &a : accounts)
        grand += a.balance;
    std::printf("grand total:    %llu (expected %llu)\n",
                static_cast<unsigned long long>(grand),
                static_cast<unsigned long long>(uint64_t(n_accounts) *
                                                kOpening));
    std::printf("audits ok/bad:  %llu/%llu\n",
                static_cast<unsigned long long>(audits_ok.load()),
                static_cast<unsigned long long>(audits_bad.load()));
    bool pass = grand == uint64_t(n_accounts) * kOpening &&
                audits_bad.load() == 0;
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
