/**
 * @file
 * KV store: an ordered key-value service built on the transactional
 * red-black tree, with composed multi-key operations (atomic moves,
 * range-less snapshots) and an algorithm switch -- the same store runs
 * on any of the six TM algorithms.
 *
 * Build & run:  ./build/examples/kv_store [--algo=rh-norec]
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "src/structures/tx_rbtree.h"
#include "src/util/cli.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    AlgoKind kind = AlgoKind::kRhNOrec;
    std::string algo_name = opts.getString("algo", "rh-norec");
    if (!algoKindFromString(algo_name, kind)) {
        std::fprintf(stderr, "unknown --algo=%s\n", algo_name.c_str());
        return 2;
    }
    const unsigned threads =
        static_cast<unsigned>(opts.getInt("threads", 4));
    const unsigned ops =
        static_cast<unsigned>(opts.getInt("ops", 30000));
    constexpr int64_t kKeys = 4096;

    TmRuntime rt(kind);
    TxRbTree store;

    // Seed: every key starts holding its own value.
    {
        ThreadCtx &ctx = rt.registerThread();
        for (int64_t k = 0; k < kKeys; ++k)
            rt.run(ctx, [&](Txn &tx) { store.put(tx, k, k); });
    }

    std::atomic<uint64_t> moves{0}, lookups{0}, misses{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            ThreadCtx &ctx = rt.registerThread();
            Rng rng(t + 1);
            for (unsigned i = 0; i < ops; ++i) {
                int64_t a = static_cast<int64_t>(rng.nextBounded(kKeys));
                int64_t b = static_cast<int64_t>(rng.nextBounded(kKeys));
                if (rng.nextPercent(25)) {
                    // Composed operation: atomically move a's value
                    // onto key b (delete + insert in one transaction).
                    bool moved = false;
                    rt.run(ctx, [&](Txn &tx) {
                        moved = false;
                        int64_t v;
                        if (a == b || !store.get(tx, a, v))
                            return;
                        store.remove(tx, a);
                        store.put(tx, b, v);
                        moved = true;
                    });
                    if (moved)
                        moves.fetch_add(1);
                } else {
                    int64_t v;
                    bool hit = false;
                    rt.run(ctx,
                           [&](Txn &tx) { hit = store.get(tx, a, v); },
                           TxnHint::kReadOnly);
                    lookups.fetch_add(1);
                    if (!hit)
                        misses.fetch_add(1);
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    // Moves conserve the *number of values* only when the target key
    // was empty; overwrites shrink the store. The structural invariant
    // always holds.
    std::string why;
    bool valid = store.validateStructure(&why);
    std::printf("algorithm:   %s\n", rt.algoName());
    std::printf("store size:  %llu (seeded %lld)\n",
                static_cast<unsigned long long>(store.sizeUnsync()),
                static_cast<long long>(kKeys));
    std::printf("moves:       %llu\n",
                static_cast<unsigned long long>(moves.load()));
    std::printf("lookups:     %llu (%llu misses)\n",
                static_cast<unsigned long long>(lookups.load()),
                static_cast<unsigned long long>(misses.load()));
    std::printf("tree valid:  %s%s%s\n", valid ? "yes" : "NO (",
                valid ? "" : why.c_str(), valid ? "" : ")");
    std::printf("%s", rt.stats().toString().c_str());
    return valid ? 0 : 1;
}
