/**
 * @file
 * Packet filter: a produce/consume pipeline in the spirit of the
 * paper's Intruder motivation -- producers push packets into a shared
 * transactional queue, consumers pop them, update per-source counters
 * in a transactional hash map, and quarantine noisy sources atomically
 * once they cross a threshold.
 *
 * Build & run:  ./build/examples/packet_filter [--packets=20000]
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_queue.h"
#include "src/util/cli.h"

int
main(int argc, char **argv)
{
    using namespace rhtm;
    CliOptions opts(argc, argv);
    const unsigned producers =
        static_cast<unsigned>(opts.getInt("producers", 2));
    const unsigned consumers =
        static_cast<unsigned>(opts.getInt("consumers", 2));
    const unsigned packets_per_producer =
        static_cast<unsigned>(opts.getInt("packets", 20000));
    constexpr uint64_t kSources = 64;
    constexpr uint64_t kQuarantineAt = 500;

    TmRuntime rt(AlgoKind::kRhNOrec);
    TxQueue wire;
    TxHashMap per_source(8);   // source -> packets seen.
    TxHashMap quarantined(8);  // source -> count at quarantine time.

    std::atomic<uint64_t> produced{0}, consumed{0};
    std::atomic<bool> producers_done{false};

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            ThreadCtx &ctx = rt.registerThread();
            Rng rng(p * 131 + 17);
            for (unsigned i = 0; i < packets_per_producer; ++i) {
                // Skewed sources: a few are chatty.
                uint64_t src = rng.nextPercent(30)
                                   ? rng.nextBounded(4)
                                   : rng.nextBounded(kSources);
                rt.run(ctx, [&](Txn &tx) { wire.push(tx, src); });
                produced.fetch_add(1);
            }
        });
    }
    for (unsigned c = 0; c < consumers; ++c) {
        threads.emplace_back([&] {
            ThreadCtx &ctx = rt.registerThread();
            for (;;) {
                bool got = false;
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t src;
                    got = wire.pop(tx, src);
                    if (!got)
                        return;
                    // Count and quarantine in the same transaction:
                    // the threshold crossing is detected exactly once
                    // no matter how consumers interleave.
                    uint64_t n = per_source.addTo(tx, src, 1);
                    if (n == kQuarantineAt)
                        quarantined.putIfAbsent(tx, src, n);
                });
                if (got) {
                    consumed.fetch_add(1);
                } else if (producers_done.load()) {
                    break; // Wire drained and no more producers.
                }
            }
        });
    }

    for (unsigned p = 0; p < producers; ++p)
        threads[p].join();
    producers_done.store(true);
    for (unsigned c = 0; c < consumers; ++c)
        threads[producers + c].join();

    // Verification: every packet was counted exactly once, and every
    // source that crossed the threshold is quarantined exactly once.
    uint64_t counted = 0;
    per_source.forEachUnsync([&](uint64_t, uint64_t n) { counted += n; });
    uint64_t over_threshold = 0;
    per_source.forEachUnsync([&](uint64_t, uint64_t n) {
        if (n >= kQuarantineAt)
            ++over_threshold;
    });
    bool pass = produced.load() == consumed.load() &&
                counted == consumed.load() &&
                quarantined.sizeUnsync() == over_threshold;

    std::printf("produced:    %llu\n",
                static_cast<unsigned long long>(produced.load()));
    std::printf("consumed:    %llu\n",
                static_cast<unsigned long long>(consumed.load()));
    std::printf("counted:     %llu\n",
                static_cast<unsigned long long>(counted));
    std::printf("quarantined: %llu (expected %llu)\n",
                static_cast<unsigned long long>(quarantined.sizeUnsync()),
                static_cast<unsigned long long>(over_threshold));
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
