/**
 * @file
 * Quickstart: the smallest complete RH NOrec program. Four threads
 * increment a set of shared counters transactionally; the total is
 * exact because every increment is one atomic transaction.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "src/api/runtime.h"

int
main()
{
    using namespace rhtm;

    // 1. Pick an algorithm. kRhNOrec is the paper's contribution; the
    //    same program runs unchanged on any AlgoKind.
    TmRuntime rt(AlgoKind::kRhNOrec);

    // 2. Shared state: plain 8-byte-aligned words.
    constexpr unsigned kCounters = 8;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIncrements = 50000;
    alignas(64) static uint64_t counters[kCounters] = {};

    // 3. Each thread registers once, then runs transactions.
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&rt, t] {
            ThreadCtx &ctx = rt.registerThread();
            Rng rng(t + 1);
            for (unsigned i = 0; i < kIncrements; ++i) {
                uint64_t slot = rng.nextBounded(kCounters);
                rt.run(ctx, [&](Txn &tx) {
                    // All shared accesses go through the handle.
                    uint64_t v = tx.load(&counters[slot]);
                    tx.store(&counters[slot], v + 1);
                });
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // 4. Quiescent verification.
    uint64_t total = 0;
    for (uint64_t c : counters)
        total += c;
    std::printf("algorithm: %s\n", rt.algoName());
    std::printf("total:     %llu (expected %u)\n",
                static_cast<unsigned long long>(total),
                kThreads * kIncrements);

    // 5. The paper's analysis counters come for free.
    StatsSummary stats = rt.stats();
    std::printf("%s", stats.toString().c_str());
    return total == uint64_t(kThreads) * kIncrements ? 0 : 1;
}
