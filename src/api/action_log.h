/**
 * @file
 * Deferred commit/abort action hooks with NOrec-correct ordering.
 *
 * A transaction body may register handlers that must run exactly once,
 * outside the transaction: onCommit handlers after the commit is
 * linearized and every coordination lock (serial/clock/orec) has been
 * dropped, onAbort handlers after the attempt's rollback completes.
 * The memory manager's alloc/free journal is folded in as stage zero
 * of both paths, so this log is the single ordering authority for
 * everything that happens "after" a transaction (docs/LIFECYCLE.md).
 */

#ifndef RHTM_API_ACTION_LOG_H
#define RHTM_API_ACTION_LOG_H

#include <functional>
#include <vector>

#include "src/mem/memory_manager.h"
#include "src/stats/stats.h"

namespace rhtm
{

/**
 * Per-thread log of deferred actions for the transaction in flight.
 *
 * Ordering contract (see docs/LIFECYCLE.md):
 *  - runCommit: the memory journal commits first (frees retire,
 *    allocations become permanent), then user commit handlers run in
 *    FIFO registration order. The caller must have already dropped
 *    every TM lock, so a handler may perform I/O, take OS locks, or
 *    even start new transactions.
 *  - runAbort: the memory journal rolls back first (allocations
 *    retire, frees are dropped), then user abort handlers run in LIFO
 *    registration order -- compensation unwinds like a scope stack.
 *    Abort handlers run once per aborted *attempt* (a restarted body
 *    re-registers its handlers when it re-executes).
 *
 * Handlers must not throw; an escaping handler exception would unwind
 * the retry loop in a half-stepped state, so it is swallowed here
 * (the handler slot still counts as run).
 *
 * Single-threaded by construction: owned by one ThreadCtx.
 */
class ActionLog
{
  public:
    /** Queue @p fn to run after the transaction commits (FIFO). */
    void
    registerCommit(std::function<void()> fn)
    {
        commit_.push_back(std::move(fn));
    }

    /** Queue @p fn to run if the attempt aborts (LIFO). */
    void
    registerAbort(std::function<void()> fn)
    {
        abort_.push_back(std::move(fn));
    }

    /**
     * The transaction committed: commit the memory journal, then run
     * the commit handlers FIFO. Clears both lists.
     */
    void
    runCommit(ThreadMem &mem, ThreadStats *stats)
    {
        mem.onCommit();
        for (auto &fn : commit_) {
            if (stats)
                stats->inc(Counter::kCommitActionsRun);
            try {
                fn();
            } catch (...) {
                // Deferred handlers are noexcept by contract; a late
                // throw has nothing left to abort, so it is dropped.
            }
        }
        commit_.clear();
        abort_.clear();
    }

    /**
     * The attempt aborted (restart or user exception): roll back the
     * memory journal, then run the abort handlers LIFO. Clears both
     * lists.
     */
    void
    runAbort(ThreadMem &mem, ThreadStats *stats)
    {
        mem.onAbort();
        for (auto it = abort_.rbegin(); it != abort_.rend(); ++it) {
            if (stats)
                stats->inc(Counter::kAbortActionsRun);
            try {
                (*it)();
            } catch (...) {
            }
        }
        commit_.clear();
        abort_.clear();
    }

    /** Drop everything without running (fresh top-level transaction). */
    void
    clear()
    {
        commit_.clear();
        abort_.clear();
    }

    /** Queued commit handlers (tests). */
    size_t pendingCommit() const { return commit_.size(); }

    /** Queued abort handlers (tests). */
    size_t pendingAbort() const { return abort_.size(); }

  private:
    std::vector<std::function<void()>> commit_;
    std::vector<std::function<void()>> abort_;
};

} // namespace rhtm

#endif // RHTM_API_ACTION_LOG_H
