#include "src/api/runtime.h"

#include "src/core/hybrid_norec.h"
#include "src/core/hybrid_norec_lazy.h"
#include "src/core/lock_elision.h"
#include "src/core/rh_norec.h"
#include "src/core/rh_tl2.h"
#include "src/stm/norec.h"

namespace rhtm
{

const char *
algoKindName(AlgoKind kind)
{
    switch (kind) {
      case AlgoKind::kLockElision: return "lock-elision";
      case AlgoKind::kNOrec: return "norec";
      case AlgoKind::kNOrecLazy: return "norec-lazy";
      case AlgoKind::kTl2: return "tl2";
      case AlgoKind::kHybridNOrec: return "hy-norec";
      case AlgoKind::kHybridNOrecLazy: return "hy-norec-lazy";
      case AlgoKind::kRhNOrec: return "rh-norec";
      case AlgoKind::kRhTl2: return "rh-tl2";
    }
    return "unknown";
}

bool
algoKindFromString(const std::string &name, AlgoKind &out)
{
    for (AlgoKind k : allAlgoKinds()) {
        if (name == algoKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const std::vector<AlgoKind> &
allAlgoKinds()
{
    static const std::vector<AlgoKind> kinds = {
        AlgoKind::kLockElision,     AlgoKind::kNOrec,
        AlgoKind::kNOrecLazy,       AlgoKind::kTl2,
        AlgoKind::kHybridNOrec,     AlgoKind::kHybridNOrecLazy,
        AlgoKind::kRhNOrec,         AlgoKind::kRhTl2,
    };
    return kinds;
}

TmRuntime::TmRuntime(AlgoKind kind, RuntimeConfig cfg)
    : kind_(kind), cfg_(cfg), eng_(cfg.htm)
{
    if (kind_ == AlgoKind::kTl2)
        tl2_ = std::make_unique<Tl2Globals>();
    if (kind_ == AlgoKind::kRhTl2)
        rhTl2_ = std::make_unique<RhTl2Globals>();
    if (cfg_.persist.enabled) {
        if (cfg_.persist.seed == 0)
            cfg_.persist.seed = cfg_.rngSeed;
        nvm_ = std::make_unique<NvmSim>(cfg_.persist);
    }
    if (cfg_.admission.enabled)
        gate_ = std::make_unique<AdmissionGate>(cfg_.admission);
    domain_.admission = gate_.get();
}

TmRuntime::~TmRuntime() = default;

std::unique_ptr<TxSession>
TmRuntime::makeSession(ThreadCtx &ctx)
{
    ThreadStats *stats = &ctx.stats_;
    // Contention-manager seed: per-thread (determinism requires each
    // thread's backoff jitter to be independent of the others), derived
    // the same way as the HtmTxn seed.
    uint64_t cmSeed = cfg_.rngSeed + ctx.tid();
    TxPersist *persist = ctx.persist_.get();
    switch (kind_) {
      case AlgoKind::kLockElision:
        return std::make_unique<LockElisionSession>(
            eng_, domain_, *ctx.htm_, stats, cfg_.retry, cmSeed,
            persist);
      case AlgoKind::kNOrec:
        return std::make_unique<NOrecEagerSession>(
            domain_, stats, cfg_.stmAccessPenalty, persist,
            &cfg_.retry);
      case AlgoKind::kNOrecLazy:
        return std::make_unique<NOrecLazySession>(
            domain_, stats, cfg_.stmAccessPenalty, persist);
      case AlgoKind::kTl2:
        return std::make_unique<Tl2Session>(*tl2_, stats, ctx.tid(),
                                            cfg_.stmAccessPenalty,
                                            persist);
      case AlgoKind::kHybridNOrec:
        return std::make_unique<HybridNOrecSession>(
            eng_, domain_, *ctx.htm_, stats, cfg_.retry,
            cfg_.stmAccessPenalty, cmSeed, persist);
      case AlgoKind::kHybridNOrecLazy:
        return std::make_unique<HybridNOrecLazySession>(
            eng_, domain_, *ctx.htm_, stats, cfg_.retry,
            cfg_.stmAccessPenalty, cmSeed, persist);
      case AlgoKind::kRhNOrec:
        return std::make_unique<RhNOrecSession>(
            eng_, domain_, *ctx.htm_, stats, cfg_.retry, cfg_.rh,
            cfg_.stmAccessPenalty, cmSeed, persist);
      case AlgoKind::kRhTl2:
        return std::make_unique<RhTl2Session>(
            eng_, domain_, *rhTl2_, *ctx.htm_, stats, cfg_.retry,
            cfg_.stmAccessPenalty, cmSeed, persist);
    }
    return nullptr;
}

ThreadCtx &
TmRuntime::registerThread()
{
    std::lock_guard<std::mutex> guard(registerLock_);
    ThreadMem &tm = mem_.registerThread();
    auto ctx =
        std::unique_ptr<ThreadCtx>(new ThreadCtx(tm.tid(), &tm));
    if (!cfg_.fault.empty()) {
        FaultPlan plan = cfg_.fault;
        if (plan.seed == 0)
            plan.seed = cfg_.rngSeed;
        ctx->fault_ =
            std::make_unique<FaultInjector>(plan, ctx->tid());
    }
    ctx->htm_ = std::make_unique<HtmTxn>(eng_, ctx->tid(), &ctx->stats_,
                                         cfg_.rngSeed + ctx->tid(),
                                         ctx->fault_.get());
    if (nvm_ != nullptr) {
        ctx->persist_ = std::make_unique<TxPersist>(
            nvm_.get(), ctx->fault_.get(), &ctx->stats_, ctx->tid());
    }
    ctx->session_ = makeSession(*ctx);
    ctx->session_->configureCommitPath(cfg_.commitPath);
    ctx->session_->attachGroupArena(&domain_.groupArena);
    ctx->deadline_.attachInjector(ctx->fault_.get());
    ctx->session_->attachDeadline(&ctx->deadline_);
    ctxs_.push_back(std::move(ctx));
    return *ctxs_.back();
}

StatsSummary
TmRuntime::stats() const
{
    // registerLock_ makes the ctxs_ walk safe against a concurrent
    // registerThread(); the counter reads themselves are the same
    // benign torn snapshot they always were.
    std::lock_guard<std::mutex> guard(registerLock_);
    StatsSummary summary;
    for (const auto &ctx : ctxs_)
        summary.accumulate(ctx->stats_);
    return summary;
}

void
TmRuntime::resetStats()
{
    std::lock_guard<std::mutex> guard(registerLock_);
    for (auto &ctx : ctxs_)
        ctx->stats_.reset();
}

void
TmRuntime::resetForTest()
{
    domain_.resetForTest();
    if (tl2_ != nullptr)
        tl2_->resetForTest();
    if (rhTl2_ != nullptr)
        rhTl2_->resetForTest();
    if (nvm_ != nullptr)
        nvm_->resetForTest();
    if (gate_ != nullptr)
        gate_->resetForTest();
    for (auto &ctx : ctxs_) {
        if (ctx->inTxn_) {
            // A scheduler-poisoned run unwound without reaching run()'s
            // cleanup; release the epoch slot it still occupies.
            ctx->inTxn_ = false;
            mem_.epochs().exitRegion(ctx->tid());
        }
        ctx->stats_.reset();
        ctx->actions_.clear();
        if (ctx->fault_ != nullptr)
            ctx->fault_->resetForTest();
        ctx->htm_->resetForTest();
        if (ctx->persist_ != nullptr)
            ctx->persist_->resetForTest();
        ctx->session_->resetForTest();
        ctx->deadline_.resetForTest();
        ctx->mem_->resetForTest();
    }
}

} // namespace rhtm
