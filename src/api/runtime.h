/**
 * @file
 * The TM runtime facade: algorithm selection, per-thread contexts, the
 * transaction retry loop, and statistics collection. This is the
 * library's main entry point (the role GCC's libitm played for the
 * paper's implementation).
 */

#ifndef RHTM_API_RUNTIME_H
#define RHTM_API_RUNTIME_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/action_log.h"
#include "src/api/tx_defs.h"
#include "src/api/txn.h"
#include "src/core/globals.h"
#include "src/core/retry_policy.h"
#include "src/fault/fault_injector.h"
#include "src/htm/htm_txn.h"
#include "src/mem/memory_manager.h"
#include "src/persist/nvm_sim.h"
#include "src/persist/tx_persist.h"
#include "src/stats/stats.h"
#include "src/core/rh_tl2.h"
#include "src/stm/tl2.h"

namespace rhtm
{

/** The TM algorithms evaluated by the paper (Section 3.1). */
enum class AlgoKind
{
    kLockElision, //!< HTM + global-lock fallback.
    kNOrec,       //!< Eager NOrec STM (all software).
    kNOrecLazy,   //!< Lazy NOrec STM (all software).
    kTl2,         //!< Eager TL2 STM (all software).
    kHybridNOrec, //!< Hybrid NOrec HyTM (eager slow path, as evaluated).
    kHybridNOrecLazy, //!< Hybrid NOrec with the lazy slow path.
    kRhNOrec,     //!< Reduced Hardware NOrec (this paper).
    kRhTl2,       //!< RH-TL2, the predecessor design (Section 1.2).
};

/** Canonical short name ("rh-norec", ...). */
const char *algoKindName(AlgoKind kind);

/**
 * Parse a short name back to a kind.
 * @return true on success.
 */
bool algoKindFromString(const std::string &name, AlgoKind &out);

/** All algorithm kinds, in the paper's presentation order. */
const std::vector<AlgoKind> &allAlgoKinds();

/** Everything configurable about a runtime instance. */
struct RuntimeConfig
{
    HtmConfig htm;      //!< Simulated-HTM model.
    RetryPolicy retry;  //!< Fallback/retry policy (Section 3.3).
    RhConfig rh;        //!< RH NOrec feature switches (Section 3.4).
    uint64_t rngSeed = 1;

    /**
     * Deterministic fault schedule (docs/FAULT_INJECTION.md). Each
     * registered thread gets its own injector built from this plan; an
     * empty plan injects nothing. If the plan's seed is 0 it inherits
     * rngSeed.
     */
    FaultPlan fault;

    /**
     * Simulated-NVM persistence overlay (docs/PERSISTENCE.md). When
     * enabled the runtime owns an NvmSim device, each thread gets a
     * TxPersist driver, slow-path commits run the durable seal/drain/
     * mark protocol, and HTM fast paths escalate to the logged slow
     * path. A seed of 0 inherits rngSeed.
     */
    PersistConfig persist;

    /**
     * Instrumentation-cost model (DESIGN.md): cycles of busy work per
     * software-path shared access, standing in for the libitm dynamic
     * call + logging that the paper's instrumented slow paths pay and
     * its uninstrumented hardware fast path does not. 0 disables.
     */
    unsigned stmAccessPenalty = 64;
};

class TmRuntime;

/**
 * Per-thread execution context. Obtain one per worker thread via
 * TmRuntime::registerThread() and pass it to every run() call from
 * that thread. Not shareable across threads.
 */
class ThreadCtx
{
  public:
    /** Runtime-assigned thread index. */
    unsigned tid() const { return tid_; }

    /** This thread's statistics block. */
    const ThreadStats &stats() const { return stats_; }

    /** This thread's session (exposed for white-box tests). */
    TxSession &session() { return *session_; }

    /** This thread's memory arena. */
    ThreadMem &mem() { return *mem_; }

    /**
     * This thread's fault injector, or nullptr when the runtime's
     * fault plan is empty (exposed for tests to read hit counts and
     * traces).
     */
    FaultInjector *injector() { return fault_.get(); }

    /** This thread's deferred-action log (exposed for tests). */
    ActionLog &actions() { return actions_; }

    /**
     * This thread's durable-commit driver, or nullptr when the
     * persistence overlay is disabled (exposed for white-box tests).
     */
    TxPersist *persistence() { return persist_.get(); }

  private:
    friend class TmRuntime;

    ThreadCtx(unsigned tid, ThreadMem *mem) : tid_(tid), mem_(mem) {}

    unsigned tid_;
    ThreadMem *mem_;
    ThreadStats stats_;
    ActionLog actions_;
    std::unique_ptr<FaultInjector> fault_;
    std::unique_ptr<HtmTxn> htm_;
    std::unique_ptr<TxPersist> persist_;
    std::unique_ptr<TxSession> session_;
    bool inTxn_ = false;
};

/**
 * A transactional-memory runtime: one algorithm, one shared-memory
 * coordination domain. Threads register once, then execute transaction
 * bodies through run().
 *
 * @code
 *   TmRuntime rt(AlgoKind::kRhNOrec);
 *   ThreadCtx &ctx = rt.registerThread();   // per worker thread
 *   rt.run(ctx, [&](Txn &tx) {
 *       uint64_t v = tx.load(&counter);
 *       tx.store(&counter, v + 1);
 *   });
 * @endcode
 */
class TmRuntime
{
  public:
    explicit TmRuntime(AlgoKind kind, RuntimeConfig cfg = RuntimeConfig());
    ~TmRuntime();

    TmRuntime(const TmRuntime &) = delete;
    TmRuntime &operator=(const TmRuntime &) = delete;

    /** Register the calling thread; thread safe. */
    ThreadCtx &registerThread();

    /**
     * Execute @p body as one transaction, retrying per the algorithm's
     * policy until it commits. @p hint may declare the body read-only
     * (never required; purely an optimization knob mirroring the GCC
     * static analysis). Exceptions from @p body abort the transaction
     * and propagate.
     *
     * Nested calls flatten (like RTM and GCC TM): a run() issued from
     * inside a transaction body joins the enclosing transaction, so
     * library code that opens its own transactions composes freely.
     */
    template <typename Body>
    void
    run(ThreadCtx &ctx, Body &&body, TxnHint hint = TxnHint::kNone)
    {
        if (ctx.inTxn_) {
            // Flat nesting: execute within the enclosing transaction.
            Txn tx(ctx.session_.get(), ctx.mem_, ctx.tid(),
                   &ctx.actions_);
            body(tx);
            return;
        }
        EpochManager &ep = mem_.epochs();
        ep.enterRegion(ctx.tid());
        ctx.inTxn_ = true;
        ctx.actions_.clear();
        TxSession &s = *ctx.session_;
        for (;;) {
            try {
                s.begin(hint);
                Txn tx(&s, ctx.mem_, ctx.tid(), &ctx.actions_);
                body(tx);
                s.commit();
                break;
            } catch (const HtmAbort &abort) {
                // Rollback first (the session releases any held locks
                // and undoes in-place writes), THEN the action log:
                // abort handlers observe post-rollback state, and the
                // memory journal retires this attempt's allocations.
                s.onHtmAbort(abort);
                ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
            } catch (const TxRestart &) {
                s.onRestart();
                ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
            } catch (...) {
                // A user exception: full abort (locks released, HTM
                // buffers discarded, journals rolled back, epoch slot
                // quiesced), then rethrow to the caller exactly once.
                ctx.stats_.inc(Counter::kUserExceptionAborts);
                s.onUserAbort();
                ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
                ctx.inTxn_ = false;
                ep.exitRegion(ctx.tid());
                throw;
            }
        }
        // Commit is linearized and onComplete() has dropped the
        // serial/global locks; only now may deferred commit actions
        // (journal retirement, then user handlers) run.
        s.onComplete();
        ctx.actions_.runCommit(*ctx.mem_, &ctx.stats_);
        ctx.stats_.inc(Counter::kOperations);
        ctx.inTxn_ = false;
        ep.exitRegion(ctx.tid());
    }

    /** Aggregate statistics over all registered threads. */
    StatsSummary stats() const;

    /** Zero all per-thread statistics (threads must be quiescent). */
    void resetStats();

    /** The simulated-HTM engine (shared by all threads). */
    HtmEngine &engine() { return eng_; }

    /** The memory subsystem. */
    MemoryManager &memory() { return mem_; }

    /** The hybrid coordination globals (for white-box tests). */
    TmGlobals &globals() { return globals_; }

    /**
     * The simulated NVM device, or nullptr when the persistence
     * overlay is disabled. Setup code registers durable heap ranges
     * through it before transactions run; crash/recovery harnesses
     * read its snapshots once threads are quiescent.
     */
    NvmSim *nvm() { return nvm_.get(); }

    /** Selected algorithm. */
    AlgoKind kind() const { return kind_; }

    /** Selected algorithm's short name. */
    const char *algoName() const { return algoKindName(kind_); }

    /** Configuration in effect. */
    const RuntimeConfig &config() const { return cfg_; }

    /**
     * Non-transactional read, safe against concurrent transactions
     * (setup/verification helper).
     */
    uint64_t peek(const uint64_t *addr) { return eng_.directLoad(addr); }

    /** Non-transactional write, safe against concurrent transactions. */
    void poke(uint64_t *addr, uint64_t value)
    {
        eng_.directStore(addr, value);
    }

    /** Number of registered threads (threads must be quiescent). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(ctxs_.size());
    }

    /** Context of an already-registered tid (white-box tests). */
    ThreadCtx &context(unsigned tid) { return *ctxs_[tid]; }

    /**
     * The live retry policy every session reads through its const
     * reference. Tests mutate it mid-run to prove sessions see policy
     * updates (the policy-by-value regression, docs/CHECKING.md);
     * nothing else may write it after construction.
     */
    RetryPolicy &mutableRetryPolicyForTest() { return cfg_.retry; }

    /**
     * Restore the whole runtime -- coordination globals, TL2/RH-TL2
     * clocks and orec tables, and every registered thread's stats,
     * action log, fault injector, simulated-HTM context, session, and
     * memory journal -- to its just-registered state. The interleaving
     * explorer (src/check/) calls this between explored runs so each
     * run starts from identical state; callers must guarantee no
     * transaction is in flight. The HtmEngine's stripe versions are
     * deliberately NOT rewound: they are only ever compared for
     * equality within one run, so their absolute values cannot affect
     * control flow, and rewinding them would race with nothing anyway.
     */
    void resetForTest();

  private:
    std::unique_ptr<TxSession> makeSession(ThreadCtx &ctx);

    AlgoKind kind_;
    RuntimeConfig cfg_;
    HtmEngine eng_;
    MemoryManager mem_;
    TmGlobals globals_;
    std::unique_ptr<Tl2Globals> tl2_;
    std::unique_ptr<RhTl2Globals> rhTl2_;
    std::unique_ptr<NvmSim> nvm_;
    std::mutex registerLock_;
    std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
};

} // namespace rhtm

#endif // RHTM_API_RUNTIME_H
