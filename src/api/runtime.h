/**
 * @file
 * The TM runtime facade: algorithm selection, per-thread contexts, the
 * transaction retry loop, and statistics collection. This is the
 * library's main entry point (the role GCC's libitm played for the
 * paper's implementation).
 */

#ifndef RHTM_API_RUNTIME_H
#define RHTM_API_RUNTIME_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/action_log.h"
#include "src/api/tx_defs.h"
#include "src/api/txn.h"
#include "src/core/admission.h"
#include "src/core/engine/deadline.h"
#include "src/core/engine/domain.h"
#include "src/core/engine/tm_config.h"
#include "src/core/globals.h"
#include "src/core/retry_policy.h"
#include "src/fault/fault_injector.h"
#include "src/htm/htm_txn.h"
#include "src/mem/memory_manager.h"
#include "src/persist/nvm_sim.h"
#include "src/persist/tx_persist.h"
#include "src/stats/stats.h"
#include "src/core/rh_tl2.h"
#include "src/stm/tl2.h"

namespace rhtm
{

/** The TM algorithms evaluated by the paper (Section 3.1). */
enum class AlgoKind
{
    kLockElision, //!< HTM + global-lock fallback.
    kNOrec,       //!< Eager NOrec STM (all software).
    kNOrecLazy,   //!< Lazy NOrec STM (all software).
    kTl2,         //!< Eager TL2 STM (all software).
    kHybridNOrec, //!< Hybrid NOrec HyTM (eager slow path, as evaluated).
    kHybridNOrecLazy, //!< Hybrid NOrec with the lazy slow path.
    kRhNOrec,     //!< Reduced Hardware NOrec (this paper).
    kRhTl2,       //!< RH-TL2, the predecessor design (Section 1.2).
};

/** Canonical short name ("rh-norec", ...). */
const char *algoKindName(AlgoKind kind);

/**
 * Parse a short name back to a kind.
 * @return true on success.
 */
bool algoKindFromString(const std::string &name, AlgoKind &out);

/** All algorithm kinds, in the paper's presentation order. */
const std::vector<AlgoKind> &allAlgoKinds();

/** Everything configurable about a runtime instance. */
struct RuntimeConfig
{
    HtmConfig htm;      //!< Simulated-HTM model.
    RetryPolicy retry;  //!< Fallback/retry policy (Section 3.3).
    RhConfig rh;        //!< RH NOrec feature switches (Section 3.4).
    uint64_t rngSeed = 1;

    /**
     * Deterministic fault schedule (docs/FAULT_INJECTION.md). Each
     * registered thread gets its own injector built from this plan; an
     * empty plan injects nothing. If the plan's seed is 0 it inherits
     * rngSeed.
     */
    FaultPlan fault;

    /**
     * Simulated-NVM persistence overlay (docs/PERSISTENCE.md). When
     * enabled the runtime owns an NvmSim device, each thread gets a
     * TxPersist driver, slow-path commits run the durable seal/drain/
     * mark protocol, and HTM fast paths escalate to the logged slow
     * path. A seed of 0 inherits rngSeed.
     */
    PersistConfig persist;

    /**
     * Overload admission control (docs/OVERLOAD.md). When enabled the
     * runtime owns an AdmissionGate consulted by runWith()/run()
     * before every top-level transaction; disabled (the default), no
     * gate exists and admission is unconditional.
     */
    AdmissionConfig admission;

    /**
     * Instrumentation-cost model (DESIGN.md): cycles of busy work per
     * software-path shared access, standing in for the libitm dynamic
     * call + logging that the paper's instrumented slow paths pay and
     * its uninstrumented hardware fast path does not. 0 disables.
     */
    unsigned stmAccessPenalty = 64;

    /**
     * Commit-path optimization switches (docs/COMMIT_PATH.md): the
     * read/write-set filter ring, the redo-buffer hash index,
     * timestamp extension, and group commit, each independently
     * A/B-able. Applied to every session at registration.
     */
    TmConfig commitPath;
};

class TmRuntime;

/**
 * Per-thread execution context. Obtain one per worker thread via
 * TmRuntime::registerThread() and pass it to every run() call from
 * that thread. Not shareable across threads.
 */
class ThreadCtx
{
  public:
    /** Runtime-assigned thread index. */
    unsigned tid() const { return tid_; }

    /** This thread's statistics block. */
    const ThreadStats &stats() const { return stats_; }

    /**
     * Mutable statistics for coordination layers that run transactions
     * outside runWith() (the sharded store's cross-shard commits
     * charge their counters here). Owning thread only.
     */
    ThreadStats &mutableStats() { return stats_; }

    /** This thread's session (exposed for white-box tests). */
    TxSession &session() { return *session_; }

    /** This thread's memory arena. */
    ThreadMem &mem() { return *mem_; }

    /**
     * This thread's fault injector, or nullptr when the runtime's
     * fault plan is empty (exposed for tests to read hit counts and
     * traces).
     */
    FaultInjector *injector() { return fault_.get(); }

    /** This thread's deferred-action log (exposed for tests). */
    ActionLog &actions() { return actions_; }

    /**
     * This thread's durable-commit driver, or nullptr when the
     * persistence overlay is disabled (exposed for white-box tests).
     */
    TxPersist *persistence() { return persist_.get(); }

    /** This thread's deadline state (exposed for white-box tests). */
    DeadlineState &deadlineState() { return deadline_; }

  private:
    friend class TmRuntime;

    ThreadCtx(unsigned tid, ThreadMem *mem) : tid_(tid), mem_(mem) {}

    unsigned tid_;
    ThreadMem *mem_;
    ThreadStats stats_;
    ActionLog actions_;
    DeadlineState deadline_;
    std::unique_ptr<FaultInjector> fault_;
    std::unique_ptr<HtmTxn> htm_;
    std::unique_ptr<TxPersist> persist_;
    std::unique_ptr<TxSession> session_;
    bool inTxn_ = false;
};

/**
 * A transactional-memory runtime: one algorithm, one shared-memory
 * coordination domain. Threads register once, then execute transaction
 * bodies through run().
 *
 * @code
 *   TmRuntime rt(AlgoKind::kRhNOrec);
 *   ThreadCtx &ctx = rt.registerThread();   // per worker thread
 *   rt.run(ctx, [&](Txn &tx) {
 *       uint64_t v = tx.load(&counter);
 *       tx.store(&counter, v + 1);
 *   });
 * @endcode
 */
class TmRuntime
{
  public:
    explicit TmRuntime(AlgoKind kind, RuntimeConfig cfg = RuntimeConfig());
    ~TmRuntime();

    TmRuntime(const TmRuntime &) = delete;
    TmRuntime &operator=(const TmRuntime &) = delete;

    /** Register the calling thread; thread safe. */
    ThreadCtx &registerThread();

    /**
     * Execute @p body as one transaction, retrying per the algorithm's
     * policy until it commits. @p hint may declare the body read-only
     * (never required; purely an optimization knob mirroring the GCC
     * static analysis). Exceptions from @p body abort the transaction
     * and propagate.
     *
     * Nested calls flatten (like RTM and GCC TM): a run() issued from
     * inside a transaction body joins the enclosing transaction, so
     * library code that opens its own transactions composes freely.
     */
    template <typename Body>
    void
    run(ThreadCtx &ctx, Body &&body, TxnHint hint = TxnHint::kNone)
    {
        TxnOptions opts;
        opts.allowShed = false; // Legacy contract: always commits.
        opts.hint = hint;
        TxnOutcome outcome =
            runWith(ctx, opts, std::forward<Body>(body));
        (void)outcome; // Unbounded + non-sheddable: kCommitted.
    }

    /**
     * Execute @p body as one transaction under the bounds in @p opts
     * (docs/OVERLOAD.md) and report how the call ended:
     *
     *  - kCommitted: as run().
     *  - kDeadlineExceeded: the wall-clock deadline or attempt budget
     *    expired. The in-flight attempt (if any) was fully unwound
     *    through the user-abort path -- locks released, journals
     *    rolled back, onAbort handlers fired -- and the transaction's
     *    effects never became visible. Not charged to the kill switch
     *    or retry budgets (the caller gave up; nothing failed).
     *  - kAdmissionShed: rejected by the admission gate before any TM
     *    state was touched; no handler ran.
     *
     * An irrevocable grant suppresses the deadline: once granted the
     * transaction always commits. Nested calls flatten and join the
     * enclosing transaction (its bounds stay in force).
     */
    template <typename Body>
    TxnOutcome
    runWith(ThreadCtx &ctx, const TxnOptions &opts, Body &&body)
    {
        if (ctx.inTxn_) {
            // Flat nesting: execute within the enclosing transaction.
            Txn tx(ctx.session_.get(), ctx.mem_, ctx.tid(),
                   &ctx.actions_);
            body(tx);
            return TxnOutcome::kCommitted;
        }
        DeadlineState &dl = ctx.deadline_;
        if (opts.deadline.count() > 0)
            dl.arm(DeadlineState::Clock::now() + opts.deadline);
        if (gate_ != nullptr &&
            !gate_->admit(eng_, domain_.globals, cfg_.retry, &ctx.stats_,
                          opts.deadline.count() > 0 ? &dl : nullptr,
                          ctx.fault_.get(), opts.allowShed)) {
            // Shed before any TM state was touched: no epoch slot, no
            // handlers, no session activity to unwind.
            dl.disarm();
            return TxnOutcome::kAdmissionShed;
        }
        EpochManager &ep = mem_.epochs();
        ep.enterRegion(ctx.tid());
        ctx.inTxn_ = true;
        ctx.actions_.clear();
        TxSession &s = *ctx.session_;
        TxnOutcome outcome = TxnOutcome::kCommitted;
        unsigned attemptsDone = 0;
        // The outer try catches TxnDeadlineExceeded thrown from inside
        // an abort *handler* (a deadline-aware wait in onHtmAbort, for
        // example): C++ does not route a throw from a catch clause to
        // its sibling clauses, so it must be fielded one level up.
        try {
            for (;;) {
                if ((opts.maxAttempts != 0 &&
                     attemptsDone >= opts.maxAttempts) ||
                    (dl.armed() && dl.expiredNow())) {
                    outcome = TxnOutcome::kDeadlineExceeded;
                    break;
                }
                try {
                    s.begin(opts.hint);
                    Txn tx(&s, ctx.mem_, ctx.tid(), &ctx.actions_);
                    body(tx);
                    s.commit();
                    break;
                } catch (const HtmAbort &abort) {
                    // Rollback first (the session releases any held
                    // locks and undoes in-place writes), THEN the
                    // action log: abort handlers observe post-rollback
                    // state, and the memory journal retires this
                    // attempt's allocations.
                    ++attemptsDone;
                    s.onHtmAbort(abort);
                    ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
                } catch (const TxRestart &) {
                    ++attemptsDone;
                    s.onRestart();
                    ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
                } catch (const TxnDeadlineExceeded &) {
                    // A deadline-aware wait unwound mid-attempt; the
                    // attempt is still live and needs the full
                    // user-abort rollback below.
                    outcome = TxnOutcome::kDeadlineExceeded;
                    break;
                } catch (...) {
                    // A user exception: full abort (locks released,
                    // HTM buffers discarded, journals rolled back,
                    // epoch slot quiesced), then rethrow to the caller
                    // exactly once.
                    ctx.stats_.inc(Counter::kUserExceptionAborts);
                    s.onUserAbort();
                    ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
                    ctx.inTxn_ = false;
                    dl.disarm();
                    ep.exitRegion(ctx.tid());
                    throw;
                }
            }
        } catch (const TxnDeadlineExceeded &) {
            outcome = TxnOutcome::kDeadlineExceeded;
        }
        if (outcome == TxnOutcome::kCommitted) {
            // Commit is linearized and onComplete() has dropped the
            // serial/global locks; only now may deferred commit
            // actions (journal retirement, then user handlers) run.
            s.onComplete();
            ctx.actions_.runCommit(*ctx.mem_, &ctx.stats_);
            ctx.stats_.inc(Counter::kOperations);
        } else {
            ctx.stats_.inc(Counter::kDeadlineExceeded);
            // Same ordering as the user-exception path: session
            // rollback, then the action log (abort handlers fire
            // exactly once, LIFO -- runAbort clears the log, so this
            // is a no-op when the last attempt already ran it). The
            // unwind runs even on a quiescent attempt boundary: a
            // restarted slow path keeps its fallback registration
            // (and a pre-grant barrier its serial ticket) across
            // attempts, and only the session's unwind tail releases
            // those.
            s.onUserAbort();
            ctx.actions_.runAbort(*ctx.mem_, &ctx.stats_);
        }
        ctx.inTxn_ = false;
        dl.disarm();
        ep.exitRegion(ctx.tid());
        if (gate_ != nullptr)
            gate_->onOutcome(outcome == TxnOutcome::kCommitted);
        return outcome;
    }

    /**
     * Aggregate statistics over all registered threads. Safe to call
     * concurrently with registerThread() on this or any other runtime
     * (a sharded store polls one shard while another is still wiring
     * up workers); counts from threads mid-transaction are a benign
     * torn snapshot, exactly as before.
     */
    StatsSummary stats() const;

    /**
     * Zero all per-thread statistics. Safe against a concurrent
     * registerThread(); this runtime's own threads must be quiescent,
     * but other domains' runtimes need not be.
     */
    void resetStats();

    /** The simulated-HTM engine (shared by all threads). */
    HtmEngine &engine() { return eng_; }

    /** The memory subsystem. */
    MemoryManager &memory() { return mem_; }

    /**
     * This runtime's coordination domain: identity for cross-domain
     * commit ordering plus the coordination words.
     */
    TmDomain &domain() { return domain_; }

    /** The hybrid coordination globals (for white-box tests). */
    TmGlobals &globals() { return domain_.globals; }

    /**
     * TL2's shared clock/orec state when kind() == kTl2, else nullptr
     * (the sharded store's cross-domain commit locks orecs directly).
     */
    Tl2Globals *tl2Globals() { return tl2_.get(); }

    /** RH-TL2's shared state when kind() == kRhTl2, else nullptr. */
    RhTl2Globals *rhTl2Globals() { return rhTl2_.get(); }

    /**
     * The admission gate, or nullptr when admission control is
     * disabled (white-box tests and bench reporting).
     */
    AdmissionGate *admission() { return gate_.get(); }

    /**
     * The simulated NVM device, or nullptr when the persistence
     * overlay is disabled. Setup code registers durable heap ranges
     * through it before transactions run; crash/recovery harnesses
     * read its snapshots once threads are quiescent.
     */
    NvmSim *nvm() { return nvm_.get(); }

    /** Selected algorithm. */
    AlgoKind kind() const { return kind_; }

    /** Selected algorithm's short name. */
    const char *algoName() const { return algoKindName(kind_); }

    /** Configuration in effect. */
    const RuntimeConfig &config() const { return cfg_; }

    /**
     * Non-transactional read, safe against concurrent transactions
     * (setup/verification helper).
     */
    uint64_t peek(const uint64_t *addr) { return eng_.directLoad(addr); }

    /** Non-transactional write, safe against concurrent transactions. */
    void poke(uint64_t *addr, uint64_t value)
    {
        eng_.directStore(addr, value);
    }

    /** Number of registered threads (safe vs. registerThread()). */
    unsigned threadCount() const
    {
        std::lock_guard<std::mutex> guard(registerLock_);
        return static_cast<unsigned>(ctxs_.size());
    }

    /** Context of an already-registered tid (white-box tests). */
    ThreadCtx &context(unsigned tid) { return *ctxs_[tid]; }

    /**
     * The live retry policy every session reads through its const
     * reference. Tests mutate it mid-run to prove sessions see policy
     * updates (the policy-by-value regression, docs/CHECKING.md);
     * nothing else may write it after construction.
     */
    RetryPolicy &mutableRetryPolicyForTest() { return cfg_.retry; }

    /**
     * Restore the whole runtime -- coordination globals, TL2/RH-TL2
     * clocks and orec tables, and every registered thread's stats,
     * action log, fault injector, simulated-HTM context, session, and
     * memory journal -- to its just-registered state. The interleaving
     * explorer (src/check/) calls this between explored runs so each
     * run starts from identical state; callers must guarantee no
     * transaction is in flight. The HtmEngine's stripe versions are
     * deliberately NOT rewound: they are only ever compared for
     * equality within one run, so their absolute values cannot affect
     * control flow, and rewinding them would race with nothing anyway.
     */
    void resetForTest();

  private:
    std::unique_ptr<TxSession> makeSession(ThreadCtx &ctx);

    AlgoKind kind_;
    RuntimeConfig cfg_;
    HtmEngine eng_;
    MemoryManager mem_;
    TmDomain domain_;
    std::unique_ptr<Tl2Globals> tl2_;
    std::unique_ptr<RhTl2Globals> rhTl2_;
    std::unique_ptr<NvmSim> nvm_;
    std::unique_ptr<AdmissionGate> gate_;
    // Guards ctxs_ growth; mutable so the stats readers can take it
    // from const methods (satellite: per-domain stats safety).
    mutable std::mutex registerLock_;
    std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
};

} // namespace rhtm

#endif // RHTM_API_RUNTIME_H
