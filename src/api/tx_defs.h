/**
 * @file
 * Core types shared by the TM algorithms: restart signalling, hints,
 * and the per-thread session interface every algorithm implements.
 */

#ifndef RHTM_API_TX_DEFS_H
#define RHTM_API_TX_DEFS_H

#include <cstdint>

#include "src/htm/abort.h"

namespace rhtm
{

/**
 * Thrown by an algorithm to abort and restart the current transaction
 * attempt (the library analogue of libitm's longjmp back to the
 * transaction entry). Caught by TmRuntime's retry loop; never escapes
 * to user code.
 */
struct TxRestart
{
};

/**
 * Caller-provided static hints, standing in for the GCC TM compiler
 * analysis the paper's implementation used (Section 3: "detection of
 * read-only fast-paths is based on the GCC compiler static analysis").
 */
enum class TxnHint : uint8_t
{
    kNone = 0,
    kReadOnly, //!< The body performs no transactional writes.
};

/**
 * Per-thread algorithm state driving one transaction at a time.
 *
 * Lifecycle per transaction, orchestrated by TmRuntime::run:
 *
 *   begin(hint) -> body calls read()/write() -> commit()
 *
 * Any of these may throw HtmAbort (a simulated hardware abort) or
 * TxRestart (a software consistency abort); the runtime then calls
 * onHtmAbort()/onRestart() and re-enters begin(). After a successful
 * commit() the runtime calls onComplete().
 *
 * Implementations are single-threaded objects: exactly one owning
 * thread ever calls into a session.
 */
class TxSession
{
  public:
    virtual ~TxSession() = default;

    /** Start a fresh attempt of the current transaction. */
    virtual void begin(TxnHint hint) = 0;

    /** Transactional load of an aligned 64-bit word. */
    virtual uint64_t read(const uint64_t *addr) = 0;

    /** Transactional store of an aligned 64-bit word. */
    virtual void write(uint64_t *addr, uint64_t value) = 0;

    /** Finish the attempt; throws HtmAbort/TxRestart on failure. */
    virtual void commit() = 0;

    /**
     * Upgrade the attempt so it can no longer abort (docs/LIFECYCLE.md).
     *
     * Contract: either this returns with irrevocability granted --
     * after which read()/write()/commit() never throw and the
     * transaction is guaranteed to commit -- or it unwinds (HtmAbort
     * with kNeedIrrevocable on a hardware path, TxRestart on a failed
     * software validation) BEFORE granting, so the body re-executes
     * from the top and any post-upgrade side effect runs at most once.
     */
    virtual void becomeIrrevocable() = 0;

    /** True once the current attempt has been granted irrevocability. */
    virtual bool isIrrevocable() const = 0;

    /** The attempt unwound with a (simulated) hardware abort. */
    virtual void onHtmAbort(const HtmAbort &abort) = 0;

    /** The attempt unwound with a software restart. */
    virtual void onRestart() = 0;

    /**
     * A user exception unwound the body: release any held locks and
     * roll back in-place writes so the exception can propagate safely.
     */
    virtual void onUserAbort() = 0;

    /** The attempt committed; record commit-path statistics. */
    virtual void onComplete() = 0;

    /** Algorithm name for reports. */
    virtual const char *name() const = 0;
};

} // namespace rhtm

#endif // RHTM_API_TX_DEFS_H
