/**
 * @file
 * Compatibility forwarder: the session interface and restart/hint
 * types moved into the shared transaction engine
 * (src/core/engine/session.h). Kept so existing includes keep
 * working; new code should include the engine header directly.
 */

#ifndef RHTM_API_TX_DEFS_H
#define RHTM_API_TX_DEFS_H

#include "src/core/engine/session.h"

#endif // RHTM_API_TX_DEFS_H
