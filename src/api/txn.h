/**
 * @file
 * The user-facing transaction handle.
 */

#ifndef RHTM_API_TXN_H
#define RHTM_API_TXN_H

#include <cstdint>
#include <type_traits>

#include "src/api/tx_defs.h"
#include "src/mem/memory_manager.h"

namespace rhtm
{

/**
 * Handle passed to a transaction body; every shared-memory access and
 * every allocation inside the body must go through it.
 *
 * Shared state is modelled as 8-byte-aligned 64-bit words. The typed
 * helpers pack pointers and signed values into words so data structures
 * read naturally. The handle is only valid during the body invocation
 * it was passed to.
 */
class Txn
{
  public:
    /** Built by the runtime; user code never constructs one. */
    Txn(TxSession *session, ThreadMem *mem, unsigned tid)
        : session_(session), mem_(mem), tid_(tid)
    {}

    /** Transactional load. @p addr must be 8-byte aligned. */
    uint64_t
    load(const uint64_t *addr)
    {
        return session_->read(addr);
    }

    /** Transactional store. @p addr must be 8-byte aligned. */
    void
    store(uint64_t *addr, uint64_t value)
    {
        session_->write(addr, value);
    }

    /** Load a word as a signed 64-bit value. */
    int64_t
    loadI64(const int64_t *addr)
    {
        return static_cast<int64_t>(
            load(reinterpret_cast<const uint64_t *>(addr)));
    }

    /** Store a signed 64-bit value. */
    void
    storeI64(int64_t *addr, int64_t value)
    {
        store(reinterpret_cast<uint64_t *>(addr),
              static_cast<uint64_t>(value));
    }

    /** Load a pointer-valued word. */
    template <typename T>
    T *
    loadPtr(T *const *slot)
    {
        static_assert(sizeof(T *) == sizeof(uint64_t));
        return reinterpret_cast<T *>(
            load(reinterpret_cast<const uint64_t *>(slot)));
    }

    /** Store a pointer-valued word. */
    template <typename T>
    void
    storePtr(T **slot, T *value)
    {
        static_assert(sizeof(T *) == sizeof(uint64_t));
        store(reinterpret_cast<uint64_t *>(slot),
              reinterpret_cast<uint64_t>(value));
    }

    /**
     * Allocate zeroed memory tied to this transaction: kept on commit,
     * safely recycled on abort.
     */
    void *alloc(size_t size) { return mem_->txAlloc(size); }

    /** Typed allocation helper; T must be trivially destructible. */
    template <typename T>
    T *
    allocObject()
    {
        static_assert(std::is_trivially_destructible_v<T>);
        return static_cast<T *>(alloc(sizeof(T)));
    }

    /**
     * Free memory tied to this transaction: deferred to commit and a
     * reclamation grace period; dropped on abort.
     */
    void txFree(void *ptr, size_t size) { mem_->txFree(ptr, size); }

    /** Typed free helper. */
    template <typename T>
    void
    freeObject(T *ptr)
    {
        txFree(ptr, sizeof(T));
    }

    /** Explicitly restart this transaction attempt. */
    [[noreturn]] void
    retry()
    {
        throw TxRestart{};
    }

    /** Runtime-assigned id of the executing thread. */
    unsigned tid() const { return tid_; }

  private:
    TxSession *session_;
    ThreadMem *mem_;
    unsigned tid_;
};

} // namespace rhtm

#endif // RHTM_API_TXN_H
