/**
 * @file
 * The user-facing transaction handle.
 */

#ifndef RHTM_API_TXN_H
#define RHTM_API_TXN_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "src/api/action_log.h"
#include "src/api/tx_defs.h"
#include "src/mem/memory_manager.h"

namespace rhtm
{

/**
 * Per-call execution bounds for TmRuntime::runWith (docs/OVERLOAD.md).
 * The default-constructed value is unbounded and non-sheddable --
 * exactly the legacy run() behaviour.
 */
struct TxnOptions
{
    /**
     * Wall-clock budget for the whole transaction (all attempts,
     * including every wait). Zero = no deadline. Expiry unwinds the
     * attempt through the normal abort path and runWith returns
     * TxnOutcome::kDeadlineExceeded; an already-granted irrevocable
     * attempt is exempt (it must commit). Deadlines read the wall
     * clock, so explorer/replay programs use maxAttempts instead.
     */
    std::chrono::nanoseconds deadline{0};

    /**
     * Attempt budget: give up before starting attempt N+1 once N
     * attempts have aborted. Zero = unbounded. Deterministic (no
     * clock), so this is the bound of choice under the interleaving
     * explorer.
     */
    unsigned maxAttempts = 0;

    /**
     * Permit the admission gate to shed this transaction before it
     * starts (TxnOutcome::kAdmissionShed). When false the gate may
     * only briefly queue the caller, never reject it.
     */
    bool allowShed = true;

    /** Read-only hint, as in run(). */
    TxnHint hint = TxnHint::kNone;
};

/** How a runWith() call ended. */
enum class TxnOutcome : uint8_t
{
    kCommitted = 0,     //!< The body committed (possibly after retries).
    kDeadlineExceeded,  //!< Deadline/attempt budget expired; unwound.
    kAdmissionShed,     //!< Shed by the admission gate; never started.
};

/** Short name for reports ("committed", ...). */
inline const char *
txnOutcomeName(TxnOutcome outcome)
{
    switch (outcome) {
      case TxnOutcome::kCommitted:
        return "committed";
      case TxnOutcome::kDeadlineExceeded:
        return "deadline-exceeded";
      case TxnOutcome::kAdmissionShed:
        return "admission-shed";
    }
    return "?";
}

/**
 * Handle passed to a transaction body; every shared-memory access and
 * every allocation inside the body must go through it.
 *
 * Shared state is modelled as 8-byte-aligned 64-bit words. The typed
 * helpers pack pointers and signed values into words so data structures
 * read naturally. The handle is only valid during the body invocation
 * it was passed to.
 */
class Txn
{
  public:
    /** Built by the runtime; user code never constructs one. */
    Txn(TxSession *session, ThreadMem *mem, unsigned tid,
        ActionLog *actions = nullptr)
        : session_(session), mem_(mem), actions_(actions), tid_(tid)
    {}

    /** Transactional load. @p addr must be 8-byte aligned. */
    uint64_t
    load(const uint64_t *addr)
    {
        return session_->read(addr);
    }

    /** Transactional store. @p addr must be 8-byte aligned. */
    void
    store(uint64_t *addr, uint64_t value)
    {
        session_->write(addr, value);
    }

    /** Load a word as a signed 64-bit value. */
    int64_t
    loadI64(const int64_t *addr)
    {
        return static_cast<int64_t>(
            load(reinterpret_cast<const uint64_t *>(addr)));
    }

    /** Store a signed 64-bit value. */
    void
    storeI64(int64_t *addr, int64_t value)
    {
        store(reinterpret_cast<uint64_t *>(addr),
              static_cast<uint64_t>(value));
    }

    /** Load a pointer-valued word. */
    template <typename T>
    T *
    loadPtr(T *const *slot)
    {
        static_assert(sizeof(T *) == sizeof(uint64_t));
        return reinterpret_cast<T *>(
            load(reinterpret_cast<const uint64_t *>(slot)));
    }

    /** Store a pointer-valued word. */
    template <typename T>
    void
    storePtr(T **slot, T *value)
    {
        static_assert(sizeof(T *) == sizeof(uint64_t));
        store(reinterpret_cast<uint64_t *>(slot),
              reinterpret_cast<uint64_t>(value));
    }

    /**
     * Allocate zeroed memory tied to this transaction: kept on commit,
     * safely recycled on abort.
     */
    void *alloc(size_t size) { return mem_->txAlloc(size); }

    /** Typed allocation helper; T must be trivially destructible. */
    template <typename T>
    T *
    allocObject()
    {
        static_assert(std::is_trivially_destructible_v<T>);
        return static_cast<T *>(alloc(sizeof(T)));
    }

    /**
     * Free memory tied to this transaction: deferred to commit and a
     * reclamation grace period; dropped on abort.
     */
    void txFree(void *ptr, size_t size) { mem_->txFree(ptr, size); }

    /** Typed free helper. */
    template <typename T>
    void
    freeObject(T *ptr)
    {
        txFree(ptr, sizeof(T));
    }

    /** Explicitly restart this transaction attempt. */
    [[noreturn]] void
    retry()
    {
        throw TxRestart{};
    }

    /**
     * Upgrade this transaction so it can no longer abort: after this
     * returns, reads and writes go straight through and commit cannot
     * fail, so the body may safely perform a side effect that must not
     * replay (I/O, a syscall). May unwind and re-execute the body from
     * the top -- but only BEFORE the upgrade is granted, never after
     * (see docs/LIFECYCLE.md for the per-algorithm protocol).
     */
    void becomeIrrevocable() { session_->becomeIrrevocable(); }

    /** True once this attempt holds irrevocability. */
    bool isIrrevocable() const { return session_->isIrrevocable(); }

    /**
     * Register @p fn to run after this transaction commits, once the
     * commit is linearized and every TM lock is dropped (FIFO order).
     * Runs at most once; discarded if the enclosing attempt aborts.
     */
    void
    onCommit(std::function<void()> fn)
    {
        if (actions_)
            actions_->registerCommit(std::move(fn));
    }

    /**
     * Register @p fn to run if this attempt aborts, after its rollback
     * completes (LIFO order). A restarted body re-registers handlers
     * when it re-executes.
     */
    void
    onAbort(std::function<void()> fn)
    {
        if (actions_)
            actions_->registerAbort(std::move(fn));
    }

    /** Runtime-assigned id of the executing thread. */
    unsigned tid() const { return tid_; }

  private:
    TxSession *session_;
    ThreadMem *mem_;
    ActionLog *actions_;
    unsigned tid_;
};

} // namespace rhtm

#endif // RHTM_API_TXN_H
