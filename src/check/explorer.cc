#include "src/check/explorer.h"

#include <unordered_set>
#include <utility>

namespace rhtm::check
{

const char *
exploreModeName(ExploreMode mode)
{
    switch (mode) {
      case ExploreMode::kRandom: return "random";
      case ExploreMode::kPct: return "pct";
      case ExploreMode::kDfs: return "dfs";
    }
    return "unknown";
}

bool
exploreModeFromString(const std::string &name, ExploreMode &out)
{
    for (ExploreMode m : {ExploreMode::kRandom, ExploreMode::kPct,
                          ExploreMode::kDfs}) {
        if (name == exploreModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

Explorer::Explorer(AlgoKind kind, CheckProgram program)
    : program_(std::move(program))
{
    // Instrumentation busy-work only slows exploration down; the
    // scheduler supplies all the interleaving the penalty exists to
    // provoke.
    cfg_.stmAccessPenalty = 0;
    if (program_.configure)
        program_.configure(cfg_);
    rt_ = std::make_unique<TmRuntime>(kind, cfg_);
    // Register every context from this thread: tids are assigned in
    // registration order, so thread i of the program is tid i.
    for (size_t i = 0; i < program_.threads.size(); ++i)
        rt_->registerThread();
    if (program_.postRegister)
        program_.postRegister(*rt_);
    cells_.resize(program_.vars);
}

Explorer::~Explorer() = default;

RunOutcome
Explorer::runOnce(SchedStrategy &strategy, size_t max_steps,
                  bool check_history)
{
    rt_->resetForTest();
    // The controller has no SchedClient installed, so these pokes and
    // hooks run unscheduled, before any program thread exists.
    for (unsigned i = 0; i < program_.vars; ++i)
        rt_->poke(&cells_[i].v,
                  i < program_.init.size() ? program_.init[i] : 0);
    if (program_.setup)
        program_.setup(*rt_);
    hist_.clear();

    CoopScheduler sched(max_steps);
    std::vector<std::function<void()>> fns;
    fns.reserve(program_.threads.size());
    for (unsigned i = 0; i < program_.threads.size(); ++i)
        fns.push_back([this, i] { threadBody(i); });

    RunOutcome out;
    out.completed = sched.run(strategy, fns);
    out.token = sched.token();
    out.steps = sched.steps();
    out.historyText = hist_.format();
    if (out.completed) {
        if (program_.invariant)
            out.invariantOk =
                program_.invariant(*rt_, &out.invariantWhy);
        if (check_history)
            out.check = checkHistory(
                hist_, program_.init.empty()
                           ? std::vector<uint64_t>(program_.vars, 0)
                           : program_.init);
    }
    return out;
}

void
Explorer::threadBody(unsigned tid)
{
    ThreadCtx &ctx = rt_->context(tid);
    const ThreadSpec &spec = program_.threads[tid];
    if (spec.waitKillSwitchOpen) {
        TmGlobals::KillSwitch &ks = rt_->globals().killSwitch;
        while (ks.tripped())
            schedWaitPoint(SchedPoint::kWaitSpin, &ks.cooldown);
    }
    for (const TxnSpec &txn : spec.txns) {
        hist_.push(tid, HistKind::kBegin);
        // A RunAborted unwind (teardown poison) propagates through
        // run()'s user-exception path and out of this loop; the
        // commit marker is then correctly never logged.
        auto body = [&](Txn &tx) {
            hist_.push(tid, HistKind::kAttempt);
            for (const TxOp &op : txn.ops)
                execOp(tx, tid, op);
        };
        if (txn.maxAttempts != 0) {
            // Attempt-bounded transaction: deterministic by
            // construction (no wall-clock deadline on an explored
            // schedule). A kDeadlineExceeded outcome is a legitimate
            // end state, so the commit marker is only logged for a
            // real commit.
            TxnOptions opts;
            opts.maxAttempts = txn.maxAttempts;
            opts.allowShed = false;
            opts.hint = txn.hint;
            if (rt_->runWith(ctx, opts, body) !=
                TxnOutcome::kCommitted)
                continue;
        } else {
            rt_->run(ctx, body, txn.hint);
        }
        hist_.push(tid, HistKind::kCommit);
    }
}

void
Explorer::execOp(Txn &tx, unsigned tid, const TxOp &op)
{
    switch (op.kind) {
      case TxOpKind::kRead: {
        uint64_t v = tx.load(&cells_[op.var].v);
        hist_.push(tid, HistKind::kRead, op.var, v);
        break;
      }
      case TxOpKind::kWrite:
        tx.store(&cells_[op.var].v, op.value);
        hist_.push(tid, HistKind::kWrite, op.var, op.value);
        break;
      case TxOpKind::kAdd: {
        uint64_t v = tx.load(&cells_[op.var].v);
        hist_.push(tid, HistKind::kRead, op.var, v);
        tx.store(&cells_[op.var].v, v + op.value);
        hist_.push(tid, HistKind::kWrite, op.var, v + op.value);
        break;
      }
      case TxOpKind::kIrrevocable:
        tx.becomeIrrevocable();
        break;
    }
}

RunOutcome
Explorer::replay(const std::string &token, size_t max_steps)
{
    ForcedStrategy forced(token);
    return runOnce(forced, max_steps);
}

RunOutcome
Explorer::sample(uint64_t seed, size_t max_steps)
{
    RandomWalkStrategy walk(seed);
    return runOnce(walk, max_steps);
}

namespace
{

/**
 * Shrink a failing replay token: binary-search the shortest failing
 * prefix, then greedily delete single decisions, re-verifying every
 * candidate by replay. `best` is failing at all times; monotonicity
 * violations only cost optimality, never correctness.
 */
std::string
minimizeToken(Explorer &explorer, const std::string &failing,
              size_t max_steps, size_t budget)
{
    auto fails = [&](const std::string &tok) {
        return explorer.replay(tok, max_steps).failed();
    };
    std::string best = failing;
    size_t lo = 0;
    size_t hi = best.size();
    while (lo < hi && budget > 0) {
        size_t mid = lo + (hi - lo) / 2;
        --budget;
        std::string cand = failing.substr(0, mid);
        if (fails(cand)) {
            best = cand;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    bool improved = true;
    while (improved && budget > 0) {
        improved = false;
        for (size_t i = 0; i < best.size() && budget > 0; ++i) {
            std::string cand = best;
            cand.erase(i, 1);
            --budget;
            if (fails(cand)) {
                best = cand;
                improved = true;
                break;
            }
        }
    }
    return best;
}

} // namespace

ExploreResult
Explorer::explore(const ExploreOptions &opts)
{
    ExploreResult res;
    std::unordered_set<std::string> seen;
    auto note = [&](RunOutcome &&outcome) {
        ++res.runs;
        seen.insert(outcome.token);
        if (outcome.failed()) {
            res.failed = true;
            res.failure = std::move(outcome);
            return true;
        }
        return false;
    };

    switch (opts.mode) {
      case ExploreMode::kRandom:
        for (size_t r = 0; r < opts.runs; ++r) {
            RandomWalkStrategy walk(opts.seed + r);
            if (note(runOnce(walk, opts.maxStepsPerRun,
                             opts.checkHistories)))
                break;
        }
        break;
      case ExploreMode::kPct:
        for (size_t r = 0; r < opts.runs; ++r) {
            PctStrategy pct(opts.seed + r, opts.pctDepth,
                            opts.pctExpectedSteps);
            if (note(runOnce(pct, opts.maxStepsPerRun,
                             opts.checkHistories)))
                break;
        }
        break;
      case ExploreMode::kDfs: {
        DfsStrategy dfs(opts.dfsSleepSets);
        bool more = dfs.nextRun();
        bool stopped = false;
        while (more && res.runs < opts.runs && !stopped) {
            stopped = note(runOnce(dfs, opts.maxStepsPerRun,
                                   opts.checkHistories));
            if (!stopped)
                more = dfs.nextRun();
        }
        res.exhausted = !more;
        break;
      }
    }
    res.distinct = seen.size();
    if (res.failed)
        res.minimizedToken =
            minimizeToken(*this, res.failure.token,
                          opts.maxStepsPerRun, opts.minimizeBudget);
    return res;
}

} // namespace rhtm::check
