/**
 * @file
 * The interleaving explorer: drives a CheckProgram through many
 * scheduled runs, records each run's history, checks it, and
 * minimizes the first failing schedule into a replay token
 * (docs/CHECKING.md).
 */

#ifndef RHTM_CHECK_EXPLORER_H
#define RHTM_CHECK_EXPLORER_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/history.h"
#include "src/check/program.h"
#include "src/check/scheduler.h"
#include "src/check/strategy.h"

namespace rhtm::check
{

/** How schedules are generated. */
enum class ExploreMode : uint8_t
{
    kRandom = 0, //!< Independent seeded random walks.
    kPct,        //!< PCT randomized priorities, one seed per run.
    kDfs,        //!< Bounded exhaustive DFS with sleep sets.
};

/** Printable mode name ("random", "pct", "dfs"). */
const char *exploreModeName(ExploreMode mode);

/** Parse a mode name; false when unknown. */
bool exploreModeFromString(const std::string &name, ExploreMode &out);

/** Exploration parameters. */
struct ExploreOptions
{
    ExploreMode mode = ExploreMode::kRandom;

    /** Runs for random/pct; the leaf cap for dfs. */
    size_t runs = 256;

    /** Base seed (run r uses seed + r). */
    uint64_t seed = 1;

    /** PCT depth d (d-1 priority change points per run). */
    unsigned pctDepth = 3;

    /** PCT horizon the change points are drawn from. */
    unsigned pctExpectedSteps = 256;

    /** Per-run scheduling-step limit (livelock backstop). */
    size_t maxStepsPerRun = 100000;

    /**
     * DFS sleep-set reduction. On (default) the tree exhausts fastest;
     * off, every ordering of commuting steps is its own leaf, which
     * the coverage gate uses to count raw distinct schedules.
     */
    bool dfsSleepSets = true;

    /** Run the serializability/opacity checker on each history. */
    bool checkHistories = true;

    /** Replays the minimizer may spend shrinking a failing token. */
    size_t minimizeBudget = 400;
};

/** Everything observed about one scheduled run. */
struct RunOutcome
{
    bool completed = false;  //!< False: poisoned at the step limit.
    bool invariantOk = true; //!< Program invariant (if any).
    std::string invariantWhy;
    CheckResult check;       //!< History-checker verdict.
    std::string token;       //!< Full executed schedule.
    std::string historyText; //!< History::format() of the run.
    size_t steps = 0;

    /** True when the run violated anything. */
    bool
    failed() const
    {
        return !completed || !invariantOk || !check.ok();
    }
};

/** Aggregate result of an exploration. */
struct ExploreResult
{
    size_t runs = 0;
    size_t distinct = 0;  //!< Distinct executed schedules.
    bool exhausted = false; //!< DFS: the whole tree was covered.
    bool failed = false;
    RunOutcome failure;   //!< First failing run (when failed).
    std::string minimizedToken; //!< Shrunk failing replay token.
};

/**
 * Owns one runtime (algorithm kind + program) and executes scheduled
 * runs over it. Construction registers every program thread's context
 * up-front from the calling thread, so tids are deterministic; each
 * run starts from TmRuntime::resetForTest() state.
 */
class Explorer
{
  public:
    Explorer(AlgoKind kind, CheckProgram program);
    ~Explorer();

    Explorer(const Explorer &) = delete;
    Explorer &operator=(const Explorer &) = delete;

    /** Run the program under @p opts; stops at the first failure. */
    ExploreResult explore(const ExploreOptions &opts);

    /** Re-execute one schedule from its replay token. */
    RunOutcome replay(const std::string &token,
                      size_t max_steps = 100000);

    /** One seeded random-walk run (replay-determinism tests). */
    RunOutcome sample(uint64_t seed, size_t max_steps = 100000);

    /** The program under exploration. */
    const CheckProgram &program() const { return program_; }

    /** The runtime (post-run inspection in tests). */
    TmRuntime &runtime() { return *rt_; }

  private:
    /** One shared variable, padded so HTM conflict tracking treats
     *  program variables independently. */
    struct alignas(64) VarCell
    {
        uint64_t v = 0;
    };

    RunOutcome runOnce(SchedStrategy &strategy, size_t max_steps,
                       bool check_history = true);
    void threadBody(unsigned tid);
    void execOp(Txn &tx, unsigned tid, const TxOp &op);

    CheckProgram program_;
    RuntimeConfig cfg_;
    std::unique_ptr<TmRuntime> rt_;
    std::vector<VarCell> cells_;
    History hist_;
};

} // namespace rhtm::check

#endif // RHTM_CHECK_EXPLORER_H
