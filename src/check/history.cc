#include "src/check/history.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace rhtm::check
{

std::string
History::format() const
{
    std::ostringstream out;
    for (const HistEvent &e : events_) {
        out << 't' << unsigned(e.tid) << ' ';
        switch (e.kind) {
          case HistKind::kBegin: out << "begin"; break;
          case HistKind::kAttempt: out << "attempt"; break;
          case HistKind::kRead:
            out << "read v" << e.var << '=' << e.value;
            break;
          case HistKind::kWrite:
            out << "write v" << e.var << '=' << e.value;
            break;
          case HistKind::kCommit: out << "commit"; break;
        }
        out << '\n';
    }
    return out.str();
}

const char *
checkVerdictName(CheckVerdict verdict)
{
    switch (verdict) {
      case CheckVerdict::kOk: return "ok";
      case CheckVerdict::kNotSerializable: return "not-serializable";
      case CheckVerdict::kZombieRead: return "zombie-read";
      case CheckVerdict::kMalformed: return "malformed";
    }
    return "unknown";
}

namespace
{

/** One read or write inside an attempt. */
struct AccessOp
{
    bool isWrite;
    unsigned var;
    uint64_t value;
};

/** One attempt (body execution) of a transaction. */
struct Attempt
{
    std::vector<AccessOp> ops;
    size_t startIndex; //!< Event index of its kAttempt marker.
};

/** One transaction: a kBegin..kCommit span with >= 1 attempts. */
struct TxnRec
{
    unsigned tid;
    size_t beginIndex;
    size_t commitIndex = SIZE_MAX; //!< SIZE_MAX while uncommitted.
    std::vector<Attempt> attempts;

    bool committed() const { return commitIndex != SIZE_MAX; }
};

struct ParsedHistory
{
    std::vector<TxnRec> txns; //!< All transactions, in begin order.
    std::string error;        //!< Nonempty when malformed.
};

ParsedHistory
parseHistory(const History &history)
{
    ParsedHistory out;
    // Per-tid index of the open (begun, uncommitted) transaction.
    std::map<unsigned, size_t> open;
    const std::vector<HistEvent> &ev = history.events();
    for (size_t i = 0; i < ev.size(); ++i) {
        const HistEvent &e = ev[i];
        const unsigned tid = e.tid;
        auto it = open.find(tid);
        switch (e.kind) {
          case HistKind::kBegin:
            if (it != open.end()) {
                out.error = "t" + std::to_string(tid) +
                            " begin while a txn is open";
                return out;
            }
            open[tid] = out.txns.size();
            out.txns.push_back(TxnRec{tid, i, SIZE_MAX, {}});
            break;
          case HistKind::kAttempt:
            if (it == open.end()) {
                out.error = "t" + std::to_string(tid) +
                            " attempt outside a txn";
                return out;
            }
            out.txns[it->second].attempts.push_back(Attempt{{}, i});
            break;
          case HistKind::kRead:
          case HistKind::kWrite: {
            if (it == open.end() ||
                out.txns[it->second].attempts.empty()) {
                out.error = "t" + std::to_string(tid) +
                            " access outside an attempt";
                return out;
            }
            Attempt &a = out.txns[it->second].attempts.back();
            a.ops.push_back(AccessOp{e.kind == HistKind::kWrite,
                                     e.var, e.value});
            break;
          }
          case HistKind::kCommit:
            if (it == open.end() ||
                out.txns[it->second].attempts.empty()) {
                out.error = "t" + std::to_string(tid) +
                            " commit without an attempt";
                return out;
            }
            out.txns[it->second].commitIndex = i;
            open.erase(it);
            break;
        }
    }
    return out;
}

/** Variable valuation, sparse over var ids. */
class VarState
{
  public:
    explicit VarState(const std::vector<uint64_t> &init) : init_(init) {}

    uint64_t
    get(unsigned var) const
    {
        auto it = vals_.find(var);
        if (it != vals_.end())
            return it->second;
        return var < init_.size() ? init_[var] : 0;
    }

    void set(unsigned var, uint64_t value) { vals_[var] = value; }

  private:
    const std::vector<uint64_t> &init_;
    std::map<unsigned, uint64_t> vals_;
};

/**
 * Would @p attempt's reads replay against @p state? Own writes shadow:
 * a read after this attempt's own write to the var must (and does)
 * observe the written value, not the pre-state.
 */
bool
attemptReadsValid(const Attempt &attempt, const VarState &state)
{
    std::map<unsigned, uint64_t> ownWrites;
    for (const AccessOp &op : attempt.ops) {
        if (op.isWrite) {
            ownWrites[op.var] = op.value;
            continue;
        }
        auto it = ownWrites.find(op.var);
        uint64_t expect =
            it != ownWrites.end() ? it->second : state.get(op.var);
        if (op.value != expect)
            return false;
    }
    return true;
}

/** Apply @p attempt's final writes (last write per var wins). */
void
applyAttempt(const Attempt &attempt, VarState &state)
{
    for (const AccessOp &op : attempt.ops) {
        if (op.isWrite)
            state.set(op.var, op.value);
    }
}

/**
 * Enumerates every valid serialization of the committed transactions
 * via DFS with real-time-edge pruning. The visitor is called once per
 * complete valid order with the per-step var states; returning false
 * stops the enumeration early.
 */
class SerializationSearch
{
  public:
    SerializationSearch(const std::vector<const TxnRec *> &committed,
                        const std::vector<uint64_t> &init)
        : committed_(committed), init_(init)
    {}

    /**
     * @param visit Called with (order as indices into committed_,
     *        states where states[k] is the valuation AFTER the first k
     *        txns, so states.size() == order.size() + 1). Return false
     *        to stop.
     * @return false when the visitor stopped the walk early.
     */
    template <typename Visitor>
    bool
    enumerate(Visitor &&visit)
    {
        scheduled_.assign(committed_.size(), false);
        order_.clear();
        states_.clear();
        states_.emplace_back(init_);
        found_ = 0;
        return dfs(visit);
    }

    /** Valid serializations seen by the last enumerate() call. */
    size_t found() const { return found_; }

  private:
    template <typename Visitor>
    bool
    dfs(Visitor &&visit)
    {
        if (order_.size() == committed_.size()) {
            ++found_;
            return visit(order_, states_);
        }
        for (size_t i = 0; i < committed_.size(); ++i) {
            if (scheduled_[i])
                continue;
            if (!realTimeReady(i))
                continue;
            const TxnRec &t = *committed_[i];
            const Attempt &a = t.attempts.back();
            if (!attemptReadsValid(a, states_.back()))
                continue;
            scheduled_[i] = true;
            order_.push_back(i);
            states_.push_back(states_.back());
            applyAttempt(a, states_.back());
            if (!dfs(visit))
                return false;
            states_.pop_back();
            order_.pop_back();
            scheduled_[i] = false;
        }
        return true;
    }

    /** All real-time predecessors of committed_[i] already placed? */
    bool
    realTimeReady(size_t i) const
    {
        const TxnRec &t = *committed_[i];
        for (size_t j = 0; j < committed_.size(); ++j) {
            if (j == i || scheduled_[j])
                continue;
            // Unscheduled j must not be forced before i.
            if (committed_[j]->commitIndex < t.beginIndex)
                return false;
        }
        return true;
    }

    const std::vector<const TxnRec *> &committed_;
    const std::vector<uint64_t> &init_;
    std::vector<bool> scheduled_;
    std::vector<size_t> order_;
    std::vector<VarState> states_;
    size_t found_ = 0;
};

} // namespace

CheckResult
checkHistory(const History &history,
             const std::vector<uint64_t> &initialValues)
{
    CheckResult result;
    ParsedHistory parsed = parseHistory(history);
    if (!parsed.error.empty()) {
        result.verdict = CheckVerdict::kMalformed;
        result.detail = parsed.error;
        return result;
    }

    std::vector<const TxnRec *> committed;
    for (const TxnRec &t : parsed.txns) {
        if (t.committed())
            committed.push_back(&t);
    }

    // Collect every aborted attempt: all but the last attempt of a
    // committed txn, every attempt of an uncommitted one.
    struct AbortedAttempt
    {
        const TxnRec *txn;
        const Attempt *attempt;
        bool explained = false;
    };
    std::vector<AbortedAttempt> aborted;
    for (const TxnRec &t : parsed.txns) {
        size_t n = t.attempts.size();
        size_t abortedCount = t.committed() ? n - 1 : n;
        for (size_t i = 0; i < abortedCount; ++i)
            aborted.push_back(AbortedAttempt{&t, &t.attempts[i]});
    }

    // One pass enumerates serializations, capturing (a) a witness
    // order proving committed serializability and (b) for each aborted
    // attempt whether ANY (serialization, prefix) explains its reads.
    // The prefix is constrained by real time from below only: txns
    // whose commit was logged before the attempt's body started MUST
    // be in the attempt's snapshot. (No constraint from above: a
    // commit logged after the attempt's last event may still have
    // linearized before it -- the logging happens outside run().)
    SerializationSearch search(committed, initialValues);
    size_t unexplained = aborted.size();
    bool haveWitness = false;
    std::vector<unsigned> witness;
    search.enumerate([&](const std::vector<size_t> &order,
                         const std::vector<VarState> &states) {
        if (!haveWitness) {
            haveWitness = true;
            for (size_t idx : order)
                witness.push_back(committed[idx]->tid);
        }
        for (AbortedAttempt &a : aborted) {
            if (a.explained)
                continue;
            // Smallest admissible prefix: every committed txn whose
            // commit event precedes the attempt's start must be in it.
            size_t minPrefix = 0;
            for (size_t k = 0; k < order.size(); ++k) {
                if (committed[order[k]]->commitIndex <
                    a.attempt->startIndex)
                    minPrefix = k + 1;
            }
            for (size_t k = minPrefix; k < states.size(); ++k) {
                if (attemptReadsValid(*a.attempt, states[k])) {
                    a.explained = true;
                    --unexplained;
                    break;
                }
            }
        }
        // Stop as soon as both questions are answered.
        return !(haveWitness && unexplained == 0);
    });

    if (!haveWitness && !committed.empty()) {
        result.verdict = CheckVerdict::kNotSerializable;
        std::ostringstream out;
        out << "no serialization of " << committed.size()
            << " committed txn(s) replays all reads; committed reads:";
        for (const TxnRec *t : committed) {
            for (const AccessOp &op : t->attempts.back().ops) {
                if (!op.isWrite)
                    out << " t" << t->tid << ":v" << op.var << '='
                        << op.value;
            }
        }
        result.detail = out.str();
        return result;
    }
    result.witnessOrder = witness;

    for (const AbortedAttempt &a : aborted) {
        if (a.explained)
            continue;
        result.verdict = CheckVerdict::kZombieRead;
        std::ostringstream out;
        out << "aborted attempt of t" << a.txn->tid
            << " observed a snapshot no serialization prefix "
               "produces; reads:";
        for (const AccessOp &op : a.attempt->ops) {
            if (!op.isWrite)
                out << " v" << op.var << '=' << op.value;
        }
        result.detail = out.str();
        return result;
    }
    return result;
}

} // namespace rhtm::check
