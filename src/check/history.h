/**
 * @file
 * Serializability / opacity checker over recorded transaction
 * histories (docs/CHECKING.md).
 *
 * The interleaving explorer records one global, totally ordered event
 * stream per scheduled run: transaction begins, attempt starts, the
 * (var, value) of every transactional read and write, and commits.
 * Post-hoc, this checker decides:
 *
 *  1. Strict serializability of the committed transactions: some
 *     total order, consistent with real time (txn A committed before
 *     txn B began => A precedes B), replays every committed read.
 *  2. Opacity of the aborted attempts: every aborted attempt's reads
 *     must be explainable as a prefix of SOME valid serialization --
 *     a "zombie" that observed x from one committed transaction and y
 *     from an earlier state fails this and is reported as an opacity
 *     violation, even though it never committed.
 *
 * Soundness of the real-time edges rests on how the explorer logs:
 * kBegin is appended BEFORE TmRuntime::run is entered and kCommit
 * AFTER it returns, so commitIndex < beginIndex implies the commit's
 * linearization truly preceded the begin. Edges derived this way are
 * always true edges; at worst the checker misses an edge (logging
 * skew), which can only make it MORE permissive, never report a false
 * violation.
 */

#ifndef RHTM_CHECK_HISTORY_H
#define RHTM_CHECK_HISTORY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rhtm::check
{

/** Event kinds in a recorded history. */
enum class HistKind : uint8_t
{
    kBegin = 0, //!< Transaction about to enter the retry loop.
    kAttempt,   //!< One attempt's body started executing.
    kRead,      //!< Transactional read observed (var, value).
    kWrite,     //!< Transactional write issued (var, value).
    kCommit,    //!< The retry loop returned: the txn is committed.
};

/** One recorded event. */
struct HistEvent
{
    uint8_t tid;
    HistKind kind;
    uint16_t var;
    uint64_t value;
};

/**
 * The global event stream of one scheduled run. Appends are serialized
 * by the cooperative scheduler (exactly one thread runs between
 * scheduling points), so no internal locking is needed.
 */
class History
{
  public:
    void
    push(unsigned tid, HistKind kind, unsigned var = 0,
         uint64_t value = 0)
    {
        events_.push_back(HistEvent{static_cast<uint8_t>(tid), kind,
                                    static_cast<uint16_t>(var), value});
    }

    void clear() { events_.clear(); }

    const std::vector<HistEvent> &events() const { return events_; }

    bool empty() const { return events_.empty(); }

    size_t size() const { return events_.size(); }

    /**
     * Canonical one-line-per-event text ("t0 read v1=7"). The replay
     * determinism test compares this byte-for-byte across re-runs of
     * one schedule token.
     */
    std::string format() const;

  private:
    std::vector<HistEvent> events_;
};

/** Checker verdicts, from best to worst. */
enum class CheckVerdict : uint8_t
{
    kOk = 0,          //!< Strictly serializable, no zombie observed.
    kNotSerializable, //!< No valid order of the committed txns.
    kZombieRead,      //!< An aborted attempt saw an impossible snapshot.
    kMalformed,       //!< The event stream itself is inconsistent.
};

/** Printable verdict name. */
const char *checkVerdictName(CheckVerdict verdict);

/** Outcome of checking one history. */
struct CheckResult
{
    CheckVerdict verdict = CheckVerdict::kOk;

    /** Human-readable witness / explanation for a bad verdict. */
    std::string detail;

    /**
     * For kOk: one valid serialization, as the tid of each committed
     * transaction in order (ties broken deterministically).
     */
    std::vector<unsigned> witnessOrder;

    bool ok() const { return verdict == CheckVerdict::kOk; }
};

/**
 * Check @p history against @p initialValues (indexed by var id; vars
 * beyond the vector start at 0). See the file comment for the two
 * properties decided.
 */
CheckResult checkHistory(const History &history,
                         const std::vector<uint64_t> &initialValues);

} // namespace rhtm::check

#endif // RHTM_CHECK_HISTORY_H
