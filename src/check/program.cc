#include "src/check/program.h"

namespace rhtm::check
{

namespace
{

TxOp
rd(unsigned var)
{
    return TxOp{TxOpKind::kRead, var, 0};
}

TxOp
wr(unsigned var, uint64_t value)
{
    return TxOp{TxOpKind::kWrite, var, value};
}

TxOp
add(unsigned var, uint64_t value)
{
    return TxOp{TxOpKind::kAdd, var, value};
}

CheckProgram
writeSkew()
{
    // The canonical snapshot-isolation litmus: each thread reads the
    // OTHER thread's variable, then writes its own. Serializable
    // outcomes: at least one thread observes the other's write.
    CheckProgram p;
    p.name = "write-skew";
    p.vars = 2;
    p.init = {0, 0};
    p.threads = {
        ThreadSpec{{TxnSpec{{rd(1), wr(0, 1)}}}},
        ThreadSpec{{TxnSpec{{rd(0), wr(1, 1)}}}},
    };
    return p;
}

CheckProgram
readOnlySnapshot()
{
    // A read-only transaction races a two-word writer: it must see
    // {0,0} or {1,1}, never a mix. Exercises the read-only fast-path
    // commit (no clock bump) against the writeback window.
    CheckProgram p;
    p.name = "ro-snapshot";
    p.vars = 2;
    p.init = {0, 0};
    p.threads = {
        ThreadSpec{
            {TxnSpec{{rd(0), rd(1)}, TxnHint::kReadOnly}}},
        ThreadSpec{{TxnSpec{{wr(0, 1), wr(1, 1)}}}},
    };
    return p;
}

CheckProgram
prefixRace()
{
    // A read-prefix-then-write transaction (the shape RH NOrec runs
    // as an HTM prefix) races a writer that overwrites the prefix's
    // footprint mid-stream, plus a shared counter increment whose
    // read-modify-write must stay atomic.
    CheckProgram p;
    p.name = "prefix-race";
    p.vars = 4;
    p.init = {0, 0, 0, 0};
    p.threads = {
        ThreadSpec{{TxnSpec{{rd(0), rd(1), rd(2), wr(3, 7)}}}},
        ThreadSpec{{TxnSpec{{wr(0, 5), wr(1, 5)}},
                    TxnSpec{{add(2, 1)}}}},
        ThreadSpec{{TxnSpec{{add(2, 1)}}}},
    };
    return p;
}

CheckProgram
postfixRace()
{
    // Writer transactions whose writebacks (RH NOrec's HTM postfix,
    // the hybrids' clock-held in-place phase) overlap a reader that
    // spans both footprints.
    CheckProgram p;
    p.name = "postfix-race";
    p.vars = 3;
    p.init = {0, 0, 0};
    p.threads = {
        ThreadSpec{{TxnSpec{{rd(0), wr(1, 3), wr(2, 3)}}}},
        ThreadSpec{{TxnSpec{{rd(1), wr(0, 9), add(2, 1)}}}},
    };
    return p;
}

CheckProgram
irrevocableUpgrade()
{
    // An attempt upgrades to irrevocable mid-body (which may restart
    // it pre-grant) while a writer churns both its already-read and
    // its about-to-write footprint.
    CheckProgram p;
    p.name = "irrevocable-upgrade";
    p.vars = 2;
    p.init = {0, 0};
    p.threads = {
        ThreadSpec{{TxnSpec{
            {rd(0), TxOp{TxOpKind::kIrrevocable}, wr(1, 1)}}}},
        ThreadSpec{{TxnSpec{{wr(0, 1), wr(1, 2)}}}},
    };
    return p;
}

} // namespace

std::vector<CheckProgram>
curatedPrograms()
{
    std::vector<CheckProgram> out;
    out.push_back(writeSkew());
    out.push_back(readOnlySnapshot());
    out.push_back(prefixRace());
    out.push_back(postfixRace());
    out.push_back(irrevocableUpgrade());
    // Commit-path campaign programs, fix in place: the extension
    // zombie workload and the saturated-filter pathology run under
    // every kind in the matrix.
    out.push_back(makeTsExtensionProgram(false));
    out.push_back(makeFilterCollisionProgram());
    return out;
}

bool
curatedProgram(const std::string &name, CheckProgram &out)
{
    for (CheckProgram &p : curatedPrograms()) {
        if (p.name == name) {
            out = std::move(p);
            return true;
        }
    }
    return false;
}

CheckProgram
makeFirstTryBudgetProgram(bool reverted)
{
    // Thread 0: the first transaction's hardware write takes one
    // injected non-retryable abort (score 512 -> 448, one software
    // fallback commit); the twelve clean single-write transactions
    // after it commit first-try in hardware. With the recovery fix
    // each first-try commit adds (1024-score)/64, lifting the score
    // past 540; reverted, first-try commits add nothing and it stays
    // at 448 -- on EVERY schedule, because thread 1 is a read-only
    // bystander on a disjoint variable and can never force thread 0
    // off its first attempt.
    CheckProgram p;
    p.name = "regress-first-try-budget";
    p.vars = 2;
    p.init = {0, 0};
    ThreadSpec t0;
    for (unsigned i = 0; i < 13; ++i)
        t0.txns.push_back(TxnSpec{{wr(0, i + 1)}});
    p.threads = {t0,
                 ThreadSpec{{TxnSpec{{rd(1)}, TxnHint::kReadOnly}}}};
    p.configure = [reverted](RuntimeConfig &cfg) {
        cfg.retry.adaptive = true;
        cfg.retry.revertFirstTryBudgetFix = reverted;
        FaultRule abortFirstWrite;
        abortFirstWrite.site = FaultSite::kTxWrite;
        abortFirstWrite.kind = FaultKind::kAbortOther;
        abortFirstWrite.firstHit = 1;
        abortFirstWrite.maxFires = 1;
        abortFirstWrite.tid = 0;
        cfg.fault.add(abortFirstWrite);
    };
    p.invariant = [](TmRuntime &rt, std::string *why) {
        uint32_t score = rt.context(0).session().adaptiveScoreForTest();
        if (score >= 500)
            return true;
        if (why != nullptr)
            *why = "adaptive score stuck at " + std::to_string(score) +
                   " (< 500): first-try commits earned no recovery";
        return false;
    };
    return p;
}

CheckProgram
makeKillSwitchStreakProgram(bool reverted)
{
    // Start with the breaker tripped and one decay step from reopen
    // (cooldown = 1). Threads 0 and 1 each complete one transaction
    // (bypassed into software while tripped; an injected retryable
    // conflict keeps them out of hardware even after the reopen, so
    // neither can ever register a hardware commit that would reset
    // the streak legitimately). Exactly one of their completions wins
    // the cooldown 1 -> 0 CAS and reopens the breaker; thread 2 waits
    // for the reopen, then runs two transactions whose hardware
    // attempts each take an injected non-retryable abort, building
    // the failure streak to the threshold (2) -- so the breaker MUST
    // trip again. Under the reverted fix, a schedule that parks the
    // losing decayer at kKillSwitchDecay across the reopen and thread
    // 2's first failure lets its stale-snapshot CAS failure wipe the
    // streak, and the second trip never happens.
    CheckProgram p;
    p.name = "regress-kill-switch-streak";
    p.vars = 3;
    p.init = {0, 0, 0};
    ThreadSpec t2;
    t2.waitKillSwitchOpen = true;
    t2.txns = {TxnSpec{{wr(2, 1)}}, TxnSpec{{wr(2, 2)}}};
    p.threads = {ThreadSpec{{TxnSpec{{wr(0, 1)}}}},
                 ThreadSpec{{TxnSpec{{wr(1, 1)}}}}, t2};
    p.configure = [reverted](RuntimeConfig &cfg) {
        cfg.retry.maxFastPathRetries = 1;
        cfg.retry.killSwitchThreshold = 2;
        cfg.retry.killSwitchCooldownOps = 100;
        cfg.retry.revertKillSwitchStreakFix = reverted;
        for (int tid = 0; tid < 2; ++tid) {
            FaultRule conflict;
            conflict.site = FaultSite::kHtmBegin;
            conflict.kind = FaultKind::kAbortConflict;
            conflict.firstHit = 1;
            conflict.period = 1;
            conflict.tid = tid;
            cfg.fault.add(conflict);
        }
        FaultRule fail;
        fail.site = FaultSite::kHtmBegin;
        fail.kind = FaultKind::kAbortOther;
        fail.firstHit = 1;
        fail.period = 1;
        fail.tid = 2;
        cfg.fault.add(fail);
    };
    p.setup = [](TmRuntime &rt) {
        // Pre-tripped, one decay from reopen. Runtime metadata (plain
        // atomics), deliberately outside TM-visible memory.
        rt.globals().killSwitch.cooldown.store(
            1, std::memory_order_relaxed);
    };
    p.invariant = [](TmRuntime &rt, std::string *why) {
        uint64_t trips = rt.globals().killSwitch.activations.load(
            std::memory_order_relaxed);
        if (trips >= 1)
            return true;
        if (why != nullptr)
            *why = "breaker never re-tripped: the probing thread's "
                   "failure streak was wiped by a stale decayer";
        return false;
    };
    return p;
}

CheckProgram
makePolicySnapshotProgram(bool reverted)
{
    // Sessions are built with the default static policy; after
    // registration the program flips the ONE live policy to adaptive
    // with min == max == 2. Every session must serve budget() == 2
    // from then on. Under the reverted fix the budget object froze a
    // copy at construction (adaptive = false) and keeps serving the
    // static budget of 10 -- deterministically, on every schedule.
    CheckProgram p;
    p.name = "regress-policy-snapshot";
    p.vars = 1;
    p.init = {0};
    p.threads = {ThreadSpec{{TxnSpec{{wr(0, 1)}}}},
                 ThreadSpec{{TxnSpec{{add(0, 1)}}}}};
    p.configure = [reverted](RuntimeConfig &cfg) {
        cfg.retry.revertPolicySnapshotFix = reverted;
    };
    p.postRegister = [](TmRuntime &rt) {
        RetryPolicy &live = rt.mutableRetryPolicyForTest();
        live.adaptive = true;
        live.adaptiveMinRetries = 2;
        live.adaptiveMaxRetries = 2;
    };
    p.invariant = [](TmRuntime &rt, std::string *why) {
        unsigned budget =
            rt.context(0).session().fastRetryBudgetForTest();
        if (budget == 2)
            return true;
        if (why != nullptr)
            *why = "live policy change invisible: budget() == " +
                   std::to_string(budget) + ", want 2";
        return false;
    };
    return p;
}

CheckProgram
makeDeadlineUnwindProgram(bool reverted)
{
    // Thread 0's single add(var0) is bounded to three attempts. The
    // injected faults walk it through the exact states the bug needs:
    // every hardware read aborts (attempt 1 burns the zero fast-path
    // budget and falls back), and every software write restarts (each
    // slow attempt registers the fallback, then unwinds via
    // TxRestart, which deliberately KEEPS the registration for the
    // next attempt). The attempt budget then expires at a boundary
    // with the registration still published, and only the unwind
    // tail's deregistration -- the fix under test -- drops it. Thread
    // 1 is a fault-free bystander on var1 whose two commits prove the
    // runtime stayed healthy. Deterministic on every schedule: the
    // faults are keyed to thread 0's own program order.
    CheckProgram p;
    p.name = "regress-deadline-unwind";
    p.vars = 2;
    p.init = {0, 0};
    TxnSpec bounded;
    bounded.ops = {add(0, 1)};
    bounded.maxAttempts = 3;
    p.threads = {ThreadSpec{{bounded}},
                 ThreadSpec{{TxnSpec{{wr(1, 1)}}, TxnSpec{{wr(1, 2)}}}}};
    p.configure = [reverted](RuntimeConfig &cfg) {
        cfg.retry.maxFastPathRetries = 0;
        cfg.retry.revertDeadlineUnwindFix = reverted;
        FaultRule hwRead;
        hwRead.site = FaultSite::kTxRead;
        hwRead.kind = FaultKind::kAbortConflict;
        hwRead.firstHit = 1;
        hwRead.period = 1;
        hwRead.tid = 0;
        cfg.fault.add(hwRead);
        FaultRule swWrite;
        swWrite.site = FaultSite::kSoftwareWrite;
        swWrite.kind = FaultKind::kAbortOther;
        swWrite.firstHit = 1;
        swWrite.period = 1;
        swWrite.tid = 0;
        cfg.fault.add(swWrite);
    };
    p.invariant = [](TmRuntime &rt, std::string *why) {
        uint64_t leaked = rt.globals().fallbacks;
        uint64_t unwound =
            rt.stats().get(Counter::kDeadlineExceeded);
        uint64_t committed = rt.stats().get(Counter::kOperations);
        if (leaked == 0 && unwound == 1 && committed == 2)
            return true;
        if (why != nullptr)
            *why = "deadline unwind left fallbacks=" +
                   std::to_string(leaked) + " (want 0), " +
                   "deadline_exceeded=" + std::to_string(unwound) +
                   " (want 1), operations=" +
                   std::to_string(committed) + " (want 2)";
        return false;
    };
    return p;
}

CheckProgram
makeTsExtensionProgram(bool reverted)
{
    // Thread 0 writes var1 then var0 in ONE transaction (eager kinds
    // write in place under the held clock, in program order). Thread 1
    // reads var0 then var1. Atomicity demands it observe {0,0} or
    // {1,1}. The zombie: reader logs var0==0, the writer locks the
    // clock and stores var1, and the reader's var1 read extends --
    // under the reverted fix it value-checks the still-unwritten var0
    // against the mid-writeback image, adopts the LOCKED clock, and
    // returns var1==1; its read-only commit then records the
    // impossible {0,1}. The fixed extension blocks on the lock, sees
    // var0 overwritten, and restarts. Read filter off so extension
    // always takes the value path; hardware begins scripted dead so
    // the hybrids run the same software phase (a no-op for pure STM).
    CheckProgram p;
    p.name = "ts-extend-zombie";
    p.vars = 2;
    p.init = {0, 0};
    p.threads = {
        ThreadSpec{{TxnSpec{{wr(1, 1), wr(0, 1)}}}},
        ThreadSpec{{TxnSpec{{rd(0), rd(1)}}}},
    };
    p.configure = [reverted](RuntimeConfig &cfg) {
        cfg.commitPath.tsExtension = true;
        cfg.commitPath.readFilter = false;
        cfg.retry.revertTsExtensionFix = reverted;
        cfg.retry.maxFastPathRetries = 0;
        FaultRule hw;
        hw.site = FaultSite::kHtmBegin;
        hw.kind = FaultKind::kAbortConflict;
        hw.firstHit = 1;
        hw.period = 1;
        cfg.fault.add(hw);
    };
    return p;
}

CheckProgram
makeFilterCollisionProgram()
{
    // Disjoint writers on var0/var1 race a spanning reader while every
    // Bloom summary is saturated (the universal collision): all
    // published write sets intersect all read summaries, so the
    // disjointness skip must never fire and every clock bump must take
    // the conservative full revalidation -- which has to keep
    // committing the workload correctly (the history checker verifies
    // the values; the invariant verifies no skip was taken).
    CheckProgram p;
    p.name = "filter-collision";
    p.vars = 3;
    p.init = {0, 0, 0};
    p.threads = {
        ThreadSpec{{TxnSpec{{wr(0, 1)}}, TxnSpec{{add(0, 1)}}}},
        ThreadSpec{{TxnSpec{{wr(1, 1)}}, TxnSpec{{add(1, 1)}}}},
        ThreadSpec{{TxnSpec{{rd(0), rd(1), rd(2)}}}},
    };
    p.configure = [](RuntimeConfig &cfg) {
        cfg.commitPath.readFilter = true;
        cfg.commitPath.filterSaturateForTest = true;
    };
    p.invariant = [](TmRuntime &rt, std::string *why) {
        uint64_t skipped =
            rt.stats().get(Counter::kRevalidationsSkipped);
        if (skipped == 0)
            return true;
        if (why != nullptr)
            *why = "saturated summaries passed the disjointness skip " +
                   std::to_string(skipped) + " time(s)";
        return false;
    };
    return p;
}

} // namespace rhtm::check
