/**
 * @file
 * Small declarative transaction programs for the interleaving
 * explorer, the curated correctness matrix, and the reverted-fix
 * regression programs (docs/CHECKING.md).
 */

#ifndef RHTM_CHECK_PROGRAM_H
#define RHTM_CHECK_PROGRAM_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/api/runtime.h"

namespace rhtm::check
{

/** One transactional operation inside a TxnSpec. */
enum class TxOpKind : uint8_t
{
    kRead = 0,    //!< Load var; the observed value is recorded.
    kWrite,       //!< Store value to var.
    kAdd,         //!< Load var, store var + value (records both).
    kIrrevocable, //!< becomeIrrevocable() (may restart pre-grant).
};

/** One operation. */
struct TxOp
{
    TxOpKind kind;
    unsigned var = 0;
    uint64_t value = 0;
};

/** One transaction: its body ops and the runtime hint. */
struct TxnSpec
{
    std::vector<TxOp> ops;
    TxnHint hint = TxnHint::kNone;

    /**
     * Attempt budget: when nonzero the transaction runs through
     * TmRuntime::runWith with this TxnOptions::maxAttempts and is
     * allowed to end kDeadlineExceeded instead of committing. Explorer
     * programs bound transactions by attempts, never by wall-clock
     * deadline -- an attempt count is deterministic on a replayed
     * schedule, a clock is not (docs/OVERLOAD.md). Place a bounded
     * transaction LAST in its thread: an uncommitted outcome leaves
     * its recorded history span open, and the checker rejects a later
     * begin on the same thread.
     */
    unsigned maxAttempts = 0;
};

/** One logical thread: its transactions, in order. */
struct ThreadSpec
{
    std::vector<TxnSpec> txns;

    /**
     * Spin (at a scheduler wait point) until the anti-lemming kill
     * switch is open before running any transaction. The kill-switch
     * regression program gates its probing thread on the reopen this
     * way.
     */
    bool waitKillSwitchOpen = false;
};

/**
 * A complete explorable program: shared variables, threads, and
 * optional hooks. Everything must stay deterministic: hooks may not
 * consult time, randomness, or anything outside the runtime.
 */
struct CheckProgram
{
    std::string name;

    /** Number of shared variables (var ids are 0..vars-1). */
    unsigned vars = 0;

    /** Initial value per var (missing entries start at 0). */
    std::vector<uint64_t> init;

    std::vector<ThreadSpec> threads;

    /** Adjust the RuntimeConfig before the runtime is built. */
    std::function<void(RuntimeConfig &)> configure;

    /**
     * Runs once after every thread registered (and never again):
     * post-construction knob changes, e.g. the policy-freeze
     * regression's live-policy mutation.
     */
    std::function<void(TmRuntime &)> postRegister;

    /** Runs before every explored run, after resetForTest. */
    std::function<void(TmRuntime &)> setup;

    /**
     * Checked after each completed run; returns false (with @p why
     * filled) when the program-level invariant is violated. May read
     * runtime state freely: every worker has finished.
     */
    std::function<bool(TmRuntime &, std::string *why)> invariant;
};

/**
 * The curated correctness matrix (the ci.sh `check` leg runs each of
 * these under every AlgoKind): write-skew, read-only snapshot,
 * prefix race, postfix race, and an irrevocable-upgrade race.
 */
std::vector<CheckProgram> curatedPrograms();

/** Look a curated program up by name; false when unknown. */
bool curatedProgram(const std::string &name, CheckProgram &out);

// ----------------------------------------------------------------------
// Reverted-fix regression programs. Each builds the workload whose
// invariant the historical bug breaks; pass reverted=true to flip the
// matching RetryPolicy::revert* switch and re-introduce the bug.

/**
 * AdaptiveRetryBudget first-try-commit recovery: one injected
 * non-retryable abort knocks thread 0's payoff score down; a train of
 * first-try hardware commits must pull it back up. Deterministic on
 * every schedule in both directions.
 */
CheckProgram makeFirstTryBudgetProgram(bool reverted);

/**
 * killSwitchOnComplete streak reset: a decayer parked between its
 * cooldown load and CAS holds a stale "1"; under the bug its failed
 * CAS still wipes failures a gated prober accumulated after the real
 * reopen, so the breaker misses a trip. Fails only on schedules that
 * park the decayer across the reopen and the prober's first failure.
 */
CheckProgram makeKillSwitchStreakProgram(bool reverted);

/**
 * Policy-by-value freeze: the adaptive budget must see knob changes
 * made after session construction. The program flips the live policy
 * to adaptive with a pinned budget post-registration; under the bug
 * the frozen snapshot keeps serving the stale static budget. Fails
 * deterministically on every schedule.
 */
CheckProgram makePolicySnapshotProgram(bool reverted);

/**
 * Deadline-unwind fallback deregistration: a transaction that exhausts
 * its attempt budget on the software slow path must drop its published
 * fallback registration on the way out. Under the reverted fix the
 * unwind tail skips the deregistration, leaving a permanent +1 on
 * TmGlobals::fallbacks -- invisible to the victim (it unwound
 * cleanly) but taxing every later hardware writer with a clock bump
 * forever. Deterministic on every schedule: the injected read faults
 * force thread 0 through fast-abort, slow-restart, and out at the
 * attempt boundary regardless of interleaving.
 */
CheckProgram makeDeadlineUnwindProgram(bool reverted);

/**
 * Timestamp-extension zombie read (commit-path front 3,
 * docs/COMMIT_PATH.md): a reader extends its snapshot across an eager
 * writer's in-place writeback. The correct extension only ever adopts
 * a stable (unlocked) clock that held still across the value walk;
 * the reverted fix value-checks against the mid-writeback image and
 * adopts the raw -- possibly locked -- clock, after which the
 * reader's later reads compare equal to the locked value and sail
 * past validation while the writer is still writing. The reader then
 * commits a mix of pre- and post-writeback values and the history
 * checker rejects the run. Schedule-dependent: only interleavings
 * that park the reader inside the writer's clock-held window fail.
 * Runs with the read filter off so extension always takes the value
 * path (the ring-skip is covered by `filter-collision`).
 */
CheckProgram makeTsExtensionProgram(bool reverted);

/**
 * Universal-collision filter pathology (commit-path front 1):
 * saturated Bloom summaries make every published write set intersect
 * every read summary, so the disjointness skip must NEVER fire --
 * every clock bump takes the conservative full revalidation and the
 * workload must still commit correctly. The invariant pins
 * kRevalidationsSkipped to zero; the history checker covers the
 * values. (This is the false-positive extreme: FPs may only cost
 * spurious revalidations, never correctness.)
 */
CheckProgram makeFilterCollisionProgram();

} // namespace rhtm::check

#endif // RHTM_CHECK_PROGRAM_H
