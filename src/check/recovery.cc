#include "src/check/recovery.h"

#include <algorithm>
#include <cstdio>

namespace rhtm
{

const char *
recoveryVerdictName(RecoveryVerdict verdict)
{
    switch (verdict) {
      case RecoveryVerdict::kOk: return "ok";
      case RecoveryVerdict::kNotPrefix: return "not-prefix";
      case RecoveryVerdict::kLostMarked: return "lost-marked";
      case RecoveryVerdict::kMalformed: return "malformed";
    }
    return "unknown";
}

namespace
{

std::string
format(const char *fmt, unsigned long long a, unsigned long long b)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    return std::string(buf);
}

} // namespace

RecoveryCheckResult
checkRecoveryConsistency(const std::vector<uint64_t> &initialData,
                         const std::vector<DurableTxnRecord> &history,
                         const NvmImage &crashImage,
                         const std::vector<uint64_t> &recoveredData)
{
    RecoveryCheckResult res;
    if (recoveredData.size() != initialData.size()) {
        res.verdict = RecoveryVerdict::kMalformed;
        res.detail = format("recovered data region has %llu words, "
                            "formatted region had %llu",
                            recoveredData.size(), initialData.size());
        return res;
    }

    // Which seal-order indices were durably acknowledged? A marker can
    // only exist for a sealed record (its slot is reserved at seal
    // time); anything else means the media is corrupt.
    size_t required = 0; // Matched prefix must be >= this.
    for (size_t i = 0; i < crashImage.marks.size(); ++i) {
        if (crashImage.marks[i] == 0)
            continue;
        if (!nvmMarkValid(crashImage.marks[i])) {
            res.verdict = RecoveryVerdict::kMalformed;
            res.detail = format("marks[%llu] is neither zero nor a "
                                "valid marker (0x%llx)",
                                i, crashImage.marks[i]);
            return res;
        }
        if (i >= history.size()) {
            res.verdict = RecoveryVerdict::kMalformed;
            res.detail = format("marker at slot %llu but only %llu "
                                "sealed records exist",
                                i, history.size());
            return res;
        }
        required = std::max(required, i + 1);
    }

    // Walk the history forward, applying one sealed transaction at a
    // time, and remember the longest prefix whose state equals the
    // recovered image exactly.
    std::vector<uint64_t> state = initialData;
    bool matched = false;
    size_t bestMatch = 0;
    if (state == recoveredData) {
        matched = true;
        bestMatch = 0;
    }
    for (size_t k = 0; k < history.size(); ++k) {
        for (const DurableWrite &w : history[k].writes) {
            if (w.offset >= state.size()) {
                res.verdict = RecoveryVerdict::kMalformed;
                res.detail = format("history record %llu writes "
                                    "offset %llu out of range",
                                    k, w.offset);
                return res;
            }
            state[w.offset] = w.value;
        }
        if (state == recoveredData) {
            matched = true;
            bestMatch = k + 1;
        }
    }

    if (!matched) {
        res.verdict = RecoveryVerdict::kNotPrefix;
        res.detail = format("recovered state equals no prefix of the "
                            "%llu-record history (%llu markers)",
                            history.size(), required);
        return res;
    }
    if (bestMatch < required) {
        res.verdict = RecoveryVerdict::kLostMarked;
        res.detail = format("longest matching prefix is %llu records "
                            "but markers require at least %llu",
                            bestMatch, required);
        return res;
    }
    res.verdict = RecoveryVerdict::kOk;
    res.prefixLength = bestMatch;
    return res;
}

RecoveryCheckResult
recoverAndCheck(const CrashSnapshot &snapshot,
                const RecoveryOptions &opts, RecoveryReport *report)
{
    NvmImage image = snapshot.image;
    RecoveryReport r = recoverImage(image, opts);
    if (report != nullptr)
        *report = r;
    return checkRecoveryConsistency(snapshot.initialData,
                                    snapshot.history, snapshot.image,
                                    image.data);
}

} // namespace rhtm
