/**
 * @file
 * Recovery-consistency checker for the simulated-NVM persistence
 * overlay (docs/PERSISTENCE.md "Durable linearizability").
 *
 * Contract checked: the post-recovery durable data region must equal
 * the initial contents with some prefix of the seal-order history
 * applied, and every transaction whose commit marker is durable must
 * be inside that prefix. Equivalently:
 *
 *   - no unsealed (uncommitted) effect survives recovery,
 *   - no marker-persisted (durably acknowledged) transaction is lost,
 *   - recovery never invents or reorders effects: the durable state is
 *     a strict-serializable prefix of the committed history.
 *
 * The prefix comparison is exact state equality, so any replay bug --
 * an unsealed record replayed, an entry dropped, values applied out of
 * last-write-wins order -- surfaces as kNotPrefix (see the reverted-
 * fix leg in tools/ci.sh and tests/persist/recovery_check_test.cc).
 */

#ifndef RHTM_CHECK_RECOVERY_H
#define RHTM_CHECK_RECOVERY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/persist/nvm_sim.h"

namespace rhtm
{

/** Outcome of one recovery-consistency check. */
enum class RecoveryVerdict
{
    kOk,         //!< A valid prefix containing every marked txn.
    kNotPrefix,  //!< Recovered state matches no history prefix.
    kLostMarked, //!< Prefix found, but a marked txn is past its end.
    kMalformed,  //!< Sizes/marks inconsistent with the ground truth.
};

/** Human-readable verdict name. */
const char *recoveryVerdictName(RecoveryVerdict verdict);

/** One check's result. */
struct RecoveryCheckResult
{
    RecoveryVerdict verdict = RecoveryVerdict::kMalformed;
    /** Length of the matched history prefix (valid when kOk). */
    size_t prefixLength = 0;
    /** Diagnostic for failures (empty on kOk). */
    std::string detail;
};

/**
 * Verify that @p recoveredData is durably-linearizable against the
 * ground truth captured with the crash.
 *
 * @param initialData Data region at format time (snapshot field).
 * @param history Seal-order committed history at capture.
 * @param crashImage Durable media as the crash left it (its marks
 *        array decides which transactions were durably acknowledged).
 * @param recoveredData Data region after recoverImage() ran.
 *
 * Concurrent disjoint-writeset commits (TL2) may seal in an order that
 * differs from their log-append order; their effects commute, so exact
 * prefix equality still holds (docs/PERSISTENCE.md "Non-seqlock commit
 * orders").
 */
RecoveryCheckResult
checkRecoveryConsistency(const std::vector<uint64_t> &initialData,
                         const std::vector<DurableTxnRecord> &history,
                         const NvmImage &crashImage,
                         const std::vector<uint64_t> &recoveredData);

/**
 * Convenience wrapper: recover @p snapshot's image (under @p opts) and
 * check it. @p report, when non-null, receives the recovery counters.
 */
RecoveryCheckResult
recoverAndCheck(const CrashSnapshot &snapshot,
                const RecoveryOptions &opts = {},
                RecoveryReport *report = nullptr);

} // namespace rhtm

#endif // RHTM_CHECK_RECOVERY_H
