#include "src/check/scheduler.h"
#include <cstdio>
#include <cstdlib>

#include <thread>

namespace rhtm::check
{

thread_local unsigned CoopScheduler::tlsTid_ = 0;

bool
CoopScheduler::run(SchedStrategy &strategy,
                   const std::vector<std::function<void()>> &thread_fns)
{
    n_ = static_cast<unsigned>(thread_fns.size());
    strategy_ = &strategy;
    registered_ = 0;
    current_ = -1;
    poisonVictim_ = -1;
    aborted_ = false;
    steps_ = 0;
    states_.assign(n_, State::kPending);
    pending_.assign(n_, PendingStep{});
    granted_.assign(n_, PendingStep{});
    detached_.assign(n_, 0);
    choices_.clear();

    std::vector<std::thread> threads;
    threads.reserve(n_);
    for (unsigned i = 0; i < n_; ++i)
        threads.emplace_back(
            [this, i, &thread_fns] { threadMain(i, thread_fns[i]); });
    for (std::thread &t : threads)
        t.join();
    return !aborted_;
}

std::string
CoopScheduler::token() const
{
    std::string out;
    out.reserve(choices_.size());
    for (uint8_t c : choices_)
        out.push_back(static_cast<char>('0' + c));
    return out;
}

void
CoopScheduler::threadMain(unsigned tid,
                          const std::function<void()> &fn)
{
    tlsTid_ = tid;
    setSchedClient(this);
    bool runBody = true;
    {
        std::unique_lock<std::mutex> lk(m_);
        // The implicit first step: every thread starts with a pending
        // kThreadStart so the strategy decides who runs first. The
        // last thread to register opens scheduling; tids (assigned by
        // the caller) are independent of OS spawn timing, so the
        // candidate order is deterministic.
        pending_[tid] = PendingStep{};
        states_[tid] = State::kPending;
        ++registered_;
        if (registered_ == n_)
            grantNextLocked();
        cv_.notify_all();
        cv_.wait(lk, [&] {
            return current_ == static_cast<int>(tid) ||
                   (aborted_ &&
                    poisonVictim_ == static_cast<int>(tid));
        });
        if (current_ != static_cast<int>(tid)) {
            // Poisoned before ever being scheduled: skip the body.
            detached_[tid] = 1;
            runBody = false;
        }
    }
    try {
        if (runBody)
            fn();
    } catch (const RunAborted &) {
        // Normal teardown path; state was cleaned by the runtime's
        // user-exception abort handling on the way out.
    }
    {
        std::unique_lock<std::mutex> lk(m_);
        bool wasCurrent = current_ == static_cast<int>(tid);
        states_[tid] = State::kDone;
        if (wasCurrent)
            current_ = -1;
        if (poisonVictim_ == static_cast<int>(tid))
            poisonVictim_ = -1;
        if (aborted_) {
            poisonNextLocked();
        } else if (wasCurrent) {
            // Thread exit completes its final step.
            if (!granted_[tid].wait)
                promoteParkedLocked();
            grantNextLocked();
        }
        cv_.notify_all();
    }
    setSchedClient(nullptr);
}

void
CoopScheduler::schedYield(SchedPoint point, const void *addr, bool wait)
{
    unsigned tid = tlsTid_;
    if (detached_[tid] != 0) {
        // Free-running teardown unwind: scheduling is disabled for
        // this thread; everyone else stays blocked, so this cannot
        // race.
        return;
    }
    std::unique_lock<std::mutex> lk(m_);
    // The code between the previous grant and this call is the step
    // that just completed.
    bool completedWait = granted_[tid].wait;
    pending_[tid] = PendingStep{point, addr, wait};
    states_[tid] = wait ? State::kParked : State::kPending;
    current_ = -1;
    if (!completedWait)
        promoteParkedLocked();

    ++steps_;
    if (aborted_ || steps_ > maxSteps_) {
        // This thread detected the overflow (or was mid-poison): it
        // becomes the active unwinder.
        aborted_ = true;
        detached_[tid] = 1;
        poisonVictim_ = static_cast<int>(tid);
        cv_.notify_all();
        throw RunAborted{};
    }

    grantNextLocked();
    cv_.notify_all();
    cv_.wait(lk, [&] {
        return current_ == static_cast<int>(tid) ||
               (aborted_ && poisonVictim_ == static_cast<int>(tid));
    });
    if (current_ != static_cast<int>(tid)) {
        detached_[tid] = 1;
        throw RunAborted{};
    }
}

void
CoopScheduler::grantNextLocked()
{
    if (aborted_)
        return;
    std::vector<Candidate> cands;
    auto collect = [&] {
        cands.clear();
        for (unsigned t = 0; t < n_; ++t) {
            if (states_[t] == State::kPending)
                cands.push_back(Candidate{t, pending_[t].point,
                                          pending_[t].addr,
                                          pending_[t].wait});
        }
    };
    collect();
    if (cands.empty()) {
        // Everyone runnable is parked: promote all so the spinners
        // can re-check their conditions (covers predicates that were
        // already true when the thread parked).
        promoteParkedLocked();
        collect();
        if (cands.empty())
            return; // Only finished threads remain.
    }
    // Wait steps write nothing shared: scheduling one while a real
    // step is pending yields a state-equivalent schedule, so offering
    // both would only let strategies burn the step budget spinning
    // (DFS would even enumerate those spins as distinct leaves). Only
    // all-wait rounds -- where a re-check IS the next real event, or
    // the program is genuinely deadlocked -- offer wait candidates.
    bool haveReal = false;
    for (const Candidate &c : cands)
        haveReal = haveReal || !c.wait;
    if (haveReal) {
        size_t keep = 0;
        for (const Candidate &c : cands) {
            if (!c.wait)
                cands[keep++] = c;
        }
        cands.resize(keep);
    }
    if (steps_ > maxSteps_ - 40 && getenv("RHTM_SCHED_TRACE"))
        for (const Candidate &c : cands)
            fprintf(stderr, "step %zu cand t%u %s %p\n", steps_, c.tid,
                    schedPointName(c.point), c.addr);
    size_t i = strategy_->pick(cands) % cands.size();
    unsigned t = cands[i].tid;
    choices_.push_back(static_cast<uint8_t>(t));
    granted_[t] = pending_[t];
    states_[t] = State::kRunning;
    current_ = static_cast<int>(t);
}

void
CoopScheduler::promoteParkedLocked()
{
    for (unsigned t = 0; t < n_; ++t) {
        if (states_[t] == State::kParked)
            states_[t] = State::kPending;
    }
}

void
CoopScheduler::poisonNextLocked()
{
    if (poisonVictim_ != -1)
        return;
    for (unsigned t = 0; t < n_; ++t) {
        if (states_[t] != State::kDone) {
            poisonVictim_ = static_cast<int>(t);
            return;
        }
    }
}

} // namespace rhtm::check
