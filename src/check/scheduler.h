/**
 * @file
 * The cooperative deterministic scheduler behind the interleaving
 * explorer (docs/CHECKING.md).
 *
 * CoopScheduler virtualizes thread interleaving over the scheduling
 * points the TM stack exposes (src/util/sched_point.h): it runs each
 * program thread on a real OS thread but blocks all of them on a
 * condition variable, granting exactly ONE thread the right to run
 * between consecutive scheduling points. Which thread runs next is a
 * pluggable SchedStrategy decision; the sequence of decisions (one tid
 * per step) is the schedule, recorded as a replay token.
 *
 * Wait points (schedWaitPoint) park the yielding thread: it is not a
 * candidate again until some other thread completes a non-wait step
 * (any shared-state change may unblock it), or until every runnable
 * thread is parked, in which case all are promoted so spin loops can
 * re-check their conditions. Unbounded spinning therefore cannot
 * produce unbounded schedules for bounded programs; a step limit
 * backstops genuine livelocks.
 *
 * Teardown: when the step limit trips, threads are poisoned ONE AT A
 * TIME -- the victim's next scheduling point throws RunAborted, its
 * unwind (which follows the runtime's user-exception abort path)
 * free-runs with scheduling disabled while every other thread stays
 * blocked, and only when it finishes does the next victim start. At
 * no point do two threads run concurrently, so even a poisoned
 * teardown is data-race-free.
 */

#ifndef RHTM_CHECK_SCHEDULER_H
#define RHTM_CHECK_SCHEDULER_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/sched_point.h"

namespace rhtm::check
{

/** A thread's pending step, as offered to the strategy. */
struct Candidate
{
    unsigned tid;
    SchedPoint point;
    const void *addr;

    /**
     * The step is a wait-loop iteration: running it cannot make
     * progress until another thread acts. Strategies that concentrate
     * on one thread (forced replay past its token, PCT priorities)
     * must prefer non-wait candidates, or a spinner waiting FOR the
     * starved threads turns the schedule into a synthetic livelock.
     */
    bool wait;
};

/**
 * Picks the next thread to run. Candidates are always sorted by tid
 * and non-empty; implementations must be deterministic functions of
 * their own state and the candidate list (docs/CHECKING.md).
 */
class SchedStrategy
{
  public:
    virtual ~SchedStrategy() = default;

    /** @return An index into @p candidates. */
    virtual size_t pick(const std::vector<Candidate> &candidates) = 0;
};

/** Thrown into program threads to tear an aborted run down. */
struct RunAborted
{
};

/** Two pending steps commute: reordering them cannot change state. */
inline bool
stepsIndependent(const Candidate &a, const Candidate &b)
{
    bool aw = schedPointWrites(a.point);
    bool bw = schedPointWrites(b.point);
    if (!aw && !bw)
        return true; // Two reads always commute.
    // A write is independent of the other step only when both
    // footprints are known and disjoint.
    return a.addr != nullptr && b.addr != nullptr && a.addr != b.addr;
}

/** One cooperative scheduler; usable for many runs, one at a time. */
class CoopScheduler final : public SchedClient
{
  public:
    /**
     * @param max_steps Scheduling decisions before a run is declared
     *        livelocked and torn down.
     */
    explicit CoopScheduler(size_t max_steps = 100000)
        : maxSteps_(max_steps)
    {}

    /**
     * Execute @p thread_fns (one per logical tid, tids = indices)
     * under @p strategy. Blocks until every thread finished or the
     * run was torn down.
     *
     * @return true when the run completed; false when it hit the step
     *         limit and was poisoned.
     */
    bool run(SchedStrategy &strategy,
             const std::vector<std::function<void()>> &thread_fns);

    /** The decision sequence of the last run, one tid per step. */
    const std::vector<uint8_t> &choices() const { return choices_; }

    /** The last run's schedule as a replay token ("0110221..."). */
    std::string token() const;

    /** Decisions taken in the last run. */
    size_t steps() const { return steps_; }

    // SchedClient: called by instrumented TM code on program threads.
    void schedYield(SchedPoint point, const void *addr,
                    bool wait) override;

  private:
    enum class State : uint8_t
    {
        kPending, //!< Has a pending step, eligible to be scheduled.
        kRunning, //!< Currently the one executing thread.
        kParked,  //!< Waiting at a wait point; not yet eligible.
        kDone,    //!< Thread function returned (or unwound).
    };

    struct PendingStep
    {
        SchedPoint point = SchedPoint::kThreadStart;
        const void *addr = nullptr;
        bool wait = false;
    };

    void threadMain(unsigned tid,
                    const std::function<void()> &fn);

    /** Pick and grant the next step (lock held, no current thread). */
    void grantNextLocked();

    /** Make every parked thread eligible again (lock held). */
    void promoteParkedLocked();

    /** Begin poisoning: pick the next live victim (lock held). */
    void poisonNextLocked();

    size_t maxSteps_;

    std::mutex m_;
    std::condition_variable cv_;
    SchedStrategy *strategy_ = nullptr;
    unsigned n_ = 0;
    unsigned registered_ = 0;
    int current_ = -1;      //!< Running tid, or -1 while choosing.
    int poisonVictim_ = -1; //!< Tid allowed to unwind, or -1.
    bool aborted_ = false;
    size_t steps_ = 0;
    std::vector<State> states_;
    std::vector<PendingStep> pending_;
    std::vector<PendingStep> granted_; //!< Step each tid is executing.
    // Byte-per-thread (NOT vector<bool>: each entry is read by its
    // own thread outside the lock, and distinct bytes are distinct
    // memory locations where packed bits are not).
    std::vector<uint8_t> detached_; //!< Free-running teardown unwind.
    std::vector<uint8_t> choices_;

    static thread_local unsigned tlsTid_;
};

} // namespace rhtm::check

#endif // RHTM_CHECK_SCHEDULER_H
