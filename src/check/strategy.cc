#include "src/check/strategy.h"

#include <algorithm>

namespace rhtm::check
{

PctStrategy::PctStrategy(uint64_t seed, unsigned depth,
                         unsigned expected_steps)
    : rng_(seed)
{
    // Initial priorities live above 2^32; demotion priorities count
    // down from 2^32 so a demoted thread always ranks below every
    // never-demoted one, and successive demotions stay ordered.
    nextLow_ = uint64_t(1) << 32;
    unsigned points = depth > 0 ? depth - 1 : 0;
    changeAt_.reserve(points);
    for (unsigned i = 0; i < points; ++i)
        changeAt_.push_back(rng_.nextBounded(
            expected_steps > 0 ? expected_steps : 1));
    std::sort(changeAt_.begin(), changeAt_.end());
}

size_t
PctStrategy::pick(const std::vector<Candidate> &candidates)
{
    for (const Candidate &c : candidates) {
        while (priority_.size() <= c.tid)
            priority_.push_back((uint64_t(1) << 32) + 1 +
                                rng_.nextBounded(uint64_t(1) << 31));
    }
    // PCT's guarantee assumes the highest-priority RUNNABLE thread
    // runs; a thread at a wait step cannot progress, so it only joins
    // the priority race when every candidate is waiting (the promoted
    // re-check round). Without this a high-priority spinner waiting
    // FOR the demoted threads monopolizes the schedule forever.
    auto eligible = [&](const Candidate &c) {
        for (const Candidate &o : candidates) {
            if (!o.wait)
                return !c.wait;
        }
        return true; // All waiting: everyone competes.
    };
    auto repick = [&] {
        size_t best = SIZE_MAX;
        for (size_t i = 0; i < candidates.size(); ++i) {
            if (!eligible(candidates[i]))
                continue;
            if (best == SIZE_MAX ||
                priority_[candidates[i].tid] >
                    priority_[candidates[best].tid])
                best = i;
        }
        return best;
    };
    size_t best = repick();
    // A change point demotes the thread that was ABOUT to run, then
    // re-picks, mirroring the PCT paper's "after k steps, drop the
    // priority of the running thread" rule at step granularity.
    while (!changeAt_.empty() && step_ >= changeAt_.front()) {
        changeAt_.erase(changeAt_.begin());
        priority_[candidates[best].tid] = --nextLow_;
        best = repick();
    }
    ++step_;
    return best;
}

bool
DfsStrategy::nextRun()
{
    depth_ = 0;
    if (!started_) {
        started_ = true;
        replayLen_ = 0;
        return true;
    }
    // Backtrack: retire the deepest node's chosen candidate into its
    // sleep set and advance to the next non-sleeping sibling; pop
    // fully explored nodes.
    while (!stack_.empty()) {
        Node &node = stack_.back();
        node.sleepMask |= 1u << node.cands[node.chosen].tid;
        size_t next = node.chosen + 1;
        while (next < node.cands.size() &&
               (node.sleepMask & (1u << node.cands[next].tid)) != 0)
            ++next;
        if (next < node.cands.size()) {
            node.chosen = next;
            replayLen_ = stack_.size();
            return true;
        }
        stack_.pop_back();
    }
    return false;
}

size_t
DfsStrategy::pick(const std::vector<Candidate> &candidates)
{
    size_t d = depth_++;
    if (d < stack_.size()) {
        // Replaying the prefix (or executing the freshly advanced
        // divergence point at d == replayLen_ - 1). Runs are
        // deterministic, so the candidate set matches the recorded
        // one; guard anyway so a nondeterministic program degrades to
        // lowest-tid rather than crashing.
        Node &node = stack_[d];
        if (node.chosen < candidates.size())
            return node.chosen;
        return 0;
    }
    // Fresh node. Inherit the parent's post-choice sleep set, waking
    // every sleeper whose pending step depends on the step the parent
    // just executed (classic sleep-set rule: only independent moves
    // stay asleep across a step).
    // With reduction off the mask still collects tried siblings during
    // backtracking, but fresh nodes inherit nothing, so every ordering
    // is enumerated.
    uint32_t sleep = 0;
    if (sleepSets_ && !stack_.empty()) {
        const Node &parent = stack_.back();
        const Candidate &executed = parent.cands[parent.chosen];
        uint32_t parentSleep =
            parent.sleepMask & ~(1u << executed.tid);
        for (const Candidate &c : candidates) {
            if ((parentSleep & (1u << c.tid)) != 0 &&
                stepsIndependent(executed, c))
                sleep |= 1u << c.tid;
        }
    }
    size_t chosen = 0;
    while (chosen < candidates.size() &&
           (sleep & (1u << candidates[chosen].tid)) != 0)
        ++chosen;
    if (chosen == candidates.size()) {
        // Every candidate is asleep: any continuation from here is
        // equivalent to one already explored, but the run must still
        // finish. Take the first move and mark the node exhausted so
        // backtracking skips straight past it.
        chosen = 0;
        sleep = ~uint32_t(0);
    }
    stack_.push_back(Node{candidates, chosen, sleep});
    return chosen;
}

} // namespace rhtm::check
