/**
 * @file
 * Scheduling strategies for the interleaving explorer: forced replay,
 * seeded random walk, PCT randomized priorities, and bounded
 * exhaustive DFS with sleep-set reduction (docs/CHECKING.md).
 */

#ifndef RHTM_CHECK_STRATEGY_H
#define RHTM_CHECK_STRATEGY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/check/scheduler.h"
#include "src/util/rng.h"

namespace rhtm::check
{

/**
 * Replays a recorded schedule token: while the token lasts, pick its
 * tid when it is a candidate (fallback rule otherwise -- minimized
 * tokens routinely name threads that are no longer pending); past the
 * end, the fallback rule is the lowest-tid NON-wait candidate (lowest
 * tid outright when all are waiting). Preferring non-wait steps keeps
 * a post-token spinner from starving the very threads it waits on.
 * Fully deterministic, so one token identifies one run.
 */
class ForcedStrategy final : public SchedStrategy
{
  public:
    explicit ForcedStrategy(std::string token)
        : token_(std::move(token))
    {}

    size_t
    pick(const std::vector<Candidate> &candidates) override
    {
        if (pos_ < token_.size()) {
            unsigned want =
                static_cast<unsigned>(token_[pos_++] - '0');
            for (size_t i = 0; i < candidates.size(); ++i) {
                if (candidates[i].tid == want)
                    return i;
            }
        }
        for (size_t i = 0; i < candidates.size(); ++i) {
            if (!candidates[i].wait)
                return i;
        }
        return 0;
    }

  private:
    std::string token_;
    size_t pos_ = 0;
};

/** Uniform seeded random walk over the candidate set. */
class RandomWalkStrategy final : public SchedStrategy
{
  public:
    explicit RandomWalkStrategy(uint64_t seed) : rng_(seed) {}

    size_t
    pick(const std::vector<Candidate> &candidates) override
    {
        return static_cast<size_t>(rng_.next() % candidates.size());
    }

  private:
    Rng rng_;
};

/**
 * PCT (probabilistic concurrency testing, Burckhardt et al.): each
 * thread gets a random priority; the highest-priority candidate runs.
 * At d-1 random change points the running thread's priority drops
 * below everything else, which guarantees bugs of "depth" d are hit
 * with probability >= 1/(n * k^(d-1)) over schedules of k steps.
 */
class PctStrategy final : public SchedStrategy
{
  public:
    /**
     * @param seed Derives priorities and change points.
     * @param depth The d parameter (number of priority drops + 1).
     * @param expected_steps Horizon the change points are drawn from.
     */
    PctStrategy(uint64_t seed, unsigned depth,
                unsigned expected_steps);

    size_t pick(const std::vector<Candidate> &candidates) override;

  private:
    Rng rng_;
    std::vector<uint64_t> priority_; //!< Indexed by tid; grown lazily.
    std::vector<uint64_t> changeAt_; //!< Step indices, sorted.
    uint64_t step_ = 0;
    uint64_t nextLow_; //!< Descending priorities for demoted threads.
};

/**
 * Bounded exhaustive DFS over the schedule tree, one run per leaf,
 * with sleep-set partial-order reduction: after a subtree explored
 * choice c at a node, c is put to sleep there, and stays asleep in
 * descendants until a dependent step (same address, at least one
 * write) executes. Redundant interleavings of commuting steps are
 * skipped without sacrificing coverage of distinct behaviours.
 *
 * Usage: call nextRun() before each run (false = tree exhausted),
 * then hand the strategy to CoopScheduler::run. Re-execution is
 * stateless (CHESS-style): each run replays the decision prefix and
 * diverges at the deepest node with an unexplored candidate.
 */
class DfsStrategy final : public SchedStrategy
{
  public:
    /**
     * @param sleep_sets Apply sleep-set reduction (default). Off, the
     *        full tree is enumerated -- redundant interleavings of
     *        commuting steps included -- which is what the coverage
     *        gate uses to count raw distinct schedules.
     */
    explicit DfsStrategy(bool sleep_sets = true)
        : sleepSets_(sleep_sets)
    {}

    /** Prepare the next leaf. @return false when exhausted. */
    bool nextRun();

    size_t pick(const std::vector<Candidate> &candidates) override;

    /** Nodes currently on the DFS stack (diagnostic). */
    size_t depth() const { return stack_.size(); }

  private:
    struct Node
    {
        std::vector<Candidate> cands;
        size_t chosen;       //!< Index into cands.
        uint32_t sleepMask;  //!< Tids asleep at this node.
    };

    bool sleepSets_;
    bool started_ = false;
    size_t replayLen_ = 0; //!< Nodes to replay before diverging.
    size_t depth_ = 0;     //!< Current depth within the run.
    std::vector<Node> stack_;
};

} // namespace rhtm::check

#endif // RHTM_CHECK_STRATEGY_H
