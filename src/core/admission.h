/**
 * @file
 * Overload admission control in front of the transaction retry loop
 * (docs/OVERLOAD.md).
 *
 * The retry loop is an amplifier: under a serial storm or a tripped
 * HTM kill switch, every admitted transaction burns its whole fast-path
 * budget against doomed hardware attempts, joins the serial FIFO, and
 * lengthens the very queue that doomed it. The gate breaks the feedback
 * loop at the cheapest point -- before begin(), when nothing is held
 * and no handler is registered -- by shedding (TxnOutcome::
 * kAdmissionShed) or briefly queueing new work while the runtime is
 * overloaded, instead of letting it pile onto the convoy.
 *
 * Overload signals (all cheap, all already maintained):
 *   - serial FIFO depth: serialNextTicket - serialServing;
 *   - the HTM kill switch's cooldown (hardware path known-bad);
 *   - a commit-success EWMA fed by every attempted transaction's
 *     outcome.
 *
 * Hysteresis: the gate opens the moment any enter watermark is crossed
 * and only closes after every exit watermark has been continuously
 * clear for `closeStreak` consecutive observations -- entering is
 * instant, leaving is deliberate, so the gate cannot flap at the
 * watermark. While open, every `probeEvery`-th admit() is let through
 * anyway (circuit-breaker half-open probing), so the success EWMA keeps
 * receiving samples and the gate can observe recovery even when every
 * caller is sheddable.
 *
 * Blocking callers (TxnOptions::allowShed == false, including every
 * legacy run()) are never shed: they queue at most `maxQueueTicks`
 * steps and are then admitted unconditionally -- admission control must
 * degrade throughput, never deadlock a caller that has no shed path.
 */

#ifndef RHTM_CORE_ADMISSION_H
#define RHTM_CORE_ADMISSION_H

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/core/engine/deadline.h"
#include "src/core/engine/globals.h"
#include "src/core/engine/progress.h"
#include "src/fault/fault_injector.h"
#include "src/htm/htm_engine.h"
#include "src/stats/stats.h"

namespace rhtm
{

/** Watermarks and pacing for the admission gate. */
struct AdmissionConfig
{
    /** Master switch; a disabled gate admits everything untouched. */
    bool enabled = false;

    /** Serial FIFO depth that opens the gate. */
    uint64_t serialQueueEnter = 4;

    /** Serial FIFO depth the gate needs to see before it may close. */
    uint64_t serialQueueExit = 1;

    /** Success EWMA (basis points) below which the gate opens. */
    uint32_t successEnterBp = 3000;

    /** Success EWMA (basis points) required before the gate may close. */
    uint32_t successExitBp = 6000;

    /** Waiter steps a sheddable caller queues before being shed. */
    uint64_t maxQueueTicks = 256;

    /** Consecutive all-clear observations required to close the gate. */
    uint64_t closeStreak = 32;

    /** While open, admit every Nth sheddable caller as a probe. */
    uint64_t probeEvery = 8;
};

/**
 * The gate itself: one per runtime, shared by every thread. All state
 * is relaxed atomics -- the signals are heuristics and a lost update
 * only delays a hysteresis transition by one observation.
 */
class AdmissionGate
{
  public:
    explicit AdmissionGate(const AdmissionConfig &cfg) : cfg_(cfg)
    {
        ewmaBp_.store(kEwmaOne, std::memory_order_relaxed);
    }

    /**
     * Decide whether the calling thread may start a transaction.
     * Returns false only when the gate is open AND @p allowShed -- the
     * caller then reports TxnOutcome::kAdmissionShed without touching
     * any TM state. May briefly block (the queue) but never throws:
     * the optional @p deadline is checked non-throwing and simply cuts
     * the queueing short.
     */
    bool
    admit(HtmEngine &eng, TmGlobals &g, const RetryPolicy &policy,
          ThreadStats *stats, DeadlineState *deadline,
          FaultInjector *fault, bool allowShed)
    {
        if (!cfg_.enabled)
            return true;
        fireSite(fault);
        if (!open_.load(std::memory_order_relaxed)) {
            if (!enterSignal(eng, g))
                return true;
            open_.store(true, std::memory_order_relaxed);
            clearStreak_.store(0, std::memory_order_relaxed);
        }
        // Gate is open. Half-open probing keeps outcome samples
        // flowing so recovery is observable even if every caller
        // could be shed.
        if (allowShed && cfg_.probeEvery != 0 &&
            (probeTick_.fetch_add(1, std::memory_order_relaxed) %
             cfg_.probeEvery) == cfg_.probeEvery - 1) {
            return true;
        }
        // Brief queue: the storm may pass (serial convoys drain in
        // FIFO order) within a few waiter steps.
        uint64_t ticks = 0;
        {
            StallAwareWaiter waiter(g, policy, stats,
                                    g.watchdog.serialEpoch);
            while (ticks < cfg_.maxQueueTicks) {
                if (tryClose(eng, g))
                    break;
                if (deadline != nullptr && deadline->expiredNow())
                    break; // No time left to queue; shed below.
                waiter.step();
                ++ticks;
            }
        }
        if (stats != nullptr && ticks != 0)
            stats->inc(Counter::kAdmissionQueuedTicks, ticks);
        if (!open_.load(std::memory_order_relaxed))
            return true; // Closed while we queued.
        if (!allowShed)
            return true; // Blocking caller: degrade, never deadlock.
        if (stats != nullptr)
            stats->inc(Counter::kAdmissionShed);
        return false;
    }

    /**
     * Feed one attempted transaction's outcome into the success EWMA
     * (alpha = 1/16, basis points). Shed transactions never ran and
     * must NOT be fed -- they would read as failures and wedge the
     * gate open.
     */
    void
    onOutcome(bool committed)
    {
        if (!cfg_.enabled)
            return;
        uint32_t sample = committed ? kEwmaOne : 0;
        uint32_t cur = ewmaBp_.load(std::memory_order_relaxed);
        for (;;) {
            uint32_t next = cur - cur / 16 + sample / 16;
            if (ewmaBp_.compare_exchange_weak(cur, next,
                                              std::memory_order_relaxed))
                return;
        }
    }

    /** True while the gate is open (test probe). */
    bool open() const { return open_.load(std::memory_order_relaxed); }

    /** Current success EWMA in basis points (test probe). */
    uint32_t
    successEwmaBp() const
    {
        return ewmaBp_.load(std::memory_order_relaxed);
    }

    /** Back to the post-construction state (test isolation). */
    void
    resetForTest()
    {
        open_.store(false, std::memory_order_relaxed);
        clearStreak_.store(0, std::memory_order_relaxed);
        probeTick_.store(0, std::memory_order_relaxed);
        ewmaBp_.store(kEwmaOne, std::memory_order_relaxed);
    }

  private:
    static constexpr uint32_t kEwmaOne = 10000; // 100% in basis points.

    uint64_t
    serialDepth(HtmEngine &eng, TmGlobals &g) const
    {
        uint64_t next = eng.directLoad(&g.serialNextTicket);
        uint64_t serving = eng.directLoad(&g.serialServing);
        return next > serving ? next - serving : 0;
    }

    /** Any enter watermark crossed? (Entering is instant.) */
    bool
    enterSignal(HtmEngine &eng, TmGlobals &g) const
    {
        if (g.killSwitch.tripped())
            return true;
        if (serialDepth(eng, g) >= cfg_.serialQueueEnter)
            return true;
        return ewmaBp_.load(std::memory_order_relaxed) <
               cfg_.successEnterBp;
    }

    /** All exit watermarks clear right now? */
    bool
    exitClear(HtmEngine &eng, TmGlobals &g) const
    {
        if (g.killSwitch.tripped())
            return false;
        if (serialDepth(eng, g) > cfg_.serialQueueExit)
            return false;
        return ewmaBp_.load(std::memory_order_relaxed) >=
               cfg_.successExitBp;
    }

    /**
     * One hysteresis observation: accrue the all-clear streak and
     * close the gate once it is long enough. Returns true if the gate
     * is (now) closed.
     */
    bool
    tryClose(HtmEngine &eng, TmGlobals &g)
    {
        if (!open_.load(std::memory_order_relaxed))
            return true;
        if (!exitClear(eng, g)) {
            clearStreak_.store(0, std::memory_order_relaxed);
            return false;
        }
        uint64_t streak =
            clearStreak_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (streak < cfg_.closeStreak)
            return false;
        open_.store(false, std::memory_order_relaxed);
        return true;
    }

    /** Give chaos schedules their window at the gate decision. */
    void
    fireSite(FaultInjector *fault)
    {
        if (fault == nullptr)
            return;
        uint32_t spins = 0;
        switch (fault->fire(FaultSite::kAdmissionGate, &spins)) {
          case FaultKind::kDelay:
            simDelay(spins);
            return;
          case FaultKind::kYield:
            std::this_thread::yield();
            return;
          default:
            return; // Abort kinds are meaningless at the gate.
        }
    }

    AdmissionConfig cfg_;
    std::atomic<bool> open_{false};
    std::atomic<uint64_t> clearStreak_{0};
    std::atomic<uint64_t> probeTick_{0};
    std::atomic<uint32_t> ewmaBp_{kEwmaOne};
};

} // namespace rhtm

#endif // RHTM_CORE_ADMISSION_H
