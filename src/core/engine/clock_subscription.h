/**
 * @file
 * Clock-subscription helper: the one object that knows the two ways a
 * transaction can "subscribe" to the NOrec global clock.
 *
 * Early (hardware) subscription reads the coordination word inside the
 * HTM attempt at begin, putting it into the hardware read set so any
 * later writer dooms the transaction for free; a nonzero value at
 * subscription time aborts immediately (the paper's lazy-subscription
 * hazards are avoided by subscribing up front).
 *
 * Late (software) subscription snapshots an unlocked clock value at
 * begin and re-checks it on every read; a moved clock sends the NOrec
 * family through value-based revalidation (ValueReadLog::revalidate).
 */

#ifndef RHTM_CORE_ENGINE_CLOCK_SUBSCRIPTION_H
#define RHTM_CORE_ENGINE_CLOCK_SUBSCRIPTION_H

#include <cstdint>

#include "src/core/engine/globals.h"
#include "src/htm/htm_txn.h"
#include "src/util/sched_point.h"

namespace rhtm
{

/**
 * Early subscription: pull @p word into the live hardware read set and
 * abort the attempt if a slow path already owns it.
 */
inline void
htmEarlySubscribe(HtmTxn &htm, const uint64_t *word)
{
    // The lazy-subscription hazard window the paper warns about lives
    // exactly here: between the hardware attempt's begin and this
    // read, a slow path may take the word. Let the explorer schedule
    // into it.
    schedPoint(SchedPoint::kEarlySubscribe, word);
    if (htm.read(word) != 0)
        htm.abortSubscription();
}

/**
 * Spin out a writer's lock bit with a caller-chosen wait strategy
 * (Backoff::pause for the pure STMs, StallAwareWaiter::step for the
 * hybrids) and return an unlocked clock value.
 */
template <typename Mem, typename Wait>
inline uint64_t
stableClockReadWith(const Mem &mem, const uint64_t *clock, Wait &&wait)
{
    uint64_t value = mem.load(clock);
    while (clockIsLocked(value)) {
        wait();
        value = mem.load(clock);
    }
    return value;
}

/**
 * Late-subscription state: the clock snapshot a software phase is
 * reading at, plus the per-read currency check against it.
 */
template <typename Mem>
class ClockSubscription
{
  public:
    ClockSubscription(Mem mem, const uint64_t *clock)
        : mem_(mem), clock_(clock)
    {}

    /** Snapshot the subscription at @p snapshot (begin/extend). */
    void
    subscribeAt(uint64_t snapshot)
    {
        version_ = snapshot;
    }

    /** The snapshot reads are currently validated against. */
    uint64_t version() const { return version_; }

    /** True while no writer has committed since the snapshot. */
    bool
    current() const
    {
        return mem_.load(clock_) == version_;
    }

  private:
    Mem mem_;
    const uint64_t *clock_;
    uint64_t version_ = 0;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_CLOCK_SUBSCRIPTION_H
