/**
 * @file
 * CommitSeqlock: the NOrec-family commit protocol over the global
 * clock's lock bit.
 *
 * Every software writer in the NOrec family commits the same way: CAS
 * the clock from its read snapshot to the locked value (failure means
 * a concurrent commit -- revalidate or restart), write back or write
 * in place under the lock, then either advance the clock by one
 * version (a writer committed: readers must revalidate) or restore the
 * snapshot (nothing became visible: readers may proceed). This object
 * owns that word-level protocol; sessions keep only the decision of
 * *when* to advance versus restore.
 *
 * Hybrid sessions pass the watchdog's clock epoch so lock transitions
 * stamp holder progress (docs/PROGRESS.md); the pure STMs pass none
 * and skip the stamping, exactly as before the engine extraction.
 */

#ifndef RHTM_CORE_ENGINE_COMMIT_SEQLOCK_H
#define RHTM_CORE_ENGINE_COMMIT_SEQLOCK_H

#include <atomic>
#include <cstdint>

#include "src/core/engine/globals.h"
#include "src/util/sched_point.h"

namespace rhtm
{

template <typename Mem>
class CommitSeqlock
{
  public:
    CommitSeqlock(Mem mem, uint64_t *clock,
                  std::atomic<uint64_t> *epoch = nullptr)
        : mem_(mem), clock_(clock), epoch_(epoch)
    {}

    /**
     * One-shot acquire: CAS the clock from @p snapshot to its locked
     * value. False means a concurrent commit moved the clock first.
     */
    bool
    tryAcquireAt(uint64_t snapshot)
    {
        // Dedicated point (on top of the Mem-level one inside cas):
        // the explorer can tell "about to take the commit lock" from
        // generic clock traffic, and can wedge another commit between
        // a session's validation and its CAS.
        schedPoint(SchedPoint::kSeqlockAcquire, clock_);
        uint64_t expected = snapshot;
        if (!mem_.cas(clock_, expected, clockWithLock(snapshot)))
            return false;
        stamp();
        return true;
    }

    /**
     * Acquire with revalidation: on every CAS failure call
     * @p revalidate, which must either throw TxRestart or return the
     * new snapshot to retry from. Returns the snapshot the lock was
     * taken at.
     */
    template <typename Revalidate>
    uint64_t
    acquireValidating(uint64_t snapshot, Revalidate revalidate)
    {
        while (!tryAcquireAt(snapshot))
            snapshot = revalidate();
        return snapshot;
    }

    /**
     * Blocking acquire for serialized/irrevocable entry: sample a
     * stable clock via @p stableRead, CAS it locked, and wait with
     * @p wait between failed rounds. Returns the locked-at snapshot.
     */
    template <typename StableRead, typename Wait>
    uint64_t
    acquireBlocking(StableRead stableRead, Wait &&wait)
    {
        for (;;) {
            uint64_t snapshot = stableRead();
            if (tryAcquireAt(snapshot))
                return snapshot;
            wait();
        }
    }

    /** A writer committed: unlock and advance one version. */
    void
    releaseAdvance(uint64_t snapshot)
    {
        schedPoint(SchedPoint::kSeqlockRelease, clock_);
        mem_.store(clock_, clockUnlockAndAdvance(snapshot));
        stamp();
    }

    /**
     * releaseAdvance that first publishes @p filter (the committer's
     * write-set summary) into @p ring under the version this release
     * produces (commit-path front 1). Must run outside any HTM region:
     * the ring is non-speculative metadata, and a premature
     * publication would survive an abort. Pass a null ring to skip.
     */
    void
    releaseAdvance(uint64_t snapshot, CommitFilterRing *ring,
                   const TxFilter &filter)
    {
        if (ring != nullptr)
            ring->publish(clockUnlockAndAdvance(snapshot), filter);
        releaseAdvance(snapshot);
    }

    /** Nothing became visible: unlock by restoring the snapshot. */
    void
    releaseRestore(uint64_t snapshot)
    {
        schedPoint(SchedPoint::kSeqlockRelease, clock_);
        mem_.store(clock_, snapshot);
        stamp();
    }

  private:
    void
    stamp()
    {
        if (epoch_ != nullptr)
            stampEpoch(*epoch_);
    }

    Mem mem_;
    uint64_t *clock_;
    std::atomic<uint64_t> *epoch_;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_COMMIT_SEQLOCK_H
