/**
 * @file
 * Per-transaction deadline state (docs/OVERLOAD.md).
 *
 * A NOrec-family hybrid has several indefinite waits -- the serial
 * FIFO ticket queue, the stall-aware clock/htmLock spins, the
 * contention-manager backoff -- and Alistarh et al.'s lower bounds
 * (PAPERS.md) prove workloads exist that stretch them without limit.
 * DeadlineState turns each of those waits into a bounded one: the
 * runtime arms it with an absolute wall-clock deadline before the
 * first attempt, the wait loops poll it, and an expired deadline
 * unwinds the attempt with TxnDeadlineExceeded through the existing
 * exception-safe abort path (locks released, journals rolled back,
 * onAbort handlers fired exactly once, no kill-switch or retry-budget
 * charge -- the transaction gave up, the hardware did not fail).
 *
 * Two contract points:
 *
 *  - Irrevocability wins. Once a session grants irrevocability the
 *    transaction must commit, so the grant calls suppress() and every
 *    later poll is a no-op. A deadline can expire BEFORE the grant
 *    (including inside the grant barrier, where the serial ticket is
 *    retained and released by the unwind), never after.
 *
 *  - Determinism when disarmed. The interleaving explorer
 *    (docs/CHECKING.md) requires that nothing consults the wall clock
 *    on an explored schedule; a disarmed DeadlineState never reads the
 *    clock, so explorer programs use attempt budgets (TxnOptions::
 *    maxAttempts) instead of wall-clock deadlines.
 *
 * The kDeadlineWait fault site fires on every un-throttled poll, so
 * chaos schedules can stretch the expiry window (delay/yield) right
 * where the unwind decision is made; abort kinds are ignored there (a
 * poll is not an abort window -- the deadline itself decides).
 */

#ifndef RHTM_CORE_ENGINE_DEADLINE_H
#define RHTM_CORE_ENGINE_DEADLINE_H

#include <chrono>
#include <thread>

#include "src/fault/fault_injector.h"
#include "src/util/backoff.h"

namespace rhtm
{

/**
 * Thrown from a deadline-aware wait when the armed deadline expires.
 * Caught only by the runtime's retry loop (TmRuntime::runWith), which
 * runs the full user-abort unwind and reports TxnOutcome::
 * kDeadlineExceeded; never escapes to user code.
 */
struct TxnDeadlineExceeded
{
};

/**
 * One per thread, owned by the ThreadCtx and shared (by pointer) with
 * the thread's session and every wait loop under it. Single-threaded
 * by construction, like the session itself.
 */
class DeadlineState
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Attach the thread's injector (nullptr = no fault plan). */
    void attachInjector(FaultInjector *fault) { fault_ = fault; }

    /** Arm for the transaction starting now (runtime only). */
    void
    arm(Clock::time_point deadline)
    {
        armed_ = true;
        suppressed_ = false;
        deadline_ = deadline;
        throttle_ = 0;
    }

    /** Disarm at end of transaction (runtime only). */
    void
    disarm()
    {
        armed_ = false;
        suppressed_ = false;
    }

    /**
     * Irrevocability granted: the transaction must commit, so every
     * later poll is a no-op until disarm(). Called by the sessions'
     * grant points (SessionCore::grantIrrevocable and the STM grants).
     */
    void suppress() { suppressed_ = true; }

    /** True while armed and not suppressed by an irrevocable grant. */
    bool armed() const { return armed_ && !suppressed_; }

    /**
     * Non-throwing expiry check for attempt boundaries and for waits
     * that must not unwind mid-protocol (the serial ticket queue hands
     * its grant on instead of throwing). Never reads the wall clock
     * when disarmed.
     */
    bool
    expiredNow()
    {
        if (!armed())
            return false;
        fireSite();
        return Clock::now() >= deadline_;
    }

    /**
     * Throttled throwing poll for hot wait loops: checks the wall
     * clock every 64th call so a spin loop does not pay a clock read
     * per iteration.
     */
    void
    poll()
    {
        if (!armed())
            return;
        if ((++throttle_ & 63u) != 0)
            return;
        pollNow();
    }

    /** Unthrottled throwing poll (wait-entry points). */
    void
    pollNow()
    {
        if (expiredNow())
            throw TxnDeadlineExceeded{};
    }

    /** Back to the post-construction state (test isolation). */
    void
    resetForTest()
    {
        armed_ = false;
        suppressed_ = false;
        throttle_ = 0;
    }

  private:
    /** Give chaos schedules their window at the poll itself. */
    void
    fireSite()
    {
        if (fault_ == nullptr)
            return;
        uint32_t spins = 0;
        switch (fault_->fire(FaultSite::kDeadlineWait, &spins)) {
          case FaultKind::kDelay:
            simDelay(spins);
            return;
          case FaultKind::kYield:
            std::this_thread::yield();
            return;
          default:
            return; // Abort kinds are meaningless at a poll.
        }
    }

    FaultInjector *fault_ = nullptr;
    Clock::time_point deadline_{};
    uint64_t throttle_ = 0;
    bool armed_ = false;
    bool suppressed_ = false;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_DEADLINE_H
