/**
 * @file
 * TmDomain: one instance-scoped TM coordination domain.
 *
 * The paper's runtime assumes exactly one set of coordination words
 * per process (the NOrec clock/seqlock, the HTM lock, the serial
 * ticket lock). Alistarh et al. prove that contention on this shared
 * metadata is unavoidable *within* one domain -- so the way past the
 * bottleneck is to host many domains: a sharded store gives every
 * shard its own TmDomain and commits cross-shard transactions with an
 * ordered two-phase protocol over the involved domains' seqlocks
 * (multi_domain_commit.h, docs/STORE.md).
 *
 * A TmDomain bundles the things that make a coordination domain a
 * domain: a process-unique identity (the global acquisition order for
 * cross-domain commits), the TmGlobals coordination words (which
 * already embed the kill switch and the stall watchdog), and an
 * opaque slot the api layer uses to attach the domain's admission
 * gate. Sessions and the progress/retry helpers receive the domain,
 * not bare globals, so "which shard am I coordinating through" is
 * explicit everywhere below the api.
 *
 * Layering: the admission gate lives two ranks above the engine
 * (core/admission.h), so the engine holds only a forward-declared
 * pointer and never calls through it -- the bundle carries identity,
 * the api layer owns the behaviour.
 */

#ifndef RHTM_CORE_ENGINE_DOMAIN_H
#define RHTM_CORE_ENGINE_DOMAIN_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/core/engine/globals.h"
#include "src/core/engine/group_commit.h"

namespace rhtm
{

class AdmissionGate;

//
// Cacheline audit (ROADMAP item 2). Every coordination word a fast
// path subscribes to or a slow path spins on must own its 64-byte
// line: sharing a line would make the simulated HTM's line-granular
// conflict tracking (and a real machine's coherence traffic) couple
// logically independent words. The asserts pin the layout so a future
// field insertion cannot silently introduce false sharing.
//
static_assert(offsetof(TmGlobals, clock) % 64 == 0,
              "clock must own its cache line");
static_assert(offsetof(TmGlobals, htmLock) % 64 == 0,
              "htmLock must own its cache line");
static_assert(offsetof(TmGlobals, fallbacks) % 64 == 0,
              "fallbacks must own its cache line");
static_assert(offsetof(TmGlobals, serialLock) % 64 == 0,
              "serialLock must own its cache line");
static_assert(offsetof(TmGlobals, serialNextTicket) % 64 == 0,
              "serialNextTicket must own its cache line");
static_assert(offsetof(TmGlobals, serialServing) % 64 == 0,
              "serialServing must own its cache line");
static_assert(offsetof(TmGlobals, globalLock) % 64 == 0,
              "globalLock must own its cache line");
static_assert(offsetof(TmGlobals, killSwitch) % 64 == 0,
              "killSwitch must own its cache line");
static_assert(offsetof(TmGlobals, watchdog) % 64 == 0,
              "watchdog must own its cache line");
static_assert(offsetof(TmGlobals, htmLock) -
                      offsetof(TmGlobals, clock) >= 64 &&
                  offsetof(TmGlobals, fallbacks) -
                          offsetof(TmGlobals, htmLock) >= 64,
              "adjacent coordination words must not share a line");
static_assert(sizeof(TmGlobals) % 64 == 0,
              "TmGlobals must tile cache lines exactly");

/**
 * One TM coordination domain. A TmRuntime owns exactly one; a sharded
 * store hosts N runtimes and therefore N domains in one process.
 */
struct alignas(64) TmDomain
{
    TmDomain() : id_(nextId().fetch_add(1, std::memory_order_relaxed)) {}

    TmDomain(const TmDomain &) = delete;
    TmDomain &operator=(const TmDomain &) = delete;

    /**
     * Process-unique domain id, assigned at construction. Cross-domain
     * commits acquire the involved domains' seqlocks in ascending id
     * order (multi_domain_commit.h), so the id IS the global lock
     * order and must never be reused or reordered.
     */
    uint64_t id() const { return id_; }

    /** The domain's coordination words (clock, locks, kill switch,
     *  watchdog). */
    TmGlobals globals;

    /**
     * The domain's admission gate, or nullptr when admission control
     * is disabled. Attached by the owning runtime; the engine only
     * carries the identity (see the file comment on layering).
     */
    AdmissionGate *admission = nullptr;

    /**
     * The domain's group-commit arena (commit-path front 4). Always
     * present -- it is inert until a session with
     * TmConfig::groupCommit posts to it -- so the runtime can attach
     * it unconditionally.
     */
    GroupCommitArena groupArena;

    /** Restore the coordination words; identity survives (test use). */
    void
    resetForTest()
    {
        globals.resetForTest();
        groupArena.resetForTest();
    }

  private:
    static std::atomic<uint64_t> &
    nextId()
    {
        static std::atomic<uint64_t> counter{0};
        return counter;
    }

    uint64_t id_;
};

// Arrayed domains must never share a line either: a store laying its
// shards out contiguously would otherwise couple the last word of
// shard i with the first word of shard i+1.
static_assert(alignof(TmDomain) >= 64,
              "TmDomain instances must start on a cache line");
static_assert(sizeof(TmDomain) % 64 == 0,
              "arrayed TmDomain instances must not share a line");

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_DOMAIN_H
