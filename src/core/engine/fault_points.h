/**
 * @file
 * Protocol-level fault points for the algorithm sessions.
 *
 * HtmTxn fires the hardware-level sites itself; the sessions call
 * sessionFaultPoint() at the protocol windows (prefix commit, the
 * post-first-write clock-held window, postfix publication, software
 * writes), where the right unwind depends on whether a small hardware
 * transaction is live: inside one, a scripted abort must look like a
 * hardware abort (HtmAbort, so the session's reversion logic runs);
 * in a software phase it must look like a consistency restart
 * (TxRestart, so rollbackWriter and the restart bookkeeping run).
 */

#ifndef RHTM_CORE_ENGINE_FAULT_POINTS_H
#define RHTM_CORE_ENGINE_FAULT_POINTS_H

#include <thread>

#include "src/core/engine/session.h"
#include "src/fault/fault_injector.h"
#include "src/htm/htm_txn.h"
#include "src/util/backoff.h"
#include "src/util/sched_point.h"

namespace rhtm
{

/** Fire @p site on @p htm's injector (if any) and apply the fault. */
inline void
sessionFaultPoint(HtmTxn &htm, FaultSite site)
{
    // Before the injector check: the protocol windows these sites mark
    // are scheduling points even when no fault plan is loaded.
    schedPoint(SchedPoint::kFaultSite);
    FaultInjector *fault = htm.injector();
    if (fault == nullptr)
        return;
    uint32_t spins = 0;
    switch (fault->fire(site, &spins)) {
      case FaultKind::kNone:
      case FaultKind::kCapacitySqueeze:
        return;
      case FaultKind::kDelay:
        simDelay(spins);
        return;
      case FaultKind::kYield:
        std::this_thread::yield();
        return;
      case FaultKind::kAbortConflict:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kConflict, true);
        throw TxRestart{};
      case FaultKind::kAbortCapacity:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kCapacity, false);
        throw TxRestart{};
      case FaultKind::kAbortOther:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kOther, false);
        throw TxRestart{};
      case FaultKind::kAbortExplicit:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kExplicit, true);
        throw TxRestart{};
    }
}

/**
 * Like sessionFaultPoint(), but scripted aborts are absorbed instead
 * of unwinding: used at windows reached after an irrevocability grant,
 * where the transaction must not abort by contract. Delays and yields
 * still apply (they stretch the window without breaking the promise),
 * and the injector still counts the hit/fire for test assertions.
 */
inline void
sessionFaultPointNoAbort(HtmTxn &htm, FaultSite site)
{
    schedPoint(SchedPoint::kFaultSite);
    FaultInjector *fault = htm.injector();
    if (fault == nullptr)
        return;
    uint32_t spins = 0;
    switch (fault->fire(site, &spins)) {
      case FaultKind::kDelay:
        simDelay(spins);
        return;
      case FaultKind::kYield:
        std::this_thread::yield();
        return;
      default:
        return; // An irrevocable transaction never unwinds.
    }
}

/**
 * Thrown by userExceptionFaultPoint(): stands in for an arbitrary
 * exception escaping a user transaction body. Deliberately not derived
 * from std::exception, so only the runtime's catch-all sees it.
 */
struct InjectedUserException
{
};

/**
 * Body-side opt-in fault point: transaction bodies (workloads, tests)
 * call this with their ThreadCtx's injector to let a chaos schedule
 * deterministically script user exceptions mid-body. Any scripted
 * abort kind at kUserException throws InjectedUserException; delays
 * and yields apply in place.
 */
inline void
userExceptionFaultPoint(FaultInjector *fault)
{
    if (fault == nullptr)
        return;
    uint32_t spins = 0;
    switch (fault->fire(FaultSite::kUserException, &spins)) {
      case FaultKind::kNone:
      case FaultKind::kCapacitySqueeze:
        return;
      case FaultKind::kDelay:
        simDelay(spins);
        return;
      case FaultKind::kYield:
        std::this_thread::yield();
        return;
      default:
        throw InjectedUserException{};
    }
}

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_FAULT_POINTS_H
