/**
 * @file
 * Per-transaction address-set Bloom filters and the committed-filter
 * ring (commit-path front 1, docs/COMMIT_PATH.md).
 *
 * TxFilter summarizes a transaction's read or write footprint in 256
 * bits (two probes per address). False positives only cost a spurious
 * full revalidation or a group-commit rejection; false negatives are
 * impossible by construction, which is what the safety argument leans
 * on.
 *
 * CommitFilterRing publishes committing writers' write-set summaries
 * keyed by the clock version their commit produced. A reader whose
 * snapshot fell behind walks the intervening versions: if every one
 * has a live slot whose summary is disjoint from the reader's read
 * filter, all those commits provably left the reader's logged values
 * untouched, and the reader adopts the new snapshot without
 * re-reading a single value. Any gap -- an overwritten slot, a
 * version nobody published (e.g. an HTM fast-path commit, which must
 * never publish from inside a speculative region), a filter
 * intersection -- falls back to the full value revalidation, so the
 * ring is pure go-fast metadata: it can only ever decline to help.
 *
 * Publication protocol: only the clock-lock holder publishes, always
 * BEFORE its clock release, so at most one publisher is active per
 * domain and a reader that observed clock == v is guaranteed (by the
 * release/acquire pair on the slot version and the seq_cst clock
 * store) to see v's bits if the slot has not been recycled. The
 * per-slot version is checked before AND after the bits are read;
 * versions per slot strictly increase, so a torn read cannot pass.
 */

#ifndef RHTM_CORE_ENGINE_FILTER_H
#define RHTM_CORE_ENGINE_FILTER_H

#include <atomic>
#include <cstdint>

#include "src/htm/fixed_table.h"

namespace rhtm
{

/**
 * 256-bit Bloom summary of a word-address set; two probe bits per
 * address derived from one multiplicative hash.
 */
class TxFilter
{
  public:
    static constexpr unsigned kWords = 4;
    static constexpr unsigned kBits = kWords * 64;

    void
    add(const void *addr)
    {
        uint64_t h = mixHash(reinterpret_cast<uint64_t>(addr));
        setBit(h & (kBits - 1));
        setBit((h >> 16) & (kBits - 1));
    }

    /** May the set contain @p addr? (Never a false negative.) */
    bool
    mightContain(const void *addr) const
    {
        uint64_t h = mixHash(reinterpret_cast<uint64_t>(addr));
        return hasBit(h & (kBits - 1)) &&
               hasBit((h >> 16) & (kBits - 1));
    }

    /** May the two summarized sets share an address? */
    bool
    intersects(const uint64_t *bits) const
    {
        uint64_t hit = 0;
        for (unsigned i = 0; i < kWords; ++i)
            hit |= w_[i] & bits[i];
        return hit != 0;
    }

    bool intersects(const TxFilter &other) const
    {
        return intersects(other.w_);
    }

    /** Union @p bits into this summary (group-commit batch filter). */
    void
    merge(const uint64_t *bits)
    {
        for (unsigned i = 0; i < kWords; ++i)
            w_[i] |= bits[i];
    }

    void
    clear()
    {
        for (uint64_t &w : w_)
            w = 0;
    }

    bool
    empty() const
    {
        uint64_t any = 0;
        for (uint64_t w : w_)
            any |= w;
        return any == 0;
    }

    /** All bits set: the universal collision (TmConfig test hook). */
    void
    saturate()
    {
        for (uint64_t &w : w_)
            w = ~uint64_t(0);
    }

    const uint64_t *words() const { return w_; }

  private:
    void setBit(uint64_t bit) { w_[bit >> 6] |= uint64_t(1) << (bit & 63); }

    bool
    hasBit(uint64_t bit) const
    {
        return (w_[bit >> 6] >> (bit & 63)) & 1;
    }

    uint64_t w_[kWords] = {0, 0, 0, 0};
};

/**
 * Ring of the last kSlots committed write-set summaries, keyed by the
 * (even, unlocked) clock version each commit produced. Runtime
 * metadata like the kill switch: ordinary atomics, never
 * engine-published, so touching it cannot abort a hardware transaction
 * -- and therefore it must never be written from inside one (see the
 * file comment).
 */
struct CommitFilterRing
{
    static constexpr unsigned kSlots = 16; // Power of two.

    struct Slot
    {
        std::atomic<uint64_t> version{0};
        std::atomic<uint64_t> bits[TxFilter::kWords] = {};
    };

    Slot slots[kSlots];

    static unsigned indexOf(uint64_t version)
    {
        return static_cast<unsigned>(version >> 1) & (kSlots - 1);
    }

    /**
     * Publish @p filter as the write summary of the commit that will
     * advance the clock to @p version. Caller must hold the clock lock
     * and call this BEFORE the releasing store (outside any HTM).
     */
    void
    publish(uint64_t version, const TxFilter &filter)
    {
        Slot &s = slots[indexOf(version)];
        // Invalidate first so a concurrent walker never matches the
        // slot version against a half-replaced bit set.
        s.version.store(0, std::memory_order_relaxed);
        for (unsigned i = 0; i < TxFilter::kWords; ++i)
            s.bits[i].store(filter.words()[i], std::memory_order_relaxed);
        s.version.store(version, std::memory_order_release);
    }

    /**
     * True when every commit in (@p from, @p to] (both even, unlocked
     * versions) published a summary provably disjoint from @p read.
     * False on any doubt: a missing/recycled slot, an unpublished
     * version, or a (possibly false-positive) intersection.
     */
    bool
    coveredDisjoint(uint64_t from, uint64_t to,
                    const TxFilter &read) const
    {
        if (to <= from || to - from > uint64_t(kSlots) * 2)
            return false;
        for (uint64_t v = from + 2; v <= to; v += 2) {
            const Slot &s = slots[indexOf(v)];
            if (s.version.load(std::memory_order_acquire) != v)
                return false;
            uint64_t bits[TxFilter::kWords];
            for (unsigned i = 0; i < TxFilter::kWords; ++i)
                bits[i] = s.bits[i].load(std::memory_order_relaxed);
            // Re-check: an overwrite mid-copy leaves a different (or
            // zero) version; per-slot versions strictly increase, so
            // a match proves the bits belong to v's publisher.
            if (s.version.load(std::memory_order_acquire) != v)
                return false;
            if (read.intersects(bits))
                return false;
        }
        return true;
    }

    /** Power-on state; explorer isolation (TmGlobals::resetForTest). */
    void
    resetForTest()
    {
        for (Slot &s : slots) {
            s.version.store(0, std::memory_order_relaxed);
            for (unsigned i = 0; i < TxFilter::kWords; ++i)
                s.bits[i].store(0, std::memory_order_relaxed);
        }
    }
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_FILTER_H
