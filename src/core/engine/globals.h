/**
 * @file
 * The hybrid protocol's shared global variables and clock-word helpers.
 *
 * The paper's coordination state (Section 2.3): a global clock whose
 * low bit doubles as the writer lock, the global HTM lock that lets a
 * failed mixed slow-path abort every hardware transaction, the fallback
 * counter, plus the serial starvation lock of Section 3.3 and the
 * single global lock used by Lock Elision. Each word sits on its own
 * cache line so simulated-HTM conflict tracking treats them
 * independently, exactly as the real implementation padded them.
 */

#ifndef RHTM_CORE_ENGINE_GLOBALS_H
#define RHTM_CORE_ENGINE_GLOBALS_H

#include <atomic>
#include <cstdint>

#include "src/core/engine/filter.h"

namespace rhtm
{

/** Lock bit stored in the clock's LSB; versions advance by 2. */
constexpr uint64_t kClockLockBit = 1;

/** True when the clock word carries the writer lock. */
inline bool
clockIsLocked(uint64_t clock)
{
    return (clock & kClockLockBit) != 0;
}

/** The clock word with the lock bit set. */
inline uint64_t
clockWithLock(uint64_t clock)
{
    return clock | kClockLockBit;
}

/** The next unlocked clock value: clear the lock bit and advance. */
inline uint64_t
clockUnlockAndAdvance(uint64_t clock)
{
    return (clock & ~kClockLockBit) + 2;
}

/**
 * Shared words coordinating fast paths and slow paths. All accesses go
 * through HtmEngine direct/transactional operations (or RawMem for
 * pure-software runtimes), never plain loads/stores.
 */
struct TmGlobals
{
    /** NOrec global clock; LSB is the writer lock (Section 2.3 #1). */
    alignas(64) uint64_t clock = 0;

    /** Aborts all hardware fast paths when set (Section 2.3 #2). */
    alignas(64) uint64_t htmLock = 0;

    /** Number of live mixed/software slow paths (Section 2.3 #3). */
    alignas(64) uint64_t fallbacks = 0;

    /**
     * Serial starvation lock (Section 3.3), held 0/1 by the serial
     * slow path. Fast-path commits subscribe to this word alone, as in
     * the paper; fairness comes from the ticket pair below, which
     * orders acquirers FIFO instead of letting a CAS race pick winners.
     */
    alignas(64) uint64_t serialLock = 0;

    /** FIFO ticket dispenser for the serial lock (fetch-add to take). */
    alignas(64) uint64_t serialNextTicket = 0;

    /** Ticket currently being served; holder advances it on release. */
    alignas(64) uint64_t serialServing = 0;

    /** Single global lock for the Lock Elision fallback. */
    alignas(64) uint64_t globalLock = 0;

    /** Pad so the struct's last word owns its line too. */
    alignas(64) uint64_t pad = 0;

    /**
     * Anti-lemming HTM kill switch (runtime metadata, NOT TM-visible
     * memory: ordinary atomics, never engine-published, so touching
     * it cannot abort a hardware transaction).
     *
     * The lemming effect (Alistarh et al.): persistently failing
     * hardware transactions herd every thread onto the fallback, and
     * the fallback's metadata traffic then keeps killing fresh
     * hardware attempts. The breaker counts consecutive non-retryable
     * hardware aborts across all threads; at the policy threshold it
     * trips, sessions bypass the fast path outright, and a per-commit
     * decay re-opens it so the hardware path is re-probed once the
     * fault clears (classic circuit-breaker half-open behaviour).
     */
    struct KillSwitch
    {
        /** Non-retryable aborts since the last hardware commit. */
        std::atomic<uint64_t> consecutiveFailures{0};

        /** Commits left before re-probing; nonzero = tripped. */
        std::atomic<uint64_t> cooldown{0};

        /** Times the breaker has tripped (mirrors the stats counter). */
        std::atomic<uint64_t> activations{0};

        /** True while fast paths should be bypassed. */
        bool
        tripped() const
        {
            return cooldown.load(std::memory_order_relaxed) != 0;
        }
    };

    alignas(64) KillSwitch killSwitch;

    /**
     * Stall watchdog (runtime metadata, NOT TM-visible memory: like the
     * kill switch, ordinary atomics, never engine-published).
     *
     * Holders of the coordination words stamp a monotonic epoch on
     * every acquisition and release: the commit-clock lock (and the
     * HTM/global locks that serialize the same way) bump clockEpoch,
     * the serial ticket lock bumps serialEpoch. A waiter that burns its
     * stall budget without seeing the watched epoch move concludes the
     * holder is preempted or fault-delayed, counts a stall, raises the
     * stalled-waiter health gauge, and escalates spin -> yield -> sleep
     * so the stalled holder can be scheduled back in (see
     * docs/PROGRESS.md).
     */
    struct Watchdog
    {
        /** Bumped on every clock/HTM/global-lock acquire and release. */
        std::atomic<uint64_t> clockEpoch{0};

        /** Bumped on every serial-ticket grant and release. */
        std::atomic<uint64_t> serialEpoch{0};

        /** Waiters currently seeing a stalled holder (health gauge). */
        std::atomic<uint64_t> stalledWaiters{0};

        /** Total stall declarations over the runtime's lifetime. */
        std::atomic<uint64_t> stallEvents{0};

        /** True while no waiter has declared its holder stalled. */
        bool
        healthy() const
        {
            return stalledWaiters.load(std::memory_order_relaxed) == 0;
        }
    };

    alignas(64) Watchdog watchdog;

    /**
     * Committed write-filter ring (commit-path front 1, runtime
     * metadata like the kill switch: ordinary atomics, never
     * engine-published). Clock-lock holders publish their write-set
     * summary here before releasing; readers use it to prove
     * intervening commits disjoint from their read sets and skip full
     * value revalidation (src/core/engine/filter.h).
     */
    alignas(64) CommitFilterRing filterRing;

    /**
     * Restore every coordination word, the kill switch, and the
     * watchdog to their power-on values. Test isolation only: the
     * interleaving explorer (src/check/) calls this between explored
     * runs so back-to-back runs start from identical global state.
     * Callers must guarantee quiescence (no transaction in flight).
     */
    void
    resetForTest()
    {
        clock = 0;
        htmLock = 0;
        fallbacks = 0;
        serialLock = 0;
        serialNextTicket = 0;
        serialServing = 0;
        globalLock = 0;
        pad = 0;
        killSwitch.consecutiveFailures.store(0,
                                             std::memory_order_relaxed);
        killSwitch.cooldown.store(0, std::memory_order_relaxed);
        killSwitch.activations.store(0, std::memory_order_relaxed);
        watchdog.clockEpoch.store(0, std::memory_order_relaxed);
        watchdog.serialEpoch.store(0, std::memory_order_relaxed);
        watchdog.stalledWaiters.store(0, std::memory_order_relaxed);
        watchdog.stallEvents.store(0, std::memory_order_relaxed);
        filterRing.resetForTest();
    }
};

/** Stamp holder progress on a watchdog epoch word. */
inline void
stampEpoch(std::atomic<uint64_t> &epoch)
{
    epoch.fetch_add(1, std::memory_order_relaxed);
}

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_GLOBALS_H
