/**
 * @file
 * Flat-combining group commit for slow-path lazy writers (commit-path
 * front 4, docs/COMMIT_PATH.md).
 *
 * The NOrec clock admits one writer bump at a time, so under write
 * pressure the commit lock is the convoy. Group commit lets the one
 * writer that wins the clock CAS (the combiner) publish, under its
 * single lock hold, the write sets of peers that were waiting to
 * commit too -- one clock bump, several transactions. Eligibility is
 * decided per peer, in claim order, under the lock:
 *
 *  - filter check: the peer's read and write summaries must be
 *    disjoint from the running batch write summary (a Bloom false
 *    positive just bounces the peer to its solo commit -- safe), then
 *  - value check: the peer's read log must validate against current
 *    memory (which already contains the batch's earlier writes).
 *
 * A peer that passes serializes immediately after the writes it was
 * checked against; the whole batch becomes visible with the
 * combiner's single clock advance. A peer that fails is REJECTED and
 * retries solo. Correctness never leans on the filters: with empty
 * summaries the value check alone decides, filters only cheapen the
 * common disjoint case.
 *
 * Lifecycle of a slot: kFree -> kPending (owner posts) -> either
 * kClaimed -> kCombined/kRejected (combiner, under the clock lock) or
 * back to kFree (owner withdraws on a stale snapshot). The owner may
 * unwind (restart, deadline) ONLY while its slot is not kPending: a
 * pending request can be claimed at any moment and publishes the
 * owner's live redo buffer.
 *
 * The arena is domain metadata like the kill switch: ordinary
 * atomics, never engine-published, never touched from inside an HTM
 * region.
 */

#ifndef RHTM_CORE_ENGINE_GROUP_COMMIT_H
#define RHTM_CORE_ENGINE_GROUP_COMMIT_H

#include <atomic>
#include <cassert>
#include <cstdint>

#include "src/core/engine/filter.h"

namespace rhtm
{

/**
 * A posted commit request: type-erased callbacks over the owning
 * session (the same static-function idiom as TxDispatch), valid from
 * post() until the slot resolves.
 */
struct GroupRequest
{
    void *self = nullptr;

    /** Value-check the owner's read log against current memory. */
    bool (*validate)(void *self) = nullptr;

    /** Publish the owner's buffered writes (combiner context: the
     *  clock lock -- and any HTM-lock envelope -- is held). */
    void (*publish)(void *self) = nullptr;

    const TxFilter *readFilter = nullptr;
    const TxFilter *writeFilter = nullptr;
};

/** Per-domain slot arena coordinating one combiner with its peers. */
struct GroupCommitArena
{
    enum State : uint32_t
    {
        kFree = 0,  //!< No request posted.
        kPending,   //!< Posted, unclaimed; owner may withdraw.
        kClaimed,   //!< A combiner is deciding; owner must wait.
        kCombined,  //!< Published by the combiner's clock bump.
        kRejected,  //!< Bounced: owner retries its solo commit.
    };

    static constexpr unsigned kSlots = 64;

    struct alignas(64) Slot
    {
        std::atomic<uint32_t> state{kFree};
        GroupRequest req;
    };

    Slot slots[kSlots];

    /** Slot-id dispenser; sessions acquire once at construction. */
    std::atomic<uint32_t> nextSlot{0};

    /**
     * Conservative upper bound on the number of kPending slots:
     * incremented before a slot turns kPending, decremented when it
     * leaves (withdraw or claim). Lets a solo combiner skip the
     * 64-slot claim walk entirely. Purely a batching hint: a combiner
     * that misses a just-posted peer is safe -- the peer observes the
     * unlocked clock, withdraws, and retries (or combines itself).
     */
    std::atomic<uint32_t> pending{0};

    /** Claim a slot for a session's lifetime; -1 = arena full (the
     *  session simply commits solo forever). */
    int
    acquireSlot()
    {
        uint32_t i = nextSlot.fetch_add(1, std::memory_order_relaxed);
        return i < kSlots ? static_cast<int>(i) : -1;
    }

    /** Post a commit request (slot must be kFree, owned by caller). */
    void
    post(unsigned slot, const GroupRequest &req)
    {
        Slot &s = slots[slot];
        s.req = req;
        pending.fetch_add(1, std::memory_order_relaxed);
        s.state.store(kPending, std::memory_order_release);
    }

    uint32_t
    stateOf(unsigned slot) const
    {
        return slots[slot].state.load(std::memory_order_acquire);
    }

    /** Take a kPending slot back (stale snapshot, deadline). False
     *  means a combiner claimed it first: wait for resolution. */
    bool
    tryWithdraw(unsigned slot)
    {
        uint32_t expected = kPending;
        if (!slots[slot].state.compare_exchange_strong(
                expected, kFree, std::memory_order_acq_rel))
            return false;
        pending.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }

    /** Resolution observed; release the slot for the next post. */
    void
    reclaim(unsigned slot)
    {
        slots[slot].state.store(kFree, std::memory_order_relaxed);
    }

    /**
     * The caller just became the combiner: it holds the clock lock
     * and already withdrew its own slot and published its own writes.
     * Its pending slot must be gone (it holds the lock every claimer
     * needs).
     */
    void
    withdrawOwn(unsigned slot)
    {
        bool ok = tryWithdraw(slot);
        (void)ok;
        assert(ok && "own slot claimed without the clock lock");
    }

    struct CombineResult
    {
        unsigned joined = 0;
        unsigned rejected = 0;
    };

    /**
     * Claim every pending peer and either publish it into the batch
     * or reject it (see the file comment for the per-peer decision).
     * Caller holds the clock lock; @p batchWrites starts as the
     * combiner's own write summary and accumulates every joined
     * peer's.
     */
    CombineResult
    combine(TxFilter &batchWrites)
    {
        CombineResult r;
        // Solo fast-out: nothing was pending when we took the lock,
        // so skip the claim walk (its 64 CASes would otherwise tax
        // every uncontended commit).
        if (pending.load(std::memory_order_acquire) == 0)
            return r;
        for (unsigned i = 0; i < kSlots; ++i) {
            Slot &s = slots[i];
            uint32_t expected = kPending;
            if (!s.state.compare_exchange_strong(
                    expected, kClaimed, std::memory_order_acq_rel))
                continue;
            pending.fetch_sub(1, std::memory_order_relaxed);
            const GroupRequest &q = s.req;
            bool joins = !batchWrites.intersects(*q.readFilter) &&
                         !batchWrites.intersects(*q.writeFilter) &&
                         q.validate(q.self);
            if (!joins) {
                ++r.rejected;
                s.state.store(kRejected, std::memory_order_release);
                continue;
            }
            q.publish(q.self);
            batchWrites.merge(q.writeFilter->words());
            ++r.joined;
            s.state.store(kCombined, std::memory_order_release);
        }
        return r;
    }

    /** All slots freed; slot-id assignments survive (test use: the
     *  explorer resets domains between runs, sessions persist). */
    void
    resetForTest()
    {
        for (Slot &s : slots)
            s.state.store(kFree, std::memory_order_relaxed);
        pending.store(0, std::memory_order_relaxed);
    }
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_GROUP_COMMIT_H
