/**
 * @file
 * Write journals and the value-based read log shared by every
 * algorithm's software phase.
 *
 * Eager algorithms (NOrec eager, hybrid NOrec, RH NOrec, TL2) write in
 * place and keep an UndoJournal of old values to replay backwards on
 * abort. Lazy algorithms buffer writes in a RedoBuffer and publish at
 * commit. Value-based algorithms (the NOrec family) additionally keep
 * a ValueReadLog and revalidate it whenever the global clock moves.
 *
 * The UndoJournal inlines its first entries so the common short
 * transaction never touches the heap on its write path.
 */

#ifndef RHTM_CORE_ENGINE_JOURNAL_H
#define RHTM_CORE_ENGINE_JOURNAL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/engine/filter.h"
#include "src/core/engine/session.h"
#include "src/htm/fixed_table.h"

namespace rhtm
{

/** One in-place write to undo if the transaction aborts. */
struct UndoEntry
{
    uint64_t *addr;
    uint64_t oldValue;
};

/**
 * Old-value journal for eager (write-in-place) phases. Rolled back in
 * reverse push order so a location written twice ends at its pre-txn
 * value. The first kInlineEntries live in the object itself;
 * pathological write sets spill to a vector that keeps its capacity
 * across transactions.
 */
class UndoJournal
{
  public:
    static constexpr size_t kInlineEntries = 64;

    /** Record @p addr's pre-write value. */
    void
    push(uint64_t *addr, uint64_t oldValue)
    {
        if (size_ < kInlineEntries)
            inline_[size_] = {addr, oldValue};
        else
            overflow_.push_back({addr, oldValue});
        ++size_;
    }

    /** Replay old values newest-first through @p mem. */
    template <typename Mem>
    void
    rollback(const Mem &mem)
    {
        for (size_t i = size_; i > kInlineEntries; --i) {
            const UndoEntry &e = overflow_[i - kInlineEntries - 1];
            mem.store(e.addr, e.oldValue);
        }
        size_t live = size_ < kInlineEntries ? size_ : kInlineEntries;
        for (size_t i = live; i > 0; --i) {
            const UndoEntry &e = inline_[i - 1];
            mem.store(e.addr, e.oldValue);
        }
    }

    void
    clear()
    {
        size_ = 0;
        overflow_.clear();
    }

    bool empty() const { return size_ == 0; }

    size_t size() const { return size_; }

  private:
    std::array<UndoEntry, kInlineEntries> inline_;
    std::vector<UndoEntry> overflow_;
    size_t size_ = 0;
};

/**
 * Speculative write buffer for lazy (buffered) phases: lookups service
 * read-after-write, forEach publishes in program order at commit.
 *
 * Layout (commit-path front 2, docs/COMMIT_PATH.md): a dense append
 * log of (addr, value) entries -- duplicate addresses collapse in
 * place, so forEach still visits each word exactly once -- plus an
 * optional stamped open-addressing index mapping address to log
 * position. With the index off, lookups fall back to the classic
 * NOrec backward linear scan of the log (the A/B baseline and the
 * oracle the property tests compare against). An optional Bloom
 * summary (front 1) pre-filters lookups -- the common read of an
 * unwritten address answers "miss" from one resident cache line --
 * and doubles as the write filter committers publish to the
 * CommitFilterRing. (The simulated HTM keeps using the fixed-capacity
 * WriteBuffer in src/htm/fixed_table.h: hardware write sets are
 * capacity-bounded; this one grows.)
 */
class RedoBuffer
{
  public:
    /** @param slots_log2 log2 of the initial index slot count. */
    explicit RedoBuffer(unsigned slots_log2 = 10)
        : mask_((size_t(1) << slots_log2) - 1),
          idx_(size_t(1) << slots_log2), stamp_(1)
    {
        log_.reserve(256);
    }

    /**
     * Select the lookup strategy and whether the Bloom summary is
     * maintained. Call only while empty (sessions call at begin(),
     * right after clear()).
     */
    void
    setMode(bool use_index, bool use_filter)
    {
        useIndex_ = use_index;
        useFilter_ = use_filter;
    }

    /** Buffer @p value for @p addr (overwrites an earlier buffering). */
    void
    putGrowing(uint64_t *addr, uint64_t value)
    {
        if (useFilter_)
            filter_.add(addr);
        if (useIndex_) {
            if (log_.size() >= (mask_ + 1) / 4 * 3)
                grow();
            size_t i = mixHash(reinterpret_cast<uint64_t>(addr)) & mask_;
            for (;;) {
                IdxSlot &s = idx_[i];
                if (s.stamp != stamp_) {
                    s.stamp = stamp_;
                    s.pos = static_cast<uint32_t>(log_.size());
                    log_.push_back({addr, value});
                    return;
                }
                if (log_[s.pos].addr == addr) {
                    log_[s.pos].value = value;
                    return;
                }
                i = (i + 1) & mask_;
            }
        }
        // Linear mode: collapse duplicates by scanning (newest first,
        // where a rewritten hot word is most likely to sit).
        for (size_t i = log_.size(); i > 0; --i) {
            if (log_[i - 1].addr == addr) {
                log_[i - 1].value = value;
                return;
            }
        }
        log_.push_back({addr, value});
    }

    /**
     * Fetch the buffered value for @p addr (read-own-writes).
     * @return true and set @p out if present.
     */
    bool
    lookup(const uint64_t *addr, uint64_t &out) const
    {
        if (log_.empty())
            return false;
        if (useFilter_ && !filter_.mightContain(addr))
            return false; // Bloom miss is definitive (no false negatives).
        if (useIndex_) {
            size_t i = mixHash(reinterpret_cast<uint64_t>(addr)) & mask_;
            for (;;) {
                const IdxSlot &s = idx_[i];
                if (s.stamp != stamp_)
                    return false;
                if (log_[s.pos].addr == addr) {
                    out = log_[s.pos].value;
                    return true;
                }
                i = (i + 1) & mask_;
            }
        }
        for (size_t i = log_.size(); i > 0; --i) {
            if (log_[i - 1].addr == addr) {
                out = log_[i - 1].value;
                return true;
            }
        }
        return false;
    }

    /** Number of distinct buffered words. */
    size_t sizeWords() const { return log_.size(); }

    /** True when nothing is buffered. */
    bool empty() const { return log_.empty(); }

    /** Visit each buffered (addr, value) pair once, in program order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Entry &e : log_)
            fn(e.addr, e.value);
    }

    /** Bloom summary of the buffered write set (empty if disabled). */
    const TxFilter &filter() const { return filter_; }

    /** Test hook: force the universal collision (TmConfig). */
    void saturateFilterForTest() { filter_.saturate(); }

    /** Discard all buffered writes in O(1). */
    void
    clear()
    {
        log_.clear();
        ++stamp_;
        filter_.clear();
    }

  private:
    struct Entry
    {
        uint64_t *addr;
        uint64_t value;
    };

    struct IdxSlot
    {
        uint32_t pos = 0;
        uint64_t stamp = 0;
    };

    /** Double the index and re-point it at the live log entries. */
    void
    grow()
    {
        size_t slots = (mask_ + 1) * 2;
        mask_ = slots - 1;
        idx_.assign(slots, IdxSlot{});
        ++stamp_;
        for (size_t pos = 0; pos < log_.size(); ++pos) {
            size_t i = mixHash(reinterpret_cast<uint64_t>(
                           log_[pos].addr)) &
                       mask_;
            while (idx_[i].stamp == stamp_)
                i = (i + 1) & mask_;
            idx_[i].stamp = stamp_;
            idx_[i].pos = static_cast<uint32_t>(pos);
        }
    }

    std::vector<Entry> log_;
    size_t mask_;
    std::vector<IdxSlot> idx_;
    uint64_t stamp_;
    bool useIndex_ = true;
    bool useFilter_ = true;
    TxFilter filter_;
};

/** One value-validated read (NOrec family). */
struct ReadEntry
{
    const uint64_t *addr;
    uint64_t value;
};

/**
 * Value-based read log (NOrec's validation set): remembers every
 * location/value a software read phase observed and re-checks them
 * whenever the global clock moves.
 */
class ValueReadLog
{
  public:
    ValueReadLog() { log_.reserve(1024); }

    void
    push(const uint64_t *addr, uint64_t value)
    {
        if (filterOn_)
            filter_.add(addr);
        log_.push_back({addr, value});
    }

    /**
     * Maintain a Bloom summary of the logged addresses (commit-path
     * front 1); consulted against the CommitFilterRing to skip full
     * value revalidation. Call at begin(), right after clear().
     */
    void setFilterEnabled(bool on) { filterOn_ = on; }

    /** Bloom summary of the logged read set (empty if disabled). */
    const TxFilter &filter() const { return filter_; }

    /** Test hook: force the universal collision (TmConfig). */
    void saturateFilterForTest() { filter_.saturate(); }

    void
    clear()
    {
        log_.clear();
        filter_.clear();
    }

    bool empty() const { return log_.empty(); }

    size_t size() const { return log_.size(); }

    /** True when every logged location still holds its logged value. */
    template <typename Mem>
    bool
    consistent(const Mem &mem) const
    {
        for (const ReadEntry &e : log_) {
            if (mem.load(e.addr) != e.value)
                return false;
        }
        return true;
    }

    /**
     * NOrec's validation loop: take a stable (unlocked) clock sample,
     * value-check the log, and retry until the clock holds still
     * across the check. Returns the snapshot the log is now valid at;
     * throws TxRestart if any value changed.
     */
    template <typename Mem, typename StableRead>
    uint64_t
    revalidate(const Mem &mem, const uint64_t *clock,
               StableRead stableRead) const
    {
        for (;;) {
            uint64_t snapshot = stableRead();
            if (!consistent(mem))
                throw TxRestart{};
            if (mem.load(clock) == snapshot)
                return snapshot;
        }
    }

  private:
    std::vector<ReadEntry> log_;
    bool filterOn_ = false;
    TxFilter filter_;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_JOURNAL_H
