/**
 * @file
 * Write journals and the value-based read log shared by every
 * algorithm's software phase.
 *
 * Eager algorithms (NOrec eager, hybrid NOrec, RH NOrec, TL2) write in
 * place and keep an UndoJournal of old values to replay backwards on
 * abort. Lazy algorithms buffer writes in a RedoBuffer and publish at
 * commit. Value-based algorithms (the NOrec family) additionally keep
 * a ValueReadLog and revalidate it whenever the global clock moves.
 *
 * The UndoJournal inlines its first entries so the common short
 * transaction never touches the heap on its write path.
 */

#ifndef RHTM_CORE_ENGINE_JOURNAL_H
#define RHTM_CORE_ENGINE_JOURNAL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/engine/session.h"
#include "src/htm/fixed_table.h"

namespace rhtm
{

/** One in-place write to undo if the transaction aborts. */
struct UndoEntry
{
    uint64_t *addr;
    uint64_t oldValue;
};

/**
 * Old-value journal for eager (write-in-place) phases. Rolled back in
 * reverse push order so a location written twice ends at its pre-txn
 * value. The first kInlineEntries live in the object itself;
 * pathological write sets spill to a vector that keeps its capacity
 * across transactions.
 */
class UndoJournal
{
  public:
    static constexpr size_t kInlineEntries = 64;

    /** Record @p addr's pre-write value. */
    void
    push(uint64_t *addr, uint64_t oldValue)
    {
        if (size_ < kInlineEntries)
            inline_[size_] = {addr, oldValue};
        else
            overflow_.push_back({addr, oldValue});
        ++size_;
    }

    /** Replay old values newest-first through @p mem. */
    template <typename Mem>
    void
    rollback(const Mem &mem)
    {
        for (size_t i = size_; i > kInlineEntries; --i) {
            const UndoEntry &e = overflow_[i - kInlineEntries - 1];
            mem.store(e.addr, e.oldValue);
        }
        size_t live = size_ < kInlineEntries ? size_ : kInlineEntries;
        for (size_t i = live; i > 0; --i) {
            const UndoEntry &e = inline_[i - 1];
            mem.store(e.addr, e.oldValue);
        }
    }

    void
    clear()
    {
        size_ = 0;
        overflow_.clear();
    }

    bool empty() const { return size_ == 0; }

    size_t size() const { return size_; }

  private:
    std::array<UndoEntry, kInlineEntries> inline_;
    std::vector<UndoEntry> overflow_;
    size_t size_ = 0;
};

/**
 * Speculative write buffer for lazy (buffered) phases: lookups service
 * read-after-write, forEach publishes in program order at commit. The
 * open-addressing table itself lives in src/htm/fixed_table.h because
 * the simulated HTM uses the identical structure for its own write
 * set.
 */
using RedoBuffer = WriteBuffer;

/** One value-validated read (NOrec family). */
struct ReadEntry
{
    const uint64_t *addr;
    uint64_t value;
};

/**
 * Value-based read log (NOrec's validation set): remembers every
 * location/value a software read phase observed and re-checks them
 * whenever the global clock moves.
 */
class ValueReadLog
{
  public:
    ValueReadLog() { log_.reserve(1024); }

    void
    push(const uint64_t *addr, uint64_t value)
    {
        log_.push_back({addr, value});
    }

    void clear() { log_.clear(); }

    bool empty() const { return log_.empty(); }

    size_t size() const { return log_.size(); }

    /** True when every logged location still holds its logged value. */
    template <typename Mem>
    bool
    consistent(const Mem &mem) const
    {
        for (const ReadEntry &e : log_) {
            if (mem.load(e.addr) != e.value)
                return false;
        }
        return true;
    }

    /**
     * NOrec's validation loop: take a stable (unlocked) clock sample,
     * value-check the log, and retry until the clock holds still
     * across the check. Returns the snapshot the log is now valid at;
     * throws TxRestart if any value changed.
     */
    template <typename Mem, typename StableRead>
    uint64_t
    revalidate(const Mem &mem, const uint64_t *clock,
               StableRead stableRead) const
    {
        for (;;) {
            uint64_t snapshot = stableRead();
            if (!consistent(mem))
                throw TxRestart{};
            if (mem.load(clock) == snapshot)
                return snapshot;
        }
    }

  private:
    std::vector<ReadEntry> log_;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_JOURNAL_H
