/**
 * @file
 * Memory-access policies for the software paths.
 *
 * A software transaction that can run concurrently with simulated
 * hardware transactions must route every access through the HtmEngine
 * so that (a) its loads never observe a torn hardware commit and (b)
 * its stores doom hardware transactions tracking the line -- that is
 * exactly what cache coherence gives the real slow path for free.
 *
 * A pure-software runtime (NOrec STM, TL2 STM) has no hardware
 * transactions to coordinate with, so it uses plain sequentially
 * consistent atomics and keeps its natural scalability. The engine's
 * protocol objects (CommitSeqlock, UndoJournal, ValueReadLog) and the
 * STM algorithms are templated over this policy and instantiated both
 * ways.
 */

#ifndef RHTM_CORE_ENGINE_MEM_ACCESS_H
#define RHTM_CORE_ENGINE_MEM_ACCESS_H

#include <atomic>
#include <cstdint>

#include "src/htm/htm_engine.h"
#include "src/util/sched_point.h"

namespace rhtm
{

/** Accesses via plain seq_cst atomics (pure-software runtimes). */
struct RawMem
{
    RawMem() = default;

    uint64_t
    load(const uint64_t *addr) const
    {
        schedPoint(SchedPoint::kRawLoad, addr);
        return std::atomic_ref<const uint64_t>(*addr).load(
            std::memory_order_seq_cst);
    }

    void
    store(uint64_t *addr, uint64_t value) const
    {
        schedPoint(SchedPoint::kRawStore, addr);
        std::atomic_ref<uint64_t>(*addr).store(value,
                                               std::memory_order_seq_cst);
    }

    bool
    cas(uint64_t *addr, uint64_t &expected, uint64_t desired) const
    {
        schedPoint(SchedPoint::kRawRmw, addr);
        return std::atomic_ref<uint64_t>(*addr).compare_exchange_strong(
            expected, desired, std::memory_order_seq_cst);
    }

    uint64_t
    fetchAdd(uint64_t *addr, uint64_t delta) const
    {
        schedPoint(SchedPoint::kRawRmw, addr);
        return std::atomic_ref<uint64_t>(*addr).fetch_add(
            delta, std::memory_order_seq_cst);
    }
};

/** Accesses via the HtmEngine (slow paths of the hybrid TMs). */
struct EngineMem
{
    explicit EngineMem(HtmEngine &eng) : eng_(&eng) {}

    uint64_t load(const uint64_t *addr) const
    {
        return eng_->directLoad(addr);
    }

    void store(uint64_t *addr, uint64_t value) const
    {
        eng_->directStore(addr, value);
    }

    bool cas(uint64_t *addr, uint64_t &expected, uint64_t desired) const
    {
        return eng_->directCas(addr, expected, desired);
    }

    uint64_t fetchAdd(uint64_t *addr, uint64_t delta) const
    {
        return eng_->directFetchAdd(addr, delta);
    }

  private:
    HtmEngine *eng_;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_MEM_ACCESS_H
