/**
 * @file
 * MultiDomainCommit: ordered two-phase commit across TmDomains.
 *
 * A transaction that touched several domains cannot use any single
 * domain's seqlock to serialize itself -- it must hold *every*
 * involved domain's commit lock across one atomic publication point.
 * This header supplies the shape of that protocol; what "acquire",
 * "revalidate" and "publish" mean is algorithm-specific (NOrec locks
 * its clock, TL2 locks orecs, rh-tl2 takes the HTM lock) and is
 * supplied by the participant objects.
 *
 * The protocol is the classic ordered two-phase commit, instantiated
 * with NOrec-style value validation:
 *
 *   1. Sort participants by ascending TmDomain id. Domain ids are
 *      process-unique and never reused (domain.h), so every
 *      cross-domain committer acquires in the same global order and
 *      the protocol cannot deadlock against other cross committers.
 *      Single-domain (native) committers never *block* on a commit
 *      lock while holding another -- they restart or time out -- so
 *      they cannot complete a cycle either.
 *   2. prepare() each participant in order: acquire that domain's
 *      commit lock with a bounded wait, then revalidate the read log
 *      against committed state. Any failure releases the already-
 *      prepared prefix in reverse order with releaseRestore() (commit
 *      clocks resume their pre-lock value, so peers that sampled the
 *      clock before our attempt do not observe a spurious bump).
 *   3. publish() each participant's write buffer. All involved
 *      commit locks are held, so no reader in any involved domain can
 *      accept a value mid-publication.
 *   4. releaseAdvance() in reverse order: advance each domain's
 *      commit clock past the published state.
 *
 * Step 2's validation gives the whole protocol opacity: between the
 * last lock acquisition and publication, every read of every involved
 * domain is re-checked against a now-frozen world, which is exactly
 * the NOrec commit argument applied per-domain. Repeated step-2
 * failure is the caller's cue to escalate to serial mode (the store
 * freezes the involved domains up front; see docs/STORE.md).
 */

#ifndef RHTM_CORE_ENGINE_MULTI_DOMAIN_COMMIT_H
#define RHTM_CORE_ENGINE_MULTI_DOMAIN_COMMIT_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/engine/domain.h"

namespace rhtm
{

/**
 * Interface one per-domain commit participant implements. Kept
 * abstract (rather than a duck-typed template) so a mixed-AlgoKind
 * transaction can carry heterogeneous participants in one vector.
 */
class DomainCommitPart
{
  public:
    virtual ~DomainCommitPart() = default;

    /** Id of the TmDomain this participant commits into. */
    virtual uint64_t domainId() const = 0;

    /**
     * Acquire this domain's commit lock (bounded wait) and revalidate
     * the read log. Returns false on lock timeout or validation
     * failure; must leave the domain untouched in that case.
     */
    virtual bool prepare() = 0;

    /** Write back this domain's buffered writes. Called with every
     *  involved domain's commit lock held. */
    virtual void publish() = 0;

    /** Release after successful publication, advancing the domain's
     *  commit clock. */
    virtual void releaseAdvance() = 0;

    /** Release without publication, restoring the pre-prepare clock. */
    virtual void releaseRestore() = 0;
};

/** Sort participants into the global acquisition order. */
inline void
sortByDomain(std::vector<DomainCommitPart *> &parts)
{
    std::sort(parts.begin(), parts.end(),
              [](const DomainCommitPart *a, const DomainCommitPart *b) {
                  return a->domainId() < b->domainId();
              });
}

/**
 * Run the ordered two-phase commit over `parts` (must already be
 * sorted by ascending domain id -- see sortByDomain). Returns true on
 * commit; on false every domain is back to its pre-attempt state and
 * the caller restarts or escalates.
 */
inline bool
multiDomainCommit(std::vector<DomainCommitPart *> &parts)
{
    for (size_t i = 0; i < parts.size(); ++i) {
        if (!parts[i]->prepare()) {
            while (i-- > 0)
                parts[i]->releaseRestore();
            return false;
        }
    }
    for (DomainCommitPart *p : parts)
        p->publish();
    for (size_t i = parts.size(); i-- > 0;)
        parts[i]->releaseAdvance();
    return true;
}

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_MULTI_DOMAIN_COMMIT_H
