/**
 * @file
 * Progress-guarantee layer: FIFO ticket arbitration for the serial
 * starvation lock and the stall watchdog's escalating waiter.
 *
 * The paper's serial lock (Section 3.3) guarantees that a starving
 * transaction eventually runs alone, but says nothing about *which*
 * starving transaction wins when several need the lock at once: a bare
 * CAS race can leave one unlucky thread losing indefinitely. The ticket
 * pair in TmGlobals (serialNextTicket / serialServing) closes that gap:
 * acquirers take a ticket with one fetch-add and are served strictly in
 * ticket order, so the wait for serial mode is bounded by the queue
 * length ahead of you. The TM-visible word is still `serialLock` alone
 * -- fast-path commits subscribe to it exactly as the paper specifies,
 * and the whitebox tests peek/poke it as a plain 0/1 flag.
 *
 * The stall watchdog handles the failure mode fairness cannot: the
 * *holder* of a coordination word gets preempted (or fault-delayed)
 * while everyone else burns CPU spinning on it -- which, on an
 * oversubscribed host, is exactly what keeps the holder from running.
 * Holders stamp a monotonic epoch on acquire/release; a waiter whose
 * stall budget elapses without the watched epoch moving declares a
 * stall, raises the health gauge, and escalates spin -> yield -> sleep
 * to hand the stalled holder its CPU back. See docs/PROGRESS.md.
 */

#ifndef RHTM_CORE_ENGINE_PROGRESS_H
#define RHTM_CORE_ENGINE_PROGRESS_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/engine/deadline.h"
#include "src/core/engine/domain.h"
#include "src/core/engine/globals.h"
#include "src/core/engine/retry_policy.h"
#include "src/htm/htm_engine.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"
#include "src/util/sched_point.h"

namespace rhtm
{

/**
 * One spin-loop companion: call step() every time the awaited condition
 * came up false. Tracks the watched epoch, detects a stalled holder
 * once the policy's stall budget elapses without epoch progress, and
 * escalates the wait (spin with periodic yields -> pure yields ->
 * doubling sleeps). Restores the health gauge on destruction, so a
 * waiter that exits the loop (or unwinds) never leaves the runtime
 * reported unhealthy.
 *
 * An optional DeadlineState makes the wait bounded: step() polls it
 * (throttled) and throws TxnDeadlineExceeded when the transaction's
 * deadline expires. Pass one only where the throw is safe -- nothing
 * acquired yet, so the normal abort unwind releases everything. The
 * serial FIFO wait deliberately does NOT use it (see
 * serialLockAcquire's ticket-obligation protocol).
 */
class StallAwareWaiter
{
  public:
    StallAwareWaiter(TmGlobals &g, const RetryPolicy &policy,
                     ThreadStats *stats,
                     const std::atomic<uint64_t> &epoch,
                     DeadlineState *deadline = nullptr)
        : g_(g), policy_(policy), stats_(stats), epoch_(epoch),
          lastEpoch_(epoch.load(std::memory_order_relaxed)),
          deadline_(deadline)
    {}

    /** Domain-scoped spelling: waits inside domain `d` (the stall
     *  gauges raised here belong to that shard alone). */
    StallAwareWaiter(TmDomain &d, const RetryPolicy &policy,
                     ThreadStats *stats,
                     const std::atomic<uint64_t> &epoch,
                     DeadlineState *deadline = nullptr)
        : StallAwareWaiter(d.globals, policy, stats, epoch, deadline)
    {}

    ~StallAwareWaiter() { clearStall(); }

    StallAwareWaiter(const StallAwareWaiter &) = delete;
    StallAwareWaiter &operator=(const StallAwareWaiter &) = delete;

    /** Wait one step; the caller re-checks its condition after. */
    void
    step()
    {
        // Every hybrid-path unbounded wait (locked clock, htmLock,
        // serial FIFO) funnels through here; the explorer parks the
        // thread until someone else makes progress.
        schedWaitPoint(SchedPoint::kWaitSpin, &epoch_);
        if (deadline_ != nullptr)
            deadline_->poll();
        ++ticks_;
        uint64_t now = epoch_.load(std::memory_order_relaxed);
        if (now != lastEpoch_) {
            // The holder moved (acquired, released, or handed off):
            // whatever we were waiting on is being actively worked.
            lastEpoch_ = now;
            sinceProgress_ = 0;
            sleepUs_ = 0;
            clearStall();
        } else {
            ++sinceProgress_;
        }
        uint64_t budget = policy_.stallBudgetTicks;
        if (budget == 0 || sinceProgress_ < budget) {
            // Healthy phase: spin, yielding periodically so the
            // waited-on thread can run on an oversubscribed host.
            if ((ticks_ & 63) == 0)
                std::this_thread::yield();
            else
                cpuRelax();
            return;
        }
        if (!stalled_) {
            stalled_ = true;
            g_.watchdog.stallEvents.fetch_add(1,
                                              std::memory_order_relaxed);
            g_.watchdog.stalledWaiters.fetch_add(
                1, std::memory_order_relaxed);
            if (stats_)
                stats_->inc(Counter::kStallsDetected);
        }
        uint64_t over = sinceProgress_ - budget;
        if (over < policy_.stallYieldPhase) {
            if (stats_)
                stats_->inc(Counter::kStallYields);
            std::this_thread::yield();
            return;
        }
        // Yields didn't wake the holder: it is blocked behind something
        // slower than a scheduler quantum. Sleep with doubling, capped.
        uint32_t us =
            sleepUs_ == 0 ? std::max(1u, policy_.stallSleepMinUs)
                          : sleepUs_;
        sleepUs_ = std::min(us * 2, std::max(1u, policy_.stallSleepMaxUs));
        if (stats_)
            stats_->inc(Counter::kStallSleeps);
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    }

    /** Total wait iterations so far. */
    uint64_t ticks() const { return ticks_; }

    /** True while this waiter has a stall declared. */
    bool stalled() const { return stalled_; }

  private:
    void
    clearStall()
    {
        if (!stalled_)
            return;
        stalled_ = false;
        g_.watchdog.stalledWaiters.fetch_sub(1,
                                             std::memory_order_relaxed);
        if (stats_)
            stats_->inc(Counter::kStallRecoveries);
    }

    TmGlobals &g_;
    const RetryPolicy &policy_;
    ThreadStats *stats_;
    const std::atomic<uint64_t> &epoch_;
    uint64_t lastEpoch_;
    DeadlineState *deadline_ = nullptr;
    uint64_t ticks_ = 0;
    uint64_t sinceProgress_ = 0;
    uint32_t sleepUs_ = 0;
    bool stalled_ = false;
};

/**
 * Acquire the serial starvation lock FIFO: take a ticket, wait
 * (stall-aware, watching the serial epoch) until served, then raise the
 * TM-visible serialLock flag the fast paths subscribe to.
 *
 * Deadline protocol (ticket obligation): an expired deadline is only
 * honored BEFORE the ticket is taken. Once ticketed, the thread is an
 * obligated link in the FIFO -- throwing out of the queue would leave
 * serialServing permanently behind serialNextTicket and wedge every
 * later acquirer -- so it waits out the (queue-bounded) turn; if the
 * deadline expired while queued, it hands the grant straight to the
 * next ticket without ever raising serialLock, then unwinds. The wait
 * therefore stays bounded by the queue ahead, which is exactly the
 * bound the FIFO already guarantees.
 */
inline void
serialLockAcquire(HtmEngine &eng, TmGlobals &g,
                  const RetryPolicy &policy, ThreadStats *stats,
                  DeadlineState *deadline = nullptr)
{
    if (deadline != nullptr)
        deadline->pollNow(); // Last throw-safe point: no ticket yet.
    schedPoint(SchedPoint::kSerialTicket, &g.serialNextTicket);
    uint64_t ticket = eng.directFetchAdd(&g.serialNextTicket, 1);
    StallAwareWaiter waiter(g, policy, stats, g.watchdog.serialEpoch);
    while (eng.directLoad(&g.serialServing) != ticket)
        waiter.step();
    // Served: we are the unique owner until we advance serialServing.
    if (stats != nullptr) {
        stats->inc(Counter::kSerialAcquires);
        stats->inc(Counter::kSerialWaitTicks, waiter.ticks());
    }
    if (deadline != nullptr && deadline->expiredNow()) {
        // Expired while queued: hand the grant on (serialLock was
        // never raised, so there is nothing to release) and unwind.
        eng.directStore(&g.serialServing, ticket + 1);
        stampEpoch(g.watchdog.serialEpoch);
        throw TxnDeadlineExceeded{};
    }
    schedPoint(SchedPoint::kSerialAcquired, &g.serialLock);
    eng.directStore(&g.serialLock, 1);
    stampEpoch(g.watchdog.serialEpoch);
}

/**
 * Release the serial lock and grant the next ticket. The TM-visible
 * flag drops *before* the grant so the next holder's `serialLock = 1`
 * can never be overwritten by our release.
 */
inline void
serialLockRelease(HtmEngine &eng, TmGlobals &g)
{
    schedPoint(SchedPoint::kSerialRelease, &g.serialLock);
    uint64_t serving = eng.directLoad(&g.serialServing);
    eng.directStore(&g.serialLock, 0);
    eng.directStore(&g.serialServing, serving + 1);
    stampEpoch(g.watchdog.serialEpoch);
}

/**
 * RAII holder for the global HTM lock: acquires with a stall-aware CAS
 * loop (watching the clock epoch) and guarantees the release on every
 * exit path -- a commit routine that validates, restarts, or throws
 * mid-critical-section can never leak the lock and doom every hardware
 * fast path forever. Call release() at the happy-path end; the
 * destructor covers the unwinds.
 */
class ScopedHtmLock
{
  public:
    ScopedHtmLock(HtmEngine &eng, TmGlobals &g,
                  const RetryPolicy &policy, ThreadStats *stats,
                  DeadlineState *deadline = nullptr)
        : eng_(eng), g_(g)
    {
        // Deadline-safe: until the CAS lands nothing is held, so the
        // waiter's poll may unwind freely.
        StallAwareWaiter waiter(g, policy, stats, g.watchdog.clockEpoch,
                                deadline);
        for (;;) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.htmLock, expected, 1))
                break;
            waiter.step();
        }
        held_ = true;
        stampEpoch(g_.watchdog.clockEpoch);
    }

    /** Domain-scoped spelling: lock out shard `d`'s hardware paths. */
    ScopedHtmLock(HtmEngine &eng, TmDomain &d, const RetryPolicy &policy,
                  ThreadStats *stats, DeadlineState *deadline = nullptr)
        : ScopedHtmLock(eng, d.globals, policy, stats, deadline)
    {}

    ~ScopedHtmLock() { release(); }

    ScopedHtmLock(const ScopedHtmLock &) = delete;
    ScopedHtmLock &operator=(const ScopedHtmLock &) = delete;

    /** Drop the lock early (idempotent). */
    void
    release()
    {
        if (!held_)
            return;
        held_ = false;
        eng_.directStore(&g_.htmLock, 0);
        stampEpoch(g_.watchdog.clockEpoch);
    }

    /**
     * Hand ownership to the caller: the lock stays up and this guard
     * forgets it. Used by the irrevocable upgrade, whose hold outlives
     * the acquiring scope (the session releases at commit/rollback).
     */
    void disown() { held_ = false; }

  private:
    HtmEngine &eng_;
    TmGlobals &g_;
    bool held_ = false;
};

/**
 * Read the global clock, waiting out a writer's lock bit stall-aware
 * (watching the clock epoch) instead of restarting. Returns an
 * unlocked clock value.
 */
inline uint64_t
stableClockRead(HtmEngine &eng, TmGlobals &g,
                const RetryPolicy &policy, ThreadStats *stats,
                DeadlineState *deadline = nullptr)
{
    uint64_t clock = eng.directLoad(&g.clock);
    if (!clockIsLocked(clock))
        return clock;
    StallAwareWaiter waiter(g, policy, stats, g.watchdog.clockEpoch,
                            deadline);
    do {
        waiter.step();
        clock = eng.directLoad(&g.clock);
    } while (clockIsLocked(clock));
    return clock;
}

// ---------------------------------------------------------------------
// Domain-scoped spellings. A multi-domain caller (the cross-shard
// commit, the store's escalation path) names the shard it is waiting
// inside; these forward to the TmGlobals forms so single-domain
// sessions keep their existing call sites.

inline void
serialLockAcquire(HtmEngine &eng, TmDomain &d, const RetryPolicy &policy,
                  ThreadStats *stats, DeadlineState *deadline = nullptr)
{
    serialLockAcquire(eng, d.globals, policy, stats, deadline);
}

inline void
serialLockRelease(HtmEngine &eng, TmDomain &d)
{
    serialLockRelease(eng, d.globals);
}

inline uint64_t
stableClockRead(HtmEngine &eng, TmDomain &d, const RetryPolicy &policy,
                ThreadStats *stats, DeadlineState *deadline = nullptr)
{
    return stableClockRead(eng, d.globals, policy, stats, deadline);
}

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_PROGRESS_H
