/**
 * @file
 * Retry-policy and RH-specific configuration knobs (paper Section 3.3
 * and 3.4).
 */

#ifndef RHTM_CORE_ENGINE_RETRY_POLICY_H
#define RHTM_CORE_ENGINE_RETRY_POLICY_H

#include <algorithm>
#include <cstdint>

#include "src/core/engine/deadline.h"
#include "src/core/engine/globals.h"
#include "src/htm/abort.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"
#include "src/util/rng.h"
#include "src/util/sched_point.h"

namespace rhtm
{

/** Which contention manager the sessions run (ablation knob). */
enum class CmKind : uint8_t
{
    kStatic,    //!< Legacy doubling backoff, blind to the abort cause.
    kCauseAware //!< Cause-keyed randomized exponential backoff.
};

/**
 * The paper's static retry policy: up to 10 hardware restarts for
 * retry-worthy aborts (conflicts), immediate fallback for capacity
 * aborts; a slow path that restarts 10 times grabs the serial lock;
 * the two small RH hardware transactions are tried once each.
 */
struct RetryPolicy
{
    /** Max hardware fast-path attempts per transaction. */
    unsigned maxFastPathRetries = 10;

    /** Slow-path restarts before serializing via the serial lock. */
    unsigned maxSlowPathRestarts = 10;

    /** Attempts for each small HTM in the mixed slow path. */
    unsigned smallHtmAttempts = 1;

    /**
     * Use a dynamic fast-path budget instead of the static limit
     * (the dynamic-adaptive policy the paper cites as future work,
     * Section 3.3 / [11]).
     */
    bool adaptive = false;

    /** Bounds for the adaptive budget. */
    unsigned adaptiveMinRetries = 2;
    unsigned adaptiveMaxRetries = 24;

    /**
     * Anti-lemming kill switch: consecutive non-retryable hardware
     * aborts (across all threads, with no intervening hardware
     * commit) that trip the breaker and disable the fast path.
     * 0 disables the switch.
     */
    unsigned killSwitchThreshold = 64;

    /**
     * Decay-based re-enable: committed transactions (any path) the
     * breaker stays tripped before the fast path is re-probed.
     */
    unsigned killSwitchCooldownOps = 256;

    /** Contention manager driving inter-attempt waits. */
    CmKind cm = CmKind::kCauseAware;

    /**
     * Stall watchdog: wait iterations a waiter tolerates without the
     * watched holder's epoch advancing before it declares a stall and
     * escalates spin -> yield -> sleep. 0 disables the watchdog.
     */
    uint64_t stallBudgetTicks = 4096;

    /** Post-detection yield steps before escalating to sleeps. */
    uint32_t stallYieldPhase = 128;

    /** First post-yield sleep, microseconds (doubles per step). */
    uint32_t stallSleepMinUs = 50;

    /** Sleep-escalation cap, microseconds. */
    uint32_t stallSleepMaxUs = 2000;

    // ------------------------------------------------------------------
    // Test-only fix-reversion switches. Each one re-introduces a bug
    // this repo has already shipped a fix for, so the interleaving
    // explorer's regression programs (tests/check/regression_test.cc,
    // docs/CHECKING.md) can demonstrate that the checker would have
    // caught it. Never set outside tests.

    /**
     * Revert the AdaptiveRetryBudget first-try-commit recovery:
     * first-try hardware commits stop raising the payoff score, so a
     * low-contention workload ratchets down to adaptiveMinRetries and
     * never recovers.
     */
    bool revertFirstTryBudgetFix = false;

    /**
     * Revert the killSwitchOnComplete streak-reset fix: a thread that
     * LOSES the cooldown-decay CAS while holding a stale `cooldown ==
     * 1` snapshot resets the failure streak anyway, wiping failures
     * accumulated after the real reopen and deferring the next trip.
     */
    bool revertKillSwitchStreakFix = false;

    /**
     * Revert the policy-by-value freeze fix: AdaptiveRetryBudget
     * snapshots the policy at construction, so knob changes made after
     * session construction are silently ignored.
     */
    bool revertPolicySnapshotFix = false;

    /**
     * Revert the deadline-unwind fallback-deregistration fix: the
     * deadline unwind tail stops dropping the transaction's published
     * fallback registration, so every deadline that expires on a
     * registered slow path leaks a permanent +1 on TmGlobals::
     * fallbacks -- after which every hardware fast-path writer
     * validates and bumps the clock forever (a quiet, global
     * throughput collapse).
     */
    bool revertDeadlineUnwindFix = false;

    /**
     * Revert the timestamp-extension stable-recheck fix (commit-path
     * front 3, docs/COMMIT_PATH.md): the buggy extension value-checks
     * the read log and then adopts a RAW clock load as the new
     * txVersion_ -- without waiting for the lock bit to clear or
     * re-checking that the clock held still across the value check. A
     * reader that extends while a writer holds the clock adopts the
     * LOCKED value; its subsequent reads compare the clock against
     * that same locked word, sail through mid-writeback, and commit
     * having observed a torn write set (the ts-extension zombie-read
     * program catches the resulting non-serializable history).
     */
    bool revertTsExtensionFix = false;
};

/**
 * Why a session is about to wait before retrying. Keying the backoff
 * curve to the cause matters because the causes have very different
 * time constants: a conflict clears as soon as the winner commits
 * (short waits, aggressive growth), a capacity abort is a property of
 * the transaction itself (waiting is pointless; fall back fast), a
 * locked clock subscription means a writeback is in flight (medium,
 * bounded by the writer's set size), and an injected fault clears on
 * the injector's schedule (unknowable; middle-of-the-road curve).
 */
enum class WaitCause : uint8_t
{
    kConflict = 0, //!< Lost a cache-line race to a committing writer.
    kCapacity,     //!< Overflowed the hardware tracking model.
    kSubscription, //!< Clock/serial-lock subscription fired at begin.
    kInjected,     //!< Fault-injector abort (kOther / explicit).
    kRestart,      //!< Software slow-path value-validation restart.
    kNumCauses
};

/** Number of wait causes. */
constexpr unsigned kNumWaitCauses =
    static_cast<unsigned>(WaitCause::kNumCauses);

/** Printable name for a wait cause. */
inline const char *
waitCauseName(WaitCause cause)
{
    switch (cause) {
    case WaitCause::kConflict: return "conflict";
    case WaitCause::kCapacity: return "capacity";
    case WaitCause::kSubscription: return "subscription";
    case WaitCause::kInjected: return "injected";
    case WaitCause::kRestart: return "restart";
    default: return "unknown";
    }
}

/** Map a hardware abort to the wait cause driving the next backoff. */
inline WaitCause
waitCauseOf(const HtmAbort &abort)
{
    switch (abort.cause) {
    case HtmAbortCause::kConflict: return WaitCause::kConflict;
    case HtmAbortCause::kCapacity: return WaitCause::kCapacity;
    case HtmAbortCause::kExplicit: return WaitCause::kSubscription;
    case HtmAbortCause::kOther:
    default: return WaitCause::kInjected;
    }
}

/**
 * Cause-aware contention manager: randomized exponential backoff whose
 * base delay and cap are keyed to the wait cause, with the growth state
 * tracked per cause so a burst of conflicts does not inflate the wait
 * applied to the next (unrelated) capacity fallback.
 *
 * Randomization (jitter in [raw/2, raw]) breaks the retry convoys that
 * deterministic doubling produces when several losers of the same race
 * pick identical delays and collide again. The delays are still fully
 * deterministic for a fixed seed, which the chaos determinism suite
 * relies on.
 *
 * When the anti-lemming kill switch is tripped the manager quadruples
 * its delays: the fast path is already known-bad, so pounding the
 * coordination words only slows the slow-path transactions that are
 * making actual progress.
 *
 * CmKind::kStatic reproduces the legacy Backoff behaviour (blind
 * doubling to a fixed cap, then yield) as an ablation baseline.
 */
class ContentionManager
{
  public:
    ContentionManager(const RetryPolicy &policy, const TmGlobals *g,
                      uint64_t seed)
        : policy_(&policy), globals_(g), rng_(seed)
    {
        reset();
    }

    /**
     * Spin count for the next wait on @p cause; 0 means "yield the OS
     * thread instead" (the wait outgrew spinning).
     */
    uint32_t
    nextDelay(WaitCause cause)
    {
        if (policy_->cm == CmKind::kStatic)
            return staticDelay();
        const Curve &curve = kCurves[static_cast<unsigned>(cause)];
        uint32_t &level = level_[static_cast<unsigned>(cause)];
        uint64_t raw = uint64_t(curve.base) << level;
        if (raw < curve.cap)
            ++level;
        else
            raw = curve.cap;
        if (globals_ != nullptr && globals_->killSwitch.tripped())
            raw = std::min<uint64_t>(raw * 4, uint64_t(curve.cap) * 4);
        // Jitter into [raw/2, raw]; deterministic for a fixed seed.
        uint32_t delay = static_cast<uint32_t>(
            raw / 2 + rng_.nextBounded(raw / 2 + 1));
        // At the cap alternate spin with yield so a preempted holder
        // can run even when every waiter is saturated.
        if (raw >= curve.cap && (++attempts_ & 1) == 0)
            return 0;
        return delay;
    }

    /**
     * Execute one backoff step for @p cause (delay or yield). With a
     * @p deadline, an already-expired transaction skips the backoff
     * entirely: the wait would only delay the unwind the runtime's
     * attempt-boundary check is about to perform (docs/OVERLOAD.md).
     */
    BackoffAction
    onWait(WaitCause cause, DeadlineState *deadline = nullptr)
    {
        if (deadline != nullptr && deadline->expiredNow())
            return BackoffAction::kSpun;
        uint32_t delay = nextDelay(cause);
        if (delay == 0) {
            std::this_thread::yield();
            return BackoffAction::kYielded;
        }
        for (uint32_t i = 0; i < delay; ++i)
            cpuRelax();
        return BackoffAction::kSpun;
    }

    /** The transaction committed: drop back to the shortest waits. */
    void
    reset()
    {
        for (unsigned i = 0; i < kNumWaitCauses; ++i)
            level_[i] = 0;
        attempts_ = 0;
        staticLimit_ = 1;
    }

    /**
     * Restore the exact post-construction state (including the jitter
     * RNG), so back-to-back explored runs see identical delays. Test
     * isolation only (TxSession::resetForTest).
     */
    void
    reseedForTest(uint64_t seed)
    {
        rng_ = Rng(seed);
        reset();
    }

    /** Current doubling level for @p cause (for tests). */
    uint32_t
    level(WaitCause cause) const
    {
        return level_[static_cast<unsigned>(cause)];
    }

  private:
    struct Curve
    {
        uint32_t base; //!< First-wait spin count.
        uint32_t cap;  //!< Ceiling the doubling saturates at.
    };

    /** Per-cause delay curves (see WaitCause for the rationale). */
    static constexpr Curve kCurves[kNumWaitCauses] = {
        {16, 2048}, // kConflict: clears when the winner commits.
        {8, 256},   // kCapacity: waiting can't shrink the footprint.
        {64, 8192}, // kSubscription: a writeback is draining.
        {32, 4096}, // kInjected: unknown fault time constant.
        {32, 8192}, // kRestart: a concurrent commit moved the clock.
    };

    /** Legacy blind doubling (CmKind::kStatic ablation baseline). */
    uint32_t
    staticDelay()
    {
        if (staticLimit_ >= 1024)
            return 0;
        uint32_t delay = staticLimit_;
        staticLimit_ <<= 1;
        return delay;
    }

    const RetryPolicy *policy_;
    const TmGlobals *globals_;
    Rng rng_;
    uint32_t level_[kNumWaitCauses];
    uint32_t attempts_ = 0;
    uint32_t staticLimit_ = 1;
};

/**
 * Record a non-retryable hardware abort on the kill switch; trips the
 * breaker at the policy threshold. Called by sessions before falling
 * back.
 */
inline void
killSwitchOnHardwareFailure(TmGlobals &g, const RetryPolicy &policy,
                            ThreadStats *stats)
{
    if (policy.killSwitchThreshold == 0)
        return;
    TmGlobals::KillSwitch &ks = g.killSwitch;
    uint64_t failures =
        ks.consecutiveFailures.fetch_add(1, std::memory_order_relaxed) +
        1;
    if (failures < policy.killSwitchThreshold || ks.tripped())
        return;
    uint64_t expected = 0;
    if (ks.cooldown.compare_exchange_strong(
            expected, policy.killSwitchCooldownOps,
            std::memory_order_relaxed)) {
        ks.activations.fetch_add(1, std::memory_order_relaxed);
        if (stats)
            stats->inc(Counter::kKillSwitchActivations);
    }
}

/**
 * A hardware transaction committed: the fault (if any) has cleared
 * for at least one thread, so the failure streak resets.
 */
inline void
killSwitchOnHardwareCommit(TmGlobals &g)
{
    TmGlobals::KillSwitch &ks = g.killSwitch;
    if (ks.consecutiveFailures.load(std::memory_order_relaxed) != 0)
        ks.consecutiveFailures.store(0, std::memory_order_relaxed);
}

/**
 * A transaction committed on any path: decay the breaker's cooldown
 * so the fast path is eventually re-probed (half-open re-enable).
 * @p policy is only consulted for the test-only reversion switch;
 * call sites without one keep the fixed behaviour.
 */
inline void
killSwitchOnComplete(TmGlobals &g, const RetryPolicy *policy = nullptr)
{
    TmGlobals::KillSwitch &ks = g.killSwitch;
    uint64_t v = ks.cooldown.load(std::memory_order_relaxed);
    if (v == 0)
        return;
    // The load-to-CAS window is where the historical streak-reset bug
    // lived; expose it to the interleaving explorer.
    schedPoint(SchedPoint::kKillSwitchDecay, &ks.cooldown);
    // A lost race just means one decay step is skipped; harmless. The
    // streak reset, however, belongs to the thread whose CAS actually
    // re-opened the breaker (took cooldown 1 -> 0): a loser acting on
    // its stale v == 1 could wipe failures another thread accumulated
    // after the reopen and defer the next trip.
    uint64_t snap = v; // CAS failure overwrites v with the observed value.
    bool won = ks.cooldown.compare_exchange_strong(
        v, snap - 1, std::memory_order_relaxed);
    bool reset = won && snap == 1;
    if (policy != nullptr && policy->revertKillSwitchStreakFix)
        reset = snap == 1; // The shipped bug: losers reset on stale 1.
    if (reset)
        ks.consecutiveFailures.store(0, std::memory_order_relaxed);
}

/**
 * True when the session should skip the hardware fast path this
 * attempt. The caller counts the bypass and enters its fallback.
 */
inline bool
killSwitchBypass(const TmGlobals &g, const RetryPolicy &policy)
{
    return policy.killSwitchThreshold != 0 && g.killSwitch.tripped();
}

/**
 * EWMA-driven fast-path retry budget (Section 3.3's future-work
 * direction). Tracks whether hardware retries pay off: a transaction
 * that commits in hardware after several attempts raises the payoff
 * score, one that burns its budget and falls back anyway lowers it.
 * The budget interpolates between the policy's bounds.
 */
class AdaptiveRetryBudget
{
  public:
    explicit AdaptiveRetryBudget(const RetryPolicy &policy)
        : policy_(&policy), score_(kScale / 2)
    {
        if (policy.revertPolicySnapshotFix) {
            // Test-only bug reversion: freeze a copy at construction,
            // exactly what holding the policy by value used to do.
            snapshot_ = policy;
            policy_ = &snapshot_;
        }
    }

    AdaptiveRetryBudget(const AdaptiveRetryBudget &) = delete;
    AdaptiveRetryBudget &operator=(const AdaptiveRetryBudget &) = delete;

    /** Current fast-path attempt budget. */
    unsigned
    budget() const
    {
        if (!policy_->adaptive)
            return policy_->maxFastPathRetries;
        unsigned span =
            policy_->adaptiveMaxRetries - policy_->adaptiveMinRetries;
        return policy_->adaptiveMinRetries +
               static_cast<unsigned>(uint64_t(span) * score_ / kScale);
    }

    /** A transaction committed in hardware after @p attempts tries. */
    void
    onFastCommit(unsigned attempts)
    {
        if (attempts > 1) {
            // Retrying rescued this transaction: worth the budget.
            score_ += (kScale - score_) / 8;
        } else if (policy_->revertFirstTryBudgetFix) {
            // Test-only bug reversion: drop the recovery below.
        } else {
            // A first-try commit is weak evidence too: hardware is
            // healthy, so granting retries is cheap. Without this
            // recovery a low-contention workload whose only signal is
            // the rare fallback ratchets monotonically down to
            // adaptiveMinRetries and stays there.
            score_ += (kScale - score_) / 64;
        }
    }

    /** A transaction burned @p attempts tries and fell back anyway. */
    void
    onFallback(unsigned attempts)
    {
        (void)attempts;
        score_ -= score_ / 8;
    }

    /** Raw payoff score (for tests). */
    uint32_t score() const { return score_; }

    /** Back to the post-construction score (test isolation). */
    void resetForTest() { score_ = kScale / 2; }

  private:
    static constexpr uint32_t kScale = 1024;

    // Held by pointer, not by value: the budget must see knob changes
    // made after construction (the runtime hands every session a
    // reference to the one live RetryPolicy; a copy here silently
    // froze `adaptive` and the bounds at construction time).
    const RetryPolicy *policy_;
    RetryPolicy snapshot_; //!< Used only under revertPolicySnapshotFix.
    uint32_t score_;
};

/**
 * RH NOrec feature switches (the ablation benches toggle these) and
 * the dynamic prefix-length adjustment parameters (Section 2.4: start
 * long, halve on failure until it commits with high probability).
 */
struct RhConfig
{
    /** Run the HTM prefix (Algorithm 3). */
    bool enablePrefix = true;

    /** Run the HTM postfix (Algorithm 2). */
    bool enablePostfix = true;

    /** Adapt the prefix length from abort feedback. */
    bool adaptivePrefix = true;

    /** Initial/maximum expected prefix length, in reads. */
    uint32_t maxPrefixLength = 4096;

    /** Smallest prefix length the adjustment will try. */
    uint32_t minPrefixLength = 4;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_RETRY_POLICY_H
