/**
 * @file
 * Engine types shared by the TM algorithms: restart signalling, hints,
 * the per-mode dispatch descriptor, and the per-thread session base
 * every algorithm implements.
 *
 * Hot-path dispatch is devirtualized: Txn::read/write land on
 * non-virtual TxSession::read/write, which jump through a per-session
 * TxDispatch descriptor (a pair of free-function pointers) that the
 * session rebinds on every mode transition. A fast-path HTM attempt, a
 * validating software read phase, and a clock-held in-place write phase
 * are therefore *different descriptors*, not branches inside one
 * virtual read(): each accessor is a static function over the session's
 * state block with no per-access mode test and no vtable indirection.
 */

#ifndef RHTM_CORE_ENGINE_SESSION_H
#define RHTM_CORE_ENGINE_SESSION_H

#include <cstdint>
#include <cstdlib>

#include "src/core/engine/tm_config.h"
#include "src/htm/abort.h"

namespace rhtm
{

class DeadlineState;
struct GroupCommitArena;

/**
 * Thrown by an algorithm to abort and restart the current transaction
 * attempt (the library analogue of libitm's longjmp back to the
 * transaction entry). Caught by TmRuntime's retry loop; never escapes
 * to user code.
 */
struct TxRestart
{
};

/**
 * Caller-provided static hints, standing in for the GCC TM compiler
 * analysis the paper's implementation used (Section 3: "detection of
 * read-only fast-paths is based on the GCC compiler static analysis").
 */
enum class TxnHint : uint8_t
{
    kNone = 0,
    kReadOnly, //!< The body performs no transactional writes.
};

/**
 * Per-mode accessor descriptor. Each algorithm defines one constexpr
 * table per execution phase (HTM fast path, software read phase,
 * clock-held write phase, small-HTM postfix, ...) whose entries are
 * static functions over the session's state; begin() and every mode
 * transition bind the table matching the new phase. The descriptor is
 * immutable and shared by all sessions of the algorithm.
 */
struct TxDispatch
{
    uint64_t (*read)(void *self, const uint64_t *addr);
    void (*write)(void *self, uint64_t *addr, uint64_t value);
};

namespace detail
{
/** Accessing a session with no bound descriptor is a session bug. */
[[noreturn]] inline uint64_t
unboundRead(void *, const uint64_t *)
{
    std::abort();
}

[[noreturn]] inline void
unboundWrite(void *, uint64_t *, uint64_t)
{
    std::abort();
}

inline constexpr TxDispatch kUnboundDispatch = {&unboundRead,
                                                &unboundWrite};
} // namespace detail

/**
 * Per-thread algorithm state driving one transaction at a time.
 *
 * Lifecycle per transaction, orchestrated by TmRuntime::run:
 *
 *   begin(hint) -> body calls read()/write() -> commit()
 *
 * Any of these may throw HtmAbort (a simulated hardware abort) or
 * TxRestart (a software consistency abort); the runtime then calls
 * onHtmAbort()/onRestart() and re-enters begin(). After a successful
 * commit() the runtime calls onComplete().
 *
 * read()/write() are non-virtual: they route through the TxDispatch
 * descriptor the session bound for its current mode (see TxDispatch).
 * Everything off the per-access path stays virtual.
 *
 * Implementations are single-threaded objects: exactly one owning
 * thread ever calls into a session.
 */
class TxSession
{
  public:
    virtual ~TxSession() = default;

    /** Start a fresh attempt of the current transaction. */
    virtual void begin(TxnHint hint) = 0;

    /** Transactional load of an aligned 64-bit word. */
    uint64_t
    read(const uint64_t *addr)
    {
        return dispatch_->read(dispatchSelf_, addr);
    }

    /** Transactional store of an aligned 64-bit word. */
    void
    write(uint64_t *addr, uint64_t value)
    {
        dispatch_->write(dispatchSelf_, addr, value);
    }

    /** Finish the attempt; throws HtmAbort/TxRestart on failure. */
    virtual void commit() = 0;

    /**
     * Upgrade the attempt so it can no longer abort (docs/LIFECYCLE.md).
     *
     * Contract: either this returns with irrevocability granted --
     * after which read()/write()/commit() never throw and the
     * transaction is guaranteed to commit -- or it unwinds (HtmAbort
     * with kNeedIrrevocable on a hardware path, TxRestart on a failed
     * software validation) BEFORE granting, so the body re-executes
     * from the top and any post-upgrade side effect runs at most once.
     */
    virtual void becomeIrrevocable() = 0;

    /** True once the current attempt has been granted irrevocability. */
    virtual bool isIrrevocable() const = 0;

    /** The attempt unwound with a (simulated) hardware abort. */
    virtual void onHtmAbort(const HtmAbort &abort) = 0;

    /** The attempt unwound with a software restart. */
    virtual void onRestart() = 0;

    /**
     * A user exception unwound the body: release any held locks and
     * roll back in-place writes so the exception can propagate safely.
     */
    virtual void onUserAbort() = 0;

    /** The attempt committed; record commit-path statistics. */
    virtual void onComplete() = 0;

    /** Algorithm name for reports. */
    virtual const char *name() const = 0;

    /**
     * Restore the exact post-construction state, including every
     * cross-transaction adaptation (retry budgets, contention-manager
     * curves and jitter RNG, prefix-length estimates). Used by the
     * interleaving explorer between runs (docs/CHECKING.md) so a
     * replayed schedule reproduces the identical history.
     */
    virtual void resetForTest() {}

    /**
     * Current fast-path attempt budget (whitebox probe for the
     * checker's regression programs; 0 when the session has none).
     */
    virtual unsigned fastRetryBudgetForTest() const { return 0; }

    /** Raw adaptive payoff score (same probe; 0 when absent). */
    virtual uint32_t adaptiveScoreForTest() const { return 0; }

    /**
     * Attach the owning thread's deadline state (docs/OVERLOAD.md).
     * Called once by the runtime right after construction; sessions
     * thread the pointer into their waits via onDeadlineAttached().
     */
    void
    attachDeadline(DeadlineState *deadline)
    {
        deadline_ = deadline;
        onDeadlineAttached();
    }

    /**
     * Install the commit-path front switches (docs/COMMIT_PATH.md).
     * Called once by the runtime right after construction, before any
     * transaction runs on the session.
     */
    void configureCommitPath(const TmConfig &cfg) { commitCfg_ = cfg; }

    /**
     * Attach the domain's group-commit arena (commit-path front 4), or
     * nullptr when group commit is unavailable. Only the lazy NOrec
     * sessions consult it; everyone else ignores the pointer.
     */
    void attachGroupArena(GroupCommitArena *arena) { groupArena_ = arena; }

  protected:
    /** Hook for sessions that forward the pointer (SessionCore). */
    virtual void onDeadlineAttached() {}

    /** The thread's deadline state, or nullptr before attachment. */
    DeadlineState *deadline_ = nullptr;

    /** Commit-path front switches; defaults until configured. */
    TmConfig commitCfg_;

    /** The domain's group-commit arena, or nullptr (front 4 off). */
    GroupCommitArena *groupArena_ = nullptr;
    /**
     * Bind the accessor descriptor for the mode just entered. @p self
     * is passed back to the descriptor's functions (the derived
     * session, so its static accessors can cast without offsetting).
     */
    void
    bindDispatch(const TxDispatch &dispatch, void *self)
    {
        dispatch_ = &dispatch;
        dispatchSelf_ = self;
    }

  private:
    const TxDispatch *dispatch_ = &detail::kUnboundDispatch;
    void *dispatchSelf_ = nullptr;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_SESSION_H
