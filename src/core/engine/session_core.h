/**
 * @file
 * SessionCore: the shared state block and protocol steps every
 * HTM-backed session composes.
 *
 * The eight algorithm sessions used to each carry a private copy of
 * the same machinery -- mode/attempt bookkeeping, the kill-switch
 * bypass, fallback registration, the NOrec fast-path commit, the
 * hardware-abort retry ruling, serial-lock handling, the irrevocable
 * grant barrier, and the end-of-transaction reset. SessionCore owns
 * one copy; a session is the composition of this block with its
 * algorithm-specific read/write/commit policies (bound per mode as
 * TxDispatch descriptors).
 *
 * The pure STM sessions (NOrec, TL2) have no hardware transaction and
 * use only the AccessTally piece plus the protocol objects
 * (UndoJournal, ValueReadLog, CommitSeqlock).
 */

#ifndef RHTM_CORE_ENGINE_SESSION_CORE_H
#define RHTM_CORE_ENGINE_SESSION_CORE_H

#include <cstdint>

#include "src/core/engine/clock_subscription.h"
#include "src/core/engine/deadline.h"
#include "src/core/engine/domain.h"
#include "src/core/engine/fault_points.h"
#include "src/core/engine/globals.h"
#include "src/core/engine/progress.h"
#include "src/core/engine/retry_policy.h"
#include "src/htm/htm_engine.h"
#include "src/htm/htm_txn.h"
#include "src/persist/tx_persist.h"
#include "src/stats/stats.h"

namespace rhtm
{

/**
 * Execution phase of the current attempt, shared by every algorithm.
 * kSlow is the algorithm's non-serial fallback: the mixed (small-HTM)
 * path for the RH algorithms, the all-software path for the hybrids.
 * Which commit counter a kSlow commit lands on is a per-algorithm
 * policy choice (see SessionCore::completeTail).
 */
enum class ExecMode : uint8_t
{
    kFast = 0, //!< Pure hardware attempt.
    kSlow,     //!< Mixed/software fallback.
    kSerial    //!< Holding the serial starvation lock.
};

/**
 * Per-transaction access counts, kept as plain increments on the hot
 * path and flushed to ThreadStats once per transaction so the
 * instrumented accessors never pay an indirect stats call per access.
 */
struct AccessTally
{
    uint64_t fastReads = 0;
    uint64_t fastWrites = 0;
    uint64_t slowReads = 0;
    uint64_t slowWrites = 0;

    void
    flush(ThreadStats *stats)
    {
        if (stats != nullptr) {
            stats->inc(Counter::kFastPathReads, fastReads);
            stats->inc(Counter::kFastPathWrites, fastWrites);
            stats->inc(Counter::kSlowPathReads, slowReads);
            stats->inc(Counter::kSlowPathWrites, slowWrites);
        }
        fastReads = fastWrites = slowReads = slowWrites = 0;
    }
};

/**
 * Shared session state + the protocol steps that were previously
 * duplicated per algorithm. Held by value inside each HTM-backed
 * session; the session's static dispatch accessors read and write it
 * directly.
 */
struct SessionCore
{
    HtmEngine &eng;
    TmDomain &domain; //!< Coordination domain this session commits into.
    TmGlobals &g;     //!< Alias for domain.globals (the hot-path handle).
    HtmTxn &htm;
    ThreadStats *stats;
    const RetryPolicy &policy;
    AdaptiveRetryBudget retryBudget;
    ContentionManager cm;
    unsigned penalty; //!< Simulated per-access instrumentation cost.

    ExecMode mode = ExecMode::kFast;
    unsigned attempts = 0;     //!< Hardware fast-path tries this txn.
    unsigned slowRestarts = 0; //!< Slow-path restarts this txn.
    bool registered = false;   //!< Counted in TmGlobals::fallbacks.
    bool serialHeld = false;   //!< Holding the serial ticket lock.
    bool irrevocable = false;  //!< Granted irrevocability.
    uint64_t txVersion = 0;    //!< Clock snapshot reads validate at.
    AccessTally tally;

    /**
     * Durable-commit driver, or nullptr when persistence is off
     * (docs/PERSISTENCE.md). Set by the composing session right after
     * construction; when attached, beginFastPath() escalates every
     * attempt to the logged slow path, since a hardware transaction
     * cannot contain the pwb/pfence ordering the durable redo log
     * needs (the Persistent HyTM split).
     */
    TxPersist *persist = nullptr;

    /**
     * Per-thread deadline state, or nullptr until the runtime attaches
     * it (TxSession::attachDeadline). Threaded into every indefinite
     * wait under this session -- serial FIFO, clock spins, contention-
     * manager backoff -- so an armed deadline bounds them all
     * (docs/OVERLOAD.md); grantIrrevocable() suppresses it, because a
     * granted transaction must commit.
     */
    DeadlineState *deadline = nullptr;

  private:
    uint64_t cmSeed_; //!< Kept so resetForTest can reseed the CM.

  public:

    SessionCore(HtmEngine &engine, TmDomain &dom, HtmTxn &htmTxn,
                ThreadStats *threadStats, const RetryPolicy &retryPolicy,
                unsigned accessPenalty, uint64_t cmSeed)
        : eng(engine), domain(dom), g(dom.globals), htm(htmTxn),
          stats(threadStats), policy(retryPolicy),
          retryBudget(retryPolicy),
          cm(retryPolicy, &dom.globals, cmSeed), penalty(accessPenalty),
          cmSeed_(cmSeed)
    {}

    /**
     * Restore the exact post-construction state (test isolation: the
     * interleaving explorer resets sessions between runs so identical
     * schedules replay identical histories). The per-transaction
     * fields are covered by finishReset(); this additionally rewinds
     * the cross-transaction adaptive state.
     */
    void
    resetForTest()
    {
        finishReset();
        registered = false;
        serialHeld = false;
        txVersion = 0;
        tally = AccessTally{};
        retryBudget.resetForTest();
        cm.reseedForTest(cmSeed_);
    }

    void
    count(Counter c)
    {
        if (stats != nullptr)
            stats->inc(c);
    }

    // ------------------------------------------------------------------
    // Fast-path begin.

    /**
     * Start a hardware fast-path attempt, honoring the anti-lemming
     * kill switch: returns true with a live hardware transaction
     * subscribed to @p subscribeWord, or false after routing the
     * attempt to @p bypassMode (bypass counted as a fallback).
     */
    /** True when the durable-commit overlay is attached and armed. */
    bool
    persistOn() const
    {
        return persist != nullptr && persist->enabled();
    }

    bool
    beginFastPath(ExecMode bypassMode, const uint64_t *subscribeWord)
    {
        if (persistOn()) {
            // Persistence escalation: route to the algorithm's logged
            // fallback without charging the retry budget or the kill
            // switch -- this is a mode requirement, not contention.
            mode = bypassMode;
            count(Counter::kPersistEscalations);
            count(Counter::kFallbacks);
            return false;
        }
        if (killSwitchBypass(g, policy)) {
            mode = bypassMode;
            count(Counter::kKillSwitchBypasses);
            count(Counter::kFallbacks);
            return false;
        }
        ++attempts;
        count(Counter::kFastPathAttempts);
        htm.begin();
        htmEarlySubscribe(htm, subscribeWord);
        return true;
    }

    // ------------------------------------------------------------------
    // Slow-path registration and the serial lock.

    /** Join the published fallback count (idempotent per txn). */
    void
    registerFallback()
    {
        if (!registered) {
            eng.directFetchAdd(&g.fallbacks, 1);
            registered = true;
        }
    }

    void
    deregisterFallback()
    {
        if (registered) {
            eng.directFetchAdd(&g.fallbacks,
                               static_cast<uint64_t>(-1));
            registered = false;
        }
    }

    /** FIFO-acquire the serial starvation lock (idempotent). */
    void
    acquireSerial()
    {
        if (!serialHeld) {
            serialLockAcquire(eng, g, policy, stats, deadline);
            serialHeld = true;
        }
    }

    void
    releaseSerial()
    {
        if (serialHeld) {
            serialLockRelease(eng, g);
            serialHeld = false;
        }
    }

    /** Stall-aware unlocked read of the shared NOrec clock. */
    uint64_t
    stableClock()
    {
        return stableClockRead(eng, g, policy, stats, deadline);
    }

    // ------------------------------------------------------------------
    // NOrec-family fast-path commit (paper Algorithm 1 / Section 2.3).

    /**
     * Commit the hardware fast path: read-only commits are free; a
     * writer commits only if no software writeback is in flight (clock
     * unlocked, serial lock clear) and bumps the clock inside the
     * hardware transaction iff any slow path is live to observe it.
     */
    void
    fastCommitNOrec()
    {
        if (htm.isReadOnly()) {
            htm.commit();
            count(Counter::kReadOnlyCommits);
            return;
        }
        if (htm.read(&g.fallbacks) > 0) {
            uint64_t clock = htm.read(&g.clock);
            if (clockIsLocked(clock))
                htm.abortExplicit();
            if (htm.read(&g.serialLock) != 0)
                htm.abortExplicit();
            htm.write(&g.clock, clock + 2);
        }
        htm.commit();
    }

    // ------------------------------------------------------------------
    // Hardware-abort disposition.

    /**
     * The fast path needs irrevocability (or another fallback-only
     * service): route to @p fallbackMode with no budget, kill-switch,
     * or contention-manager charge -- the abort is a mode-change
     * request, not evidence of contention.
     */
    void
    fallbackUncharged(ExecMode fallbackMode)
    {
        mode = fallbackMode;
        count(Counter::kFallbacks);
    }

    /**
     * Rule on a fast-path hardware abort (after htm.cancel()): true
     * means retry in hardware (contention-manager wait applied); false
     * means the budget is burned or the abort non-retryable -- the
     * session is switched to @p fallbackMode and the fallback counted.
     */
    bool
    htmAbortFast(const HtmAbort &abort, ExecMode fallbackMode)
    {
        if (!abort.retryOk)
            killSwitchOnHardwareFailure(g, policy, stats);
        if (abort.retryOk && attempts < retryBudget.budget()) {
            cm.onWait(waitCauseOf(abort), deadline);
            return true;
        }
        retryBudget.onFallback(attempts);
        mode = fallbackMode;
        count(Counter::kFallbacks);
        return false;
    }

    /**
     * Software-phase restart bookkeeping: count it, escalate a
     * persistently restarting slow path to the serial lock, and apply
     * the restart backoff.
     */
    void
    restartEscalate()
    {
        irrevocable = false;
        count(Counter::kSlowPathRestarts);
        if (++slowRestarts >= policy.maxSlowPathRestarts &&
            mode == ExecMode::kSlow) {
            mode = ExecMode::kSerial;
        }
        cm.onWait(WaitCause::kRestart, deadline);
    }

    // ------------------------------------------------------------------
    // Irrevocability grant barrier (docs/LIFECYCLE.md).

    /**
     * Enter the grant barrier from a software phase: serialize via the
     * FIFO ticket lock (so at most one irrevocable transaction runs)
     * and give the fault injector its pre-grant window. May unwind
     * with TxRestart; the ticket is retained across pre-grant restarts
     * (serialHeld stays true) exactly as the lifecycle contract
     * requires.
     */
    void
    grantBarrierEnter(bool switchToSerialMode = true)
    {
        if (switchToSerialMode)
            mode = ExecMode::kSerial;
        acquireSerial();
        sessionFaultPoint(htm, FaultSite::kIrrevocableUpgrade);
    }

    /** The algorithm-specific validation passed: grant is final. */
    void
    grantIrrevocable()
    {
        irrevocable = true;
        // Irrevocability outranks the deadline: the transaction is now
        // guaranteed to commit, so no later poll may unwind it.
        if (deadline != nullptr)
            deadline->suppress();
        count(Counter::kIrrevocableUpgrades);
    }

    // ------------------------------------------------------------------
    // End-of-transaction tails.

    /**
     * Commit-side tail shared by every HTM-backed session: adaptive
     * budget and kill-switch credit, the per-mode commit counter
     * (@p slowCommitCounter names the algorithm's kSlow bucket), the
     * fallback/serial releases, and the access-tally flush. Sessions
     * run their algorithm-specific post-commit hooks after this, then
     * call finishReset().
     */
    void
    completeTail(Counter slowCommitCounter)
    {
        if (mode == ExecMode::kFast) {
            retryBudget.onFastCommit(attempts);
            killSwitchOnHardwareCommit(g);
        }
        killSwitchOnComplete(g, &policy);
        switch (mode) {
          case ExecMode::kFast:
            count(Counter::kCommitsFastPath);
            break;
          case ExecMode::kSlow:
            count(slowCommitCounter);
            break;
          case ExecMode::kSerial:
            count(Counter::kCommitsSerialPath);
            break;
        }
        deregisterFallback();
        releaseSerial();
        tally.flush(stats);
    }

    /** Reset the shared per-transaction state for the next txn. */
    void
    finishReset()
    {
        irrevocable = false;
        mode = ExecMode::kFast;
        attempts = 0;
        slowRestarts = 0;
        cm.reset();
    }

    /**
     * User-exception unwind tail: the transaction is over (no retry),
     * so release everything and reset, but leave the contention
     * manager's curves alone -- an unwound transaction is not evidence
     * that contention cleared.
     */
    void
    unwindTail()
    {
        // The reverted bug (tests only): the deadline/user-abort unwind
        // forgot to drop the published fallback registration, leaving a
        // permanent +1 on TmGlobals::fallbacks that makes every later
        // fast-path writer validate and bump the clock forever.
        if (!policy.revertDeadlineUnwindFix)
            deregisterFallback();
        releaseSerial();
        tally.flush(stats);
        irrevocable = false;
        mode = ExecMode::kFast;
        attempts = 0;
        slowRestarts = 0;
    }
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_SESSION_CORE_H
