/**
 * @file
 * TmConfig: the commit-path optimization flags (docs/COMMIT_PATH.md).
 *
 * Each flag gates one of the commit-path speed fronts independently so
 * every combination can be A/B benched and driven through the
 * conformance and check matrices (ROADMAP item 2). The flags are
 * engine-wide policy, not per-algorithm: a session that has no use for
 * a front (e.g. a TL2-family session and the NOrec timestamp
 * extension) simply ignores it.
 */

#ifndef RHTM_CORE_ENGINE_TM_CONFIG_H
#define RHTM_CORE_ENGINE_TM_CONFIG_H

namespace rhtm
{

/**
 * Commit-path front switches, wired from RuntimeConfig into every
 * session (TxSession::configureCommitPath). Defaults are the shipped
 * configuration: a front may default on only once it passes the
 * conformance sweep, the src/check/ program matrix, and the chaos/TSan
 * legs (docs/COMMIT_PATH.md has the safety argument per front).
 */
struct TmConfig
{
    /**
     * Front 1: per-transaction read/write-set Bloom filters. Readers
     * summarize their value-read log; committing writers publish their
     * write-set summary into the domain's CommitFilterRing while still
     * holding the clock. A reader that sees the clock move can then
     * prove every intervening commit disjoint from its read set and
     * adopt the new snapshot without a full value revalidation. Also
     * gates the redo-buffer membership pre-filter on lazy read paths.
     */
    bool readFilter = true;

    /**
     * Front 2: open-addressing hash index over the RedoBuffer, making
     * read-own-writes O(1). Off = the classic NOrec backward linear
     * scan of the append log (the honest baseline the A/B measures).
     */
    bool redoIndex = true;

    /**
     * Front 3: timestamp extension for the eager NOrec family. On a
     * clock bump in the read phase, revalidate the (filter-summarized)
     * value read log once and re-stamp txVersion_ instead of
     * restarting. The lazy family has always extended; this wires the
     * same rule into the eager sessions, guarded by
     * RetryPolicy::revertTsExtensionFix for the check matrix.
     */
    bool tsExtension = true;

    /**
     * Front 4: opt-in flat-combining group commit for slow-path lazy
     * writers. One clock bump publishes several disjoint-write-set
     * transactions; filter intersection (or a failed value check)
     * rejects a member back to its solo commit. Off by default: it
     * trades single-writer latency for clock-bump throughput, so the
     * store/bench layers opt in explicitly.
     */
    bool groupCommit = false;

    /**
     * Test hook: saturate every Bloom filter (all bits set), the
     * universal hash collision. Forces the filter-intersection path on
     * every check (skips never taken, group members always rejected to
     * solo) so the check matrix can pin the collision schedule
     * deterministically (the filter-collision program).
     */
    bool filterSaturateForTest = false;
};

} // namespace rhtm

#endif // RHTM_CORE_ENGINE_TM_CONFIG_H
