/**
 * @file
 * Protocol-level fault points for the algorithm sessions.
 *
 * HtmTxn fires the hardware-level sites itself; the sessions call
 * sessionFaultPoint() at the protocol windows (prefix commit, the
 * post-first-write clock-held window, postfix publication, software
 * writes), where the right unwind depends on whether a small hardware
 * transaction is live: inside one, a scripted abort must look like a
 * hardware abort (HtmAbort, so the session's reversion logic runs);
 * in a software phase it must look like a consistency restart
 * (TxRestart, so rollbackWriter and the restart bookkeeping run).
 */

#ifndef RHTM_CORE_FAULT_POINTS_H
#define RHTM_CORE_FAULT_POINTS_H

#include <thread>

#include "src/api/tx_defs.h"
#include "src/fault/fault_injector.h"
#include "src/htm/htm_txn.h"
#include "src/util/backoff.h"

namespace rhtm
{

/** Fire @p site on @p htm's injector (if any) and apply the fault. */
inline void
sessionFaultPoint(HtmTxn &htm, FaultSite site)
{
    FaultInjector *fault = htm.injector();
    if (fault == nullptr)
        return;
    uint32_t spins = 0;
    switch (fault->fire(site, &spins)) {
      case FaultKind::kNone:
      case FaultKind::kCapacitySqueeze:
        return;
      case FaultKind::kDelay:
        simDelay(spins);
        return;
      case FaultKind::kYield:
        std::this_thread::yield();
        return;
      case FaultKind::kAbortConflict:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kConflict, true);
        throw TxRestart{};
      case FaultKind::kAbortCapacity:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kCapacity, false);
        throw TxRestart{};
      case FaultKind::kAbortOther:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kOther, false);
        throw TxRestart{};
      case FaultKind::kAbortExplicit:
        if (htm.active())
            htm.abortInjected(HtmAbortCause::kExplicit, true);
        throw TxRestart{};
    }
}

} // namespace rhtm

#endif // RHTM_CORE_FAULT_POINTS_H
