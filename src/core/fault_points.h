/**
 * @file
 * Compatibility forwarder: the protocol-level fault points moved into
 * the shared transaction engine (src/core/engine/fault_points.h).
 */

#ifndef RHTM_CORE_FAULT_POINTS_H
#define RHTM_CORE_FAULT_POINTS_H

#include "src/core/engine/fault_points.h"

#endif // RHTM_CORE_FAULT_POINTS_H
