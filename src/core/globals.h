/**
 * @file
 * Compatibility forwarder: TmGlobals and the clock-word helpers moved
 * into the shared transaction engine (src/core/engine/globals.h).
 */

#ifndef RHTM_CORE_GLOBALS_H
#define RHTM_CORE_GLOBALS_H

#include "src/core/engine/globals.h"

#endif // RHTM_CORE_GLOBALS_H
