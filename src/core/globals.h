/**
 * @file
 * The hybrid protocol's shared global variables and clock-word helpers.
 *
 * The paper's coordination state (Section 2.3): a global clock whose
 * low bit doubles as the writer lock, the global HTM lock that lets a
 * failed mixed slow-path abort every hardware transaction, the fallback
 * counter, plus the serial starvation lock of Section 3.3 and the
 * single global lock used by Lock Elision. Each word sits on its own
 * cache line so simulated-HTM conflict tracking treats them
 * independently, exactly as the real implementation padded them.
 */

#ifndef RHTM_CORE_GLOBALS_H
#define RHTM_CORE_GLOBALS_H

#include <atomic>
#include <cstdint>

namespace rhtm
{

/** Lock bit stored in the clock's LSB; versions advance by 2. */
constexpr uint64_t kClockLockBit = 1;

/** True when the clock word carries the writer lock. */
inline bool
clockIsLocked(uint64_t clock)
{
    return (clock & kClockLockBit) != 0;
}

/** The clock word with the lock bit set. */
inline uint64_t
clockWithLock(uint64_t clock)
{
    return clock | kClockLockBit;
}

/** The next unlocked clock value: clear the lock bit and advance. */
inline uint64_t
clockUnlockAndAdvance(uint64_t clock)
{
    return (clock & ~kClockLockBit) + 2;
}

/**
 * Shared words coordinating fast paths and slow paths. All accesses go
 * through HtmEngine direct/transactional operations (or RawMem for
 * pure-software runtimes), never plain loads/stores.
 */
struct TmGlobals
{
    /** NOrec global clock; LSB is the writer lock (Section 2.3 #1). */
    alignas(64) uint64_t clock = 0;

    /** Aborts all hardware fast paths when set (Section 2.3 #2). */
    alignas(64) uint64_t htmLock = 0;

    /** Number of live mixed/software slow paths (Section 2.3 #3). */
    alignas(64) uint64_t fallbacks = 0;

    /** Serial starvation lock (Section 3.3). */
    alignas(64) uint64_t serialLock = 0;

    /** Single global lock for the Lock Elision fallback. */
    alignas(64) uint64_t globalLock = 0;

    /** Pad so the struct's last word owns its line too. */
    alignas(64) uint64_t pad = 0;

    /**
     * Anti-lemming HTM kill switch (runtime metadata, NOT TM-visible
     * memory: ordinary atomics, never engine-published, so touching
     * it cannot abort a hardware transaction).
     *
     * The lemming effect (Alistarh et al.): persistently failing
     * hardware transactions herd every thread onto the fallback, and
     * the fallback's metadata traffic then keeps killing fresh
     * hardware attempts. The breaker counts consecutive non-retryable
     * hardware aborts across all threads; at the policy threshold it
     * trips, sessions bypass the fast path outright, and a per-commit
     * decay re-opens it so the hardware path is re-probed once the
     * fault clears (classic circuit-breaker half-open behaviour).
     */
    struct KillSwitch
    {
        /** Non-retryable aborts since the last hardware commit. */
        std::atomic<uint64_t> consecutiveFailures{0};

        /** Commits left before re-probing; nonzero = tripped. */
        std::atomic<uint64_t> cooldown{0};

        /** Times the breaker has tripped (mirrors the stats counter). */
        std::atomic<uint64_t> activations{0};

        /** True while fast paths should be bypassed. */
        bool
        tripped() const
        {
            return cooldown.load(std::memory_order_relaxed) != 0;
        }
    };

    alignas(64) KillSwitch killSwitch;
};

} // namespace rhtm

#endif // RHTM_CORE_GLOBALS_H
