#include "src/core/hybrid_norec.h"

#include <cassert>

#include "src/core/fault_points.h"
#include "src/core/progress.h"

namespace rhtm
{

HybridNOrecSession::HybridNOrecSession(HtmEngine &eng, TmGlobals &globals,
                                       HtmTxn &htm, ThreadStats *stats,
                                       const RetryPolicy &policy,
                                       unsigned access_penalty,
                                       uint64_t cm_seed)
    : eng_(eng), g_(globals), htm_(htm), stats_(stats), policy_(policy),
      retryBudget_(policy_), penalty_(access_penalty),
      cm_(policy_, &globals, cm_seed)
{
    undo_.reserve(256);
}

void
HybridNOrecSession::beginSoftware()
{
    sessionFaultPoint(htm_, FaultSite::kFallbackStart);
    if (mode_ == Mode::kSerial && !serialHeld_) {
        serialLockAcquire(eng_, g_, policy_, stats_);
        serialHeld_ = true;
        // After serialHeld_: an unwinding fault must not leak the lock.
        sessionFaultPoint(htm_, FaultSite::kSerialHeld);
    }
    if (!registered_) {
        // Register once per transaction, not per attempt: every bump of
        // the fallback counter costs concurrent fast paths a tracked
        // line, so churn is kept minimal.
        eng_.directFetchAdd(&g_.fallbacks, 1);
        registered_ = true;
    }
    writeDetected_ = false;
    undo_.clear();
    // Wait out a mid-flight writer stall-aware instead of restarting:
    // a restart here charges the slow-path budget for another thread's
    // publication window and lemmings everyone into serial mode when
    // that writer stalls.
    txVersion_ = stableClockRead(eng_, g_, policy_, stats_);
}

void
HybridNOrecSession::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast) {
        if (killSwitchBypass(g_, policy_)) {
            mode_ = Mode::kSoftware;
            if (stats_) {
                stats_->inc(Counter::kKillSwitchBypasses);
                stats_->inc(Counter::kFallbacks);
            }
        } else {
            ++attempts_;
            if (stats_)
                stats_->inc(Counter::kFastPathAttempts);
            htm_.begin();
            // Early subscription (the Hybrid NOrec bottleneck): any
            // slow path that raises the HTM lock aborts us from this
            // point on.
            if (htm_.read(&g_.htmLock) != 0)
                htm_.abortSubscription();
            return;
        }
    }
    beginSoftware();
}

uint64_t
HybridNOrecSession::read(const uint64_t *addr)
{
    if (mode_ == Mode::kFast)
        return htm_.read(addr); // Uninstrumented (simulated) load.
    simDelay(penalty_); // Instrumented slow-path access (DESIGN.md).
    if (writeDetected_) {
        // We hold the clock and the HTM lock: nothing can commit.
        return eng_.directLoad(addr);
    }
    uint64_t v = eng_.directLoad(addr);
    if (eng_.directLoad(&g_.clock) != txVersion_)
        restart(); // Eager NOrec: no read log, restart on any commit.
    return v;
}

void
HybridNOrecSession::handleFirstWrite()
{
    uint64_t expected = txVersion_;
    if (!eng_.directCas(&g_.clock, expected, clockWithLock(txVersion_)))
        restart();
    writeDetected_ = true;
    stampEpoch(g_.watchdog.clockEpoch);
    // Eager writes are about to become visible: kill every hardware
    // fast path before the first store (Section 3.1).
    eng_.directStore(&g_.htmLock, 1);
    htmLockSet_ = true;
    // Clock and HTM lock are both held here; a scripted abort
    // exercises their release in rollbackWriter().
    sessionFaultPoint(htm_, FaultSite::kPostFirstWrite);
}

void
HybridNOrecSession::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kFast) {
        htm_.write(addr, value);
        return;
    }
    simDelay(penalty_); // Instrumented slow-path access (DESIGN.md).
    if (!writeDetected_)
        handleFirstWrite();
    if (irrevocable_)
        sessionFaultPointNoAbort(htm_, FaultSite::kSoftwareWrite);
    else
        sessionFaultPoint(htm_, FaultSite::kSoftwareWrite);
    undo_.push_back({addr, eng_.directLoad(addr)});
    eng_.directStore(addr, value);
}

void
HybridNOrecSession::commit()
{
    if (mode_ == Mode::kFast) {
        if (htm_.isReadOnly()) {
            // Read-only fast paths never signal the slow paths (the
            // GCC static read-only analysis in the paper; here the
            // write buffer tells us exactly).
            htm_.commit();
            if (stats_)
                stats_->inc(Counter::kReadOnlyCommits);
            return;
        }
        if (htm_.read(&g_.fallbacks) > 0) {
            uint64_t clock = htm_.read(&g_.clock);
            if (clockIsLocked(clock))
                htm_.abortExplicit();
            if (htm_.read(&g_.serialLock) != 0)
                htm_.abortExplicit(); // Serialized slow path running.
            // Notify the slow paths that memory changed.
            htm_.write(&g_.clock, clock + 2);
        }
        htm_.commit();
        return;
    }
    if (!writeDetected_) {
        if (stats_)
            stats_->inc(Counter::kReadOnlyCommits);
        return; // Read-only slow path: validated by every read.
    }
    eng_.directStore(&g_.htmLock, 0);
    htmLockSet_ = false;
    eng_.directStore(&g_.clock, clockUnlockAndAdvance(txVersion_));
    stampEpoch(g_.watchdog.clockEpoch);
    writeDetected_ = false;
    // The undo journal is dead once the writes are committed.
    undo_.clear();
}

void
HybridNOrecSession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (mode_ == Mode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        htm_.abortNeedIrrevocable();
    }
    if (!writeDetected_) {
        // Read phase: we hold neither the clock nor the HTM lock, so
        // queueing on the serial FIFO is deadlock-free (lock order:
        // serial BEFORE clock, docs/LIFECYCLE.md). The lock serializes
        // concurrent upgraders in ticket order.
        mode_ = Mode::kSerial;
        if (!serialHeld_) {
            serialLockAcquire(eng_, g_, policy_, stats_);
            serialHeld_ = true;
        }
        sessionFaultPoint(htm_, FaultSite::kIrrevocableUpgrade);
        // Lock the clock exactly as a first write would: a failed CAS
        // means some writer committed since our snapshot, so our reads
        // may be stale -- restart() BEFORE granting (the serial lock
        // stays held, so the replayed attempt upgrades unopposed).
        handleFirstWrite();
    }
    // Clock and HTM lock held: reads are direct, no one else can
    // commit, and commit() is a plain unlock-advance. Infallible.
    irrevocable_ = true;
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
HybridNOrecSession::rollbackWriter()
{
    if (!writeDetected_)
        return;
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
        eng_.directStore(it->addr, it->oldValue);
    if (htmLockSet_) {
        eng_.directStore(&g_.htmLock, 0);
        htmLockSet_ = false;
    }
    eng_.directStore(&g_.clock, clockUnlockAndAdvance(txVersion_));
    stampEpoch(g_.watchdog.clockEpoch);
    writeDetected_ = false;
}

void
HybridNOrecSession::restart()
{
    throw TxRestart{};
}

void
HybridNOrecSession::onHtmAbort(const HtmAbort &abort)
{
    assert(mode_ == Mode::kFast);
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    htm_.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: no amount of hardware
        // retrying can satisfy it, so skip the budget and go straight
        // to the serial slow path.
        mode_ = Mode::kSerial;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    if (!abort.retryOk)
        killSwitchOnHardwareFailure(g_, policy_, stats_);
    if (abort.retryOk && attempts_ < retryBudget_.budget()) {
        cm_.onWait(waitCauseOf(abort));
        return; // Conflict-style abort: retry in hardware.
    }
    // Capacity aborts (and exhausted budgets) go to software at once
    // (Section 3.3).
    retryBudget_.onFallback(attempts_);
    mode_ = Mode::kSoftware;
    if (stats_)
        stats_->inc(Counter::kFallbacks);
}

void
HybridNOrecSession::onRestart()
{
    if (mode_ == Mode::kFast) {
        // User retry() inside the hardware fast path.
        htm_.cancel();
        cm_.onWait(WaitCause::kRestart);
        return;
    }
    rollbackWriter();
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++slowRestarts_ >= policy_.maxSlowPathRestarts &&
        mode_ == Mode::kSoftware) {
        mode_ = Mode::kSerial;
    }
    cm_.onWait(WaitCause::kRestart);
}

void
HybridNOrecSession::onUserAbort()
{
    htm_.cancel();
    if (mode_ != Mode::kFast)
        rollbackWriter();
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    slowRestarts_ = 0;
}

void
HybridNOrecSession::onComplete()
{
    if (mode_ == Mode::kFast) {
        retryBudget_.onFastCommit(attempts_);
        killSwitchOnHardwareCommit(g_);
    }
    killSwitchOnComplete(g_);
    if (stats_) {
        switch (mode_) {
          case Mode::kFast:
            stats_->inc(Counter::kCommitsFastPath);
            break;
          case Mode::kSoftware:
            stats_->inc(Counter::kCommitsSoftwarePath);
            break;
          case Mode::kSerial:
            stats_->inc(Counter::kCommitsSerialPath);
            break;
        }
    }
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    slowRestarts_ = 0;
    cm_.reset();
}

} // namespace rhtm
