#include "src/core/hybrid_norec.h"

#include <cassert>

#include "src/core/engine/fault_points.h"
#include "src/util/backoff.h"

namespace rhtm
{

HybridNOrecSession::HybridNOrecSession(HtmEngine &eng, TmDomain &domain,
                                       HtmTxn &htm, ThreadStats *stats,
                                       const RetryPolicy &policy,
                                       unsigned access_penalty,
                                       uint64_t cm_seed,
                                       TxPersist *persist)
    : core_(eng, domain, htm, stats, policy, access_penalty, cm_seed),
      seqlock_(EngineMem(eng), &domain.globals.clock,
               &domain.globals.watchdog.clockEpoch)
{
    core_.persist = persist;
}

//
// Per-mode accessors
//

uint64_t
HybridNOrecSession::fastRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecSession *>(self);
    ++s->core_.tally.fastReads;
    return s->core_.htm.read(addr); // Uninstrumented (simulated) load.
}

void
HybridNOrecSession::fastWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<HybridNOrecSession *>(self);
    ++s->core_.tally.fastWrites;
    s->core_.htm.write(addr, value);
}

uint64_t
HybridNOrecSession::readPhaseRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecSession *>(self);
    simDelay(s->core_.penalty); // Instrumented access (DESIGN.md).
    ++s->core_.tally.slowReads;
    uint64_t v = s->core_.eng.directLoad(addr);
    if (s->commitCfg_.tsExtension) {
        // Front 3: keep a value log and extend the snapshot across
        // foreign commits instead of the unconditional restart below.
        while (s->core_.eng.directLoad(&s->core_.g.clock) !=
               s->core_.txVersion) {
            s->core_.txVersion = s->extend();
            v = s->core_.eng.directLoad(addr);
        }
        s->readLog_.push(addr, v);
        return v;
    }
    if (s->core_.eng.directLoad(&s->core_.g.clock) != s->core_.txVersion)
        s->restart(); // Eager NOrec: no read log, restart on any commit.
    return v;
}

uint64_t
HybridNOrecSession::extend()
{
    if (commitCfg_.readFilter) {
        uint64_t cur = core_.stableClock();
        if (cur == core_.txVersion)
            return cur; // The mover was a lock that restored; no-op.
        if (core_.g.filterRing.coveredDisjoint(core_.txVersion, cur,
                                               readLog_.filter())) {
            // Disjoint commits only (hardware bumps publish nothing
            // and fail the slot walk): the log holds, adopt cur.
            core_.count(Counter::kRevalidationsSkipped);
            core_.count(Counter::kTsExtensions);
            return cur;
        }
    }
    if (core_.policy.revertTsExtensionFix) {
        // BUG (reverted fix, check-matrix leg): value-check against a
        // possibly mid-writeback memory image and adopt a raw --
        // possibly locked -- clock sample; zombie reads follow (see
        // NOrecEagerSession::extend).
        if (!readLog_.consistent(EngineMem(core_.eng)))
            restart();
        return core_.eng.directLoad(&core_.g.clock);
    }
    core_.count(Counter::kRevalidations);
    uint64_t v =
        readLog_.revalidate(EngineMem(core_.eng), &core_.g.clock,
                            [this] { return core_.stableClock(); });
    core_.count(Counter::kTsExtensions);
    return v;
}

void
HybridNOrecSession::readPhaseWrite(void *self, uint64_t *addr,
                                   uint64_t value)
{
    auto *s = static_cast<HybridNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->handleFirstWrite();
    s->inPlaceWrite(addr, value);
}

uint64_t
HybridNOrecSession::writerRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    // We hold the clock and the HTM lock: nothing can commit.
    return s->core_.eng.directLoad(addr);
}

void
HybridNOrecSession::writerWrite(void *self, uint64_t *addr,
                                uint64_t value)
{
    auto *s = static_cast<HybridNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->inPlaceWrite(addr, value);
}

void
HybridNOrecSession::beginSoftware()
{
    sessionFaultPoint(core_.htm, FaultSite::kFallbackStart);
    if (core_.mode == ExecMode::kSerial && !core_.serialHeld) {
        core_.acquireSerial();
        // After serialHeld: an unwinding fault must not leak the lock.
        sessionFaultPoint(core_.htm, FaultSite::kSerialHeld);
    }
    // Register once per transaction, not per attempt: every bump of
    // the fallback counter costs concurrent fast paths a tracked
    // line, so churn is kept minimal.
    core_.registerFallback();
    writeDetected_ = false;
    undo_.clear();
    readLog_.clear();
    writeFilter_.clear();
    readLog_.setFilterEnabled(commitCfg_.tsExtension &&
                              commitCfg_.readFilter);
    if (commitCfg_.filterSaturateForTest) {
        readLog_.saturateFilterForTest();
        writeFilter_.saturate();
    }
    // Wait out a mid-flight writer stall-aware instead of restarting:
    // a restart here charges the slow-path budget for another thread's
    // publication window and lemmings everyone into serial mode when
    // that writer stalls.
    core_.txVersion = core_.stableClock();
    bindDispatch(kReadPhaseDispatch, this);
}

void
HybridNOrecSession::begin(TxnHint hint)
{
    (void)hint;
    if (core_.mode == ExecMode::kFast) {
        // Early subscription (the Hybrid NOrec bottleneck): any slow
        // path that raises the HTM lock aborts us from this point on.
        if (core_.beginFastPath(ExecMode::kSlow, &core_.g.htmLock)) {
            bindDispatch(kFastDispatch, this);
            return;
        }
    }
    beginSoftware();
}

void
HybridNOrecSession::handleFirstWrite()
{
    if (!seqlock_.tryAcquireAt(core_.txVersion)) {
        if (!commitCfg_.tsExtension)
            restart();
        // Front 3 at the upgrade point: extend (value-validating the
        // read log) and retry instead of restarting.
        for (;;) {
            core_.txVersion = extend();
            if (seqlock_.tryAcquireAt(core_.txVersion))
                break;
        }
    }
    writeDetected_ = true;
    // Eager writes are about to become visible: kill every hardware
    // fast path before the first store (Section 3.1).
    core_.eng.directStore(&core_.g.htmLock, 1);
    htmLockSet_ = true;
    bindDispatch(kWriterDispatch, this);
    // Clock and HTM lock are both held here; a scripted abort
    // exercises their release in rollbackWriter().
    sessionFaultPoint(core_.htm, FaultSite::kPostFirstWrite);
}

void
HybridNOrecSession::inPlaceWrite(uint64_t *addr, uint64_t value)
{
    if (core_.irrevocable)
        sessionFaultPointNoAbort(core_.htm, FaultSite::kSoftwareWrite);
    else
        sessionFaultPoint(core_.htm, FaultSite::kSoftwareWrite);
    if (commitCfg_.readFilter)
        writeFilter_.add(addr);
    undo_.push(addr, core_.eng.directLoad(addr));
    if (core_.persistOn())
        core_.persist->stage(addr, value);
    core_.eng.directStore(addr, value);
}

void
HybridNOrecSession::commit()
{
    if (core_.mode == ExecMode::kFast) {
        // Read-only fast paths never signal the slow paths (the GCC
        // static read-only analysis in the paper; here the write
        // buffer tells us exactly); writers check the clock lock and
        // serial lock, then notify the slow paths that memory changed.
        core_.fastCommitNOrec();
        return;
    }
    if (!writeDetected_) {
        core_.count(Counter::kReadOnlyCommits);
        return; // Read-only slow path: validated by every read.
    }
    // Durable commit: seal while the clock and HTM lock still exclude
    // every other committer (sealed set = prefix of commit order).
    if (core_.persistOn())
        core_.persist->sealStaged();
    core_.eng.directStore(&core_.g.htmLock, 0);
    htmLockSet_ = false;
    // Publish the write summary for front 1 -- after the HTM lock
    // drops (the ring is plain metadata, never engine-visible).
    seqlock_.releaseAdvance(core_.txVersion,
                            commitCfg_.readFilter ? &core_.g.filterRing
                                                  : nullptr,
                            writeFilter_);
    writeDetected_ = false;
    // The undo journal is dead once the writes are committed.
    undo_.clear();
    if (core_.persistOn())
        core_.persist->drainAndMark();
}

void
HybridNOrecSession::becomeIrrevocable()
{
    if (core_.irrevocable)
        return;
    if (core_.mode == ExecMode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        core_.htm.abortNeedIrrevocable();
    }
    if (!writeDetected_) {
        // Read phase: we hold neither the clock nor the HTM lock, so
        // queueing on the serial FIFO is deadlock-free (lock order:
        // serial BEFORE clock, docs/LIFECYCLE.md). The lock serializes
        // concurrent upgraders in ticket order.
        core_.grantBarrierEnter();
        // Lock the clock exactly as a first write would: a failed CAS
        // means some writer committed since our snapshot, so our reads
        // may be stale -- restart() BEFORE granting (the serial lock
        // stays held, so the replayed attempt upgrades unopposed).
        handleFirstWrite();
    }
    // Clock and HTM lock held: reads are direct, no one else can
    // commit, and commit() is a plain unlock-advance. Infallible.
    core_.grantIrrevocable();
}

void
HybridNOrecSession::rollbackWriter()
{
    if (core_.persistOn())
        core_.persist->discardStaged();
    if (!writeDetected_)
        return;
    undo_.rollback(EngineMem(core_.eng));
    undo_.clear();
    if (htmLockSet_) {
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockSet_ = false;
    }
    // The published summary covers the undone addresses, so a reader
    // that glimpsed them can never pass the disjointness skip.
    seqlock_.releaseAdvance(core_.txVersion,
                            commitCfg_.readFilter ? &core_.g.filterRing
                                                  : nullptr,
                            writeFilter_);
    writeDetected_ = false;
}

void
HybridNOrecSession::restart()
{
    throw TxRestart{};
}

void
HybridNOrecSession::onHtmAbort(const HtmAbort &abort)
{
    assert(core_.mode == ExecMode::kFast);
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    core_.htm.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: no amount of hardware
        // retrying can satisfy it, so skip the budget and go straight
        // to the serial slow path.
        core_.fallbackUncharged(ExecMode::kSerial);
        return;
    }
    // Conflict-style aborts retry in hardware; capacity aborts (and
    // exhausted budgets) go to software at once (Section 3.3).
    core_.htmAbortFast(abort, ExecMode::kSlow);
}

void
HybridNOrecSession::onRestart()
{
    if (core_.mode == ExecMode::kFast) {
        // User retry() inside the hardware fast path.
        core_.htm.cancel();
        core_.cm.onWait(WaitCause::kRestart);
        return;
    }
    rollbackWriter();
    core_.restartEscalate();
}

void
HybridNOrecSession::onUserAbort()
{
    core_.htm.cancel();
    if (core_.mode != ExecMode::kFast)
        rollbackWriter();
    core_.unwindTail();
}

void
HybridNOrecSession::onComplete()
{
    core_.completeTail(Counter::kCommitsSoftwarePath);
    core_.finishReset();
}

} // namespace rhtm
