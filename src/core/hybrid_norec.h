/**
 * @file
 * Hybrid NOrec of Dalessandro et al., in the optimized eager form the
 * paper evaluates as "HY-NOrec" (Section 3.1):
 *
 *  - Hardware fast path: subscribes to global_htm_lock at start (the
 *    early subscription RH NOrec removes), runs uninstrumented, and at
 *    commit -- when slow paths exist -- checks the clock lock and
 *    increments the global clock to signal them.
 *  - Software slow path: the eager encounter-time NOrec STM, which on
 *    its first write locks the clock and raises global_htm_lock,
 *    aborting all hardware transactions for its whole write phase
 *    (the source of the false aborts RH NOrec eliminates).
 *
 * The serial starvation lock of Section 3.3 backs a slow path that
 * restarts too often.
 *
 * Composition over the shared engine: SessionCore + CommitSeqlock +
 * UndoJournal; the fast path, the validating software read phase, and
 * the clock-held write phase are three TxDispatch descriptors.
 */

#ifndef RHTM_CORE_HYBRID_NOREC_H
#define RHTM_CORE_HYBRID_NOREC_H

#include <cstdint>

#include "src/core/engine/commit_seqlock.h"
#include "src/core/engine/journal.h"
#include "src/core/engine/mem_access.h"
#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"

namespace rhtm
{

/** Per-thread Hybrid NOrec session. */
class HybridNOrecSession : public TxSession
{
  public:
    HybridNOrecSession(HtmEngine &eng, TmDomain &domain, HtmTxn &htm,
                       ThreadStats *stats, const RetryPolicy &policy,
                       unsigned access_penalty = 0,
                       uint64_t cm_seed = 1,
                       TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return core_.irrevocable; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "hy-norec"; }

    void
    onDeadlineAttached() override
    {
        core_.deadline = deadline_;
    }

    void
    resetForTest() override
    {
        core_.resetForTest();
        writeDetected_ = false;
        htmLockSet_ = false;
        undo_.clear();
        readLog_.clear();
        writeFilter_.clear();
    }

    unsigned
    fastRetryBudgetForTest() const override
    {
        return core_.retryBudget.budget();
    }

    uint32_t
    adaptiveScoreForTest() const override
    {
        return core_.retryBudget.score();
    }

  private:
    static uint64_t fastRead(void *self, const uint64_t *addr);
    static void fastWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t readPhaseRead(void *self, const uint64_t *addr);
    static void readPhaseWrite(void *self, uint64_t *addr,
                               uint64_t value);
    static uint64_t writerRead(void *self, const uint64_t *addr);
    static void writerWrite(void *self, uint64_t *addr, uint64_t value);

    static constexpr TxDispatch kFastDispatch = {&fastRead, &fastWrite};
    static constexpr TxDispatch kReadPhaseDispatch = {&readPhaseRead,
                                                      &readPhaseWrite};
    static constexpr TxDispatch kWriterDispatch = {&writerRead,
                                                   &writerWrite};

    /** Begin a software (or serial) slow-path attempt. */
    void beginSoftware();

    /** First slow-path write: lock clock, raise the HTM lock. */
    void handleFirstWrite();

    /**
     * Timestamp extension (commit-path front 3): value-validate the
     * read-phase log and adopt the new snapshot instead of restarting
     * on a foreign commit. Only called with TmConfig::tsExtension on.
     */
    uint64_t extend();

    /** Journal-backed in-place write (clock + HTM lock held). */
    void inPlaceWrite(uint64_t *addr, uint64_t value);

    /** Undo slow-path writes and drop both locks. */
    void rollbackWriter();

    [[noreturn]] void restart();

    SessionCore core_;
    CommitSeqlock<EngineMem> seqlock_;

    bool writeDetected_ = false;
    bool htmLockSet_ = false;
    UndoJournal undo_;
    //! Read-phase value log, kept only for timestamp extension.
    ValueReadLog readLog_;
    //! Write-set summary published to the CommitFilterRing (front 1).
    TxFilter writeFilter_;
};

} // namespace rhtm

#endif // RHTM_CORE_HYBRID_NOREC_H
