/**
 * @file
 * Hybrid NOrec of Dalessandro et al., in the optimized eager form the
 * paper evaluates as "HY-NOrec" (Section 3.1):
 *
 *  - Hardware fast path: subscribes to global_htm_lock at start (the
 *    early subscription RH NOrec removes), runs uninstrumented, and at
 *    commit -- when slow paths exist -- checks the clock lock and
 *    increments the global clock to signal them.
 *  - Software slow path: the eager encounter-time NOrec STM, which on
 *    its first write locks the clock and raises global_htm_lock,
 *    aborting all hardware transactions for its whole write phase
 *    (the source of the false aborts RH NOrec eliminates).
 *
 * The serial starvation lock of Section 3.3 backs a slow path that
 * restarts too often.
 */

#ifndef RHTM_CORE_HYBRID_NOREC_H
#define RHTM_CORE_HYBRID_NOREC_H

#include <cstdint>
#include <vector>

#include "src/api/tx_defs.h"
#include "src/core/globals.h"
#include "src/core/retry_policy.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"

namespace rhtm
{

/** Per-thread Hybrid NOrec session. */
class HybridNOrecSession : public TxSession
{
  public:
    HybridNOrecSession(HtmEngine &eng, TmGlobals &globals, HtmTxn &htm,
                       ThreadStats *stats, const RetryPolicy &policy,
                       unsigned access_penalty = 0,
                       uint64_t cm_seed = 1);

    void begin(TxnHint hint) override;
    uint64_t read(const uint64_t *addr) override;
    void write(uint64_t *addr, uint64_t value) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "hy-norec"; }

  private:
    enum class Mode
    {
        kFast,     //!< Hardware fast path.
        kSoftware, //!< Eager NOrec software slow path.
        kSerial,   //!< Software slow path holding the serial lock.
    };

    struct UndoEntry
    {
        uint64_t *addr;
        uint64_t oldValue;
    };

    /** Begin a software (or serial) slow-path attempt. */
    void beginSoftware();

    /** First slow-path write: lock clock, raise the HTM lock. */
    void handleFirstWrite();

    /** Undo slow-path writes and drop both locks. */
    void rollbackWriter();

    [[noreturn]] void restart();

    HtmEngine &eng_;
    TmGlobals &g_;
    HtmTxn &htm_;
    ThreadStats *stats_;
    // Reference, not a copy: post-construction knob changes apply.
    const RetryPolicy &policy_;
    AdaptiveRetryBudget retryBudget_;
    unsigned penalty_;
    ContentionManager cm_;

    Mode mode_ = Mode::kFast;
    unsigned attempts_ = 0;
    unsigned slowRestarts_ = 0;
    bool registered_ = false;
    bool serialHeld_ = false;
    bool writeDetected_ = false;
    bool htmLockSet_ = false;
    bool irrevocable_ = false;
    uint64_t txVersion_ = 0;
    std::vector<UndoEntry> undo_;
};

} // namespace rhtm

#endif // RHTM_CORE_HYBRID_NOREC_H
