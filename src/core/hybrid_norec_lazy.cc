#include "src/core/hybrid_norec_lazy.h"

#include <cassert>

#include "src/core/engine/fault_points.h"
#include "src/util/backoff.h"

namespace rhtm
{

HybridNOrecLazySession::HybridNOrecLazySession(
    HtmEngine &eng, TmDomain &domain, HtmTxn &htm, ThreadStats *stats,
    const RetryPolicy &policy, unsigned access_penalty, uint64_t cm_seed,
    TxPersist *persist)
    : core_(eng, domain, htm, stats, policy, access_penalty, cm_seed),
      seqlock_(EngineMem(eng), &domain.globals.clock,
               &domain.globals.watchdog.clockEpoch),
      writes_(12)
{
    core_.persist = persist;
}

//
// Per-mode accessors
//

uint64_t
HybridNOrecLazySession::fastRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    ++s->core_.tally.fastReads;
    return s->core_.htm.read(addr);
}

void
HybridNOrecLazySession::fastWrite(void *self, uint64_t *addr,
                                  uint64_t value)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    ++s->core_.tally.fastWrites;
    s->core_.htm.write(addr, value);
}

uint64_t
HybridNOrecLazySession::softRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    uint64_t v = s->core_.eng.directLoad(addr);
    while (s->core_.eng.directLoad(&s->core_.g.clock) !=
           s->core_.txVersion) {
        s->core_.txVersion = s->validate();
        v = s->core_.eng.directLoad(addr);
    }
    s->readLog_.push(addr, v);
    return v;
}

void
HybridNOrecLazySession::softWrite(void *self, uint64_t *addr,
                                  uint64_t value)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    sessionFaultPoint(s->core_.htm, FaultSite::kSoftwareWrite);
    s->writes_.putGrowing(addr, value);
}

uint64_t
HybridNOrecLazySession::pinnedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    // We hold the clock (irrevocable upgrade): no writer can commit,
    // so memory is frozen and reads go straight through.
    return s->core_.eng.directLoad(addr);
}

void
HybridNOrecLazySession::pinnedWrite(void *self, uint64_t *addr,
                                    uint64_t value)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    sessionFaultPointNoAbort(s->core_.htm, FaultSite::kSoftwareWrite);
    s->writes_.putGrowing(addr, value);
}

void
HybridNOrecLazySession::beginSoftware()
{
    sessionFaultPoint(core_.htm, FaultSite::kFallbackStart);
    if (core_.mode == ExecMode::kSerial && !core_.serialHeld) {
        core_.acquireSerial();
        // After serialHeld: an unwinding fault must not leak the lock.
        sessionFaultPoint(core_.htm, FaultSite::kSerialHeld);
    }
    core_.registerFallback();
    readLog_.clear();
    writes_.clear();
    core_.txVersion = core_.stableClock();
    bindDispatch(kSoftDispatch, this);
}

void
HybridNOrecLazySession::begin(TxnHint hint)
{
    (void)hint;
    if (core_.mode == ExecMode::kFast) {
        if (core_.beginFastPath(ExecMode::kSlow, &core_.g.htmLock)) {
            bindDispatch(kFastDispatch, this);
            return;
        }
    }
    beginSoftware();
}

uint64_t
HybridNOrecLazySession::validate()
{
    return readLog_.revalidate(EngineMem(core_.eng), &core_.g.clock,
                               [this] { return core_.stableClock(); });
}

void
HybridNOrecLazySession::commit()
{
    if (core_.mode == ExecMode::kFast) {
        core_.fastCommitNOrec();
        return;
    }
    if (writes_.empty()) {
        if (clockHeld_) {
            // Irrevocable upgrade that turned out read-only: nothing
            // was published, so restore the clock unchanged.
            seqlock_.releaseRestore(core_.txVersion);
            clockHeld_ = false;
        }
        core_.count(Counter::kReadOnlyCommits);
        return;
    }
    if (!clockHeld_) {
        // Acquire the clock (revalidating on contention), then raise
        // the HTM lock only for the short write-back window: this is
        // the lazy design's advantage over the eager one, which holds
        // it from the first write onward. An irrevocable upgrade
        // hoisted this acquisition to the upgrade point, in which case
        // the commit below must not (and cannot) fail.
        core_.txVersion = seqlock_.acquireValidating(
            core_.txVersion, [this] { return validate(); });
        clockHeld_ = true;
    }
    if (core_.irrevocable)
        sessionFaultPointNoAbort(core_.htm, FaultSite::kPostFirstWrite);
    else
        sessionFaultPoint(core_.htm, FaultSite::kPostFirstWrite);
    core_.eng.directStore(&core_.g.htmLock, 1);
    htmLockSet_ = true;
    // The lazy design's publication window: clock and HTM lock held
    // while the write set is flushed. A scripted delay stretches it;
    // an abort exercises releaseCommitLocks() (writes already flushed
    // stay -- the advanced clock forces readers to revalidate).
    if (core_.irrevocable)
        sessionFaultPointNoAbort(core_.htm, FaultSite::kPublishWindow);
    else
        sessionFaultPoint(core_.htm, FaultSite::kPublishWindow);
    writes_.forEach([this](uint64_t *addr, uint64_t value) {
        // Stage-at-publish: the lazy write set becomes the durable
        // redo payload only once validation has succeeded.
        if (core_.persistOn())
            core_.persist->stage(addr, value);
        core_.eng.directStore(addr, value);
    });
    // Durable commit: seal while the clock and HTM lock still exclude
    // every other committer (sealed set = prefix of commit order).
    if (core_.persistOn())
        core_.persist->sealStaged();
    core_.eng.directStore(&core_.g.htmLock, 0);
    htmLockSet_ = false;
    seqlock_.releaseAdvance(core_.txVersion);
    clockHeld_ = false;
    if (core_.persistOn())
        core_.persist->drainAndMark();
}

void
HybridNOrecLazySession::becomeIrrevocable()
{
    if (core_.irrevocable)
        return;
    if (core_.mode == ExecMode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        core_.htm.abortNeedIrrevocable();
    }
    if (!clockHeld_) {
        // Read phase (the lazy design holds no lock before commit):
        // queue on the serial FIFO first -- we hold nothing, so this
        // is deadlock-free (lock order: serial BEFORE clock,
        // docs/LIFECYCLE.md) -- then take the clock the way commit()
        // would, revalidating the read log on contention. Either CAS
        // retry unwinds pre-grant via validate()'s restart, or we end
        // holding the clock with a consistent snapshot.
        core_.grantBarrierEnter();
        core_.txVersion = seqlock_.acquireValidating(
            core_.txVersion, [this] { return validate(); });
        clockHeld_ = true;
    }
    // Clock held: no writer can publish, reads go direct, buffered
    // writes flush unconditionally at commit. Infallible from here.
    core_.grantIrrevocable();
    bindDispatch(kPinnedDispatch, this);
}

void
HybridNOrecLazySession::releaseCommitLocks()
{
    // An unwind inside the publication window may leave some writes
    // flushed in volatile memory but never sealed; discarding the
    // staged payload means recovery drops them all, which is the
    // all-or-nothing durable view of an aborted transaction.
    if (core_.persistOn())
        core_.persist->discardStaged();
    if (htmLockSet_) {
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockSet_ = false;
    }
    if (clockHeld_) {
        // Nothing (or everything) was written back before the unwind;
        // advance to force concurrent readers to revalidate.
        seqlock_.releaseAdvance(core_.txVersion);
        clockHeld_ = false;
    }
}

void
HybridNOrecLazySession::restart()
{
    throw TxRestart{};
}

void
HybridNOrecLazySession::onHtmAbort(const HtmAbort &abort)
{
    assert(core_.mode == ExecMode::kFast);
    core_.htm.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: hardware retries cannot
        // satisfy it, so skip the budget and go straight to serial.
        core_.fallbackUncharged(ExecMode::kSerial);
        return;
    }
    core_.htmAbortFast(abort, ExecMode::kSlow);
}

void
HybridNOrecLazySession::onRestart()
{
    if (core_.mode == ExecMode::kFast) {
        core_.htm.cancel();
        core_.cm.onWait(WaitCause::kRestart);
        return;
    }
    releaseCommitLocks();
    core_.restartEscalate();
}

void
HybridNOrecLazySession::onUserAbort()
{
    core_.htm.cancel();
    releaseCommitLocks();
    core_.unwindTail();
}

void
HybridNOrecLazySession::onComplete()
{
    core_.completeTail(Counter::kCommitsSoftwarePath);
    core_.finishReset();
}

} // namespace rhtm
