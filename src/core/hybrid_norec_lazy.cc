#include "src/core/hybrid_norec_lazy.h"

#include <cassert>

#include "src/core/engine/fault_points.h"
#include "src/core/engine/group_commit.h"
#include "src/util/backoff.h"

namespace rhtm
{

HybridNOrecLazySession::HybridNOrecLazySession(
    HtmEngine &eng, TmDomain &domain, HtmTxn &htm, ThreadStats *stats,
    const RetryPolicy &policy, unsigned access_penalty, uint64_t cm_seed,
    TxPersist *persist)
    : core_(eng, domain, htm, stats, policy, access_penalty, cm_seed),
      seqlock_(EngineMem(eng), &domain.globals.clock,
               &domain.globals.watchdog.clockEpoch),
      writes_(12)
{
    core_.persist = persist;
}

//
// Per-mode accessors
//

uint64_t
HybridNOrecLazySession::fastRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    ++s->core_.tally.fastReads;
    return s->core_.htm.read(addr);
}

void
HybridNOrecLazySession::fastWrite(void *self, uint64_t *addr,
                                  uint64_t value)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    ++s->core_.tally.fastWrites;
    s->core_.htm.write(addr, value);
}

uint64_t
HybridNOrecLazySession::softRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    uint64_t v = s->core_.eng.directLoad(addr);
    while (s->core_.eng.directLoad(&s->core_.g.clock) !=
           s->core_.txVersion) {
        s->core_.txVersion = s->validate();
        v = s->core_.eng.directLoad(addr);
    }
    s->readLog_.push(addr, v);
    return v;
}

void
HybridNOrecLazySession::softWrite(void *self, uint64_t *addr,
                                  uint64_t value)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    sessionFaultPoint(s->core_.htm, FaultSite::kSoftwareWrite);
    s->writes_.putGrowing(addr, value);
}

uint64_t
HybridNOrecLazySession::pinnedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    // We hold the clock (irrevocable upgrade): no writer can commit,
    // so memory is frozen and reads go straight through.
    return s->core_.eng.directLoad(addr);
}

void
HybridNOrecLazySession::pinnedWrite(void *self, uint64_t *addr,
                                    uint64_t value)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    sessionFaultPointNoAbort(s->core_.htm, FaultSite::kSoftwareWrite);
    s->writes_.putGrowing(addr, value);
}

void
HybridNOrecLazySession::beginSoftware()
{
    sessionFaultPoint(core_.htm, FaultSite::kFallbackStart);
    if (core_.mode == ExecMode::kSerial && !core_.serialHeld) {
        core_.acquireSerial();
        // After serialHeld: an unwinding fault must not leak the lock.
        sessionFaultPoint(core_.htm, FaultSite::kSerialHeld);
    }
    core_.registerFallback();
    readLog_.clear();
    writes_.clear();
    writes_.setMode(commitCfg_.redoIndex, commitCfg_.readFilter);
    readLog_.setFilterEnabled(commitCfg_.readFilter);
    if (commitCfg_.filterSaturateForTest) {
        writes_.saturateFilterForTest();
        readLog_.saturateFilterForTest();
    }
    core_.txVersion = core_.stableClock();
    bindDispatch(kSoftDispatch, this);
}

void
HybridNOrecLazySession::begin(TxnHint hint)
{
    (void)hint;
    if (core_.mode == ExecMode::kFast) {
        if (core_.beginFastPath(ExecMode::kSlow, &core_.g.htmLock)) {
            bindDispatch(kFastDispatch, this);
            return;
        }
    }
    beginSoftware();
}

uint64_t
HybridNOrecLazySession::validate()
{
    if (commitCfg_.readFilter) {
        uint64_t cur = core_.stableClock();
        if (cur == core_.txVersion)
            return cur; // The mover was a lock that restored; no-op.
        if (core_.g.filterRing.coveredDisjoint(core_.txVersion, cur,
                                               readLog_.filter())) {
            // Every commit in (txVersion, cur] published a disjoint
            // write summary: the log holds by construction. Hardware
            // fast-path commits publish nothing, so their bumps fail
            // the slot walk and fall through to the full walk below.
            core_.count(Counter::kRevalidationsSkipped);
            return cur;
        }
    }
    core_.count(Counter::kRevalidations);
    return readLog_.revalidate(EngineMem(core_.eng), &core_.g.clock,
                               [this] { return core_.stableClock(); });
}

void
HybridNOrecLazySession::commit()
{
    if (core_.mode == ExecMode::kFast) {
        core_.fastCommitNOrec();
        return;
    }
    if (writes_.empty()) {
        if (clockHeld_) {
            // Irrevocable upgrade that turned out read-only: nothing
            // was published, so restore the clock unchanged.
            seqlock_.releaseRestore(core_.txVersion);
            clockHeld_ = false;
        }
        core_.count(Counter::kReadOnlyCommits);
        return;
    }
    // Front 4: eligible slow-path writers try the group arena first.
    // Serial mode and irrevocable/clock-holding transactions stay
    // solo, as do durable ones (the redo payload must seal under this
    // thread's own lock hold).
    if (!clockHeld_ && core_.mode == ExecMode::kSlow &&
        commitCfg_.groupCommit && groupArena_ != nullptr &&
        !core_.persistOn() && groupCommitPath())
        return;
    if (!clockHeld_) {
        // Acquire the clock (revalidating on contention), then raise
        // the HTM lock only for the short write-back window: this is
        // the lazy design's advantage over the eager one, which holds
        // it from the first write onward. An irrevocable upgrade
        // hoisted this acquisition to the upgrade point, in which case
        // the commit below must not (and cannot) fail.
        core_.txVersion = seqlock_.acquireValidating(
            core_.txVersion, [this] { return validate(); });
        clockHeld_ = true;
    }
    if (core_.irrevocable)
        sessionFaultPointNoAbort(core_.htm, FaultSite::kPostFirstWrite);
    else
        sessionFaultPoint(core_.htm, FaultSite::kPostFirstWrite);
    core_.eng.directStore(&core_.g.htmLock, 1);
    htmLockSet_ = true;
    // The lazy design's publication window: clock and HTM lock held
    // while the write set is flushed. A scripted delay stretches it;
    // an abort exercises releaseCommitLocks() (writes already flushed
    // stay -- the advanced clock forces readers to revalidate).
    if (core_.irrevocable)
        sessionFaultPointNoAbort(core_.htm, FaultSite::kPublishWindow);
    else
        sessionFaultPoint(core_.htm, FaultSite::kPublishWindow);
    writes_.forEach([this](uint64_t *addr, uint64_t value) {
        // Stage-at-publish: the lazy write set becomes the durable
        // redo payload only once validation has succeeded.
        if (core_.persistOn())
            core_.persist->stage(addr, value);
        core_.eng.directStore(addr, value);
    });
    // Durable commit: seal while the clock and HTM lock still exclude
    // every other committer (sealed set = prefix of commit order).
    if (core_.persistOn())
        core_.persist->sealStaged();
    core_.eng.directStore(&core_.g.htmLock, 0);
    htmLockSet_ = false;
    // Publish the write summary for front 1 -- outside the HTM-lock
    // window (the ring is plain metadata, never engine-visible).
    seqlock_.releaseAdvance(core_.txVersion,
                            commitCfg_.readFilter ? &core_.g.filterRing
                                                  : nullptr,
                            writes_.filter());
    clockHeld_ = false;
    if (core_.persistOn())
        core_.persist->drainAndMark();
}

bool
HybridNOrecLazySession::groupValidate(void *self)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    return s->readLog_.consistent(EngineMem(s->core_.eng));
}

void
HybridNOrecLazySession::groupPublish(void *self)
{
    auto *s = static_cast<HybridNOrecLazySession *>(self);
    s->writes_.forEach([s](uint64_t *addr, uint64_t value) {
        s->core_.eng.directStore(addr, value);
    });
}

bool
HybridNOrecLazySession::groupCommitPath()
{
    if (groupSlot_ == kGroupSlotUnset)
        groupSlot_ = groupArena_->acquireSlot();
    if (groupSlot_ < 0)
        return false; // Arena full: this session commits solo forever.
    unsigned slot = static_cast<unsigned>(groupSlot_);
    // Combiner body: the caller holds the clock lock with no request
    // of its own posted. Raise the HTM lock around the whole batch
    // write-back so hardware fast paths subscribe-abort, just as in
    // the solo publication window. No fault points in here: an unwind
    // after a peer was published would look like a restart to us but
    // a commit to the peer.
    auto combinerPublish = [this] {
        clockHeld_ = true;
        core_.eng.directStore(&core_.g.htmLock, 1);
        htmLockSet_ = true;
        writes_.forEach([this](uint64_t *addr, uint64_t value) {
            core_.eng.directStore(addr, value);
        });
        TxFilter batch = writes_.filter();
        GroupCommitArena::CombineResult res = groupArena_->combine(batch);
        if (res.joined > 0)
            core_.count(Counter::kGroupCommitLeads);
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockSet_ = false;
        seqlock_.releaseAdvance(core_.txVersion,
                                commitCfg_.readFilter
                                    ? &core_.g.filterRing
                                    : nullptr,
                                batch);
        clockHeld_ = false;
    };
    // Uncontended first try: the clock was free, so skip the arena
    // round-trip entirely (no request copy, no slot CASes) -- solo
    // commits must not pay for the batching they don't need.
    if (seqlock_.tryAcquireAt(core_.txVersion)) {
        combinerPublish();
        return true;
    }
    GroupRequest req;
    req.self = this;
    req.validate = &groupValidate;
    req.publish = &groupPublish;
    req.readFilter = &readLog_.filter();
    req.writeFilter = &writes_.filter();
    groupArena_->post(slot, req);
    Backoff backoff;
    for (;;) {
        if (seqlock_.tryAcquireAt(core_.txVersion)) {
            groupArena_->withdrawOwn(slot);
            combinerPublish();
            return true;
        }
        uint32_t st = groupArena_->stateOf(slot);
        if (st == GroupCommitArena::kCombined) {
            groupArena_->reclaim(slot);
            core_.count(Counter::kGroupCommitJoins);
            return true;
        }
        if (st == GroupCommitArena::kRejected) {
            groupArena_->reclaim(slot);
            core_.count(Counter::kGroupCommitRejects);
            return false; // Bounce to the solo commit path.
        }
        if (!clockIsLocked(core_.eng.directLoad(&core_.g.clock)) &&
            groupArena_->tryWithdraw(slot)) {
            // Slot is ours again, so unwinding is safe: poll the
            // deadline and revalidate (either may throw), then repost
            // at the fresh snapshot.
            if (deadline_ != nullptr)
                deadline_->poll();
            core_.txVersion = validate();
            groupArena_->post(slot, req);
            continue;
        }
        // A combiner may be deciding our fate; no unwinding while it
        // can still publish us.
        backoff.pause();
    }
}

void
HybridNOrecLazySession::becomeIrrevocable()
{
    if (core_.irrevocable)
        return;
    if (core_.mode == ExecMode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        core_.htm.abortNeedIrrevocable();
    }
    if (!clockHeld_) {
        // Read phase (the lazy design holds no lock before commit):
        // queue on the serial FIFO first -- we hold nothing, so this
        // is deadlock-free (lock order: serial BEFORE clock,
        // docs/LIFECYCLE.md) -- then take the clock the way commit()
        // would, revalidating the read log on contention. Either CAS
        // retry unwinds pre-grant via validate()'s restart, or we end
        // holding the clock with a consistent snapshot.
        core_.grantBarrierEnter();
        core_.txVersion = seqlock_.acquireValidating(
            core_.txVersion, [this] { return validate(); });
        clockHeld_ = true;
    }
    // Clock held: no writer can publish, reads go direct, buffered
    // writes flush unconditionally at commit. Infallible from here.
    core_.grantIrrevocable();
    bindDispatch(kPinnedDispatch, this);
}

void
HybridNOrecLazySession::releaseCommitLocks()
{
    // An unwind inside the publication window may leave some writes
    // flushed in volatile memory but never sealed; discarding the
    // staged payload means recovery drops them all, which is the
    // all-or-nothing durable view of an aborted transaction.
    if (core_.persistOn())
        core_.persist->discardStaged();
    if (htmLockSet_) {
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockSet_ = false;
    }
    if (clockHeld_) {
        // Nothing (or everything) was written back before the unwind;
        // advance to force concurrent readers to revalidate.
        seqlock_.releaseAdvance(core_.txVersion);
        clockHeld_ = false;
    }
}

void
HybridNOrecLazySession::restart()
{
    throw TxRestart{};
}

void
HybridNOrecLazySession::onHtmAbort(const HtmAbort &abort)
{
    assert(core_.mode == ExecMode::kFast);
    core_.htm.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: hardware retries cannot
        // satisfy it, so skip the budget and go straight to serial.
        core_.fallbackUncharged(ExecMode::kSerial);
        return;
    }
    core_.htmAbortFast(abort, ExecMode::kSlow);
}

void
HybridNOrecLazySession::onRestart()
{
    if (core_.mode == ExecMode::kFast) {
        core_.htm.cancel();
        core_.cm.onWait(WaitCause::kRestart);
        return;
    }
    releaseCommitLocks();
    core_.restartEscalate();
}

void
HybridNOrecLazySession::onUserAbort()
{
    core_.htm.cancel();
    releaseCommitLocks();
    core_.unwindTail();
}

void
HybridNOrecLazySession::onComplete()
{
    core_.completeTail(Counter::kCommitsSoftwarePath);
    core_.finishReset();
}

} // namespace rhtm
