#include "src/core/hybrid_norec_lazy.h"

#include <cassert>

#include "src/core/fault_points.h"
#include "src/core/progress.h"

namespace rhtm
{

HybridNOrecLazySession::HybridNOrecLazySession(
    HtmEngine &eng, TmGlobals &globals, HtmTxn &htm, ThreadStats *stats,
    const RetryPolicy &policy, unsigned access_penalty, uint64_t cm_seed)
    : eng_(eng), g_(globals), htm_(htm), stats_(stats), policy_(policy),
      retryBudget_(policy_), penalty_(access_penalty),
      cm_(policy_, &globals, cm_seed), writes_(12)
{
    readLog_.reserve(1024);
}

void
HybridNOrecLazySession::beginSoftware()
{
    sessionFaultPoint(htm_, FaultSite::kFallbackStart);
    if (mode_ == Mode::kSerial && !serialHeld_) {
        serialLockAcquire(eng_, g_, policy_, stats_);
        serialHeld_ = true;
        // After serialHeld_: an unwinding fault must not leak the lock.
        sessionFaultPoint(htm_, FaultSite::kSerialHeld);
    }
    if (!registered_) {
        eng_.directFetchAdd(&g_.fallbacks, 1);
        registered_ = true;
    }
    readLog_.clear();
    writes_.clear();
    txVersion_ = stableClockRead(eng_, g_, policy_, stats_);
}

void
HybridNOrecLazySession::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast) {
        if (killSwitchBypass(g_, policy_)) {
            mode_ = Mode::kSoftware;
            if (stats_) {
                stats_->inc(Counter::kKillSwitchBypasses);
                stats_->inc(Counter::kFallbacks);
            }
        } else {
            ++attempts_;
            if (stats_)
                stats_->inc(Counter::kFastPathAttempts);
            htm_.begin();
            if (htm_.read(&g_.htmLock) != 0)
                htm_.abortSubscription();
            return;
        }
    }
    beginSoftware();
}

uint64_t
HybridNOrecLazySession::validate()
{
    for (;;) {
        uint64_t t = stableClockRead(eng_, g_, policy_, stats_);
        for (const ReadEntry &e : readLog_) {
            if (eng_.directLoad(e.addr) != e.value)
                restart();
        }
        if (eng_.directLoad(&g_.clock) == t)
            return t;
    }
}

uint64_t
HybridNOrecLazySession::read(const uint64_t *addr)
{
    if (mode_ == Mode::kFast)
        return htm_.read(addr);
    simDelay(penalty_);
    uint64_t buffered;
    if (writes_.lookup(addr, buffered))
        return buffered;
    if (clockHeld_) {
        // We hold the clock (irrevocable upgrade): no writer can
        // commit, so memory is frozen and reads go straight through.
        return eng_.directLoad(addr);
    }
    uint64_t v = eng_.directLoad(addr);
    while (eng_.directLoad(&g_.clock) != txVersion_) {
        txVersion_ = validate();
        v = eng_.directLoad(addr);
    }
    readLog_.push_back({addr, v});
    return v;
}

void
HybridNOrecLazySession::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kFast) {
        htm_.write(addr, value);
        return;
    }
    simDelay(penalty_);
    if (irrevocable_)
        sessionFaultPointNoAbort(htm_, FaultSite::kSoftwareWrite);
    else
        sessionFaultPoint(htm_, FaultSite::kSoftwareWrite);
    writes_.putGrowing(addr, value);
}

void
HybridNOrecLazySession::commit()
{
    if (mode_ == Mode::kFast) {
        if (htm_.isReadOnly()) {
            htm_.commit();
            if (stats_)
                stats_->inc(Counter::kReadOnlyCommits);
            return;
        }
        if (htm_.read(&g_.fallbacks) > 0) {
            uint64_t clock = htm_.read(&g_.clock);
            if (clockIsLocked(clock))
                htm_.abortExplicit();
            if (htm_.read(&g_.serialLock) != 0)
                htm_.abortExplicit();
            htm_.write(&g_.clock, clock + 2);
        }
        htm_.commit();
        return;
    }
    if (writes_.empty()) {
        if (clockHeld_) {
            // Irrevocable upgrade that turned out read-only: nothing
            // was published, so restore the clock unchanged.
            eng_.directStore(&g_.clock, txVersion_);
            clockHeld_ = false;
            stampEpoch(g_.watchdog.clockEpoch);
        }
        if (stats_)
            stats_->inc(Counter::kReadOnlyCommits);
        return;
    }
    if (!clockHeld_) {
        // Acquire the clock (revalidating on contention), then raise
        // the HTM lock only for the short write-back window: this is
        // the lazy design's advantage over the eager one, which holds
        // it from the first write onward. An irrevocable upgrade
        // hoisted this acquisition to the upgrade point, in which case
        // the commit below must not (and cannot) fail.
        uint64_t expected = txVersion_;
        while (!eng_.directCas(&g_.clock, expected,
                               clockWithLock(txVersion_))) {
            txVersion_ = validate();
            expected = txVersion_;
        }
        clockHeld_ = true;
        stampEpoch(g_.watchdog.clockEpoch);
    }
    if (irrevocable_)
        sessionFaultPointNoAbort(htm_, FaultSite::kPostFirstWrite);
    else
        sessionFaultPoint(htm_, FaultSite::kPostFirstWrite);
    eng_.directStore(&g_.htmLock, 1);
    htmLockSet_ = true;
    // The lazy design's publication window: clock and HTM lock held
    // while the write set is flushed. A scripted delay stretches it;
    // an abort exercises releaseCommitLocks() (writes already flushed
    // stay -- the advanced clock forces readers to revalidate).
    if (irrevocable_)
        sessionFaultPointNoAbort(htm_, FaultSite::kPublishWindow);
    else
        sessionFaultPoint(htm_, FaultSite::kPublishWindow);
    writes_.forEach([this](uint64_t *addr, uint64_t value) {
        eng_.directStore(addr, value);
    });
    eng_.directStore(&g_.htmLock, 0);
    htmLockSet_ = false;
    eng_.directStore(&g_.clock, clockUnlockAndAdvance(txVersion_));
    clockHeld_ = false;
    stampEpoch(g_.watchdog.clockEpoch);
}

void
HybridNOrecLazySession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (mode_ == Mode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        htm_.abortNeedIrrevocable();
    }
    if (!clockHeld_) {
        // Read phase (the lazy design holds no lock before commit):
        // queue on the serial FIFO first -- we hold nothing, so this
        // is deadlock-free (lock order: serial BEFORE clock,
        // docs/LIFECYCLE.md) -- then take the clock the way commit()
        // would, revalidating the read log on contention. Either CAS
        // retry unwinds pre-grant via validate()'s restart, or we end
        // holding the clock with a consistent snapshot.
        mode_ = Mode::kSerial;
        if (!serialHeld_) {
            serialLockAcquire(eng_, g_, policy_, stats_);
            serialHeld_ = true;
        }
        sessionFaultPoint(htm_, FaultSite::kIrrevocableUpgrade);
        uint64_t expected = txVersion_;
        while (!eng_.directCas(&g_.clock, expected,
                               clockWithLock(txVersion_))) {
            txVersion_ = validate();
            expected = txVersion_;
        }
        clockHeld_ = true;
        stampEpoch(g_.watchdog.clockEpoch);
    }
    // Clock held: no writer can publish, reads go direct, buffered
    // writes flush unconditionally at commit. Infallible from here.
    irrevocable_ = true;
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
HybridNOrecLazySession::releaseCommitLocks()
{
    if (htmLockSet_) {
        eng_.directStore(&g_.htmLock, 0);
        htmLockSet_ = false;
    }
    if (clockHeld_) {
        // Nothing (or everything) was written back before the unwind;
        // advance to force concurrent readers to revalidate.
        eng_.directStore(&g_.clock, clockUnlockAndAdvance(txVersion_));
        clockHeld_ = false;
        stampEpoch(g_.watchdog.clockEpoch);
    }
}

void
HybridNOrecLazySession::restart()
{
    throw TxRestart{};
}

void
HybridNOrecLazySession::onHtmAbort(const HtmAbort &abort)
{
    assert(mode_ == Mode::kFast);
    htm_.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: hardware retries cannot
        // satisfy it, so skip the budget and go straight to serial.
        mode_ = Mode::kSerial;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    if (!abort.retryOk)
        killSwitchOnHardwareFailure(g_, policy_, stats_);
    if (abort.retryOk && attempts_ < retryBudget_.budget()) {
        cm_.onWait(waitCauseOf(abort));
        return;
    }
    retryBudget_.onFallback(attempts_);
    mode_ = Mode::kSoftware;
    if (stats_)
        stats_->inc(Counter::kFallbacks);
}

void
HybridNOrecLazySession::onRestart()
{
    if (mode_ == Mode::kFast) {
        htm_.cancel();
        cm_.onWait(WaitCause::kRestart);
        return;
    }
    releaseCommitLocks();
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++slowRestarts_ >= policy_.maxSlowPathRestarts &&
        mode_ == Mode::kSoftware) {
        mode_ = Mode::kSerial;
    }
    cm_.onWait(WaitCause::kRestart);
}

void
HybridNOrecLazySession::onUserAbort()
{
    htm_.cancel();
    releaseCommitLocks();
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    slowRestarts_ = 0;
}

void
HybridNOrecLazySession::onComplete()
{
    if (mode_ == Mode::kFast) {
        retryBudget_.onFastCommit(attempts_);
        killSwitchOnHardwareCommit(g_);
    }
    killSwitchOnComplete(g_);
    if (stats_) {
        switch (mode_) {
          case Mode::kFast:
            stats_->inc(Counter::kCommitsFastPath);
            break;
          case Mode::kSoftware:
            stats_->inc(Counter::kCommitsSoftwarePath);
            break;
          case Mode::kSerial:
            stats_->inc(Counter::kCommitsSerialPath);
            break;
        }
    }
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    slowRestarts_ = 0;
    cm_.reset();
}

} // namespace rhtm
