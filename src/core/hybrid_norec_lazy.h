/**
 * @file
 * Hybrid NOrec with the *lazy* software slow path -- the design
 * alternative the paper evaluated and set aside (Section 3.1: "We
 * also implemented the lazy design of NOrec that does require read-set
 * and write-set logging, but we found that for the low concurrency in
 * our benchmarks, the eager NOrec design delivers better
 * performance").
 *
 * The slow path keeps a value-based read log and a redo write set; the
 * global HTM lock is raised only for the commit-time write-back window
 * instead of the whole write phase, so hardware fast paths survive
 * longer against slow-path writers -- at the price of logging on every
 * access and commit-time revalidation. The ablation bench quantifies
 * the trade.
 *
 * Composition over the shared engine: SessionCore + CommitSeqlock +
 * ValueReadLog + RedoBuffer; the fast path, the logging software
 * phase, and the clock-held (irrevocable) phase are three TxDispatch
 * descriptors.
 */

#ifndef RHTM_CORE_HYBRID_NOREC_LAZY_H
#define RHTM_CORE_HYBRID_NOREC_LAZY_H

#include <cstdint>

#include "src/core/engine/commit_seqlock.h"
#include "src/core/engine/journal.h"
#include "src/core/engine/mem_access.h"
#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"

namespace rhtm
{

/** Per-thread lazy Hybrid NOrec session. */
class HybridNOrecLazySession : public TxSession
{
  public:
    HybridNOrecLazySession(HtmEngine &eng, TmDomain &domain,
                           HtmTxn &htm, ThreadStats *stats,
                           const RetryPolicy &policy,
                           unsigned access_penalty = 0,
                           uint64_t cm_seed = 1,
                           TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return core_.irrevocable; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "hy-norec-lazy"; }

    void
    onDeadlineAttached() override
    {
        core_.deadline = deadline_;
    }

    void
    resetForTest() override
    {
        core_.resetForTest();
        clockHeld_ = false;
        htmLockSet_ = false;
        readLog_.clear();
        writes_.clear();
    }

    unsigned
    fastRetryBudgetForTest() const override
    {
        return core_.retryBudget.budget();
    }

    uint32_t
    adaptiveScoreForTest() const override
    {
        return core_.retryBudget.score();
    }

  private:
    static uint64_t fastRead(void *self, const uint64_t *addr);
    static void fastWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t softRead(void *self, const uint64_t *addr);
    static void softWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t pinnedRead(void *self, const uint64_t *addr);
    static void pinnedWrite(void *self, uint64_t *addr, uint64_t value);

    static constexpr TxDispatch kFastDispatch = {&fastRead, &fastWrite};
    static constexpr TxDispatch kSoftDispatch = {&softRead, &softWrite};
    static constexpr TxDispatch kPinnedDispatch = {&pinnedRead,
                                                   &pinnedWrite};

    void beginSoftware();

    /**
     * Value-validate the read log at a stable clock; returns the new
     * snapshot version or restarts. With TmConfig::readFilter on,
     * first consults the CommitFilterRing and skips the value walk
     * when every commit since txVersion published a disjoint write
     * summary (commit-path front 1).
     */
    uint64_t validate();

    /**
     * Group-commit member/combiner path (commit-path front 4); the
     * hybrid combiner raises the HTM lock around the whole batch
     * write-back. Returns false if the commit should proceed solo.
     */
    bool groupCommitPath();

    static bool groupValidate(void *self);
    static void groupPublish(void *self);

    /** Drop the clock/HTM locks held during a commit write-back. */
    void releaseCommitLocks();

    [[noreturn]] void restart();

    SessionCore core_;
    CommitSeqlock<EngineMem> seqlock_;

    bool clockHeld_ = false;
    bool htmLockSet_ = false;
    ValueReadLog readLog_;
    RedoBuffer writes_;
    //! Arena slot id (session identity; survives resetForTest).
    static constexpr int kGroupSlotUnset = -2;
    int groupSlot_ = kGroupSlotUnset;
};

} // namespace rhtm

#endif // RHTM_CORE_HYBRID_NOREC_LAZY_H
