/**
 * @file
 * Hybrid NOrec with the *lazy* software slow path -- the design
 * alternative the paper evaluated and set aside (Section 3.1: "We
 * also implemented the lazy design of NOrec that does require read-set
 * and write-set logging, but we found that for the low concurrency in
 * our benchmarks, the eager NOrec design delivers better
 * performance").
 *
 * The slow path keeps a value-based read log and a redo write set; the
 * global HTM lock is raised only for the commit-time write-back window
 * instead of the whole write phase, so hardware fast paths survive
 * longer against slow-path writers -- at the price of logging on every
 * access and commit-time revalidation. The ablation bench quantifies
 * the trade.
 */

#ifndef RHTM_CORE_HYBRID_NOREC_LAZY_H
#define RHTM_CORE_HYBRID_NOREC_LAZY_H

#include <cstdint>
#include <vector>

#include "src/api/tx_defs.h"
#include "src/core/globals.h"
#include "src/core/retry_policy.h"
#include "src/htm/fixed_table.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"

namespace rhtm
{

/** Per-thread lazy Hybrid NOrec session. */
class HybridNOrecLazySession : public TxSession
{
  public:
    HybridNOrecLazySession(HtmEngine &eng, TmGlobals &globals,
                           HtmTxn &htm, ThreadStats *stats,
                           const RetryPolicy &policy,
                           unsigned access_penalty = 0,
                           uint64_t cm_seed = 1);

    void begin(TxnHint hint) override;
    uint64_t read(const uint64_t *addr) override;
    void write(uint64_t *addr, uint64_t value) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "hy-norec-lazy"; }

  private:
    enum class Mode
    {
        kFast,
        kSoftware,
        kSerial,
    };

    struct ReadEntry
    {
        const uint64_t *addr;
        uint64_t value;
    };

    void beginSoftware();

    /**
     * Value-validate the read log at a stable clock; returns the new
     * snapshot version or restarts.
     */
    uint64_t validate();

    /** Drop the clock/HTM locks held during a commit write-back. */
    void releaseCommitLocks();

    [[noreturn]] void restart();

    HtmEngine &eng_;
    TmGlobals &g_;
    HtmTxn &htm_;
    ThreadStats *stats_;
    // Reference, not a copy: post-construction knob changes apply.
    const RetryPolicy &policy_;
    AdaptiveRetryBudget retryBudget_;
    unsigned penalty_;
    ContentionManager cm_;

    Mode mode_ = Mode::kFast;
    unsigned attempts_ = 0;
    unsigned slowRestarts_ = 0;
    bool registered_ = false;
    bool serialHeld_ = false;
    bool clockHeld_ = false;
    bool htmLockSet_ = false;
    bool irrevocable_ = false;
    uint64_t txVersion_ = 0;
    std::vector<ReadEntry> readLog_;
    WriteBuffer writes_;
};

} // namespace rhtm

#endif // RHTM_CORE_HYBRID_NOREC_LAZY_H
