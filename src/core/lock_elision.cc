#include "src/core/lock_elision.h"

#include <cassert>

#include "src/core/fault_points.h"
#include "src/core/progress.h"

namespace rhtm
{

LockElisionSession::LockElisionSession(HtmEngine &eng, TmGlobals &globals,
                                       HtmTxn &htm, ThreadStats *stats,
                                       const RetryPolicy &policy,
                                       uint64_t cm_seed)
    : eng_(eng), g_(globals), htm_(htm), stats_(stats), policy_(policy),
      cm_(policy_, &globals, cm_seed)
{}

void
LockElisionSession::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast && killSwitchBypass(g_, policy_)) {
        mode_ = Mode::kSerial;
        if (stats_) {
            stats_->inc(Counter::kKillSwitchBypasses);
            stats_->inc(Counter::kFallbacks);
        }
    }
    if (mode_ == Mode::kSerial) {
        sessionFaultPoint(htm_, FaultSite::kFallbackStart);
        // Take the global lock for real; the store dooms every elided
        // transaction subscribed to it. Wait stall-aware: a preempted
        // holder is detected via the clock epoch and waited out with
        // yields/sleeps instead of a blind spin.
        {
            StallAwareWaiter waiter(g_, policy_, stats_,
                                    g_.watchdog.clockEpoch);
            for (;;) {
                uint64_t expected = 0;
                if (eng_.directCas(&g_.globalLock, expected, 1))
                    break;
                waiter.step();
            }
            if (stats_ != nullptr) {
                stats_->inc(Counter::kSerialAcquires);
                stats_->inc(Counter::kSerialWaitTicks, waiter.ticks());
            }
        }
        stampEpoch(g_.watchdog.clockEpoch);
        lockHeld_ = true;
        // After lockHeld_: an unwinding fault must not leak the lock.
        sessionFaultPoint(htm_, FaultSite::kSerialHeld);
        return;
    }
    ++attempts_;
    if (stats_)
        stats_->inc(Counter::kFastPathAttempts);
    htm_.begin();
    // Subscribe: if the lock is held, the elided run cannot be atomic
    // with respect to the lock holder.
    if (htm_.read(&g_.globalLock) != 0)
        htm_.abortSubscription();
}

uint64_t
LockElisionSession::read(const uint64_t *addr)
{
    if (mode_ == Mode::kSerial)
        return eng_.directLoad(addr);
    return htm_.read(addr);
}

void
LockElisionSession::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kSerial) {
        eng_.directStore(addr, value);
        return;
    }
    htm_.write(addr, value);
}

void
LockElisionSession::commit()
{
    if (mode_ == Mode::kSerial) {
        eng_.directStore(&g_.globalLock, 0);
        lockHeld_ = false;
        stampEpoch(g_.watchdog.clockEpoch);
        return;
    }
    htm_.commit();
}

void
LockElisionSession::becomeIrrevocable()
{
    if (mode_ == Mode::kSerial) {
        // Holding the global lock already means nothing can abort us:
        // serial mode is inherently irrevocable.
        if (stats_)
            stats_->inc(Counter::kIrrevocableUpgrades);
        return;
    }
    // Irrevocability cannot be granted inside best-effort HTM; unwind
    // with kNeedIrrevocable so onHtmAbort routes straight to serial
    // mode without burning the retry budget.
    htm_.abortNeedIrrevocable();
}

void
LockElisionSession::onHtmAbort(const HtmAbort &abort)
{
    assert(mode_ == Mode::kFast);
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    htm_.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: go straight to the global
        // lock; retrying in hardware could never satisfy the request.
        mode_ = Mode::kSerial;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    if (!abort.retryOk)
        killSwitchOnHardwareFailure(g_, policy_, stats_);
    if (abort.cause == HtmAbortCause::kExplicit) {
        // Subscription abort: the lock is (or was) held. Wait for it
        // to clear before re-eliding instead of burning the retry
        // budget against a held lock (standard HLE practice). The wait
        // is stall-aware: a preempted lock holder is waited out with
        // yields/sleeps rather than a blind spin.
        StallAwareWaiter waiter(g_, policy_, stats_,
                                g_.watchdog.clockEpoch);
        while (eng_.directLoad(&g_.globalLock) != 0)
            waiter.step();
    }
    if (abort.retryOk && attempts_ < policy_.maxFastPathRetries) {
        cm_.onWait(waitCauseOf(abort));
        return; // Retry in hardware.
    }
    mode_ = Mode::kSerial;
    if (stats_)
        stats_->inc(Counter::kFallbacks);
}

void
LockElisionSession::onRestart()
{
    // Lock Elision never throws TxRestart; only a user retry() can land
    // here. Release the lock so other threads can progress.
    onUserAbort();
    cm_.onWait(WaitCause::kRestart);
}

void
LockElisionSession::onUserAbort()
{
    htm_.cancel();
    if (lockHeld_) {
        // Serial writes happened in place and cannot be rolled back;
        // like a real elided lock, an exception inside the critical
        // section leaves its partial updates visible.
        eng_.directStore(&g_.globalLock, 0);
        lockHeld_ = false;
        stampEpoch(g_.watchdog.clockEpoch);
    }
}

void
LockElisionSession::onComplete()
{
    if (mode_ == Mode::kFast)
        killSwitchOnHardwareCommit(g_);
    killSwitchOnComplete(g_);
    if (stats_) {
        stats_->inc(mode_ == Mode::kFast ? Counter::kCommitsFastPath
                                         : Counter::kCommitsSerialPath);
    }
    mode_ = Mode::kFast;
    attempts_ = 0;
    cm_.reset();
}

} // namespace rhtm
