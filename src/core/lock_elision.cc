#include "src/core/lock_elision.h"

#include <cassert>

#include "src/core/engine/fault_points.h"
#include "src/core/engine/progress.h"

namespace rhtm
{

LockElisionSession::LockElisionSession(HtmEngine &eng, TmDomain &domain,
                                       HtmTxn &htm, ThreadStats *stats,
                                       const RetryPolicy &policy,
                                       uint64_t cm_seed,
                                       TxPersist *persist)
    : core_(eng, domain, htm, stats, policy, /*accessPenalty=*/0,
            cm_seed)
{
    core_.persist = persist;
}

//
// Per-mode accessors
//

uint64_t
LockElisionSession::fastRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<LockElisionSession *>(self);
    ++s->core_.tally.fastReads;
    return s->core_.htm.read(addr);
}

void
LockElisionSession::fastWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<LockElisionSession *>(self);
    ++s->core_.tally.fastWrites;
    s->core_.htm.write(addr, value);
}

uint64_t
LockElisionSession::serialRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<LockElisionSession *>(self);
    ++s->core_.tally.slowReads;
    return s->core_.eng.directLoad(addr);
}

void
LockElisionSession::serialWrite(void *self, uint64_t *addr,
                                uint64_t value)
{
    auto *s = static_cast<LockElisionSession *>(self);
    ++s->core_.tally.slowWrites;
    if (s->core_.persistOn())
        s->core_.persist->stage(addr, value);
    s->core_.eng.directStore(addr, value);
}

void
LockElisionSession::beginSerial()
{
    sessionFaultPoint(core_.htm, FaultSite::kFallbackStart);
    // Take the global lock for real; the store dooms every elided
    // transaction subscribed to it. Wait stall-aware: a preempted
    // holder is detected via the clock epoch and waited out with
    // yields/sleeps instead of a blind spin.
    {
        // Deadline-safe: until the CAS lands nothing is held, so the
        // waiter's poll may unwind freely.
        StallAwareWaiter waiter(core_.g, core_.policy, core_.stats,
                                core_.g.watchdog.clockEpoch,
                                core_.deadline);
        for (;;) {
            uint64_t expected = 0;
            if (core_.eng.directCas(&core_.g.globalLock, expected, 1))
                break;
            waiter.step();
        }
        if (core_.stats != nullptr) {
            core_.stats->inc(Counter::kSerialAcquires);
            core_.stats->inc(Counter::kSerialWaitTicks, waiter.ticks());
        }
    }
    stampEpoch(core_.g.watchdog.clockEpoch);
    lockHeld_ = true;
    bindDispatch(kSerialDispatch, this);
    // After lockHeld_: an unwinding fault must not leak the lock.
    sessionFaultPoint(core_.htm, FaultSite::kSerialHeld);
}

void
LockElisionSession::begin(TxnHint hint)
{
    (void)hint;
    if (core_.mode == ExecMode::kFast) {
        // Subscribe: if the lock is held, the elided run cannot be
        // atomic with respect to the lock holder.
        if (core_.beginFastPath(ExecMode::kSerial,
                                &core_.g.globalLock)) {
            bindDispatch(kFastDispatch, this);
            return;
        }
    }
    beginSerial();
}

void
LockElisionSession::commit()
{
    if (core_.mode == ExecMode::kSerial) {
        // Durable commit: seal the redo record while the global lock
        // still serializes us, so the sealed set is a prefix of the
        // commit order; drain behind after the release.
        if (core_.persistOn())
            core_.persist->sealStaged();
        core_.eng.directStore(&core_.g.globalLock, 0);
        lockHeld_ = false;
        stampEpoch(core_.g.watchdog.clockEpoch);
        if (core_.persistOn())
            core_.persist->drainAndMark();
        return;
    }
    core_.htm.commit();
}

void
LockElisionSession::becomeIrrevocable()
{
    if (core_.mode == ExecMode::kSerial) {
        // Holding the global lock already means nothing can abort us:
        // serial mode is inherently irrevocable.
        if (core_.deadline != nullptr)
            core_.deadline->suppress();
        core_.count(Counter::kIrrevocableUpgrades);
        return;
    }
    // Irrevocability cannot be granted inside best-effort HTM; unwind
    // with kNeedIrrevocable so onHtmAbort routes straight to serial
    // mode without burning the retry budget.
    core_.htm.abortNeedIrrevocable();
}

void
LockElisionSession::onHtmAbort(const HtmAbort &abort)
{
    assert(core_.mode == ExecMode::kFast);
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    core_.htm.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: go straight to the global
        // lock; retrying in hardware could never satisfy the request.
        core_.fallbackUncharged(ExecMode::kSerial);
        return;
    }
    if (!abort.retryOk)
        killSwitchOnHardwareFailure(core_.g, core_.policy, core_.stats);
    if (abort.cause == HtmAbortCause::kExplicit) {
        // Subscription abort: the lock is (or was) held. Wait for it
        // to clear before re-eliding instead of burning the retry
        // budget against a held lock (standard HLE practice). The wait
        // is stall-aware: a preempted lock holder is waited out with
        // yields/sleeps rather than a blind spin. A deadline poll may
        // unwind from here (nothing held); the runtime's retry loop
        // catches TxnDeadlineExceeded thrown out of this handler.
        StallAwareWaiter waiter(core_.g, core_.policy, core_.stats,
                                core_.g.watchdog.clockEpoch,
                                core_.deadline);
        while (core_.eng.directLoad(&core_.g.globalLock) != 0)
            waiter.step();
    }
    // The fixed policy budget, not the adaptive one: Lock Elision is
    // the baseline the adaptive machinery is measured against.
    if (abort.retryOk && core_.attempts < core_.policy.maxFastPathRetries) {
        core_.cm.onWait(waitCauseOf(abort));
        return; // Retry in hardware.
    }
    core_.fallbackUncharged(ExecMode::kSerial);
}

void
LockElisionSession::onRestart()
{
    // Lock Elision never throws TxRestart; only a user retry() can land
    // here. Release the lock so other threads can progress.
    onUserAbort();
    core_.cm.onWait(WaitCause::kRestart);
}

void
LockElisionSession::onUserAbort()
{
    core_.htm.cancel();
    if (lockHeld_) {
        // Serial writes happened in place and cannot be rolled back;
        // like a real elided lock, an exception inside the critical
        // section leaves its partial updates visible. The durable
        // image must match that (documented) weakness: seal and drain
        // the partial write set so recovery reproduces exactly what
        // the volatile heap shows.
        if (core_.persistOn())
            core_.persist->sealStaged();
        core_.eng.directStore(&core_.g.globalLock, 0);
        lockHeld_ = false;
        stampEpoch(core_.g.watchdog.clockEpoch);
        if (core_.persistOn())
            core_.persist->drainAndMark();
    } else if (core_.persistOn()) {
        core_.persist->discardStaged();
    }
    core_.tally.flush(core_.stats);
}

void
LockElisionSession::onComplete()
{
    if (core_.mode == ExecMode::kFast)
        killSwitchOnHardwareCommit(core_.g);
    killSwitchOnComplete(core_.g);
    core_.count(core_.mode == ExecMode::kFast
                    ? Counter::kCommitsFastPath
                    : Counter::kCommitsSerialPath);
    core_.tally.flush(core_.stats);
    core_.mode = ExecMode::kFast;
    core_.attempts = 0;
    core_.cm.reset();
}

} // namespace rhtm
