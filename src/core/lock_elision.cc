#include "src/core/lock_elision.h"

#include <cassert>

#include "src/core/fault_points.h"

namespace rhtm
{

LockElisionSession::LockElisionSession(HtmEngine &eng, TmGlobals &globals,
                                       HtmTxn &htm, ThreadStats *stats,
                                       const RetryPolicy &policy)
    : eng_(eng), g_(globals), htm_(htm), stats_(stats), policy_(policy)
{}

void
LockElisionSession::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast && killSwitchBypass(g_, policy_)) {
        mode_ = Mode::kSerial;
        if (stats_) {
            stats_->inc(Counter::kKillSwitchBypasses);
            stats_->inc(Counter::kFallbacks);
        }
    }
    if (mode_ == Mode::kSerial) {
        sessionFaultPoint(htm_, FaultSite::kFallbackStart);
        // Take the global lock for real; the store dooms every elided
        // transaction subscribed to it.
        for (;;) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.globalLock, expected, 1))
                break;
            spinUntil([&] { return eng_.directLoad(&g_.globalLock) == 0; });
        }
        lockHeld_ = true;
        return;
    }
    ++attempts_;
    if (stats_)
        stats_->inc(Counter::kFastPathAttempts);
    htm_.begin();
    // Subscribe: if the lock is held, the elided run cannot be atomic
    // with respect to the lock holder.
    if (htm_.read(&g_.globalLock) != 0)
        htm_.abortSubscription();
}

uint64_t
LockElisionSession::read(const uint64_t *addr)
{
    if (mode_ == Mode::kSerial)
        return eng_.directLoad(addr);
    return htm_.read(addr);
}

void
LockElisionSession::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kSerial) {
        eng_.directStore(addr, value);
        return;
    }
    htm_.write(addr, value);
}

void
LockElisionSession::commit()
{
    if (mode_ == Mode::kSerial) {
        eng_.directStore(&g_.globalLock, 0);
        lockHeld_ = false;
        return;
    }
    htm_.commit();
}

void
LockElisionSession::onHtmAbort(const HtmAbort &abort)
{
    assert(mode_ == Mode::kFast);
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    htm_.cancel();
    if (!abort.retryOk)
        killSwitchOnHardwareFailure(g_, policy_, stats_);
    if (abort.cause == HtmAbortCause::kExplicit) {
        // Subscription abort: the lock is (or was) held. Wait for it
        // to clear before re-eliding instead of burning the retry
        // budget against a held lock (standard HLE practice).
        spinUntil([&] { return eng_.directLoad(&g_.globalLock) == 0; });
    }
    if (abort.retryOk && attempts_ < policy_.maxFastPathRetries) {
        backoff_.pause();
        return; // Retry in hardware.
    }
    mode_ = Mode::kSerial;
    if (stats_)
        stats_->inc(Counter::kFallbacks);
}

void
LockElisionSession::onRestart()
{
    // Lock Elision never throws TxRestart; only a user retry() can land
    // here. Release the lock so other threads can progress.
    onUserAbort();
    backoff_.pause();
}

void
LockElisionSession::onUserAbort()
{
    htm_.cancel();
    if (lockHeld_) {
        // Serial writes happened in place and cannot be rolled back;
        // like a real elided lock, an exception inside the critical
        // section leaves its partial updates visible.
        eng_.directStore(&g_.globalLock, 0);
        lockHeld_ = false;
    }
}

void
LockElisionSession::onComplete()
{
    if (mode_ == Mode::kFast)
        killSwitchOnHardwareCommit(g_);
    killSwitchOnComplete(g_);
    if (stats_) {
        stats_->inc(mode_ == Mode::kFast ? Counter::kCommitsFastPath
                                         : Counter::kCommitsSerialPath);
    }
    mode_ = Mode::kFast;
    attempts_ = 0;
    backoff_.reset();
}

} // namespace rhtm
