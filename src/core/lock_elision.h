/**
 * @file
 * Lock Elision baseline (paper Section 3.1): run the body as a pure
 * hardware transaction subscribed to a single global lock; after the
 * retry budget, acquire the lock for real, which aborts every hardware
 * transaction and serializes execution.
 *
 * Composition over the shared engine: SessionCore carries the
 * mode/attempt bookkeeping; the elided and the lock-holding phases are
 * two TxDispatch descriptors. The global lock is the raw
 * TmGlobals::globalLock word (not the FIFO serial lock), exactly as a
 * real HLE deployment elides one application mutex, and the retry
 * budget is the fixed policy knob -- Lock Elision predates the
 * adaptive budget and stays the simplest baseline.
 */

#ifndef RHTM_CORE_LOCK_ELISION_H
#define RHTM_CORE_LOCK_ELISION_H

#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"

namespace rhtm
{

/** Per-thread Lock Elision session. */
class LockElisionSession : public TxSession
{
  public:
    LockElisionSession(HtmEngine &eng, TmDomain &domain, HtmTxn &htm,
                       ThreadStats *stats, const RetryPolicy &policy,
                       uint64_t cm_seed = 1,
                       TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return lockHeld_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "lock-elision"; }

    void
    onDeadlineAttached() override
    {
        core_.deadline = deadline_;
    }

    void
    resetForTest() override
    {
        core_.resetForTest();
        lockHeld_ = false;
    }

    unsigned
    fastRetryBudgetForTest() const override
    {
        return core_.retryBudget.budget();
    }

    uint32_t
    adaptiveScoreForTest() const override
    {
        return core_.retryBudget.score();
    }

  private:
    static uint64_t fastRead(void *self, const uint64_t *addr);
    static void fastWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t serialRead(void *self, const uint64_t *addr);
    static void serialWrite(void *self, uint64_t *addr, uint64_t value);

    static constexpr TxDispatch kFastDispatch = {&fastRead, &fastWrite};
    static constexpr TxDispatch kSerialDispatch = {&serialRead,
                                                   &serialWrite};

    /** Acquire the global lock for real (stall-aware). */
    void beginSerial();

    SessionCore core_;
    bool lockHeld_ = false;
};

} // namespace rhtm

#endif // RHTM_CORE_LOCK_ELISION_H
