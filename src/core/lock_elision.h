/**
 * @file
 * Lock Elision baseline (paper Section 3.1): run the body as a pure
 * hardware transaction subscribed to a single global lock; after the
 * retry budget, acquire the lock for real, which aborts every hardware
 * transaction and serializes execution.
 */

#ifndef RHTM_CORE_LOCK_ELISION_H
#define RHTM_CORE_LOCK_ELISION_H

#include "src/api/tx_defs.h"
#include "src/core/globals.h"
#include "src/core/retry_policy.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"

namespace rhtm
{

/** Per-thread Lock Elision session. */
class LockElisionSession : public TxSession
{
  public:
    LockElisionSession(HtmEngine &eng, TmGlobals &globals, HtmTxn &htm,
                       ThreadStats *stats, const RetryPolicy &policy,
                       uint64_t cm_seed = 1);

    void begin(TxnHint hint) override;
    uint64_t read(const uint64_t *addr) override;
    void write(uint64_t *addr, uint64_t value) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return lockHeld_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "lock-elision"; }

  private:
    enum class Mode
    {
        kFast,   //!< Elided: body in a hardware transaction.
        kSerial, //!< Holding the global lock.
    };

    HtmEngine &eng_;
    TmGlobals &g_;
    HtmTxn &htm_;
    ThreadStats *stats_;
    // Reference, not a copy: post-construction knob changes apply.
    const RetryPolicy &policy_;
    ContentionManager cm_;
    Mode mode_ = Mode::kFast;
    unsigned attempts_ = 0;
    bool lockHeld_ = false;
};

} // namespace rhtm

#endif // RHTM_CORE_LOCK_ELISION_H
