/**
 * @file
 * Compatibility forwarder: the progress-guarantee layer
 * (StallAwareWaiter, serial ticket lock, ScopedHtmLock,
 * stableClockRead) moved into the shared transaction engine
 * (src/core/engine/progress.h).
 */

#ifndef RHTM_CORE_PROGRESS_H
#define RHTM_CORE_PROGRESS_H

#include "src/core/engine/progress.h"

#endif // RHTM_CORE_PROGRESS_H
