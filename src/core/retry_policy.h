/**
 * @file
 * Compatibility forwarder: RetryPolicy, the contention manager, the
 * kill-switch helpers, AdaptiveRetryBudget, and RhConfig moved into
 * the shared transaction engine (src/core/engine/retry_policy.h).
 */

#ifndef RHTM_CORE_RETRY_POLICY_H
#define RHTM_CORE_RETRY_POLICY_H

#include "src/core/engine/retry_policy.h"

#endif // RHTM_CORE_RETRY_POLICY_H
