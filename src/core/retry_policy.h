/**
 * @file
 * Retry-policy and RH-specific configuration knobs (paper Section 3.3
 * and 3.4).
 */

#ifndef RHTM_CORE_RETRY_POLICY_H
#define RHTM_CORE_RETRY_POLICY_H

#include <cstdint>

#include "src/core/globals.h"
#include "src/stats/stats.h"

namespace rhtm
{

/**
 * The paper's static retry policy: up to 10 hardware restarts for
 * retry-worthy aborts (conflicts), immediate fallback for capacity
 * aborts; a slow path that restarts 10 times grabs the serial lock;
 * the two small RH hardware transactions are tried once each.
 */
struct RetryPolicy
{
    /** Max hardware fast-path attempts per transaction. */
    unsigned maxFastPathRetries = 10;

    /** Slow-path restarts before serializing via the serial lock. */
    unsigned maxSlowPathRestarts = 10;

    /** Attempts for each small HTM in the mixed slow path. */
    unsigned smallHtmAttempts = 1;

    /**
     * Use a dynamic fast-path budget instead of the static limit
     * (the dynamic-adaptive policy the paper cites as future work,
     * Section 3.3 / [11]).
     */
    bool adaptive = false;

    /** Bounds for the adaptive budget. */
    unsigned adaptiveMinRetries = 2;
    unsigned adaptiveMaxRetries = 24;

    /**
     * Anti-lemming kill switch: consecutive non-retryable hardware
     * aborts (across all threads, with no intervening hardware
     * commit) that trip the breaker and disable the fast path.
     * 0 disables the switch.
     */
    unsigned killSwitchThreshold = 64;

    /**
     * Decay-based re-enable: committed transactions (any path) the
     * breaker stays tripped before the fast path is re-probed.
     */
    unsigned killSwitchCooldownOps = 256;
};

/**
 * Record a non-retryable hardware abort on the kill switch; trips the
 * breaker at the policy threshold. Called by sessions before falling
 * back.
 */
inline void
killSwitchOnHardwareFailure(TmGlobals &g, const RetryPolicy &policy,
                            ThreadStats *stats)
{
    if (policy.killSwitchThreshold == 0)
        return;
    TmGlobals::KillSwitch &ks = g.killSwitch;
    uint64_t failures =
        ks.consecutiveFailures.fetch_add(1, std::memory_order_relaxed) +
        1;
    if (failures < policy.killSwitchThreshold || ks.tripped())
        return;
    uint64_t expected = 0;
    if (ks.cooldown.compare_exchange_strong(
            expected, policy.killSwitchCooldownOps,
            std::memory_order_relaxed)) {
        ks.activations.fetch_add(1, std::memory_order_relaxed);
        if (stats)
            stats->inc(Counter::kKillSwitchActivations);
    }
}

/**
 * A hardware transaction committed: the fault (if any) has cleared
 * for at least one thread, so the failure streak resets.
 */
inline void
killSwitchOnHardwareCommit(TmGlobals &g)
{
    TmGlobals::KillSwitch &ks = g.killSwitch;
    if (ks.consecutiveFailures.load(std::memory_order_relaxed) != 0)
        ks.consecutiveFailures.store(0, std::memory_order_relaxed);
}

/**
 * A transaction committed on any path: decay the breaker's cooldown
 * so the fast path is eventually re-probed (half-open re-enable).
 */
inline void
killSwitchOnComplete(TmGlobals &g)
{
    TmGlobals::KillSwitch &ks = g.killSwitch;
    uint64_t v = ks.cooldown.load(std::memory_order_relaxed);
    if (v == 0)
        return;
    // A lost race just means one decay step is skipped; harmless.
    ks.cooldown.compare_exchange_strong(v, v - 1,
                                        std::memory_order_relaxed);
    if (v == 1)
        ks.consecutiveFailures.store(0, std::memory_order_relaxed);
}

/**
 * True when the session should skip the hardware fast path this
 * attempt. The caller counts the bypass and enters its fallback.
 */
inline bool
killSwitchBypass(const TmGlobals &g, const RetryPolicy &policy)
{
    return policy.killSwitchThreshold != 0 && g.killSwitch.tripped();
}

/**
 * EWMA-driven fast-path retry budget (Section 3.3's future-work
 * direction). Tracks whether hardware retries pay off: a transaction
 * that commits in hardware after several attempts raises the payoff
 * score, one that burns its budget and falls back anyway lowers it.
 * The budget interpolates between the policy's bounds.
 */
class AdaptiveRetryBudget
{
  public:
    explicit AdaptiveRetryBudget(const RetryPolicy &policy)
        : policy_(policy), score_(kScale / 2)
    {}

    /** Current fast-path attempt budget. */
    unsigned
    budget() const
    {
        if (!policy_.adaptive)
            return policy_.maxFastPathRetries;
        unsigned span =
            policy_.adaptiveMaxRetries - policy_.adaptiveMinRetries;
        return policy_.adaptiveMinRetries +
               static_cast<unsigned>(uint64_t(span) * score_ / kScale);
    }

    /** A transaction committed in hardware after @p attempts tries. */
    void
    onFastCommit(unsigned attempts)
    {
        if (attempts > 1) {
            // Retrying rescued this transaction: worth the budget.
            score_ += (kScale - score_) / 8;
        } else {
            // A first-try commit is weak evidence too: hardware is
            // healthy, so granting retries is cheap. Without this
            // recovery a low-contention workload whose only signal is
            // the rare fallback ratchets monotonically down to
            // adaptiveMinRetries and stays there.
            score_ += (kScale - score_) / 64;
        }
    }

    /** A transaction burned @p attempts tries and fell back anyway. */
    void
    onFallback(unsigned attempts)
    {
        (void)attempts;
        score_ -= score_ / 8;
    }

    /** Raw payoff score (for tests). */
    uint32_t score() const { return score_; }

  private:
    static constexpr uint32_t kScale = 1024;

    RetryPolicy policy_;
    uint32_t score_;
};

/**
 * RH NOrec feature switches (the ablation benches toggle these) and
 * the dynamic prefix-length adjustment parameters (Section 2.4: start
 * long, halve on failure until it commits with high probability).
 */
struct RhConfig
{
    /** Run the HTM prefix (Algorithm 3). */
    bool enablePrefix = true;

    /** Run the HTM postfix (Algorithm 2). */
    bool enablePostfix = true;

    /** Adapt the prefix length from abort feedback. */
    bool adaptivePrefix = true;

    /** Initial/maximum expected prefix length, in reads. */
    uint32_t maxPrefixLength = 4096;

    /** Smallest prefix length the adjustment will try. */
    uint32_t minPrefixLength = 4;
};

} // namespace rhtm

#endif // RHTM_CORE_RETRY_POLICY_H
