/**
 * @file
 * Retry-policy and RH-specific configuration knobs (paper Section 3.3
 * and 3.4).
 */

#ifndef RHTM_CORE_RETRY_POLICY_H
#define RHTM_CORE_RETRY_POLICY_H

#include <cstdint>

namespace rhtm
{

/**
 * The paper's static retry policy: up to 10 hardware restarts for
 * retry-worthy aborts (conflicts), immediate fallback for capacity
 * aborts; a slow path that restarts 10 times grabs the serial lock;
 * the two small RH hardware transactions are tried once each.
 */
struct RetryPolicy
{
    /** Max hardware fast-path attempts per transaction. */
    unsigned maxFastPathRetries = 10;

    /** Slow-path restarts before serializing via the serial lock. */
    unsigned maxSlowPathRestarts = 10;

    /** Attempts for each small HTM in the mixed slow path. */
    unsigned smallHtmAttempts = 1;

    /**
     * Use a dynamic fast-path budget instead of the static limit
     * (the dynamic-adaptive policy the paper cites as future work,
     * Section 3.3 / [11]).
     */
    bool adaptive = false;

    /** Bounds for the adaptive budget. */
    unsigned adaptiveMinRetries = 2;
    unsigned adaptiveMaxRetries = 24;
};

/**
 * EWMA-driven fast-path retry budget (Section 3.3's future-work
 * direction). Tracks whether hardware retries pay off: a transaction
 * that commits in hardware after several attempts raises the payoff
 * score, one that burns its budget and falls back anyway lowers it.
 * The budget interpolates between the policy's bounds.
 */
class AdaptiveRetryBudget
{
  public:
    explicit AdaptiveRetryBudget(const RetryPolicy &policy)
        : policy_(policy), score_(kScale / 2)
    {}

    /** Current fast-path attempt budget. */
    unsigned
    budget() const
    {
        if (!policy_.adaptive)
            return policy_.maxFastPathRetries;
        unsigned span =
            policy_.adaptiveMaxRetries - policy_.adaptiveMinRetries;
        return policy_.adaptiveMinRetries +
               static_cast<unsigned>(uint64_t(span) * score_ / kScale);
    }

    /** A transaction committed in hardware after @p attempts tries. */
    void
    onFastCommit(unsigned attempts)
    {
        if (attempts > 1) {
            // Retrying rescued this transaction: worth the budget.
            score_ += (kScale - score_) / 8;
        }
    }

    /** A transaction burned @p attempts tries and fell back anyway. */
    void
    onFallback(unsigned attempts)
    {
        (void)attempts;
        score_ -= score_ / 8;
    }

    /** Raw payoff score (for tests). */
    uint32_t score() const { return score_; }

  private:
    static constexpr uint32_t kScale = 1024;

    RetryPolicy policy_;
    uint32_t score_;
};

/**
 * RH NOrec feature switches (the ablation benches toggle these) and
 * the dynamic prefix-length adjustment parameters (Section 2.4: start
 * long, halve on failure until it commits with high probability).
 */
struct RhConfig
{
    /** Run the HTM prefix (Algorithm 3). */
    bool enablePrefix = true;

    /** Run the HTM postfix (Algorithm 2). */
    bool enablePostfix = true;

    /** Adapt the prefix length from abort feedback. */
    bool adaptivePrefix = true;

    /** Initial/maximum expected prefix length, in reads. */
    uint32_t maxPrefixLength = 4096;

    /** Smallest prefix length the adjustment will try. */
    uint32_t minPrefixLength = 4;
};

} // namespace rhtm

#endif // RHTM_CORE_RETRY_POLICY_H
