#include "src/core/rh_norec.h"

#include <algorithm>
#include <cassert>

#include "src/core/fault_points.h"
#include "src/core/progress.h"

namespace rhtm
{

RhNOrecSession::RhNOrecSession(HtmEngine &eng, TmGlobals &globals,
                               HtmTxn &htm, ThreadStats *stats,
                               const RetryPolicy &policy,
                               const RhConfig &rh,
                               unsigned access_penalty,
                               uint64_t cm_seed)
    : eng_(eng), g_(globals), htm_(htm), stats_(stats), policy_(policy),
      retryBudget_(policy_), rh_(rh), penalty_(access_penalty),
      cm_(policy_, &globals, cm_seed),
      expectedPrefixLen_(rh.maxPrefixLength)
{
    undo_.reserve(256);
}

//
// Prefix (Algorithm 3)
//

void
RhNOrecSession::startPrefix()
{
    ++prefixTries_;
    if (stats_)
        stats_->inc(Counter::kPrefixAttempts);
    htm_.begin();
    prefixActive_ = true;
    // Subscribe to the HTM lock for opacity, like the fast path.
    if (htm_.read(&g_.htmLock) != 0)
        htm_.abortSubscription();
    maxReads_ = expectedPrefixLen_;
    prefixReads_ = 0;
}

void
RhNOrecSession::commitPrefix()
{
    // Register as a fallback and snapshot the clock *inside* the
    // hardware transaction: the commit validates that neither moved,
    // so registration and snapshot are one atomic step.
    htm_.write(&g_.fallbacks, htm_.read(&g_.fallbacks) + 1);
    uint64_t clock = htm_.read(&g_.clock);
    if (clockIsLocked(clock))
        htm_.abortExplicit();
    sessionFaultPoint(htm_, FaultSite::kPrefixCommit);
    htm_.commit();
    prefixActive_ = false;
    registered_ = true;
    writeDetected_ = false;
    txVersion_ = clock;
    prefixSucceeded_ = true;
    if (stats_)
        stats_->inc(Counter::kPrefixSuccesses);
}

//
// Software mixed start (Algorithm 2, lines 1-8)
//

void
RhNOrecSession::startSoftwareMixed()
{
    sessionFaultPoint(htm_, FaultSite::kFallbackStart);
    if (!registered_) {
        eng_.directFetchAdd(&g_.fallbacks, 1);
        registered_ = true;
    }
    writeDetected_ = false;
    undo_.clear();
    // Wait out a locked clock stall-aware instead of restarting:
    // restarting on a locked clock burns a slow-path restart (and
    // eventually a serial escalation) on what is just another writer's
    // publication window -- under a stalled publisher that lemmings
    // every thread into serial mode.
    txVersion_ = stableClockRead(eng_, g_, policy_, stats_);
}

void
RhNOrecSession::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast) {
        if (killSwitchBypass(g_, policy_)) {
            // Breaker tripped: don't burn a doomed hardware attempt,
            // go straight to the mixed slow path.
            mode_ = Mode::kMixed;
            if (stats_) {
                stats_->inc(Counter::kKillSwitchBypasses);
                stats_->inc(Counter::kFallbacks);
            }
        } else {
            ++attempts_;
            if (stats_)
                stats_->inc(Counter::kFastPathAttempts);
            htm_.begin();
            // Algorithm 1: subscribe only to the HTM lock -- the clock
            // is not touched until commit (the whole point of RH
            // NOrec).
            if (htm_.read(&g_.htmLock) != 0)
                htm_.abortSubscription();
            return;
        }
    }
    if (mode_ == Mode::kSerial && !serialHeld_) {
        serialLockAcquire(eng_, g_, policy_, stats_);
        serialHeld_ = true;
        // Fired after serialHeld_ is set: if the injected fault
        // unwinds, the release paths still see the lock as ours.
        sessionFaultPoint(htm_, FaultSite::kSerialHeld);
    }
    // Mixed slow path: try the HTM prefix first (once per transaction,
    // Section 3.4), otherwise the software start.
    if (rh_.enablePrefix && prefixTries_ < policy_.smallHtmAttempts &&
        mode_ != Mode::kSerial) {
        startPrefix();
        return;
    }
    startSoftwareMixed();
}

uint64_t
RhNOrecSession::read(const uint64_t *addr)
{
    if (mode_ == Mode::kFast)
        return htm_.read(addr);
    // Every mixed slow-path access runs through the instrumented
    // clone, whether it lands in a small HTM or in software.
    simDelay(penalty_);
    if (postfixActive_)
        return htm_.read(addr);
    if (prefixActive_) {
        ++prefixReads_;
        if (prefixReads_ < maxReads_)
            return htm_.read(addr);
        // Expected length reached: move to the software phase
        // (Algorithm 3 lines 33-35) and fall through to a software
        // read of this address.
        commitPrefix();
    }
    if (writeDetected_) {
        // We hold the clock: no writer can commit, reads are stable.
        return eng_.directLoad(addr);
    }
    uint64_t v = eng_.directLoad(addr);
    if (eng_.directLoad(&g_.clock) != txVersion_)
        restart();
    return v;
}

//
// First slow-path write (Algorithm 2, handle_first_write)
//

void
RhNOrecSession::handleFirstWrite()
{
    // acquire_clock_lock: lock the clock iff it still matches our
    // snapshot (lines 47-56).
    uint64_t expected = txVersion_;
    if (!eng_.directCas(&g_.clock, expected, clockWithLock(txVersion_)))
        restart();
    clockHeld_ = true;
    writeDetected_ = true;
    stampEpoch(g_.watchdog.clockEpoch);
    // The clock is now locked: a scripted delay here stretches the
    // window every concurrent reader/committer spins on, and a
    // scripted abort exercises the clock-release path in
    // rollbackWriter().
    sessionFaultPoint(htm_, FaultSite::kPostFirstWrite);
    if (rh_.enablePostfix && postfixTries_ < policy_.smallHtmAttempts) {
        ++postfixTries_;
        if (stats_)
            stats_->inc(Counter::kPostfixAttempts);
        htm_.begin();
        postfixActive_ = true;
        // No subscription needed: we hold the clock, so no other
        // slow-path writer can run, and fast paths never raise the
        // HTM lock.
        return;
    }
    // Postfix budget exhausted: abort all hardware transactions and
    // execute the writes in software (lines 28-30).
    eng_.directStore(&g_.htmLock, 1);
    htmLockSet_ = true;
}

void
RhNOrecSession::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kFast) {
        htm_.write(addr, value);
        return;
    }
    simDelay(penalty_);
    if (postfixActive_) {
        htm_.write(addr, value);
        return;
    }
    if (prefixActive_)
        commitPrefix(); // Algorithm 3 lines 40-43.
    if (!writeDetected_) {
        handleFirstWrite();
        if (postfixActive_) {
            htm_.write(addr, value);
            return;
        }
    }
    if (irrevocable_)
        sessionFaultPointNoAbort(htm_, FaultSite::kSoftwareWrite);
    else
        sessionFaultPoint(htm_, FaultSite::kSoftwareWrite);
    undo_.push_back({addr, eng_.directLoad(addr)});
    eng_.directStore(addr, value);
}

void
RhNOrecSession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (mode_ == Mode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        htm_.abortNeedIrrevocable();
    }
    if (postfixActive_) {
        // Mid-postfix: the small HTM is best-effort too, so it cannot
        // carry the grant. Unwind (pre-grant; the buffered writes are
        // discarded, nothing was published) and replay serially.
        htm_.abortNeedIrrevocable();
    }
    if (prefixActive_) {
        // Close the prefix first: its commit registers the fallback
        // and snapshots the clock atomically. It may abort (HtmAbort,
        // pre-grant) if the clock is locked.
        commitPrefix();
    }
    if (!writeDetected_) {
        // Read phase, holding nothing: queue on the serial FIFO
        // (deadlock-free; lock order serial BEFORE clock,
        // docs/LIFECYCLE.md), then lock the clock at our snapshot. A
        // failed CAS means a writer committed since -- restart BEFORE
        // granting; the serial lock stays held, so the replay upgrades
        // unopposed.
        mode_ = Mode::kSerial;
        if (!serialHeld_) {
            serialLockAcquire(eng_, g_, policy_, stats_);
            serialHeld_ = true;
        }
        sessionFaultPoint(htm_, FaultSite::kIrrevocableUpgrade);
        uint64_t expected = txVersion_;
        if (!eng_.directCas(&g_.clock, expected,
                            clockWithLock(txVersion_)))
            restart();
        clockHeld_ = true;
        writeDetected_ = true;
        stampEpoch(g_.watchdog.clockEpoch);
        // Post-grant writes go in place in software (never a postfix:
        // write() skips handleFirstWrite once writeDetected_ is set),
        // so raise the HTM lock now -- fast paths must never observe a
        // partial in-place update.
        eng_.directStore(&g_.htmLock, 1);
        htmLockSet_ = true;
    }
    // Clock held (and the HTM lock raised on any in-place write path):
    // reads are direct, nothing else can commit, and commit() is a
    // plain unlock-advance. Infallible.
    irrevocable_ = true;
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
RhNOrecSession::commit()
{
    if (mode_ == Mode::kFast) {
        // Algorithm 1, fast_path_commit.
        if (htm_.isReadOnly()) {
            htm_.commit();
            if (stats_)
                stats_->inc(Counter::kReadOnlyCommits);
            return;
        }
        if (htm_.read(&g_.fallbacks) > 0) {
            uint64_t clock = htm_.read(&g_.clock);
            if (clockIsLocked(clock))
                htm_.abortExplicit();
            if (htm_.read(&g_.serialLock) != 0)
                htm_.abortExplicit(); // Section 3.3.
            htm_.write(&g_.clock, clock + 2);
        }
        htm_.commit();
        return;
    }
    if (prefixActive_) {
        // The whole body fit in the prefix (Algorithm 3 lines 59-62):
        // a purely hardware, read-only mixed slow path.
        htm_.commit();
        prefixActive_ = false;
        prefixSucceeded_ = true;
        if (stats_) {
            stats_->inc(Counter::kPrefixSuccesses);
            stats_->inc(Counter::kReadOnlyCommits);
        }
        return;
    }
    if (!writeDetected_) {
        if (stats_)
            stats_->inc(Counter::kReadOnlyCommits);
        return; // Read-only software phase: validated by every read.
    }
    if (postfixActive_) {
        // Publish every slow-path write atomically; a concurrent fast
        // path can never observe a partial update (Figure 2).
        sessionFaultPoint(htm_, FaultSite::kPostfixCommit);
        htm_.commit();
        postfixActive_ = false;
        if (stats_)
            stats_->inc(Counter::kPostfixSuccesses);
    }
    if (htmLockSet_) {
        eng_.directStore(&g_.htmLock, 0);
        htmLockSet_ = false;
    }
    eng_.directStore(&g_.clock, clockUnlockAndAdvance(txVersion_));
    clockHeld_ = false;
    stampEpoch(g_.watchdog.clockEpoch);
    writeDetected_ = false;
    // The undo journal is dead once the writes are committed; a later
    // attempt's rollback must never replay it.
    undo_.clear();
}

void
RhNOrecSession::rollbackWriter()
{
    // Replay the undo journal only while its writes are live (pushed
    // between the first software write and commit/rollback).
    if (writeDetected_) {
        for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
            eng_.directStore(it->addr, it->oldValue);
    }
    undo_.clear();
    if (htmLockSet_) {
        eng_.directStore(&g_.htmLock, 0);
        htmLockSet_ = false;
    }
    if (clockHeld_) {
        // Nothing (visible) was published; restore the snapshot if no
        // in-place writes happened, otherwise advance to force
        // concurrent readers that glimpsed undone values to restart.
        eng_.directStore(&g_.clock, clockUnlockAndAdvance(txVersion_));
        clockHeld_ = false;
        stampEpoch(g_.watchdog.clockEpoch);
    }
    writeDetected_ = false;
}

void
RhNOrecSession::adaptPrefixDown()
{
    // Abort feedback (Section 2.4): shrink toward the point where the
    // prefix commits with high probability. Shrinking below the reads
    // actually reached aborts faster next time, so cap by that too.
    uint32_t reached = std::max<uint32_t>(prefixReads_, 1);
    uint32_t next = std::min(expectedPrefixLen_, reached) / 2;
    expectedPrefixLen_ = std::max(rh_.minPrefixLength, next);
}

void
RhNOrecSession::adaptPrefixUp()
{
    if (!rh_.adaptivePrefix)
        return;
    uint32_t next = expectedPrefixLen_ + expectedPrefixLen_ / 4 + 1;
    expectedPrefixLen_ = std::min(rh_.maxPrefixLength, next);
}

void
RhNOrecSession::restart()
{
    throw TxRestart{};
}

void
RhNOrecSession::onHtmAbort(const HtmAbort &abort)
{
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    htm_.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability inside the fast path or a
        // postfix: no hardware retry can satisfy it. Roll back any
        // software-phase state and replay straight in serial mode,
        // without charging the retry budget.
        prefixActive_ = false;
        postfixActive_ = false;
        if (mode_ != Mode::kFast)
            rollbackWriter();
        mode_ = Mode::kSerial;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    if (mode_ == Mode::kFast) {
        if (!abort.retryOk)
            killSwitchOnHardwareFailure(g_, policy_, stats_);
        if (abort.retryOk && attempts_ < retryBudget_.budget()) {
            cm_.onWait(waitCauseOf(abort));
            return; // Retry in hardware.
        }
        retryBudget_.onFallback(attempts_);
        mode_ = Mode::kMixed;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    // A small HTM (prefix or postfix) aborted mid-attempt. Real
    // hardware would resume at its checkpoint; we restart the attempt
    // with that small HTM's budget spent (see file comment).
    if (prefixActive_) {
        prefixActive_ = false;
        if (rh_.adaptivePrefix)
            adaptPrefixDown();
    }
    if (postfixActive_)
        postfixActive_ = false;
    rollbackWriter();
    cm_.onWait(waitCauseOf(abort));
}

void
RhNOrecSession::onRestart()
{
    if (mode_ == Mode::kFast) {
        // User retry() inside the hardware fast path: discard the
        // hardware transaction and re-execute.
        htm_.cancel();
        cm_.onWait(WaitCause::kRestart);
        return;
    }
    if (prefixActive_ || postfixActive_) {
        htm_.cancel();
        prefixActive_ = false;
        postfixActive_ = false;
    }
    rollbackWriter();
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++slowRestarts_ >= policy_.maxSlowPathRestarts &&
        mode_ == Mode::kMixed) {
        mode_ = Mode::kSerial;
    }
    cm_.onWait(WaitCause::kRestart);
}

void
RhNOrecSession::onUserAbort()
{
    htm_.cancel(); // Covers the fast path and both small HTMs.
    prefixActive_ = false;
    postfixActive_ = false;
    rollbackWriter();
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    slowRestarts_ = 0;
    prefixTries_ = 0;
    postfixTries_ = 0;
    prefixSucceeded_ = false;
}

void
RhNOrecSession::onComplete()
{
    if (mode_ == Mode::kFast) {
        retryBudget_.onFastCommit(attempts_);
        killSwitchOnHardwareCommit(g_);
    }
    killSwitchOnComplete(g_);
    if (stats_) {
        switch (mode_) {
          case Mode::kFast:
            stats_->inc(Counter::kCommitsFastPath);
            break;
          case Mode::kMixed:
            stats_->inc(Counter::kCommitsMixedPath);
            break;
          case Mode::kSerial:
            stats_->inc(Counter::kCommitsSerialPath);
            break;
        }
    }
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    if (prefixSucceeded_)
        adaptPrefixUp();
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    slowRestarts_ = 0;
    prefixTries_ = 0;
    postfixTries_ = 0;
    prefixSucceeded_ = false;
    cm_.reset();
}

} // namespace rhtm
