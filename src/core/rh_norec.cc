#include "src/core/rh_norec.h"

#include <algorithm>

#include "src/core/engine/fault_points.h"
#include "src/util/backoff.h"

namespace rhtm
{

RhNOrecSession::RhNOrecSession(HtmEngine &eng, TmDomain &domain,
                               HtmTxn &htm, ThreadStats *stats,
                               const RetryPolicy &policy,
                               const RhConfig &rh,
                               unsigned access_penalty,
                               uint64_t cm_seed,
                               TxPersist *persist)
    : core_(eng, domain, htm, stats, policy, access_penalty, cm_seed),
      seqlock_(EngineMem(eng), &domain.globals.clock,
               &domain.globals.watchdog.clockEpoch),
      rh_(rh), expectedPrefixLen_(rh.maxPrefixLength)
{
    core_.persist = persist;
}

//
// Per-mode accessors
//

uint64_t
RhNOrecSession::fastRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    ++s->core_.tally.fastReads;
    return s->core_.htm.read(addr);
}

void
RhNOrecSession::fastWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    ++s->core_.tally.fastWrites;
    s->core_.htm.write(addr, value);
}

uint64_t
RhNOrecSession::prefixRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    ++s->prefixReads_;
    if (s->prefixReads_ < s->maxReads_)
        return s->core_.htm.read(addr);
    // Expected length reached: move to the software phase (Algorithm 3
    // lines 33-35) and finish as a clock-validated software read.
    s->commitPrefix();
    return s->softwareRead(addr);
}

void
RhNOrecSession::prefixWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->commitPrefix(); // Algorithm 3 lines 40-43.
    s->routeFirstWrite(addr, value);
}

uint64_t
RhNOrecSession::readPhaseRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    return s->softwareRead(addr);
}

void
RhNOrecSession::readPhaseWrite(void *self, uint64_t *addr,
                               uint64_t value)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->routeFirstWrite(addr, value);
}

uint64_t
RhNOrecSession::writerRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    // We hold the clock: no writer can commit, reads are stable.
    return s->core_.eng.directLoad(addr);
}

void
RhNOrecSession::writerWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->inPlaceWrite(addr, value);
}

uint64_t
RhNOrecSession::postfixRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    return s->core_.htm.read(addr);
}

void
RhNOrecSession::postfixWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<RhNOrecSession *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->core_.htm.write(addr, value);
}

//
// Prefix (Algorithm 3)
//

void
RhNOrecSession::startPrefix()
{
    ++prefixTries_;
    core_.count(Counter::kPrefixAttempts);
    core_.htm.begin();
    prefixActive_ = true;
    // Subscribe to the HTM lock for opacity, like the fast path.
    htmEarlySubscribe(core_.htm, &core_.g.htmLock);
    maxReads_ = expectedPrefixLen_;
    prefixReads_ = 0;
    bindDispatch(kPrefixDispatch, this);
}

void
RhNOrecSession::commitPrefix()
{
    // Register as a fallback and snapshot the clock *inside* the
    // hardware transaction: the commit validates that neither moved,
    // so registration and snapshot are one atomic step.
    HtmTxn &htm = core_.htm;
    htm.write(&core_.g.fallbacks, htm.read(&core_.g.fallbacks) + 1);
    uint64_t clock = htm.read(&core_.g.clock);
    if (clockIsLocked(clock))
        htm.abortExplicit();
    sessionFaultPoint(htm, FaultSite::kPrefixCommit);
    htm.commit();
    prefixActive_ = false;
    core_.registered = true;
    writeDetected_ = false;
    core_.txVersion = clock;
    prefixSucceeded_ = true;
    core_.count(Counter::kPrefixSuccesses);
    bindDispatch(kReadPhaseDispatch, this);
}

//
// Software mixed start (Algorithm 2, lines 1-8)
//

void
RhNOrecSession::startSoftwareMixed()
{
    sessionFaultPoint(core_.htm, FaultSite::kFallbackStart);
    core_.registerFallback();
    writeDetected_ = false;
    undo_.clear();
    // Wait out a locked clock stall-aware instead of restarting:
    // restarting on a locked clock burns a slow-path restart (and
    // eventually a serial escalation) on what is just another writer's
    // publication window -- under a stalled publisher that lemmings
    // every thread into serial mode.
    core_.txVersion = core_.stableClock();
    bindDispatch(kReadPhaseDispatch, this);
}

void
RhNOrecSession::begin(TxnHint hint)
{
    (void)hint;
    if (core_.mode == ExecMode::kFast) {
        // Algorithm 1: subscribe only to the HTM lock -- the clock is
        // not touched until commit (the whole point of RH NOrec).
        if (core_.beginFastPath(ExecMode::kSlow, &core_.g.htmLock)) {
            bindDispatch(kFastDispatch, this);
            return;
        }
    }
    if (core_.mode == ExecMode::kSerial && !core_.serialHeld) {
        core_.acquireSerial();
        // Fired after serialHeld is set: if the injected fault
        // unwinds, the release paths still see the lock as ours.
        sessionFaultPoint(core_.htm, FaultSite::kSerialHeld);
    }
    // Mixed slow path: try the HTM prefix first (once per transaction,
    // Section 3.4), otherwise the software start. A durable run skips
    // the small HTMs entirely: pwb/pfence ordering cannot live inside
    // a best-effort hardware transaction (same reason the fast path
    // escalates in SessionCore::beginFastPath).
    if (rh_.enablePrefix && !core_.persistOn() &&
        prefixTries_ < core_.policy.smallHtmAttempts &&
        core_.mode != ExecMode::kSerial) {
        startPrefix();
        return;
    }
    startSoftwareMixed();
}

uint64_t
RhNOrecSession::softwareRead(const uint64_t *addr)
{
    uint64_t v = core_.eng.directLoad(addr);
    if (core_.eng.directLoad(&core_.g.clock) != core_.txVersion)
        restart();
    return v;
}

//
// First slow-path write (Algorithm 2, handle_first_write)
//

void
RhNOrecSession::handleFirstWrite()
{
    // acquire_clock_lock: lock the clock iff it still matches our
    // snapshot (lines 47-56).
    if (!seqlock_.tryAcquireAt(core_.txVersion))
        restart();
    clockHeld_ = true;
    writeDetected_ = true;
    // The clock is now locked: a scripted delay here stretches the
    // window every concurrent reader/committer spins on, and a
    // scripted abort exercises the clock-release path in
    // rollbackWriter().
    sessionFaultPoint(core_.htm, FaultSite::kPostFirstWrite);
    if (rh_.enablePostfix && !core_.persistOn() &&
        postfixTries_ < core_.policy.smallHtmAttempts) {
        ++postfixTries_;
        core_.count(Counter::kPostfixAttempts);
        core_.htm.begin();
        postfixActive_ = true;
        // No subscription needed: we hold the clock, so no other
        // slow-path writer can run, and fast paths never raise the
        // HTM lock.
        bindDispatch(kPostfixDispatch, this);
        return;
    }
    // Postfix budget exhausted: abort all hardware transactions and
    // execute the writes in software (lines 28-30).
    core_.eng.directStore(&core_.g.htmLock, 1);
    htmLockSet_ = true;
    bindDispatch(kWriterDispatch, this);
}

void
RhNOrecSession::routeFirstWrite(uint64_t *addr, uint64_t value)
{
    handleFirstWrite();
    if (postfixActive_) {
        core_.htm.write(addr, value);
        return;
    }
    inPlaceWrite(addr, value);
}

void
RhNOrecSession::inPlaceWrite(uint64_t *addr, uint64_t value)
{
    if (core_.irrevocable)
        sessionFaultPointNoAbort(core_.htm, FaultSite::kSoftwareWrite);
    else
        sessionFaultPoint(core_.htm, FaultSite::kSoftwareWrite);
    undo_.push(addr, core_.eng.directLoad(addr));
    if (core_.persistOn())
        core_.persist->stage(addr, value);
    core_.eng.directStore(addr, value);
}

void
RhNOrecSession::becomeIrrevocable()
{
    if (core_.irrevocable)
        return;
    if (core_.mode == ExecMode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt straight to serial mode.
        core_.htm.abortNeedIrrevocable();
    }
    if (postfixActive_) {
        // Mid-postfix: the small HTM is best-effort too, so it cannot
        // carry the grant. Unwind (pre-grant; the buffered writes are
        // discarded, nothing was published) and replay serially.
        core_.htm.abortNeedIrrevocable();
    }
    if (prefixActive_) {
        // Close the prefix first: its commit registers the fallback
        // and snapshots the clock atomically. It may abort (HtmAbort,
        // pre-grant) if the clock is locked.
        commitPrefix();
    }
    if (!writeDetected_) {
        // Read phase, holding nothing: queue on the serial FIFO
        // (deadlock-free; lock order serial BEFORE clock,
        // docs/LIFECYCLE.md), then lock the clock at our snapshot. A
        // failed CAS means a writer committed since -- restart BEFORE
        // granting; the serial lock stays held, so the replay upgrades
        // unopposed.
        core_.grantBarrierEnter();
        if (!seqlock_.tryAcquireAt(core_.txVersion))
            restart();
        clockHeld_ = true;
        writeDetected_ = true;
        // Post-grant writes go in place in software (never a postfix:
        // the writer descriptor is bound now, so routeFirstWrite never
        // runs again), so raise the HTM lock -- fast paths must never
        // observe a partial in-place update.
        core_.eng.directStore(&core_.g.htmLock, 1);
        htmLockSet_ = true;
        bindDispatch(kWriterDispatch, this);
    }
    // Clock held (and the HTM lock raised on any in-place write path):
    // reads are direct, nothing else can commit, and commit() is a
    // plain unlock-advance. Infallible.
    core_.grantIrrevocable();
}

void
RhNOrecSession::commit()
{
    if (core_.mode == ExecMode::kFast) {
        // Algorithm 1, fast_path_commit.
        core_.fastCommitNOrec();
        return;
    }
    if (prefixActive_) {
        // The whole body fit in the prefix (Algorithm 3 lines 59-62):
        // a purely hardware, read-only mixed slow path.
        core_.htm.commit();
        prefixActive_ = false;
        prefixSucceeded_ = true;
        core_.count(Counter::kPrefixSuccesses);
        core_.count(Counter::kReadOnlyCommits);
        return;
    }
    if (!writeDetected_) {
        core_.count(Counter::kReadOnlyCommits);
        return; // Read-only software phase: validated by every read.
    }
    if (postfixActive_) {
        // Publish every slow-path write atomically; a concurrent fast
        // path can never observe a partial update (Figure 2).
        sessionFaultPoint(core_.htm, FaultSite::kPostfixCommit);
        core_.htm.commit();
        postfixActive_ = false;
        core_.count(Counter::kPostfixSuccesses);
    }
    // Durable commit: seal while the clock lock still excludes every
    // other writer (sealed set = prefix of commit order). A durable
    // run never has an active postfix, so all writes were staged at
    // inPlaceWrite.
    if (core_.persistOn())
        core_.persist->sealStaged();
    if (htmLockSet_) {
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockSet_ = false;
    }
    seqlock_.releaseAdvance(core_.txVersion);
    clockHeld_ = false;
    writeDetected_ = false;
    // The undo journal is dead once the writes are committed; a later
    // attempt's rollback must never replay it.
    undo_.clear();
    if (core_.persistOn())
        core_.persist->drainAndMark();
}

void
RhNOrecSession::rollbackWriter()
{
    if (core_.persistOn())
        core_.persist->discardStaged();
    // Replay the undo journal only while its writes are live (pushed
    // between the first software write and commit/rollback).
    if (writeDetected_)
        undo_.rollback(EngineMem(core_.eng));
    undo_.clear();
    if (htmLockSet_) {
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockSet_ = false;
    }
    if (clockHeld_) {
        // Nothing (visible) was published; advance to force concurrent
        // readers that glimpsed undone values to restart.
        seqlock_.releaseAdvance(core_.txVersion);
        clockHeld_ = false;
    }
    writeDetected_ = false;
}

void
RhNOrecSession::adaptPrefixDown()
{
    // Abort feedback (Section 2.4): shrink toward the point where the
    // prefix commits with high probability. Shrinking below the reads
    // actually reached aborts faster next time, so cap by that too.
    uint32_t reached = std::max<uint32_t>(prefixReads_, 1);
    uint32_t next = std::min(expectedPrefixLen_, reached) / 2;
    expectedPrefixLen_ = std::max(rh_.minPrefixLength, next);
}

void
RhNOrecSession::adaptPrefixUp()
{
    if (!rh_.adaptivePrefix)
        return;
    uint32_t next = expectedPrefixLen_ + expectedPrefixLen_ / 4 + 1;
    expectedPrefixLen_ = std::min(rh_.maxPrefixLength, next);
}

void
RhNOrecSession::restart()
{
    throw TxRestart{};
}

void
RhNOrecSession::onHtmAbort(const HtmAbort &abort)
{
    // A real abort already reset the hardware transaction; an injected
    // one (tests, policy probes) may not have.
    core_.htm.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability inside the fast path or a
        // postfix: no hardware retry can satisfy it. Roll back any
        // software-phase state and replay straight in serial mode,
        // without charging the retry budget.
        prefixActive_ = false;
        postfixActive_ = false;
        if (core_.mode != ExecMode::kFast)
            rollbackWriter();
        core_.fallbackUncharged(ExecMode::kSerial);
        return;
    }
    if (core_.mode == ExecMode::kFast) {
        core_.htmAbortFast(abort, ExecMode::kSlow);
        return;
    }
    // A small HTM (prefix or postfix) aborted mid-attempt. Real
    // hardware would resume at its checkpoint; we restart the attempt
    // with that small HTM's budget spent (see file comment).
    if (prefixActive_) {
        prefixActive_ = false;
        if (rh_.adaptivePrefix)
            adaptPrefixDown();
    }
    postfixActive_ = false;
    rollbackWriter();
    core_.cm.onWait(waitCauseOf(abort));
}

void
RhNOrecSession::onRestart()
{
    if (core_.mode == ExecMode::kFast) {
        // User retry() inside the hardware fast path: discard the
        // hardware transaction and re-execute.
        core_.htm.cancel();
        core_.cm.onWait(WaitCause::kRestart);
        return;
    }
    if (prefixActive_ || postfixActive_) {
        core_.htm.cancel();
        prefixActive_ = false;
        postfixActive_ = false;
    }
    rollbackWriter();
    core_.restartEscalate();
}

void
RhNOrecSession::onUserAbort()
{
    core_.htm.cancel(); // Covers the fast path and both small HTMs.
    prefixActive_ = false;
    postfixActive_ = false;
    rollbackWriter();
    core_.unwindTail();
    prefixTries_ = 0;
    postfixTries_ = 0;
    prefixSucceeded_ = false;
}

void
RhNOrecSession::onComplete()
{
    core_.completeTail(Counter::kCommitsMixedPath);
    if (prefixSucceeded_)
        adaptPrefixUp();
    prefixTries_ = 0;
    postfixTries_ = 0;
    prefixSucceeded_ = false;
    core_.finishReset();
}

} // namespace rhtm
