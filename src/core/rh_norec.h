/**
 * @file
 * Reduced Hardware NOrec (the paper's contribution, Algorithms 1-3).
 *
 * The hardware fast path runs fully uninstrumented and defers every
 * interaction with the shared metadata to its commit point: it
 * subscribes only to global_htm_lock at start, and touches
 * num_of_fallbacks / global_clock just before the hardware commit
 * (Algorithm 1) -- eliminating Hybrid NOrec's start-time clock
 * subscription and its false aborts.
 *
 * The slow path is *mixed* software/hardware:
 *
 *  - HTM prefix (Algorithm 3): the longest possible run of initial
 *    reads executes inside a small hardware transaction, replacing
 *    per-read clock validation with hardware conflict detection. Its
 *    commit atomically registers the fallback (num_of_fallbacks++) and
 *    snapshots the clock, deferring the clock read to the prefix
 *    commit point. The prefix length adapts to abort feedback.
 *  - Software middle: remaining reads validate against the clock, as
 *    in eager NOrec.
 *  - HTM postfix (Algorithm 2): the first write locks the clock and
 *    opens a second small hardware transaction that buffers the rest
 *    of the transaction (all writes); its commit publishes them
 *    atomically, so concurrent fast paths never see partial slow-path
 *    writes -- which is what makes the fast path's *late* clock read
 *    safe (Figure 2).
 *
 * If a small hardware transaction fails, the transaction reverts to
 * the Hybrid NOrec software path: the prefix is replaced by start-time
 * clock reading, and the postfix by raising global_htm_lock (aborting
 * all hardware transactions) and writing in software.
 *
 * Composition over the shared engine: SessionCore carries the mode /
 * retry / serial-lock / fallback bookkeeping, CommitSeqlock the clock
 * protocol, UndoJournal the in-place write log. Each phase of the
 * mixed protocol is a TxDispatch descriptor (fast, prefix, software
 * read phase, clock-held writer, postfix); phase transitions rebind
 * the descriptor, so the per-access path has no mode branches.
 *
 * Simulation divergence (documented in DESIGN.md): real hardware
 * resumes a failed small HTM at its XBEGIN checkpoint mid-body; a
 * library cannot restore CPU state, so a small-HTM failure restarts
 * the whole attempt with that small HTM disabled. The retry policy is
 * the paper's (Section 3.4): each small HTM is tried once per
 * transaction before using its software counterpart.
 */

#ifndef RHTM_CORE_RH_NOREC_H
#define RHTM_CORE_RH_NOREC_H

#include <cstdint>

#include "src/core/engine/commit_seqlock.h"
#include "src/core/engine/journal.h"
#include "src/core/engine/mem_access.h"
#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"

namespace rhtm
{

/** Per-thread RH NOrec session. */
class RhNOrecSession : public TxSession
{
  public:
    RhNOrecSession(HtmEngine &eng, TmDomain &domain, HtmTxn &htm,
                   ThreadStats *stats, const RetryPolicy &policy,
                   const RhConfig &rh, unsigned access_penalty = 0,
                   uint64_t cm_seed = 1,
                   TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return core_.irrevocable; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "rh-norec"; }

    /** Current adaptive prefix length (exposed for tests/benches). */
    uint32_t expectedPrefixLength() const { return expectedPrefixLen_; }

    void
    onDeadlineAttached() override
    {
        core_.deadline = deadline_;
    }

    void
    resetForTest() override
    {
        core_.resetForTest();
        prefixTries_ = 0;
        postfixTries_ = 0;
        prefixActive_ = false;
        postfixActive_ = false;
        writeDetected_ = false;
        clockHeld_ = false;
        htmLockSet_ = false;
        prefixSucceeded_ = false;
        prefixReads_ = 0;
        maxReads_ = 0;
        undo_.clear();
        expectedPrefixLen_ = rh_.maxPrefixLength;
    }

    unsigned
    fastRetryBudgetForTest() const override
    {
        return core_.retryBudget.budget();
    }

    uint32_t
    adaptiveScoreForTest() const override
    {
        return core_.retryBudget.score();
    }

  private:
    // Per-mode accessors; bound as TxDispatch descriptors.
    static uint64_t fastRead(void *self, const uint64_t *addr);
    static void fastWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t prefixRead(void *self, const uint64_t *addr);
    static void prefixWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t readPhaseRead(void *self, const uint64_t *addr);
    static void readPhaseWrite(void *self, uint64_t *addr,
                               uint64_t value);
    static uint64_t writerRead(void *self, const uint64_t *addr);
    static void writerWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t postfixRead(void *self, const uint64_t *addr);
    static void postfixWrite(void *self, uint64_t *addr, uint64_t value);

    static constexpr TxDispatch kFastDispatch = {&fastRead, &fastWrite};
    static constexpr TxDispatch kPrefixDispatch = {&prefixRead,
                                                   &prefixWrite};
    static constexpr TxDispatch kReadPhaseDispatch = {&readPhaseRead,
                                                      &readPhaseWrite};
    static constexpr TxDispatch kWriterDispatch = {&writerRead,
                                                   &writerWrite};
    static constexpr TxDispatch kPostfixDispatch = {&postfixRead,
                                                    &postfixWrite};

    /** Algorithm 3, start_rh_htm_prefix. */
    void startPrefix();

    /** Algorithm 3, commit_rh_htm_prefix. */
    void commitPrefix();

    /** Algorithm 2 start path (software: register + read clock). */
    void startSoftwareMixed();

    /** Algorithm 2, handle_first_write. */
    void handleFirstWrite();

    /** Clock-validated software read (read phase). */
    uint64_t softwareRead(const uint64_t *addr);

    /** First slow-path write: lock the clock, route to postfix/place. */
    void routeFirstWrite(uint64_t *addr, uint64_t value);

    /** Journal-backed in-place write (clock held). */
    void inPlaceWrite(uint64_t *addr, uint64_t value);

    /** Undo any in-place software writes and drop held locks. */
    void rollbackWriter();

    /** Shrink the expected prefix length after an abort. */
    void adaptPrefixDown();

    /** Grow the expected prefix length after a success. */
    void adaptPrefixUp();

    [[noreturn]] void restart();

    SessionCore core_;
    CommitSeqlock<EngineMem> seqlock_;
    RhConfig rh_;

    // Per-transaction (spanning attempts) small-HTM budgets.
    unsigned prefixTries_ = 0;
    unsigned postfixTries_ = 0;

    // Per-attempt state.
    bool prefixActive_ = false;
    bool postfixActive_ = false;
    bool writeDetected_ = false;
    bool clockHeld_ = false;
    bool htmLockSet_ = false;
    bool prefixSucceeded_ = false;
    uint32_t prefixReads_ = 0;
    uint32_t maxReads_ = 0;
    UndoJournal undo_;

    // Adaptive prefix length, persistent across transactions.
    uint32_t expectedPrefixLen_;
};

} // namespace rhtm

#endif // RHTM_CORE_RH_NOREC_H
