#include "src/core/rh_tl2.h"

#include <cassert>

#include "src/core/engine/fault_points.h"
#include "src/core/engine/progress.h"
#include "src/util/backoff.h"

namespace rhtm
{

RhTl2Session::RhTl2Session(HtmEngine &eng, TmDomain &domain,
                           RhTl2Globals &tl2, HtmTxn &htm,
                           ThreadStats *stats, const RetryPolicy &policy,
                           unsigned access_penalty, uint64_t cm_seed,
                           TxPersist *persist)
    : core_(eng, domain, htm, stats, policy, access_penalty, cm_seed),
      tl2_(tl2), writes_(12)
{
    core_.persist = persist;
    readLog_.reserve(1024);
    writeAddrs_.reserve(256);
}

//
// Per-mode accessors
//

uint64_t
RhTl2Session::fastRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhTl2Session *>(self);
    ++s->core_.tally.fastReads;
    // The RH-TL2 selling point: hardware reads stay uninstrumented.
    return s->core_.htm.read(addr);
}

void
RhTl2Session::fastWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<RhTl2Session *>(self);
    ++s->core_.tally.fastWrites;
    // Drawback #1 (Section 1.2): the fast path must update the
    // per-location metadata for every write location before the
    // hardware commit; the address log feeds those orec writes.
    s->core_.htm.write(addr, value);
    s->writeAddrs_.push_back(addr);
}

uint64_t
RhTl2Session::mixedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhTl2Session *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    uint64_t *orec = s->tl2_.orecOf(addr);
    uint64_t o1 = s->core_.eng.directLoad(orec);
    if (o1 > s->rv_)
        s->restart(); // Written after our snapshot.
    uint64_t v = s->core_.eng.directLoad(addr);
    if (s->core_.eng.directLoad(orec) != o1)
        s->restart();
    s->readLog_.push_back({orec, o1});
    return v;
}

void
RhTl2Session::mixedWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<RhTl2Session *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowWrites;
    s->writes_.putGrowing(addr, value);
}

uint64_t
RhTl2Session::pinnedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<RhTl2Session *>(self);
    simDelay(s->core_.penalty);
    ++s->core_.tally.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    // We hold the global HTM lock: every fast path is doomed and no
    // committer can pass the lock CAS, so memory is frozen.
    return s->core_.eng.directLoad(addr);
}

void
RhTl2Session::beginMixed()
{
    sessionFaultPoint(core_.htm, FaultSite::kFallbackStart);
    // Like RH NOrec's num_of_fallbacks: fast paths only pay the
    // metadata updates while a mixed path is live.
    core_.registerFallback();
    readLog_.clear();
    writes_.clear();
    // Fronts 1+2 apply to the redo buffer only here: RH-TL2 validates
    // by orec, not by value, so there is no ring skip to take.
    writes_.setMode(commitCfg_.redoIndex, commitCfg_.readFilter);
    rv_ = core_.eng.directLoad(tl2_.clock());
    bindDispatch(kMixedDispatch, this);
}

void
RhTl2Session::begin(TxnHint hint)
{
    (void)hint;
    if (core_.mode == ExecMode::kFast) {
        writeAddrs_.clear();
        // Subscribe to the HTM lock: a serialized software commit may
        // be writing back non-atomically.
        if (core_.beginFastPath(ExecMode::kSlow, &core_.g.htmLock)) {
            bindDispatch(kFastDispatch, this);
            return;
        }
    }
    beginMixed();
}

void
RhTl2Session::commitMixedHtm()
{
    ++commitHtmTries_;
    core_.count(Counter::kPostfixAttempts);
    core_.htm.begin();
    htmEarlySubscribe(core_.htm, &core_.g.htmLock);
    // Drawback #2 (Section 1.2): this one small hardware transaction
    // carries the read-set validation *and* every write location, so
    // its footprint -- and failure probability -- is high.
    for (const OrecEntry &e : readLog_) {
        if (core_.htm.read(e.orec) != e.version) {
            core_.htm.cancel();
            restart(); // Genuine conflict: restart the transaction.
        }
    }
    uint64_t wv = core_.htm.read(tl2_.clock()) + 2;
    core_.htm.write(tl2_.clock(), wv);
    writes_.forEach([&](uint64_t *addr, uint64_t value) {
        core_.htm.write(addr, value);
        core_.htm.write(tl2_.orecOf(addr), wv);
    });
    // The commit transaction is RH-TL2's analogue of the postfix: one
    // small HTM carrying validation plus the whole write-back.
    sessionFaultPoint(core_.htm, FaultSite::kPostfixCommit);
    core_.htm.commit();
    core_.count(Counter::kPostfixSuccesses);
}

void
RhTl2Session::writeBack()
{
    // Compute wv but publish the clock only *after* the write-back:
    // a reader that begins mid-write-back must have rv < wv so the
    // fresh orecs fail its validation (publishing the clock first
    // would let it accept a mixed old/new snapshot). Concurrent commit
    // transactions cannot slip a same-valued wv in between: the held
    // HTM lock doomed every in-flight one, and later ones abort on
    // their start-time subscription.
    uint64_t wv = core_.eng.directLoad(tl2_.clock()) + 2;
    // The HTM lock is up and every fast path is doomed: this is the
    // serialized publication window. A scripted delay stretches it;
    // aborts are absorbed -- the write-back is the transaction's
    // linearization and cannot be unwound without replaying the whole
    // commit; the other schedules cover the abort paths.
    sessionFaultPointNoAbort(core_.htm, FaultSite::kPublishWindow);
    writes_.forEach([&](uint64_t *addr, uint64_t value) {
        // Orec first: a concurrent reader that sees the new data also
        // sees a version beyond its snapshot and restarts.
        core_.eng.directStore(tl2_.orecOf(addr), wv);
        // Stage-at-publish: the lazy write set becomes the durable
        // redo payload once the commit is past validation.
        if (core_.persistOn())
            core_.persist->stage(addr, value);
        core_.eng.directStore(addr, value);
    });
    core_.eng.directStore(tl2_.clock(), wv);
    // Durable commit: seal while the HTM lock still serializes every
    // committer (callers release the lock -- and drain -- after us).
    if (core_.persistOn())
        core_.persist->sealStaged();
}

void
RhTl2Session::commitMixedSoftware()
{
    // Serialize under the global HTM lock: the store dooms every
    // hardware fast path and in-flight commit transaction, making the
    // non-atomic write-back safe. The RAII guard's acquisition is
    // stall-aware (a preempted or fault-delayed holder is detected via
    // the clock epoch and waited out), and the guard -- not a bare
    // store on the happy path -- owns the release, so the validation
    // restart below can never leak the lock.
    ScopedHtmLock lock(core_.eng, core_.g, core_.policy, core_.stats,
                       core_.deadline);
    for (const OrecEntry &e : readLog_) {
        if (core_.eng.directLoad(e.orec) != e.version)
            restart(); // The guard drops the HTM lock on the unwind.
    }
    writeBack();
    lock.release();
    if (core_.persistOn())
        core_.persist->drainAndMark();
}

void
RhTl2Session::commit()
{
    if (core_.mode == ExecMode::kFast) {
        if (writeAddrs_.empty()) {
            core_.htm.commit();
            core_.count(Counter::kReadOnlyCommits);
            return;
        }
        if (core_.htm.read(&core_.g.fallbacks) > 0) {
            // Version the written locations inside the hardware
            // transaction (metadata instrumentation, drawback #1);
            // only needed while mixed paths are live.
            uint64_t wv = core_.htm.read(tl2_.clock()) + 2;
            core_.htm.write(tl2_.clock(), wv);
            for (uint64_t *addr : writeAddrs_)
                core_.htm.write(tl2_.orecOf(addr), wv);
        }
        core_.htm.commit();
        return;
    }
    if (writes_.empty()) {
        if (core_.irrevocable)
            releaseIrrevocable(); // Nothing published; just unfreeze.
        core_.count(Counter::kReadOnlyCommits);
        return; // Reads were validated individually against rv_.
    }
    if (core_.irrevocable) {
        // Validated at the grant and frozen since (we hold the HTM
        // lock): publish without revalidation -- infallible -- and
        // unfreeze. The serial lock drops in onComplete.
        writeBack();
        releaseIrrevocable();
        if (core_.persistOn())
            core_.persist->drainAndMark();
        return;
    }
    // A durable run never commits through the small HTM: pwb/pfence
    // ordering cannot live inside a best-effort hardware transaction,
    // so go straight to the serialized software commit.
    if (!core_.persistOn() &&
        commitHtmTries_ < core_.policy.smallHtmAttempts) {
        commitMixedHtm();
        return;
    }
    commitMixedSoftware();
}

void
RhTl2Session::becomeIrrevocable()
{
    if (core_.irrevocable)
        return;
    if (core_.mode == ExecMode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt to the mixed slow path.
        core_.htm.abortNeedIrrevocable();
    }
    // Serialize concurrent upgraders FIFO before touching the HTM
    // lock: we hold nothing here, so queueing is deadlock-free, and
    // the lock order (serial BEFORE htmLock, docs/LIFECYCLE.md) means
    // an upgrader never waits on the HTM lock held by another
    // upgrader -- only on bounded software commit windows. RH-TL2 has
    // no serial execution mode, so the barrier leaves the mode alone.
    core_.grantBarrierEnter(/*switchToSerialMode=*/false);
    {
        ScopedHtmLock lock(core_.eng, core_.g, core_.policy,
                           core_.stats, core_.deadline);
        // Validate the read set BEFORE granting: a stale read must
        // unwind before the promise, never after. The guard drops the
        // HTM lock on the restart; the serial lock stays held, so the
        // replayed attempt upgrades unopposed.
        for (const OrecEntry &e : readLog_) {
            if (core_.eng.directLoad(e.orec) != e.version)
                restart();
        }
        lock.disown(); // Hold until commit/rollback.
        htmLockHeld_ = true;
    }
    // HTM lock held with a validated read set: fast paths are doomed,
    // no committer can pass the lock CAS, reads go direct, and commit
    // is an unconditional write-back. Infallible from here.
    core_.grantIrrevocable();
    bindDispatch(kPinnedDispatch, this);
}

void
RhTl2Session::releaseIrrevocable()
{
    if (htmLockHeld_) {
        core_.eng.directStore(&core_.g.htmLock, 0);
        htmLockHeld_ = false;
        stampEpoch(core_.g.watchdog.clockEpoch);
    }
    if (core_.irrevocable) {
        core_.irrevocable = false;
        bindDispatch(kMixedDispatch, this);
    }
}

void
RhTl2Session::restart()
{
    throw TxRestart{};
}

void
RhTl2Session::onHtmAbort(const HtmAbort &abort)
{
    core_.htm.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: skip the retry budget and
        // replay on the mixed slow path, which can grant it.
        core_.fallbackUncharged(ExecMode::kSlow);
        return;
    }
    if (core_.mode == ExecMode::kFast) {
        core_.htmAbortFast(abort, ExecMode::kSlow);
        return;
    }
    // The commit transaction failed mechanically (capacity, injected):
    // retry the attempt; the next commit() uses the software path.
    core_.cm.onWait(waitCauseOf(abort));
}

void
RhTl2Session::onRestart()
{
    core_.htm.cancel();
    // A pre-grant upgrade restart keeps the serial lock (the replay
    // upgrades unopposed); anything the grant held is dropped.
    releaseIrrevocable();
    if (core_.mode != ExecMode::kFast)
        core_.count(Counter::kSlowPathRestarts);
    core_.cm.onWait(WaitCause::kRestart);
}

void
RhTl2Session::onUserAbort()
{
    core_.htm.cancel();
    // Lazy everywhere: nothing was published, no locks held outside
    // the commit routines (which release before unwinding) and an
    // irrevocable upgrade (dropped here). Nothing can be staged either
    // (staging happens inside the infallible writeBack); the discard
    // is defensive symmetry with the other sessions.
    if (core_.persistOn())
        core_.persist->discardStaged();
    releaseIrrevocable();
    core_.unwindTail();
    commitHtmTries_ = 0;
}

void
RhTl2Session::onComplete()
{
    core_.completeTail(Counter::kCommitsMixedPath);
    core_.finishReset();
    commitHtmTries_ = 0;
}

} // namespace rhtm
