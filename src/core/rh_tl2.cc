#include "src/core/rh_tl2.h"

#include <cassert>

#include "src/core/fault_points.h"
#include "src/core/progress.h"

namespace rhtm
{

RhTl2Session::RhTl2Session(HtmEngine &eng, TmGlobals &globals,
                           RhTl2Globals &tl2, HtmTxn &htm,
                           ThreadStats *stats, const RetryPolicy &policy,
                           unsigned access_penalty, uint64_t cm_seed)
    : eng_(eng), g_(globals), tl2_(tl2), htm_(htm), stats_(stats),
      policy_(policy), retryBudget_(policy_), penalty_(access_penalty),
      cm_(policy_, &globals, cm_seed), writes_(12)
{
    readLog_.reserve(1024);
    writeAddrs_.reserve(256);
}

void
RhTl2Session::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast) {
        if (killSwitchBypass(g_, policy_)) {
            mode_ = Mode::kMixed;
            if (stats_) {
                stats_->inc(Counter::kKillSwitchBypasses);
                stats_->inc(Counter::kFallbacks);
            }
        } else {
            ++attempts_;
            if (stats_)
                stats_->inc(Counter::kFastPathAttempts);
            writeAddrs_.clear();
            htm_.begin();
            // Subscribe to the HTM lock: a serialized software commit
            // may be writing back non-atomically.
            if (htm_.read(&g_.htmLock) != 0)
                htm_.abortSubscription();
            return;
        }
    }
    sessionFaultPoint(htm_, FaultSite::kFallbackStart);
    if (!registered_) {
        // Like RH NOrec's num_of_fallbacks: fast paths only pay the
        // metadata updates while a mixed path is live.
        eng_.directFetchAdd(&g_.fallbacks, 1);
        registered_ = true;
    }
    readLog_.clear();
    writes_.clear();
    rv_ = eng_.directLoad(tl2_.clock());
}

uint64_t
RhTl2Session::read(const uint64_t *addr)
{
    if (mode_ == Mode::kFast) {
        // The RH-TL2 selling point: hardware reads stay uninstrumented.
        return htm_.read(addr);
    }
    simDelay(penalty_);
    uint64_t buffered;
    if (writes_.lookup(addr, buffered))
        return buffered;
    uint64_t *orec = tl2_.orecOf(addr);
    uint64_t o1 = eng_.directLoad(orec);
    if (o1 > rv_)
        restart(); // Written after our snapshot.
    uint64_t v = eng_.directLoad(addr);
    if (eng_.directLoad(orec) != o1)
        restart();
    readLog_.push_back({orec, o1});
    return v;
}

void
RhTl2Session::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kFast) {
        // Drawback #1 (Section 1.2): the fast path must update the
        // per-location metadata for every write location before the
        // hardware commit; the address log feeds those orec writes.
        htm_.write(addr, value);
        writeAddrs_.push_back(addr);
        return;
    }
    simDelay(penalty_);
    writes_.putGrowing(addr, value);
}

void
RhTl2Session::commitMixedHtm()
{
    ++commitHtmTries_;
    if (stats_)
        stats_->inc(Counter::kPostfixAttempts);
    htm_.begin();
    if (htm_.read(&g_.htmLock) != 0)
        htm_.abortSubscription();
    // Drawback #2 (Section 1.2): this one small hardware transaction
    // carries the read-set validation *and* every write location, so
    // its footprint -- and failure probability -- is high.
    for (const ReadEntry &e : readLog_) {
        if (htm_.read(e.orec) != e.version) {
            htm_.cancel();
            restart(); // Genuine conflict: restart the transaction.
        }
    }
    uint64_t wv = htm_.read(tl2_.clock()) + 2;
    htm_.write(tl2_.clock(), wv);
    writes_.forEach([&](uint64_t *addr, uint64_t value) {
        htm_.write(addr, value);
        htm_.write(tl2_.orecOf(addr), wv);
    });
    // The commit transaction is RH-TL2's analogue of the postfix: one
    // small HTM carrying validation plus the whole write-back.
    sessionFaultPoint(htm_, FaultSite::kPostfixCommit);
    htm_.commit();
    if (stats_)
        stats_->inc(Counter::kPostfixSuccesses);
}

void
RhTl2Session::commitMixedSoftware()
{
    // Serialize under the global HTM lock: the store dooms every
    // hardware fast path and in-flight commit transaction, making the
    // non-atomic write-back safe. The wait is stall-aware: a preempted
    // or fault-delayed write-back holder is detected via the clock
    // epoch and waited out with yields/sleeps.
    {
        StallAwareWaiter waiter(g_, policy_, stats_,
                                g_.watchdog.clockEpoch);
        for (;;) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.htmLock, expected, 1))
                break;
            waiter.step();
        }
    }
    stampEpoch(g_.watchdog.clockEpoch);
    for (const ReadEntry &e : readLog_) {
        if (eng_.directLoad(e.orec) != e.version) {
            eng_.directStore(&g_.htmLock, 0);
            stampEpoch(g_.watchdog.clockEpoch);
            restart();
        }
    }
    // Compute wv but publish the clock only *after* the write-back:
    // a reader that begins mid-write-back must have rv < wv so the
    // fresh orecs fail its validation (publishing the clock first
    // would let it accept a mixed old/new snapshot). Concurrent commit
    // transactions cannot slip a same-valued wv in between: the
    // htmLock store above doomed every in-flight one, and later ones
    // abort on their start-time subscription.
    uint64_t wv = eng_.directLoad(tl2_.clock()) + 2;
    // The HTM lock is up and every fast path is doomed: this is the
    // serialized publication window. A scripted delay stretches it.
    {
        FaultInjector *fault = htm_.injector();
        uint32_t spins = 0;
        if (fault != nullptr) {
            switch (fault->fire(FaultSite::kPublishWindow, &spins)) {
              case FaultKind::kDelay:
                simDelay(spins);
                break;
              case FaultKind::kYield:
                std::this_thread::yield();
                break;
              default:
                // Aborts are ignored here: the write-back is the
                // transaction's linearization and cannot be unwound
                // without replaying the whole commit; the other
                // schedules cover the abort paths.
                break;
            }
        }
    }
    writes_.forEach([&](uint64_t *addr, uint64_t value) {
        // Orec first: a concurrent reader that sees the new data also
        // sees a version beyond its snapshot and restarts.
        eng_.directStore(tl2_.orecOf(addr), wv);
        eng_.directStore(addr, value);
    });
    eng_.directStore(tl2_.clock(), wv);
    eng_.directStore(&g_.htmLock, 0);
    stampEpoch(g_.watchdog.clockEpoch);
}

void
RhTl2Session::commit()
{
    if (mode_ == Mode::kFast) {
        if (writeAddrs_.empty()) {
            htm_.commit();
            if (stats_)
                stats_->inc(Counter::kReadOnlyCommits);
            return;
        }
        if (htm_.read(&g_.fallbacks) > 0) {
            // Version the written locations inside the hardware
            // transaction (metadata instrumentation, drawback #1);
            // only needed while mixed paths are live.
            uint64_t wv = htm_.read(tl2_.clock()) + 2;
            htm_.write(tl2_.clock(), wv);
            for (uint64_t *addr : writeAddrs_)
                htm_.write(tl2_.orecOf(addr), wv);
        }
        htm_.commit();
        return;
    }
    if (writes_.empty()) {
        if (stats_)
            stats_->inc(Counter::kReadOnlyCommits);
        return; // Reads were validated individually against rv_.
    }
    if (commitHtmTries_ < policy_.smallHtmAttempts) {
        commitMixedHtm();
        return;
    }
    commitMixedSoftware();
}

void
RhTl2Session::restart()
{
    throw TxRestart{};
}

void
RhTl2Session::onHtmAbort(const HtmAbort &abort)
{
    htm_.cancel();
    if (mode_ == Mode::kFast) {
        if (!abort.retryOk)
            killSwitchOnHardwareFailure(g_, policy_, stats_);
        if (abort.retryOk && attempts_ < retryBudget_.budget()) {
            cm_.onWait(waitCauseOf(abort));
            return;
        }
        retryBudget_.onFallback(attempts_);
        mode_ = Mode::kMixed;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    // The commit transaction failed mechanically (capacity, injected):
    // retry the attempt; the next commit() uses the software path.
    cm_.onWait(waitCauseOf(abort));
}

void
RhTl2Session::onRestart()
{
    htm_.cancel();
    if (mode_ != Mode::kFast && stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    cm_.onWait(WaitCause::kRestart);
}

void
RhTl2Session::onUserAbort()
{
    htm_.cancel();
    // Lazy everywhere: nothing was published, no locks held outside
    // the commit routines (which release before unwinding).
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    mode_ = Mode::kFast;
    attempts_ = 0;
    commitHtmTries_ = 0;
}

void
RhTl2Session::onComplete()
{
    if (mode_ == Mode::kFast) {
        retryBudget_.onFastCommit(attempts_);
        killSwitchOnHardwareCommit(g_);
    }
    killSwitchOnComplete(g_);
    if (stats_) {
        stats_->inc(mode_ == Mode::kFast ? Counter::kCommitsFastPath
                                         : Counter::kCommitsMixedPath);
    }
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    mode_ = Mode::kFast;
    attempts_ = 0;
    commitHtmTries_ = 0;
    cm_.reset();
}

} // namespace rhtm
