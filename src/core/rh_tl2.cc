#include "src/core/rh_tl2.h"

#include <cassert>

#include "src/core/fault_points.h"
#include "src/core/progress.h"

namespace rhtm
{

RhTl2Session::RhTl2Session(HtmEngine &eng, TmGlobals &globals,
                           RhTl2Globals &tl2, HtmTxn &htm,
                           ThreadStats *stats, const RetryPolicy &policy,
                           unsigned access_penalty, uint64_t cm_seed)
    : eng_(eng), g_(globals), tl2_(tl2), htm_(htm), stats_(stats),
      policy_(policy), retryBudget_(policy_), penalty_(access_penalty),
      cm_(policy_, &globals, cm_seed), writes_(12)
{
    readLog_.reserve(1024);
    writeAddrs_.reserve(256);
}

void
RhTl2Session::begin(TxnHint hint)
{
    (void)hint;
    if (mode_ == Mode::kFast) {
        if (killSwitchBypass(g_, policy_)) {
            mode_ = Mode::kMixed;
            if (stats_) {
                stats_->inc(Counter::kKillSwitchBypasses);
                stats_->inc(Counter::kFallbacks);
            }
        } else {
            ++attempts_;
            if (stats_)
                stats_->inc(Counter::kFastPathAttempts);
            writeAddrs_.clear();
            htm_.begin();
            // Subscribe to the HTM lock: a serialized software commit
            // may be writing back non-atomically.
            if (htm_.read(&g_.htmLock) != 0)
                htm_.abortSubscription();
            return;
        }
    }
    sessionFaultPoint(htm_, FaultSite::kFallbackStart);
    if (!registered_) {
        // Like RH NOrec's num_of_fallbacks: fast paths only pay the
        // metadata updates while a mixed path is live.
        eng_.directFetchAdd(&g_.fallbacks, 1);
        registered_ = true;
    }
    readLog_.clear();
    writes_.clear();
    rv_ = eng_.directLoad(tl2_.clock());
}

uint64_t
RhTl2Session::read(const uint64_t *addr)
{
    if (mode_ == Mode::kFast) {
        // The RH-TL2 selling point: hardware reads stay uninstrumented.
        return htm_.read(addr);
    }
    simDelay(penalty_);
    uint64_t buffered;
    if (writes_.lookup(addr, buffered))
        return buffered;
    if (irrevocable_) {
        // We hold the global HTM lock: every fast path is doomed and
        // no committer can pass the lock CAS, so memory is frozen.
        return eng_.directLoad(addr);
    }
    uint64_t *orec = tl2_.orecOf(addr);
    uint64_t o1 = eng_.directLoad(orec);
    if (o1 > rv_)
        restart(); // Written after our snapshot.
    uint64_t v = eng_.directLoad(addr);
    if (eng_.directLoad(orec) != o1)
        restart();
    readLog_.push_back({orec, o1});
    return v;
}

void
RhTl2Session::write(uint64_t *addr, uint64_t value)
{
    if (mode_ == Mode::kFast) {
        // Drawback #1 (Section 1.2): the fast path must update the
        // per-location metadata for every write location before the
        // hardware commit; the address log feeds those orec writes.
        htm_.write(addr, value);
        writeAddrs_.push_back(addr);
        return;
    }
    simDelay(penalty_);
    writes_.putGrowing(addr, value);
}

void
RhTl2Session::commitMixedHtm()
{
    ++commitHtmTries_;
    if (stats_)
        stats_->inc(Counter::kPostfixAttempts);
    htm_.begin();
    if (htm_.read(&g_.htmLock) != 0)
        htm_.abortSubscription();
    // Drawback #2 (Section 1.2): this one small hardware transaction
    // carries the read-set validation *and* every write location, so
    // its footprint -- and failure probability -- is high.
    for (const ReadEntry &e : readLog_) {
        if (htm_.read(e.orec) != e.version) {
            htm_.cancel();
            restart(); // Genuine conflict: restart the transaction.
        }
    }
    uint64_t wv = htm_.read(tl2_.clock()) + 2;
    htm_.write(tl2_.clock(), wv);
    writes_.forEach([&](uint64_t *addr, uint64_t value) {
        htm_.write(addr, value);
        htm_.write(tl2_.orecOf(addr), wv);
    });
    // The commit transaction is RH-TL2's analogue of the postfix: one
    // small HTM carrying validation plus the whole write-back.
    sessionFaultPoint(htm_, FaultSite::kPostfixCommit);
    htm_.commit();
    if (stats_)
        stats_->inc(Counter::kPostfixSuccesses);
}

void
RhTl2Session::writeBack()
{
    // Compute wv but publish the clock only *after* the write-back:
    // a reader that begins mid-write-back must have rv < wv so the
    // fresh orecs fail its validation (publishing the clock first
    // would let it accept a mixed old/new snapshot). Concurrent commit
    // transactions cannot slip a same-valued wv in between: the held
    // HTM lock doomed every in-flight one, and later ones abort on
    // their start-time subscription.
    uint64_t wv = eng_.directLoad(tl2_.clock()) + 2;
    // The HTM lock is up and every fast path is doomed: this is the
    // serialized publication window. A scripted delay stretches it;
    // aborts are absorbed -- the write-back is the transaction's
    // linearization and cannot be unwound without replaying the whole
    // commit; the other schedules cover the abort paths.
    sessionFaultPointNoAbort(htm_, FaultSite::kPublishWindow);
    writes_.forEach([&](uint64_t *addr, uint64_t value) {
        // Orec first: a concurrent reader that sees the new data also
        // sees a version beyond its snapshot and restarts.
        eng_.directStore(tl2_.orecOf(addr), wv);
        eng_.directStore(addr, value);
    });
    eng_.directStore(tl2_.clock(), wv);
}

void
RhTl2Session::commitMixedSoftware()
{
    // Serialize under the global HTM lock: the store dooms every
    // hardware fast path and in-flight commit transaction, making the
    // non-atomic write-back safe. The RAII guard's acquisition is
    // stall-aware (a preempted or fault-delayed holder is detected via
    // the clock epoch and waited out), and the guard -- not a bare
    // store on the happy path -- owns the release, so the validation
    // restart below can never leak the lock.
    ScopedHtmLock lock(eng_, g_, policy_, stats_);
    for (const ReadEntry &e : readLog_) {
        if (eng_.directLoad(e.orec) != e.version)
            restart(); // The guard drops the HTM lock on the unwind.
    }
    writeBack();
    lock.release();
}

void
RhTl2Session::commit()
{
    if (mode_ == Mode::kFast) {
        if (writeAddrs_.empty()) {
            htm_.commit();
            if (stats_)
                stats_->inc(Counter::kReadOnlyCommits);
            return;
        }
        if (htm_.read(&g_.fallbacks) > 0) {
            // Version the written locations inside the hardware
            // transaction (metadata instrumentation, drawback #1);
            // only needed while mixed paths are live.
            uint64_t wv = htm_.read(tl2_.clock()) + 2;
            htm_.write(tl2_.clock(), wv);
            for (uint64_t *addr : writeAddrs_)
                htm_.write(tl2_.orecOf(addr), wv);
        }
        htm_.commit();
        return;
    }
    if (writes_.empty()) {
        if (irrevocable_)
            releaseIrrevocable(); // Nothing published; just unfreeze.
        if (stats_)
            stats_->inc(Counter::kReadOnlyCommits);
        return; // Reads were validated individually against rv_.
    }
    if (irrevocable_) {
        // Validated at the grant and frozen since (we hold the HTM
        // lock): publish without revalidation -- infallible -- and
        // unfreeze. The serial lock drops in onComplete.
        writeBack();
        releaseIrrevocable();
        return;
    }
    if (commitHtmTries_ < policy_.smallHtmAttempts) {
        commitMixedHtm();
        return;
    }
    commitMixedSoftware();
}

void
RhTl2Session::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (mode_ == Mode::kFast) {
        // Cannot grant inside best-effort HTM: unwind, and onHtmAbort
        // routes the next attempt to the mixed slow path.
        htm_.abortNeedIrrevocable();
    }
    // Serialize concurrent upgraders FIFO before touching the HTM
    // lock: we hold nothing here, so queueing is deadlock-free, and
    // the lock order (serial BEFORE htmLock, docs/LIFECYCLE.md) means
    // an upgrader never waits on the HTM lock held by another
    // upgrader -- only on bounded software commit windows.
    if (!serialHeld_) {
        serialLockAcquire(eng_, g_, policy_, stats_);
        serialHeld_ = true;
    }
    sessionFaultPoint(htm_, FaultSite::kIrrevocableUpgrade);
    {
        ScopedHtmLock lock(eng_, g_, policy_, stats_);
        // Validate the read set BEFORE granting: a stale read must
        // unwind before the promise, never after. The guard drops the
        // HTM lock on the restart; the serial lock stays held, so the
        // replayed attempt upgrades unopposed.
        for (const ReadEntry &e : readLog_) {
            if (eng_.directLoad(e.orec) != e.version)
                restart();
        }
        lock.disown(); // Hold until commit/rollback.
        htmLockHeld_ = true;
    }
    // HTM lock held with a validated read set: fast paths are doomed,
    // no committer can pass the lock CAS, reads go direct, and commit
    // is an unconditional write-back. Infallible from here.
    irrevocable_ = true;
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
RhTl2Session::releaseIrrevocable()
{
    if (htmLockHeld_) {
        eng_.directStore(&g_.htmLock, 0);
        htmLockHeld_ = false;
        stampEpoch(g_.watchdog.clockEpoch);
    }
    irrevocable_ = false;
}

void
RhTl2Session::restart()
{
    throw TxRestart{};
}

void
RhTl2Session::onHtmAbort(const HtmAbort &abort)
{
    htm_.cancel();
    if (abort.cause == HtmAbortCause::kNeedIrrevocable) {
        // The body asked for irrevocability: skip the retry budget and
        // replay on the mixed slow path, which can grant it.
        mode_ = Mode::kMixed;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    if (mode_ == Mode::kFast) {
        if (!abort.retryOk)
            killSwitchOnHardwareFailure(g_, policy_, stats_);
        if (abort.retryOk && attempts_ < retryBudget_.budget()) {
            cm_.onWait(waitCauseOf(abort));
            return;
        }
        retryBudget_.onFallback(attempts_);
        mode_ = Mode::kMixed;
        if (stats_)
            stats_->inc(Counter::kFallbacks);
        return;
    }
    // The commit transaction failed mechanically (capacity, injected):
    // retry the attempt; the next commit() uses the software path.
    cm_.onWait(waitCauseOf(abort));
}

void
RhTl2Session::onRestart()
{
    htm_.cancel();
    // A pre-grant upgrade restart keeps the serial lock (the replay
    // upgrades unopposed); anything the grant held is dropped.
    releaseIrrevocable();
    if (mode_ != Mode::kFast && stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    cm_.onWait(WaitCause::kRestart);
}

void
RhTl2Session::onUserAbort()
{
    htm_.cancel();
    // Lazy everywhere: nothing was published, no locks held outside
    // the commit routines (which release before unwinding) and an
    // irrevocable upgrade (dropped here).
    releaseIrrevocable();
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    mode_ = Mode::kFast;
    attempts_ = 0;
    commitHtmTries_ = 0;
}

void
RhTl2Session::onComplete()
{
    if (mode_ == Mode::kFast) {
        retryBudget_.onFastCommit(attempts_);
        killSwitchOnHardwareCommit(g_);
    }
    killSwitchOnComplete(g_);
    if (stats_) {
        stats_->inc(mode_ == Mode::kFast ? Counter::kCommitsFastPath
                                         : Counter::kCommitsMixedPath);
    }
    if (registered_) {
        eng_.directFetchAdd(&g_.fallbacks, uint64_t(0) - 1);
        registered_ = false;
    }
    if (serialHeld_) {
        serialLockRelease(eng_, g_);
        serialHeld_ = false;
    }
    irrevocable_ = false;
    mode_ = Mode::kFast;
    attempts_ = 0;
    commitHtmTries_ = 0;
    cm_.reset();
}

} // namespace rhtm
