/**
 * @file
 * RH-TL2: the reduced-hardware TL2 of Matveev and Shavit's earlier
 * work, which the paper discusses as its starting point (Section 1.2).
 * Implemented so the repository can demonstrate the three drawbacks RH
 * NOrec was designed to fix:
 *
 *  1. The hardware fast path is not pure: reads are uninstrumented,
 *     but every write must also update the per-location metadata
 *     (orec) inside the hardware transaction, roughly doubling the
 *     write footprint.
 *  2. The mixed slow path commits through one small hardware
 *     transaction that must hold both the read-set validation and all
 *     the writes, so its failure odds are comparatively high.
 *  3. No privatization guarantee (like TL2 itself).
 *
 * Structure: TL2-style orecs and a version clock (engine-visible
 * words). Fast path: plain hardware reads; writes buffer both the
 * data word and its orec; commit bumps the version clock inside the
 * hardware transaction. Slow path: TL2-style validated reads, lazy
 * writes; commit in a small hardware transaction (validate read orecs
 * + publish writes and orec updates); on failure, a serialized
 * software commit that raises the global HTM lock.
 *
 * Composition over the shared engine: SessionCore (no serial mode --
 * ExecMode::kSlow is the mixed path and irrevocability piggybacks on
 * the serial FIFO without a mode change) + RedoBuffer; the fast path,
 * the orec-validated mixed body, and the lock-frozen irrevocable
 * phase are three TxDispatch descriptors.
 */

#ifndef RHTM_CORE_RH_TL2_H
#define RHTM_CORE_RH_TL2_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/engine/journal.h"
#include "src/core/engine/mem_access.h"
#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/htm/htm_txn.h"
#include "src/stats/stats.h"

namespace rhtm
{

/**
 * RH-TL2's shared state: a version clock and an orec table, all plain
 * engine-visible words (hardware and software paths coordinate through
 * the simulated HTM's conflict detection on them).
 */
class RhTl2Globals
{
  public:
    explicit RhTl2Globals(unsigned orec_count_log2 = 18)
        : shift_(64 - orec_count_log2),
          orecs_(size_t(1) << orec_count_log2, 0)
    {}

    /** Orec word covering @p addr's cache line. */
    uint64_t *
    orecOf(const void *addr)
    {
        uint64_t line = reinterpret_cast<uint64_t>(addr) >> 6;
        return &orecs_[(line * 0x9e3779b97f4a7c15ull) >> shift_];
    }

    /** The version clock (advances by 2; never locked). */
    uint64_t *clock() { return &clock_; }

    /**
     * Restore the power-on state (clock 2, all orecs version 0). Test
     * isolation only; callers must guarantee quiescence.
     */
    void
    resetForTest()
    {
        clock_ = 2;
        std::fill(orecs_.begin(), orecs_.end(), 0);
    }

  private:
    alignas(64) uint64_t clock_ = 2;
    unsigned shift_;
    std::vector<uint64_t> orecs_;
};

/** Per-thread RH-TL2 session. */
class RhTl2Session : public TxSession
{
  public:
    RhTl2Session(HtmEngine &eng, TmDomain &domain, RhTl2Globals &tl2,
                 HtmTxn &htm, ThreadStats *stats,
                 const RetryPolicy &policy, unsigned access_penalty = 0,
                 uint64_t cm_seed = 1,
                 TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return core_.irrevocable; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "rh-tl2"; }

    void
    onDeadlineAttached() override
    {
        core_.deadline = deadline_;
    }

    void
    resetForTest() override
    {
        core_.resetForTest();
        commitHtmTries_ = 0;
        htmLockHeld_ = false;
        rv_ = 0;
        readLog_.clear();
        writes_.clear();
        writeAddrs_.clear();
    }

    unsigned
    fastRetryBudgetForTest() const override
    {
        return core_.retryBudget.budget();
    }

    uint32_t
    adaptiveScoreForTest() const override
    {
        return core_.retryBudget.score();
    }

  private:
    /** One orec-validated read (TL2's read log is versions, not values). */
    struct OrecEntry
    {
        uint64_t *orec;
        uint64_t version;
    };

    static uint64_t fastRead(void *self, const uint64_t *addr);
    static void fastWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t mixedRead(void *self, const uint64_t *addr);
    static void mixedWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t pinnedRead(void *self, const uint64_t *addr);

    static constexpr TxDispatch kFastDispatch = {&fastRead, &fastWrite};
    static constexpr TxDispatch kMixedDispatch = {&mixedRead,
                                                  &mixedWrite};
    static constexpr TxDispatch kPinnedDispatch = {&pinnedRead,
                                                   &mixedWrite};

    /** Begin a mixed slow-path attempt. */
    void beginMixed();

    /** Commit the mixed path through the small hardware transaction. */
    void commitMixedHtm();

    /** Serialized software commit under the global HTM lock. */
    void commitMixedSoftware();

    /** Publish the write set under an already-held HTM lock. */
    void writeBack();

    /** Drop the HTM lock / serial lock held by an upgrade. */
    void releaseIrrevocable();

    [[noreturn]] void restart();

    SessionCore core_;
    RhTl2Globals &tl2_;

    unsigned commitHtmTries_ = 0;
    bool htmLockHeld_ = false;
    uint64_t rv_ = 0;
    std::vector<OrecEntry> readLog_;
    RedoBuffer writes_;
    std::vector<uint64_t *> writeAddrs_; //!< Fast-path write log.
};

} // namespace rhtm

#endif // RHTM_CORE_RH_TL2_H
