#include "src/fault/crash_sched.h"

namespace rhtm
{

CrashScheduler::CrashScheduler(CrashSchedule schedule)
    : sched_(std::move(schedule)), fired_(sched_.points.size(), false)
{}

bool
CrashScheduler::onSite(FaultSite site, unsigned tid)
{
    std::lock_guard<std::mutex> guard(mu_);
    uint64_t hit = ++hits_[static_cast<unsigned>(site)];
    bool crash = false;
    for (size_t i = 0; i < sched_.points.size(); ++i) {
        const CrashPoint &p = sched_.points[i];
        if (fired_[i] || p.site != site || p.hit != hit)
            continue;
        if (p.tid >= 0 && static_cast<unsigned>(p.tid) != tid)
            continue;
        fired_[i] = true;
        crash = true;
    }
    if (crash)
        ++crashes_;
    return crash;
}

uint64_t
CrashScheduler::hits(FaultSite site) const
{
    std::lock_guard<std::mutex> guard(mu_);
    return hits_[static_cast<unsigned>(site)];
}

uint64_t
CrashScheduler::crashesFired() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return crashes_;
}

void
CrashScheduler::resetForTest()
{
    std::lock_guard<std::mutex> guard(mu_);
    fired_.assign(sched_.points.size(), false);
    hits_.fill(0);
    crashes_ = 0;
}

} // namespace rhtm
