/**
 * @file
 * Scripted crash scheduling for the simulated-NVM persistence overlay.
 *
 * A CrashSchedule lists the exact (site, hit) coordinates at which the
 * durable media must be snapshotted as if the machine lost power.
 * Hits are counted globally across threads, so a schedule names "the
 * 3rd time any thread reaches kCrashMidWriteback"; with one thread the
 * coordinates are fully deterministic, which is what the crash-replay
 * determinism guarantee (--crash-seed, docs/PERSISTENCE.md) relies on.
 *
 * The scheduler only *decides* where to crash. Capturing the durable
 * snapshot -- including the adversarial treatment of un-fenced pwbs --
 * is the NvmSim's job (src/persist/nvm_sim.h): the run keeps going
 * after a capture, and every snapshot is recovered and checked after
 * the run, so one soak exercises many independent crash points.
 */

#ifndef RHTM_FAULT_CRASH_SCHED_H
#define RHTM_FAULT_CRASH_SCHED_H

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/fault/fault_injector.h"

namespace rhtm
{

/** One scripted crash coordinate. */
struct CrashPoint
{
    /** Which persistence-protocol window (a kCrash* FaultSite). */
    FaultSite site = FaultSite::kCrashPostMarker;

    /** Fire on the Nth global hit of the site, 1-based. */
    uint64_t hit = 1;

    /** Restrict to one thread id; -1 = any thread. */
    int tid = -1;
};

/** A full crash script: immutable input shared by a run. */
struct CrashSchedule
{
    std::vector<CrashPoint> points;

    bool empty() const { return points.empty(); }

    /** Append a point (builder-style). */
    CrashSchedule &
    add(const CrashPoint &point)
    {
        points.push_back(point);
        return *this;
    }

    /** Append a (site, hit) pair matching any thread. */
    CrashSchedule &
    at(FaultSite site, uint64_t hit)
    {
        return add(CrashPoint{site, hit, -1});
    }
};

/**
 * Run-scoped crash decision engine. Thread safe: hit counters are
 * global across threads (see file comment); each scripted point fires
 * at most once.
 */
class CrashScheduler
{
  public:
    explicit CrashScheduler(CrashSchedule schedule);

    CrashScheduler(const CrashScheduler &) = delete;
    CrashScheduler &operator=(const CrashScheduler &) = delete;

    /**
     * Record a hit of @p site by thread @p tid; true when a scripted
     * crash lands on this exact hit (the caller must then capture the
     * durable snapshot before letting the run proceed).
     */
    bool onSite(FaultSite site, unsigned tid);

    /** Global hits of @p site so far. */
    uint64_t hits(FaultSite site) const;

    /** Scripted points that have fired. */
    uint64_t crashesFired() const;

    /** Restore the exact post-construction state (test isolation). */
    void resetForTest();

  private:
    mutable std::mutex mu_;
    CrashSchedule sched_;
    std::vector<bool> fired_;
    std::array<uint64_t, kNumFaultSites> hits_{};
    uint64_t crashes_ = 0;
};

} // namespace rhtm

#endif // RHTM_FAULT_CRASH_SCHED_H
