#include "src/fault/fault_injector.h"

#include <cmath>

namespace rhtm
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::kHtmBegin: return "htm-begin";
      case FaultSite::kTxRead: return "tx-read";
      case FaultSite::kTxWrite: return "tx-write";
      case FaultSite::kPreCommit: return "pre-commit";
      case FaultSite::kPublishWindow: return "publish-window";
      case FaultSite::kPrefixCommit: return "prefix-commit";
      case FaultSite::kPostFirstWrite: return "post-first-write";
      case FaultSite::kPostfixCommit: return "postfix-commit";
      case FaultSite::kSoftwareWrite: return "software-write";
      case FaultSite::kFallbackStart: return "fallback-start";
      case FaultSite::kSerialHeld: return "serial-held";
      case FaultSite::kIrrevocableUpgrade: return "irrevocable-upgrade";
      case FaultSite::kUserException: return "user-exception";
      case FaultSite::kCrashPreLogSeal: return "crash-pre-log-seal";
      case FaultSite::kCrashPostSealPreWriteback:
        return "crash-post-seal-pre-writeback";
      case FaultSite::kCrashMidWriteback: return "crash-mid-writeback";
      case FaultSite::kCrashPostMarker: return "crash-post-marker";
      case FaultSite::kDeadlineWait: return "deadline-wait";
      case FaultSite::kAdmissionGate: return "admission-gate";
      case FaultSite::kNumSites: break;
    }
    return "unknown";
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kNone: return "none";
      case FaultKind::kAbortConflict: return "abort-conflict";
      case FaultKind::kAbortCapacity: return "abort-capacity";
      case FaultKind::kAbortOther: return "abort-other";
      case FaultKind::kAbortExplicit: return "abort-explicit";
      case FaultKind::kDelay: return "delay";
      case FaultKind::kYield: return "yield";
      case FaultKind::kCapacitySqueeze: return "capacity-squeeze";
    }
    return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan &plan, unsigned tid)
    : tid_(tid), seed_(plan.seed),
      rng_(plan.seed ^ (uint64_t(tid) * 0x9e3779b97f4a7c15ull)),
      recordTrace_(plan.recordTrace)
{
    rules_.reserve(plan.rules.size());
    for (const FaultRule &rule : plan.rules) {
        if (rule.tid >= 0 && static_cast<unsigned>(rule.tid) != tid)
            continue;
        rules_.push_back(RuleState{rule, 0});
    }
}

void
FaultInjector::resetForTest()
{
    rng_ = Rng(seed_ ^ (uint64_t(tid_) * 0x9e3779b97f4a7c15ull));
    for (RuleState &rs : rules_)
        rs.fired = 0;
    hits_.fill(0);
    fires_.fill(0);
    totalFires_ = 0;
    squeezeUntil_ = 0;
    squeezeRead_ = 0;
    squeezeWrite_ = 0;
    trace_.clear();
}

FaultKind
FaultInjector::fire(FaultSite site, uint32_t *delay_spins)
{
    const unsigned idx = static_cast<unsigned>(site);
    const uint64_t hit = ++hits_[idx];

    for (RuleState &rs : rules_) {
        const FaultRule &r = rs.rule;
        if (r.site != site || r.kind == FaultKind::kNone)
            continue;
        if (rs.fired >= r.maxFires)
            continue;
        if (hit < r.firstHit)
            continue;
        if (r.period == 0) {
            if (hit != r.firstHit)
                continue;
        } else if ((hit - r.firstHit) % r.period != 0) {
            continue;
        }
        if (r.probability < 1.0) {
            // Threshold compare on the raw draw keeps this exact for
            // probability 0 and deterministic for everything else.
            uint64_t threshold = r.probability <= 0.0
                ? 0
                : static_cast<uint64_t>(std::ldexp(r.probability, 64));
            if (threshold == 0 || rng_.next() >= threshold)
                continue;
        }

        ++rs.fired;
        ++fires_[idx];
        ++totalFires_;
        if (recordTrace_)
            trace_.push_back(FaultEvent{site, r.kind, hit});

        if (r.kind == FaultKind::kCapacitySqueeze) {
            const uint64_t begins =
                hits_[static_cast<unsigned>(FaultSite::kHtmBegin)];
            squeezeRead_ = r.squeezeReadLines;
            squeezeWrite_ = r.squeezeWriteLines;
            squeezeUntil_ = r.squeezeTxns == 0
                ? ~uint64_t(0)
                : begins + r.squeezeTxns;
            continue; // A squeeze arms state; nothing unwinds here.
        }
        if (r.kind == FaultKind::kDelay && delay_spins != nullptr)
            *delay_spins = r.delaySpins;
        return r.kind;
    }
    return FaultKind::kNone;
}

} // namespace rhtm
