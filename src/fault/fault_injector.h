/**
 * @file
 * Seeded, deterministic fault injection for the hybrid TM stack.
 *
 * The correctness argument of RH NOrec (Figure 2, Algorithms 1-3)
 * lives in narrow windows -- the fast path's late clock read, the
 * postfix's atomic publication, the prefix's deferred fallback
 * registration -- that an unperturbed scheduler rarely exercises.
 * This layer lets tests and soak runs script adversity at exactly
 * those windows: abort the Nth prefix commit, squeeze HTM capacity
 * mid-run, stall inside the publication window.
 *
 * Determinism: an injector is per-thread state. Every decision is a
 * pure function of (plan, thread id, per-site hit counts, the
 * injector's private RNG) -- never of wall-clock time or cross-thread
 * state -- so a fixed seed and a fixed per-thread operation sequence
 * replay the identical fault schedule. See docs/FAULT_INJECTION.md.
 */

#ifndef RHTM_FAULT_FAULT_INJECTOR_H
#define RHTM_FAULT_FAULT_INJECTOR_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace rhtm
{

/**
 * Named injection sites. HtmTxn fires the hardware-level sites; the
 * algorithm sessions fire the protocol-level ones at the windows the
 * paper's Figure 2 reasons about.
 */
enum class FaultSite : unsigned
{
    kHtmBegin = 0,    //!< HtmTxn::begin (capacity squeezes anchor here).
    kTxRead,          //!< Each transactional read (the "Nth read" knob).
    kTxWrite,         //!< Each transactional (buffered) write.
    kPreCommit,       //!< HtmTxn::commit entry, before publication.
    kPublishWindow,   //!< Inside the publication window (seq is odd).
    kPrefixCommit,    //!< RH prefix about to commit (Algorithm 3).
    kPostFirstWrite,  //!< Slow path just acquired the clock (Algorithm 2).
    kPostfixCommit,   //!< RH postfix about to publish (Algorithm 2).
    kSoftwareWrite,   //!< Software slow-path write (undo-logged).
    kFallbackStart,   //!< Software/mixed slow-path attempt begins.
    kSerialHeld,      //!< Serial ticket lock just granted (held window).
    kIrrevocableUpgrade, //!< becomeIrrevocable() upgrade in progress.
    kUserException,   //!< Body opt-in: simulate a user exception here.

    // Simulated-NVM crash sites (docs/PERSISTENCE.md). Fired by the
    // persistence overlay around the durable-commit protocol; the
    // scripted CrashScheduler (crash_sched.h) captures a durable-media
    // snapshot at these points, and injector delay/yield rules widen
    // the windows. Abort kinds are ignored here: a crash site is not
    // an abort window (the commit is already past its point of no
    // return when these fire).
    kCrashPreLogSeal,          //!< Redo payload appended, seal not durable.
    kCrashPostSealPreWriteback, //!< Seal durable, write-behind not started.
    kCrashMidWriteback,        //!< Mid-drain: data pwbs pending, no fence.
    kCrashPostMarker,          //!< Commit marker durable, handlers pending.

    // Overload-control sites (docs/OVERLOAD.md). Abort kinds are
    // ignored at both: they mark decision windows, not abort windows
    // -- delay/yield rules stretch the deadline-expiry window and the
    // admission decision respectively.
    kDeadlineWait,  //!< A deadline-aware wait polled for expiry.
    kAdmissionGate, //!< The admission gate ruled on a new transaction.
    kNumSites
};

/** Number of injection sites. */
constexpr unsigned kNumFaultSites =
    static_cast<unsigned>(FaultSite::kNumSites);

/** Printable name for a site ("tx-read", "prefix-commit", ...). */
const char *faultSiteName(FaultSite site);

/** What a matched rule does at its site. */
enum class FaultKind : uint8_t
{
    kNone = 0,
    kAbortConflict,   //!< Simulated conflict abort (retry may help).
    kAbortCapacity,   //!< Simulated capacity abort (retry won't help).
    kAbortOther,      //!< Interrupt/page-fault style abort.
    kAbortExplicit,   //!< Explicit-style abort (retryable).
    kDelay,           //!< Spin for delaySpins inside the window.
    kYield,           //!< Yield the OS thread inside the window.
    kCapacitySqueeze, //!< Shrink HTM capacity for a span of txns.
};

/** Printable name for a kind ("abort-conflict", "delay", ...). */
const char *faultKindName(FaultKind kind);

/**
 * One scripted fault. A rule matches hits of its site positionally
 * (the Nth hit, optionally repeating every `period` hits) and/or
 * probabilistically, and fires at most `maxFires` times.
 */
struct FaultRule
{
    FaultSite site = FaultSite::kTxRead;
    FaultKind kind = FaultKind::kNone;

    /** First matching hit of the site, 1-based. */
    uint64_t firstHit = 1;

    /** Re-match every `period` hits after firstHit; 0 = one-shot. */
    uint64_t period = 0;

    /** Stop after this many firings. */
    uint64_t maxFires = ~uint64_t(0);

    /** Fire probability per positional match (1.0 = always). */
    double probability = 1.0;

    /** kDelay: busy-spin iterations inside the window. */
    uint32_t delaySpins = 0;

    /** kCapacitySqueeze: caps while the squeeze is active. */
    size_t squeezeReadLines = 0;
    size_t squeezeWriteLines = 0;

    /** kCapacitySqueeze: kHtmBegin hits it stays active; 0 = forever. */
    uint64_t squeezeTxns = 0;

    /** Restrict to one thread id; -1 = every thread. */
    int tid = -1;
};

/**
 * A full fault schedule: the rules plus the base seed. Shared,
 * immutable input; each thread instantiates its own FaultInjector
 * from it.
 */
struct FaultPlan
{
    std::vector<FaultRule> rules;

    /** Base RNG seed; per-thread injectors derive from (seed, tid). */
    uint64_t seed = 1;

    /** Record every firing into the injector's trace (tests). */
    bool recordTrace = false;

    bool empty() const { return rules.empty(); }

    /** Append a rule (builder-style). */
    FaultPlan &
    add(const FaultRule &rule)
    {
        rules.push_back(rule);
        return *this;
    }
};

/** One recorded firing (when FaultPlan::recordTrace is set). */
struct FaultEvent
{
    FaultSite site;
    FaultKind kind;
    uint64_t hit; //!< 1-based hit index of the site when it fired.
};

/**
 * Per-thread fault-injection engine. Single-threaded by construction
 * (owned by one ThreadCtx/HtmTxn); determinism follows from that plus
 * the seeded private RNG.
 */
class FaultInjector
{
  public:
    /**
     * @param plan The shared schedule (rules for other tids are
     *             filtered out).
     * @param tid This thread's runtime index.
     */
    FaultInjector(const FaultPlan &plan, unsigned tid);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Record a hit of @p site and return the fault to apply there
     * (kNone almost always). Delay/yield kinds carry their parameters;
     * abort kinds are executed by the caller (HtmTxn/session), which
     * owns the unwind and the statistics.
     */
    FaultKind fire(FaultSite site, uint32_t *delay_spins = nullptr);

    /** Effective read capacity given the active squeeze (if any). */
    size_t
    readCapLimit(size_t base) const
    {
        return squeezeActive() && squeezeRead_ < base ? squeezeRead_
                                                      : base;
    }

    /** Effective write capacity given the active squeeze (if any). */
    size_t
    writeCapLimit(size_t base) const
    {
        return squeezeActive() && squeezeWrite_ < base ? squeezeWrite_
                                                       : base;
    }

    /** True while a capacity squeeze is in force. */
    bool
    squeezeActive() const
    {
        return hits_[static_cast<unsigned>(FaultSite::kHtmBegin)] <
                   squeezeUntil_ &&
               squeezeUntil_ != 0;
    }

    /** Times @p site has been hit so far. */
    uint64_t
    hits(FaultSite site) const
    {
        return hits_[static_cast<unsigned>(site)];
    }

    /** Times a fault actually fired at @p site. */
    uint64_t
    fires(FaultSite site) const
    {
        return fires_[static_cast<unsigned>(site)];
    }

    /** Total faults fired across all sites. */
    uint64_t totalFires() const { return totalFires_; }

    /** Recorded firings (empty unless plan.recordTrace). */
    const std::vector<FaultEvent> &trace() const { return trace_; }

    /** This injector's thread id. */
    unsigned tid() const { return tid_; }

    /**
     * Restore the exact post-construction state: hit/fire counts,
     * per-rule firing caps, the private RNG, squeeze state, and the
     * trace. In-place (not reconstruction) because HtmTxn holds a raw
     * pointer to this injector for the lifetime of its thread. Test
     * isolation only (docs/CHECKING.md).
     */
    void resetForTest();

  private:
    struct RuleState
    {
        FaultRule rule;
        uint64_t fired = 0;
    };

    unsigned tid_;
    uint64_t seed_; //!< Plan base seed, kept for resetForTest.
    Rng rng_;
    bool recordTrace_;
    std::vector<RuleState> rules_;
    std::array<uint64_t, kNumFaultSites> hits_{};
    std::array<uint64_t, kNumFaultSites> fires_{};
    uint64_t totalFires_ = 0;

    // Active capacity squeeze: in force while hits(kHtmBegin) <
    // squeezeUntil_ (0 = none; ~0 = until the end of the run).
    uint64_t squeezeUntil_ = 0;
    size_t squeezeRead_ = 0;
    size_t squeezeWrite_ = 0;

    std::vector<FaultEvent> trace_;
};

} // namespace rhtm

#endif // RHTM_FAULT_FAULT_INJECTOR_H
