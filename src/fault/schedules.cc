#include "src/fault/schedules.h"

#include <algorithm>

namespace rhtm
{

const std::vector<std::string> &
chaosScheduleNames()
{
    static const std::vector<std::string> names = {
        "prefix-kill",
        "postfix-kill",
        "capacity-squeeze",
        "delay-in-publish-window",
        "stall-serial",
        "stall-publisher",
        "irrevocable-storm",
        "adversary-storm",
    };
    return names;
}

bool
makeChaosSchedule(const std::string &raw_name, uint64_t seed,
                  FaultPlan &out)
{
    // Accept underscore spellings ("stall_serial") for shell callers.
    std::string name = raw_name;
    std::replace(name.begin(), name.end(), '_', '-');

    out = FaultPlan{};
    out.seed = seed;

    if (name == "prefix-kill") {
        FaultRule r;
        r.site = FaultSite::kPrefixCommit;
        r.kind = FaultKind::kAbortConflict;
        r.period = 1;
        r.probability = 0.5;
        out.add(r);
        // Also harass the deferred registration from the hardware
        // side: occasional conflict aborts on prefix-phase reads.
        FaultRule rd;
        rd.site = FaultSite::kTxRead;
        rd.kind = FaultKind::kAbortConflict;
        rd.period = 1;
        rd.probability = 0.002;
        out.add(rd);
        return true;
    }
    if (name == "postfix-kill") {
        FaultRule r;
        r.site = FaultSite::kPostfixCommit;
        r.kind = FaultKind::kAbortConflict;
        r.period = 1;
        r.probability = 0.5;
        out.add(r);
        // And kill some postfixes earlier, right after the clock is
        // locked, exercising rollbackWriter with the clock held.
        FaultRule rw;
        rw.site = FaultSite::kPostFirstWrite;
        rw.kind = FaultKind::kAbortOther;
        rw.period = 1;
        rw.probability = 0.2;
        out.add(rw);
        return true;
    }
    if (name == "capacity-squeeze") {
        FaultRule r;
        r.site = FaultSite::kHtmBegin;
        r.kind = FaultKind::kCapacitySqueeze;
        r.firstHit = 32;     // Let the run warm up first.
        r.period = 256;      // Re-arm periodically.
        r.squeezeReadLines = 4;
        r.squeezeWriteLines = 2;
        r.squeezeTxns = 64;  // Squeeze for a window, then recover.
        out.add(r);
        return true;
    }
    if (name == "delay-in-publish-window") {
        FaultRule r;
        r.site = FaultSite::kPublishWindow;
        r.kind = FaultKind::kDelay;
        r.period = 1;
        r.probability = 0.25;
        r.delaySpins = 4000;
        out.add(r);
        FaultRule ry;
        ry.site = FaultSite::kPublishWindow;
        ry.kind = FaultKind::kYield;
        ry.period = 1;
        ry.probability = 0.05;
        out.add(ry);
        // Stretch the window between clock acquisition and the first
        // postfix write too (the Figure 2 fast-path race target).
        FaultRule rw;
        rw.site = FaultSite::kPostFirstWrite;
        rw.kind = FaultKind::kDelay;
        rw.period = 1;
        rw.probability = 0.25;
        rw.delaySpins = 4000;
        out.add(rw);
        return true;
    }
    if (name == "stall-serial") {
        // Herd transactions into serial mode: abort nearly every
        // software slow-path start so the restart counter races to the
        // serialization threshold...
        FaultRule rf;
        rf.site = FaultSite::kFallbackStart;
        rf.kind = FaultKind::kAbortOther;
        rf.period = 1;
        rf.probability = 0.9;
        out.add(rf);
        // ...then stall the winner inside its held window, leaving the
        // queued tickets staring at a motionless serial epoch (the
        // watchdog's prime target).
        FaultRule rh;
        rh.site = FaultSite::kSerialHeld;
        rh.kind = FaultKind::kDelay;
        rh.period = 1;
        rh.delaySpins = 200000;
        out.add(rh);
        FaultRule ry;
        ry.site = FaultSite::kSerialHeld;
        ry.kind = FaultKind::kYield;
        ry.period = 1;
        ry.probability = 0.25;
        out.add(ry);
        return true;
    }
    if (name == "irrevocable-storm") {
        // Background conflict pressure keeps ordinary transactions
        // restarting around the upgraders...
        FaultRule rd;
        rd.site = FaultSite::kTxRead;
        rd.kind = FaultKind::kAbortConflict;
        rd.period = 1;
        rd.probability = 0.005;
        out.add(rd);
        // ...upgrades are harassed in their pre-grant window: half are
        // stretched (stressing the FIFO queue behind the upgrader) and
        // a quarter unwound outright (the grant-barrier path -- the
        // replay must upgrade unopposed, with zero side-effect
        // replays)...
        FaultRule ru;
        ru.site = FaultSite::kIrrevocableUpgrade;
        ru.kind = FaultKind::kDelay;
        ru.period = 1;
        ru.probability = 0.5;
        ru.delaySpins = 20000;
        out.add(ru);
        FaultRule ra;
        ra.site = FaultSite::kIrrevocableUpgrade;
        ra.kind = FaultKind::kAbortConflict;
        ra.period = 1;
        ra.probability = 0.25;
        out.add(ra);
        // ...the post-grant clock-held window is stretched (post-grant
        // sites absorb aborts by contract; the delay still applies)...
        FaultRule rw;
        rw.site = FaultSite::kPostFirstWrite;
        rw.kind = FaultKind::kDelay;
        rw.period = 1;
        rw.probability = 0.25;
        rw.delaySpins = 10000;
        out.add(rw);
        // ...and user bodies that opt in throw sporadically, crossing
        // the exception unwind with the irrevocability machinery.
        FaultRule re;
        re.site = FaultSite::kUserException;
        re.kind = FaultKind::kAbortOther;
        re.period = 1;
        re.probability = 0.02;
        out.add(re);
        return true;
    }
    if (name == "adversary-storm") {
        // Overload cocktail for the admission/deadline machinery
        // (docs/OVERLOAD.md): most software attempts die at birth, so
        // restart counters race to serial escalation and the FIFO
        // convoy grows...
        FaultRule rf;
        rf.site = FaultSite::kFallbackStart;
        rf.kind = FaultKind::kAbortOther;
        rf.period = 1;
        rf.probability = 0.7;
        out.add(rf);
        // ...each serial winner dawdles inside its held window,
        // stretching the convoy every deadline-aware ticket wait is
        // staring at...
        FaultRule rh;
        rh.site = FaultSite::kSerialHeld;
        rh.kind = FaultKind::kDelay;
        rh.period = 1;
        rh.probability = 0.5;
        rh.delaySpins = 50000;
        out.add(rh);
        // ...deadline polls and backoff waits get descheduled at their
        // own wait sites (the unwind path must tolerate losing the CPU
        // mid-poll)...
        FaultRule rw;
        rw.site = FaultSite::kDeadlineWait;
        rw.kind = FaultKind::kDelay;
        rw.period = 1;
        rw.probability = 0.2;
        rw.delaySpins = 10000;
        out.add(rw);
        FaultRule rwy;
        rwy.site = FaultSite::kDeadlineWait;
        rwy.kind = FaultKind::kYield;
        rwy.period = 1;
        rwy.probability = 0.1;
        out.add(rwy);
        // ...and the admission decision itself is jittered so gate
        // open/close races interleave with the storm.
        FaultRule rg;
        rg.site = FaultSite::kAdmissionGate;
        rg.kind = FaultKind::kYield;
        rg.period = 1;
        rg.probability = 0.2;
        out.add(rg);
        return true;
    }
    if (name == "stall-publisher") {
        // Push a healthy fraction of transactions onto the slow path...
        FaultRule rd;
        rd.site = FaultSite::kTxRead;
        rd.kind = FaultKind::kAbortConflict;
        rd.period = 1;
        rd.probability = 0.01;
        out.add(rd);
        // ...and stall writers while they hold the commit clock, so
        // every start-time subscriber and validating reader waits out
        // a dead publication window on the clock epoch.
        FaultRule rw;
        rw.site = FaultSite::kPostFirstWrite;
        rw.kind = FaultKind::kDelay;
        rw.period = 1;
        rw.probability = 0.5;
        rw.delaySpins = 150000;
        out.add(rw);
        FaultRule rp;
        rp.site = FaultSite::kPublishWindow;
        rp.kind = FaultKind::kDelay;
        rp.period = 1;
        rp.probability = 0.2;
        rp.delaySpins = 50000;
        out.add(rp);
        return true;
    }
    return false;
}

} // namespace rhtm
