/**
 * @file
 * Named chaos schedules shared by the chaos test suite, the chaos
 * soak bench, and tools/run_chaos.sh. Each targets one of the
 * adversity classes the HyTM literature identifies: killing the small
 * hardware transactions (forcing the Hybrid-NOrec reversion paths),
 * starving HTM capacity (the lemming-effect trigger), and stretching
 * the publication window Figure 2's atomicity argument leans on.
 */

#ifndef RHTM_FAULT_SCHEDULES_H
#define RHTM_FAULT_SCHEDULES_H

#include <string>
#include <vector>

#include "src/fault/fault_injector.h"

namespace rhtm
{

/** Names of the built-in chaos schedules. */
const std::vector<std::string> &chaosScheduleNames();

/**
 * Build the named schedule.
 *
 *  - "prefix-kill": abort a fraction of RH prefix commits.
 *  - "postfix-kill": abort a fraction of RH postfix publications.
 *  - "capacity-squeeze": periodically squeeze HTM capacity to a few
 *    lines for a span of transactions.
 *  - "delay-in-publish-window": stall and yield inside publication
 *    windows and right after slow-path clock acquisition.
 *  - "stall-serial": herd threads into serial mode, then stall the
 *    serial-lock holder inside its held window (watchdog target).
 *  - "stall-publisher": stall writers that hold the commit clock, so
 *    every subscriber waits out a dead publication window.
 *  - "irrevocable-storm": stretch and abort irrevocability upgrades in
 *    their pre-grant window, stretch the post-grant clock hold, and
 *    sprinkle user exceptions into opted-in bodies.
 *  - "adversary-storm": overload cocktail for the admission/deadline
 *    machinery -- kill most slow-path starts (serial escalation
 *    convoy), stall serial holders, deschedule deadline polls at
 *    their wait sites, and jitter the admission-gate decision
 *    (docs/OVERLOAD.md).
 *
 * @param name One of chaosScheduleNames(); underscores in @p name are
 *             accepted as dashes ("stall_serial" == "stall-serial").
 * @param seed Base seed (drives every probabilistic rule).
 * @param out Receives the plan.
 * @return false for an unknown name.
 */
bool makeChaosSchedule(const std::string &name, uint64_t seed,
                       FaultPlan &out);

} // namespace rhtm

#endif // RHTM_FAULT_SCHEDULES_H
