/**
 * @file
 * Abort causes and the abort exception for the simulated HTM.
 *
 * Mirrors the RTM abort-status word: each abort carries a cause and a
 * "retry may help" hint. Conflicts set the hint (like RTM's
 * _XABORT_RETRY); capacity aborts clear it, which is what drives the
 * paper's retry policy of sending capacity aborts straight to the
 * software fallback (Section 3.3).
 */

#ifndef RHTM_HTM_ABORT_H
#define RHTM_HTM_ABORT_H

#include <cstdint>

namespace rhtm
{

/** Why a simulated hardware transaction aborted. */
enum class HtmAbortCause : uint8_t
{
    kNone = 0,
    kConflict,   //!< Another commit wrote a tracked cache line.
    kCapacity,   //!< Read or write tracking set exceeded the model.
    kExplicit,   //!< HTM_Abort() called by the transaction itself.
    kOther,      //!< Injected interrupt/page-fault style abort.
    kNeedIrrevocable, //!< Body asked for irrevocability inside HTM.
};

/** Printable name for an abort cause. */
const char *htmAbortCauseName(HtmAbortCause cause);

/**
 * Thrown by HtmTxn on abort; unwinds the transaction body back to the
 * retry loop (the library analogue of the hardware rolling back to
 * XBEGIN's fallback address).
 */
struct HtmAbort
{
    HtmAbortCause cause;  //!< Abort reason.
    bool retryOk;         //!< RTM-style "retrying may succeed" hint.
    uint8_t code;         //!< User code for explicit aborts.
};

} // namespace rhtm

#endif // RHTM_HTM_ABORT_H
