/**
 * @file
 * Fixed-capacity open-addressing hash containers with O(1) clear.
 *
 * The simulated HTM's read/write tracking sets are bounded by the
 * capacity model, so fixed tables with stamped slots (clear = bump the
 * stamp) keep per-transaction bookkeeping allocation-free and cheap to
 * reset, the way hardware tracking sets are.
 */

#ifndef RHTM_HTM_FIXED_TABLE_H
#define RHTM_HTM_FIXED_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rhtm
{

/** Multiplicative hash spreading pointer-like keys. */
inline uint64_t
mixHash(uint64_t key)
{
    key *= 0x9e3779b97f4a7c15ull;
    key ^= key >> 32;
    return key;
}

/**
 * Fixed-capacity set of uint64_t keys (key 0 allowed).
 *
 * insert() returns whether the key was newly added, or false via
 * @p full when the table has no room left -- the caller treats that as
 * a capacity overflow.
 */
class FixedHashSet
{
  public:
    /** @param slots_log2 log2 of the slot count. */
    explicit FixedHashSet(unsigned slots_log2)
        : mask_((size_t(1) << slots_log2) - 1),
          slots_(size_t(1) << slots_log2), stamp_(1), size_(0)
    {}

    /**
     * Insert @p key.
     *
     * @param key Key to add.
     * @param inserted Set true if the key was not present.
     * @return false when the table is full (key not added).
     */
    bool
    insert(uint64_t key, bool &inserted)
    {
        // Cap the probe chain (and load factor) at 3/4 of the table.
        if (size_ >= (mask_ + 1) / 4 * 3) {
            inserted = false;
            return contains(key);
        }
        size_t idx = mixHash(key) & mask_;
        for (;;) {
            Slot &s = slots_[idx];
            if (s.stamp != stamp_) {
                s.stamp = stamp_;
                s.key = key;
                ++size_;
                inserted = true;
                return true;
            }
            if (s.key == key) {
                inserted = false;
                return true;
            }
            idx = (idx + 1) & mask_;
        }
    }

    /** True if @p key is present. */
    bool
    contains(uint64_t key) const
    {
        size_t idx = mixHash(key) & mask_;
        for (;;) {
            const Slot &s = slots_[idx];
            if (s.stamp != stamp_)
                return false;
            if (s.key == key)
                return true;
            idx = (idx + 1) & mask_;
        }
    }

    /** Number of keys currently stored. */
    size_t size() const { return size_; }

    /** Forget all keys in O(1). */
    void
    clear()
    {
        ++stamp_;
        size_ = 0;
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        uint64_t stamp = 0;
    };

    size_t mask_;
    std::vector<Slot> slots_;
    uint64_t stamp_;
    size_t size_;
};

/**
 * Fixed-capacity map from word address to buffered value, preserving a
 * way to iterate the live entries (publication order is irrelevant, but
 * commit must visit each buffered word once).
 */
class WriteBuffer
{
  public:
    /** @param slots_log2 log2 of the slot count. */
    explicit WriteBuffer(unsigned slots_log2)
        : mask_((size_t(1) << slots_log2) - 1),
          slots_(size_t(1) << slots_log2), stamp_(1)
    {
        order_.reserve(1024);
    }

    /**
     * Buffer @p value for @p addr (overwrites an earlier buffering).
     * @return false when the buffer is full (capacity overflow).
     */
    bool
    put(uint64_t *addr, uint64_t value)
    {
        if (order_.size() >= (mask_ + 1) / 4 * 3)
            return false;
        size_t idx = mixHash(reinterpret_cast<uint64_t>(addr)) & mask_;
        for (;;) {
            Slot &s = slots_[idx];
            if (s.stamp != stamp_) {
                s.stamp = stamp_;
                s.addr = addr;
                s.value = value;
                order_.push_back(static_cast<uint32_t>(idx));
                return true;
            }
            if (s.addr == addr) {
                s.value = value;
                return true;
            }
            idx = (idx + 1) & mask_;
        }
    }

    /**
     * Fetch the buffered value for @p addr.
     * @return true and set @p out if present.
     */
    bool
    lookup(const uint64_t *addr, uint64_t &out) const
    {
        size_t idx = mixHash(reinterpret_cast<uint64_t>(addr)) & mask_;
        for (;;) {
            const Slot &s = slots_[idx];
            if (s.stamp != stamp_)
                return false;
            if (s.addr == addr) {
                out = s.value;
                return true;
            }
            idx = (idx + 1) & mask_;
        }
    }

    /** Number of distinct buffered words. */
    size_t sizeWords() const { return order_.size(); }

    /** True when nothing is buffered. */
    bool empty() const { return order_.empty(); }

    /** Visit each buffered (addr, value) pair once. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (uint32_t idx : order_) {
            const Slot &s = slots_[idx];
            fn(s.addr, s.value);
        }
    }

    /** Discard all buffered writes in O(live entries). */
    void
    clear()
    {
        ++stamp_;
        order_.clear();
    }

    /**
     * put() that doubles the table instead of failing; for software
     * write sets, which have no hardware capacity bound.
     */
    void
    putGrowing(uint64_t *addr, uint64_t value)
    {
        while (!put(addr, value))
            grow();
    }

  private:
    /** Double the slot count, rehashing the live entries. */
    void
    grow()
    {
        WriteBuffer bigger(
            static_cast<unsigned>(64 - __builtin_clzll(mask_)) + 1);
        forEach([&](uint64_t *a, uint64_t v) { bigger.put(a, v); });
        mask_ = bigger.mask_;
        slots_ = std::move(bigger.slots_);
        stamp_ = bigger.stamp_;
        order_ = std::move(bigger.order_);
    }

    struct Slot
    {
        uint64_t *addr = nullptr;
        uint64_t value = 0;
        uint64_t stamp = 0;
    };

    size_t mask_;
    std::vector<Slot> slots_;
    uint64_t stamp_;
    std::vector<uint32_t> order_;
};

} // namespace rhtm

#endif // RHTM_HTM_FIXED_TABLE_H
