/**
 * @file
 * Tunables for the simulated best-effort HTM.
 */

#ifndef RHTM_HTM_HTM_CONFIG_H
#define RHTM_HTM_HTM_CONFIG_H

#include <cstddef>

namespace rhtm
{

/**
 * Capacity and abort-injection model for the simulated HTM.
 *
 * Defaults approximate the paper's Haswell: the write set is bounded by
 * L1 capacity (32 KiB / 64 B = 512 lines, minus associativity slack),
 * the read set by the larger L2-backed bloom-filter tracking the paper
 * describes (Section 3.2). `capacityScale` models the HyperThreading
 * effect: threads with index >= `scaledThreadsFrom` see their capacity
 * divided by it (two hardware threads share one L1).
 */
struct HtmConfig
{
    /** Distinct cache lines a transaction may read. */
    size_t readCapacityLines = 4096;

    /** Distinct cache lines a transaction may write. */
    size_t writeCapacityLines = 448;

    /** Per-access probability of an injected kOther abort (0 = off). */
    double randomAbortProb = 0.0;

    /** Divide capacities by this for threads >= scaledThreadsFrom. */
    size_t capacityScale = 1;

    /** First thread index subject to capacityScale (HT modelling). */
    unsigned scaledThreadsFrom = ~0u;

    /** log2 of the conflict-detection stripe count. */
    unsigned stripeCountLog2 = 16;
};

} // namespace rhtm

#endif // RHTM_HTM_HTM_CONFIG_H
