#include "src/htm/htm_engine.h"

#include "src/util/sched_point.h"

namespace rhtm
{

HtmEngine::HtmEngine(const HtmConfig &cfg)
    : cfg_(cfg),
      stripeShift_(64 - cfg.stripeCountLog2),
      seq_(0),
      stripes_(size_t(1) << cfg.stripeCountLog2)
{
    for (auto &s : stripes_)
        s.store(0, std::memory_order_relaxed);
}

// The scheduling points below sit BEFORE the PublishGuard: the
// explorer must never suspend a thread that holds publishLock_, or
// every other thread would block on an OS mutex the scheduler cannot
// see (src/util/sched_point.h, placement rule).

uint64_t
HtmEngine::directLoad(const uint64_t *addr) const
{
    schedPoint(SchedPoint::kDirectLoad, addr);
    auto ref = std::atomic_ref<const uint64_t>(*addr);
    for (;;) {
        uint64_t s1 = seq_.load(std::memory_order_acquire);
        if (s1 & 1) {
            cpuRelax();
            continue;
        }
        uint64_t v = ref.load(std::memory_order_acquire);
        uint64_t s2 = seq_.load(std::memory_order_acquire);
        if (s1 == s2)
            return v;
    }
}

void
HtmEngine::directStore(uint64_t *addr, uint64_t value)
{
    schedPoint(SchedPoint::kDirectStore, addr);
    PublishGuard guard(*this);
    std::atomic_ref<uint64_t>(*addr).store(value,
                                           std::memory_order_release);
    bumpStripe(addr);
}

bool
HtmEngine::directCas(uint64_t *addr, uint64_t &expected, uint64_t desired)
{
    schedPoint(SchedPoint::kDirectRmw, addr);
    PublishGuard guard(*this);
    auto ref = std::atomic_ref<uint64_t>(*addr);
    uint64_t cur = ref.load(std::memory_order_acquire);
    if (cur != expected) {
        expected = cur;
        return false;
    }
    ref.store(desired, std::memory_order_release);
    bumpStripe(addr);
    return true;
}

uint64_t
HtmEngine::directFetchAdd(uint64_t *addr, uint64_t delta)
{
    schedPoint(SchedPoint::kDirectRmw, addr);
    PublishGuard guard(*this);
    auto ref = std::atomic_ref<uint64_t>(*addr);
    uint64_t cur = ref.load(std::memory_order_acquire);
    ref.store(cur + delta, std::memory_order_release);
    bumpStripe(addr);
    return cur;
}

} // namespace rhtm
