/**
 * @file
 * The simulated best-effort HTM engine (process-global state).
 *
 * Substitution note (see DESIGN.md): this engine stands in for Intel
 * RTM. It provides the four properties the RH NOrec correctness
 * argument relies on:
 *
 *  1. Hardware-transaction writes are invisible until commit, and a
 *     commit publishes them atomically (Figure 2's argument).
 *  2. A hardware transaction aborts as soon as any cache line it has
 *     read is written by another commit *or by a plain store* -- the
 *     "subscription" idiom (read a lock word; a later store to it kills
 *     the transaction).
 *  3. A running hardware transaction never observes an inconsistent
 *     snapshot (hardware opacity).
 *  4. Tracking capacity is bounded, and aborts say whether retrying may
 *     help.
 *
 * Mechanically: a global sequence counter (odd while anybody publishes)
 * plus a striped per-cache-line version table. Commits and direct
 * stores publish under an internal mutex; transactional reads log
 * (stripe, version) pairs and are fully re-validated whenever the
 * sequence advances, so conflicts abort the reader at its next
 * transactional access -- observably equivalent to RTM's asynchronous
 * coherence abort given that simulated transactions touch shared state
 * only through this API.
 */

#ifndef RHTM_HTM_HTM_ENGINE_H
#define RHTM_HTM_HTM_ENGINE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/htm/htm_config.h"
#include "src/util/backoff.h"

namespace rhtm
{

/**
 * Process-global simulated-HTM state shared by all threads of one TM
 * runtime. All members are thread safe.
 */
class HtmEngine
{
  public:
    /** Cache-line size used for conflict granularity (bytes, log2). */
    static constexpr unsigned kLineShift = 6;

    explicit HtmEngine(const HtmConfig &cfg = HtmConfig());

    HtmEngine(const HtmEngine &) = delete;
    HtmEngine &operator=(const HtmEngine &) = delete;

    /** The configuration this engine was built with. */
    const HtmConfig &config() const { return cfg_; }

    /**
     * Non-transactional load, atomic with respect to hardware-commit
     * publication (a plain racing load could otherwise observe a torn
     * commit, which real hardware makes impossible).
     */
    uint64_t directLoad(const uint64_t *addr) const;

    /**
     * Non-transactional store. Bumps the line version, dooming every
     * live hardware transaction that has read the line (subscription).
     */
    void directStore(uint64_t *addr, uint64_t value);

    /**
     * Non-transactional compare-and-swap; returns true on success and
     * refreshes @p expected with the observed value on failure.
     */
    bool directCas(uint64_t *addr, uint64_t &expected, uint64_t desired);

    /** Non-transactional fetch-and-add; returns the previous value. */
    uint64_t directFetchAdd(uint64_t *addr, uint64_t delta);

    /** Current publication sequence (even = quiescent). */
    uint64_t
    seq() const
    {
        return seq_.load(std::memory_order_acquire);
    }

    /** Stripe index tracking @p addr's cache line. */
    size_t
    stripeOf(const void *addr) const
    {
        uint64_t line = reinterpret_cast<uint64_t>(addr) >> kLineShift;
        return (line * 0x9e3779b97f4a7c15ull) >> stripeShift_;
    }

    /** Current version of stripe @p stripe. */
    uint64_t
    stripeVersion(size_t stripe) const
    {
        return stripes_[stripe].load(std::memory_order_acquire);
    }

  private:
    friend class HtmTxn;

    /**
     * RAII publication window: takes the publish mutex and makes the
     * sequence odd; the destructor makes it even again. Everything that
     * mutates TM-visible memory does so inside one of these.
     */
    class PublishGuard
    {
      public:
        explicit PublishGuard(HtmEngine &eng) : eng_(eng)
        {
            eng_.publishLock_.lock();
            eng_.seq_.fetch_add(1, std::memory_order_acq_rel);
        }

        ~PublishGuard()
        {
            eng_.seq_.fetch_add(1, std::memory_order_acq_rel);
            eng_.publishLock_.unlock();
        }

        PublishGuard(const PublishGuard &) = delete;
        PublishGuard &operator=(const PublishGuard &) = delete;

      private:
        HtmEngine &eng_;
    };

    /** Bump the version of @p addr's stripe (inside a PublishGuard). */
    void
    bumpStripe(const void *addr)
    {
        stripes_[stripeOf(addr)].fetch_add(1, std::memory_order_release);
    }

    HtmConfig cfg_;
    unsigned stripeShift_;
    std::atomic<uint64_t> seq_;
    std::mutex publishLock_;
    std::vector<std::atomic<uint64_t>> stripes_;
};

} // namespace rhtm

#endif // RHTM_HTM_HTM_ENGINE_H
