#include "src/htm/htm_txn.h"

#include <cassert>
#include <cmath>

#include "src/util/sched_point.h"

namespace rhtm
{

const char *
htmAbortCauseName(HtmAbortCause cause)
{
    switch (cause) {
      case HtmAbortCause::kNone: return "none";
      case HtmAbortCause::kConflict: return "conflict";
      case HtmAbortCause::kCapacity: return "capacity";
      case HtmAbortCause::kExplicit: return "explicit";
      case HtmAbortCause::kOther: return "other";
      case HtmAbortCause::kNeedIrrevocable: return "need-irrevocable";
    }
    return "unknown";
}

HtmTxn::HtmTxn(HtmEngine &eng, unsigned tid, ThreadStats *stats,
               uint64_t rng_seed, FaultInjector *fault)
    : eng_(eng), stats_(stats), fault_(fault), readCap_(0), writeCap_(0),
      effReadCap_(0), effWriteCap_(0), active_(false), lastSeq_(0),
      readLines_(14),   // 16 Ki slots >= 4096-line read capacity
      writes_(14),      // 16 Ki word slots >= 448 lines * 8 words
      writeLines_(12)
{
    const HtmConfig &cfg = eng.config();
    readCap_ = cfg.readCapacityLines;
    writeCap_ = cfg.writeCapacityLines;
    if (tid >= cfg.scaledThreadsFrom && cfg.capacityScale > 1) {
        readCap_ /= cfg.capacityScale;
        writeCap_ /= cfg.capacityScale;
    }
    effReadCap_ = readCap_;
    effWriteCap_ = writeCap_;
    if (fault_ == nullptr && cfg.randomAbortProb > 0.0) {
        // Legacy knob: express the blunt per-access probability as a
        // fault plan on the access sites (same distribution the old
        // inline dice roll produced).
        FaultPlan plan;
        plan.seed = rng_seed ^ (tid * 0x9e3779b9ull);
        double p = cfg.randomAbortProb >= 1.0 ? 1.0 : cfg.randomAbortProb;
        for (FaultSite site : {FaultSite::kTxRead, FaultSite::kTxWrite,
                               FaultSite::kPreCommit}) {
            FaultRule rule;
            rule.site = site;
            rule.kind = FaultKind::kAbortOther;
            rule.period = 1;
            rule.probability = p;
            plan.add(rule);
        }
        ownedFault_ = std::make_unique<FaultInjector>(plan, tid);
        fault_ = ownedFault_.get();
    }
    readLog_.reserve(1024);
}

void
HtmTxn::resetState()
{
    active_ = false;
    readLog_.clear();
    readLines_.clear();
    writes_.clear();
    writeLines_.clear();
}

void
HtmTxn::fail(HtmAbortCause cause, bool retry_ok, uint8_t code,
             bool injected)
{
    resetState();
    if (stats_) {
        switch (cause) {
          case HtmAbortCause::kConflict:
            stats_->inc(Counter::kHtmConflictAborts);
            break;
          case HtmAbortCause::kCapacity:
            stats_->inc(Counter::kHtmCapacityAborts);
            break;
          case HtmAbortCause::kExplicit:
          case HtmAbortCause::kNeedIrrevocable:
            stats_->inc(Counter::kHtmExplicitAborts);
            break;
          default:
            stats_->inc(Counter::kHtmOtherAborts);
            break;
        }
        if (injected)
            stats_->inc(Counter::kHtmInjectedAborts);
    }
    throw HtmAbort{cause, retry_ok, code};
}

void
HtmTxn::faultPoint(FaultSite site)
{
    if (fault_ == nullptr)
        return;
    uint32_t spins = 0;
    switch (fault_->fire(site, &spins)) {
      case FaultKind::kNone:
      case FaultKind::kCapacitySqueeze:
        return;
      case FaultKind::kDelay:
        simDelay(spins);
        return;
      case FaultKind::kYield:
        std::this_thread::yield();
        return;
      case FaultKind::kAbortConflict:
        fail(HtmAbortCause::kConflict, true, 0, true);
      case FaultKind::kAbortCapacity:
        fail(HtmAbortCause::kCapacity, false, 0, true);
      case FaultKind::kAbortOther:
        fail(HtmAbortCause::kOther, false, 0, true);
      case FaultKind::kAbortExplicit:
        fail(HtmAbortCause::kExplicit, true, 0, true);
    }
}

void
HtmTxn::begin()
{
    assert(!active_ && "simulated HTM does not nest");
    // Scheduling points sit at the entry of begin/read/write/commit,
    // outside the publication guard (HtmTxn::faultPoint must stay
    // uninstrumented: it also fires at kPublishWindow, inside it).
    schedPoint(SchedPoint::kHtmBegin);
    resetState();
    active_ = true;
    lastSeq_ = ~uint64_t(0); // Sentinel: no stable window observed yet.
    if (fault_ != nullptr) {
        faultPoint(FaultSite::kHtmBegin);
        // Capacity squeezes are (re)evaluated per transaction.
        effReadCap_ = fault_->readCapLimit(readCap_);
        effWriteCap_ = fault_->writeCapLimit(writeCap_);
    }
}

uint64_t
HtmTxn::read(const uint64_t *addr)
{
    assert(active_);
    schedPoint(SchedPoint::kHtmRead, addr);
    faultPoint(FaultSite::kTxRead);

    uint64_t buffered;
    if (writes_.lookup(addr, buffered))
        return buffered;

    const size_t stripe = eng_.stripeOf(addr);
    auto ref = std::atomic_ref<const uint64_t>(*addr);
    uint64_t val, ver, s1;
    for (;;) {
        s1 = eng_.seq();
        if (s1 & 1) {
            cpuRelax();
            continue;
        }
        if (s1 != lastSeq_) {
            // Memory changed since the last stable window: re-validate
            // the whole read log inside this window. A mismatch is a
            // genuine invalidation of a tracked line -> conflict abort
            // (correct even if this window later proves unstable).
            for (const ReadEntry &e : readLog_) {
                if (eng_.stripeVersion(e.stripe) != e.version)
                    fail(HtmAbortCause::kConflict, true);
            }
        }
        val = ref.load(std::memory_order_acquire);
        ver = eng_.stripeVersion(stripe);
        if (eng_.seq() == s1) {
            lastSeq_ = s1;
            break;
        }
    }

    bool inserted = false;
    if (!readLines_.insert(
            reinterpret_cast<uint64_t>(addr) >> HtmEngine::kLineShift,
            inserted)) {
        fail(HtmAbortCause::kCapacity, false);
    }
    if (inserted) {
        if (readLines_.size() > effReadCap_)
            fail(HtmAbortCause::kCapacity, false);
        readLog_.push_back({static_cast<uint32_t>(stripe), ver});
    }
    return val;
}

void
HtmTxn::write(uint64_t *addr, uint64_t value)
{
    assert(active_);
    schedPoint(SchedPoint::kHtmWrite, addr);
    faultPoint(FaultSite::kTxWrite);

    bool inserted = false;
    if (!writeLines_.insert(
            reinterpret_cast<uint64_t>(addr) >> HtmEngine::kLineShift,
            inserted)) {
        fail(HtmAbortCause::kCapacity, false);
    }
    if (inserted && writeLines_.size() > effWriteCap_)
        fail(HtmAbortCause::kCapacity, false);
    if (!writes_.put(addr, value))
        fail(HtmAbortCause::kCapacity, false);
}

void
HtmTxn::commit()
{
    assert(active_);
    schedPoint(SchedPoint::kHtmCommit);
    faultPoint(FaultSite::kPreCommit);

    if (writes_.empty()) {
        // Read-only: every read was validated within a stable window;
        // the transaction serializes at its last validation point.
        resetState();
        return;
    }

    {
        HtmEngine::PublishGuard guard(eng_);
        for (const ReadEntry &e : readLog_) {
            if (eng_.stripeVersion(e.stripe) != e.version)
                fail(HtmAbortCause::kConflict, true);
        }
        // The publication window proper: the sequence is odd and
        // every concurrent reader spins. A scripted delay here
        // stretches exactly the window Figure 2's atomic-publication
        // argument depends on (an abort unwinds through the guard, so
        // the sequence is restored either way).
        faultPoint(FaultSite::kPublishWindow);
        writes_.forEach([this](uint64_t *addr, uint64_t value) {
            std::atomic_ref<uint64_t>(*addr).store(
                value, std::memory_order_release);
            eng_.bumpStripe(addr);
        });
    }
    resetState();
}

void
HtmTxn::abortExplicit(uint8_t code)
{
    assert(active_);
    fail(HtmAbortCause::kExplicit, true, code);
}

void
HtmTxn::abortSubscription()
{
    assert(active_);
    if (stats_)
        stats_->inc(Counter::kHtmSubscriptionAborts);
    fail(HtmAbortCause::kExplicit, true, 0);
}

void
HtmTxn::abortInjected(HtmAbortCause cause, bool retry_ok)
{
    assert(active_);
    fail(cause, retry_ok, 0, true);
}

void
HtmTxn::abortNeedIrrevocable()
{
    assert(active_);
    fail(HtmAbortCause::kNeedIrrevocable, true, 0);
}

} // namespace rhtm
