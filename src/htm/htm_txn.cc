#include "src/htm/htm_txn.h"

#include <cassert>
#include <cmath>

namespace rhtm
{

const char *
htmAbortCauseName(HtmAbortCause cause)
{
    switch (cause) {
      case HtmAbortCause::kNone: return "none";
      case HtmAbortCause::kConflict: return "conflict";
      case HtmAbortCause::kCapacity: return "capacity";
      case HtmAbortCause::kExplicit: return "explicit";
      case HtmAbortCause::kOther: return "other";
    }
    return "unknown";
}

HtmTxn::HtmTxn(HtmEngine &eng, unsigned tid, ThreadStats *stats,
               uint64_t rng_seed)
    : eng_(eng), stats_(stats), rng_(rng_seed ^ (tid * 0x9e3779b9ull)),
      injectThreshold_(0), readCap_(0), writeCap_(0), active_(false),
      lastSeq_(0),
      readLines_(14),   // 16 Ki slots >= 4096-line read capacity
      writes_(14),      // 16 Ki word slots >= 448 lines * 8 words
      writeLines_(12)
{
    const HtmConfig &cfg = eng.config();
    readCap_ = cfg.readCapacityLines;
    writeCap_ = cfg.writeCapacityLines;
    if (tid >= cfg.scaledThreadsFrom && cfg.capacityScale > 1) {
        readCap_ /= cfg.capacityScale;
        writeCap_ /= cfg.capacityScale;
    }
    if (cfg.randomAbortProb > 0.0) {
        double p = cfg.randomAbortProb >= 1.0 ? 1.0 : cfg.randomAbortProb;
        injectThreshold_ = p >= 1.0
            ? ~uint64_t(0)
            : static_cast<uint64_t>(std::ldexp(p, 64));
    }
    readLog_.reserve(1024);
}

void
HtmTxn::resetState()
{
    active_ = false;
    readLog_.clear();
    readLines_.clear();
    writes_.clear();
    writeLines_.clear();
}

void
HtmTxn::fail(HtmAbortCause cause, bool retry_ok, uint8_t code)
{
    resetState();
    if (stats_) {
        switch (cause) {
          case HtmAbortCause::kConflict:
            stats_->inc(Counter::kHtmConflictAborts);
            break;
          case HtmAbortCause::kCapacity:
            stats_->inc(Counter::kHtmCapacityAborts);
            break;
          case HtmAbortCause::kExplicit:
            stats_->inc(Counter::kHtmExplicitAborts);
            break;
          default:
            stats_->inc(Counter::kHtmOtherAborts);
            break;
        }
    }
    throw HtmAbort{cause, retry_ok, code};
}

void
HtmTxn::maybeInjectAbort()
{
    if (injectThreshold_ != 0 && rng_.next() < injectThreshold_)
        fail(HtmAbortCause::kOther, false);
}

void
HtmTxn::begin()
{
    assert(!active_ && "simulated HTM does not nest");
    resetState();
    active_ = true;
    lastSeq_ = ~uint64_t(0); // Sentinel: no stable window observed yet.
}

uint64_t
HtmTxn::read(const uint64_t *addr)
{
    assert(active_);
    maybeInjectAbort();

    uint64_t buffered;
    if (writes_.lookup(addr, buffered))
        return buffered;

    const size_t stripe = eng_.stripeOf(addr);
    auto ref = std::atomic_ref<const uint64_t>(*addr);
    uint64_t val, ver, s1;
    for (;;) {
        s1 = eng_.seq();
        if (s1 & 1) {
            cpuRelax();
            continue;
        }
        if (s1 != lastSeq_) {
            // Memory changed since the last stable window: re-validate
            // the whole read log inside this window. A mismatch is a
            // genuine invalidation of a tracked line -> conflict abort
            // (correct even if this window later proves unstable).
            for (const ReadEntry &e : readLog_) {
                if (eng_.stripeVersion(e.stripe) != e.version)
                    fail(HtmAbortCause::kConflict, true);
            }
        }
        val = ref.load(std::memory_order_acquire);
        ver = eng_.stripeVersion(stripe);
        if (eng_.seq() == s1) {
            lastSeq_ = s1;
            break;
        }
    }

    bool inserted = false;
    if (!readLines_.insert(
            reinterpret_cast<uint64_t>(addr) >> HtmEngine::kLineShift,
            inserted)) {
        fail(HtmAbortCause::kCapacity, false);
    }
    if (inserted) {
        if (readLines_.size() > readCap_)
            fail(HtmAbortCause::kCapacity, false);
        readLog_.push_back({static_cast<uint32_t>(stripe), ver});
    }
    return val;
}

void
HtmTxn::write(uint64_t *addr, uint64_t value)
{
    assert(active_);
    maybeInjectAbort();

    bool inserted = false;
    if (!writeLines_.insert(
            reinterpret_cast<uint64_t>(addr) >> HtmEngine::kLineShift,
            inserted)) {
        fail(HtmAbortCause::kCapacity, false);
    }
    if (inserted && writeLines_.size() > writeCap_)
        fail(HtmAbortCause::kCapacity, false);
    if (!writes_.put(addr, value))
        fail(HtmAbortCause::kCapacity, false);
}

void
HtmTxn::commit()
{
    assert(active_);
    maybeInjectAbort();

    if (writes_.empty()) {
        // Read-only: every read was validated within a stable window;
        // the transaction serializes at its last validation point.
        resetState();
        return;
    }

    {
        HtmEngine::PublishGuard guard(eng_);
        for (const ReadEntry &e : readLog_) {
            if (eng_.stripeVersion(e.stripe) != e.version)
                fail(HtmAbortCause::kConflict, true);
        }
        writes_.forEach([this](uint64_t *addr, uint64_t value) {
            std::atomic_ref<uint64_t>(*addr).store(
                value, std::memory_order_release);
            eng_.bumpStripe(addr);
        });
    }
    resetState();
}

void
HtmTxn::abortExplicit(uint8_t code)
{
    assert(active_);
    fail(HtmAbortCause::kExplicit, true, code);
}

} // namespace rhtm
