/**
 * @file
 * Per-thread simulated hardware transaction.
 */

#ifndef RHTM_HTM_HTM_TXN_H
#define RHTM_HTM_HTM_TXN_H

#include <cstdint>
#include <vector>

#include "src/htm/abort.h"
#include "src/htm/fixed_table.h"
#include "src/htm/htm_engine.h"
#include "src/stats/stats.h"
#include "src/util/rng.h"

namespace rhtm
{

/**
 * A best-effort hardware transaction (simulated RTM).
 *
 * Usage mirrors RTM: begin(), transactional read()/write(), then
 * commit(). Any abort -- conflict, capacity, explicit, or injected --
 * unwinds by throwing HtmAbort (the analogue of control transferring to
 * XBEGIN's fallback path); the object is back in the idle state when
 * the exception is caught. One instance per thread; not reentrant (real
 * RTM flat-nests, and this codebase never nests hardware transactions).
 *
 * Opacity: every transactional read is validated against the engine's
 * stripe versions within a stable publication window, so a body never
 * observes two reads from different memory snapshots.
 */
class HtmTxn
{
  public:
    /**
     * @param eng Engine providing global conflict-detection state.
     * @param tid Thread index (drives the capacity-scaling model).
     * @param stats Per-thread counters; may be null.
     * @param rng_seed Seed for the abort-injection generator.
     */
    HtmTxn(HtmEngine &eng, unsigned tid, ThreadStats *stats,
           uint64_t rng_seed = 1);

    HtmTxn(const HtmTxn &) = delete;
    HtmTxn &operator=(const HtmTxn &) = delete;

    /** Start a hardware transaction; requires the idle state. */
    void begin();

    /** Transactional load of an 8-byte aligned word. */
    uint64_t read(const uint64_t *addr);

    /** Transactional store of an 8-byte aligned word (buffered). */
    void write(uint64_t *addr, uint64_t value);

    /**
     * Attempt to commit. On success the buffered writes are published
     * atomically; on conflict the transaction aborts (throws).
     */
    void commit();

    /** Explicitly abort with a user @p code (throws HtmAbort). */
    [[noreturn]] void abortExplicit(uint8_t code = 0);

    /**
     * Abandon the transaction without throwing (used when an exception
     * is already unwinding through the transaction body). Buffered
     * writes are discarded; no abort is counted. No-op when idle.
     */
    void cancel() { resetState(); }

    /** True while a transaction is running. */
    bool active() const { return active_; }

    /** Distinct cache lines read so far. */
    size_t readLines() const { return readLines_.size(); }

    /** Distinct cache lines written so far. */
    size_t writeLines() const { return writeLines_.size(); }

    /** True when no write has been buffered yet. */
    bool isReadOnly() const { return writes_.empty(); }

  private:
    struct ReadEntry
    {
        uint32_t stripe;
        uint64_t version;
    };

    /** Abort: reset to idle, count the event, throw HtmAbort. */
    [[noreturn]] void fail(HtmAbortCause cause, bool retry_ok,
                           uint8_t code = 0);

    /** Roll the dice for an injected interrupt-style abort. */
    void maybeInjectAbort();

    /** Reset tracking state to idle. */
    void resetState();

    HtmEngine &eng_;
    ThreadStats *stats_;
    Rng rng_;
    uint64_t injectThreshold_;
    size_t readCap_;
    size_t writeCap_;
    bool active_;
    uint64_t lastSeq_;
    std::vector<ReadEntry> readLog_;
    FixedHashSet readLines_;
    WriteBuffer writes_;
    FixedHashSet writeLines_;
};

} // namespace rhtm

#endif // RHTM_HTM_HTM_TXN_H
