/**
 * @file
 * Per-thread simulated hardware transaction.
 */

#ifndef RHTM_HTM_HTM_TXN_H
#define RHTM_HTM_HTM_TXN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/htm/abort.h"
#include "src/htm/fixed_table.h"
#include "src/htm/htm_engine.h"
#include "src/stats/stats.h"

namespace rhtm
{

/**
 * A best-effort hardware transaction (simulated RTM).
 *
 * Usage mirrors RTM: begin(), transactional read()/write(), then
 * commit(). Any abort -- conflict, capacity, explicit, or injected --
 * unwinds by throwing HtmAbort (the analogue of control transferring to
 * XBEGIN's fallback path); the object is back in the idle state when
 * the exception is caught. One instance per thread; not reentrant (real
 * RTM flat-nests, and this codebase never nests hardware transactions).
 *
 * Opacity: every transactional read is validated against the engine's
 * stripe versions within a stable publication window, so a body never
 * observes two reads from different memory snapshots.
 */
class HtmTxn
{
  public:
    /**
     * @param eng Engine providing global conflict-detection state.
     * @param tid Thread index (drives the capacity-scaling model).
     * @param stats Per-thread counters; may be null.
     * @param rng_seed Seed for the abort-injection generator.
     * @param fault External per-thread fault injector; may be null.
     *        When null and the engine config carries a nonzero
     *        randomAbortProb, an internal injector expressing that
     *        probability is created (legacy-knob compatibility).
     */
    HtmTxn(HtmEngine &eng, unsigned tid, ThreadStats *stats,
           uint64_t rng_seed = 1, FaultInjector *fault = nullptr);

    HtmTxn(const HtmTxn &) = delete;
    HtmTxn &operator=(const HtmTxn &) = delete;

    /** Start a hardware transaction; requires the idle state. */
    void begin();

    /** Transactional load of an 8-byte aligned word. */
    uint64_t read(const uint64_t *addr);

    /** Transactional store of an 8-byte aligned word (buffered). */
    void write(uint64_t *addr, uint64_t value);

    /**
     * Attempt to commit. On success the buffered writes are published
     * atomically; on conflict the transaction aborts (throws).
     */
    void commit();

    /** Explicitly abort with a user @p code (throws HtmAbort). */
    [[noreturn]] void abortExplicit(uint8_t code = 0);

    /**
     * Explicit abort after a lock-subscription check failed (the lock
     * word read at begin was nonzero). Identical unwind to
     * abortExplicit() but additionally counted per-cause, so fallback
     * composition can distinguish subscription kills from user aborts.
     */
    [[noreturn]] void abortSubscription();

    /**
     * Abort on behalf of the fault injector with a scripted cause
     * (sessions use this for protocol-level sites while a small HTM
     * is active). Counted as both the cause and an injected abort.
     */
    [[noreturn]] void abortInjected(HtmAbortCause cause, bool retry_ok);

    /**
     * Abort because the body called Txn::becomeIrrevocable() while a
     * hardware transaction was live. Irrevocability cannot be granted
     * inside best-effort HTM (the hardware may abort at any time), so
     * the transaction unwinds with kNeedIrrevocable and the session's
     * onHtmAbort() routes the retry loop straight to its
     * serial/software mode without consuming the retry budget.
     */
    [[noreturn]] void abortNeedIrrevocable();

    /** The per-thread fault injector, or null when none is wired. */
    FaultInjector *injector() const { return fault_; }

    /**
     * Abandon the transaction without throwing (used when an exception
     * is already unwinding through the transaction body). Buffered
     * writes are discarded; no abort is counted. No-op when idle.
     */
    void cancel() { resetState(); }

    /** True while a transaction is running. */
    bool active() const { return active_; }

    /** Distinct cache lines read so far. */
    size_t readLines() const { return readLines_.size(); }

    /** Distinct cache lines written so far. */
    size_t writeLines() const { return writeLines_.size(); }

    /** True when no write has been buffered yet. */
    bool isReadOnly() const { return writes_.empty(); }

    /**
     * Restore the exact post-construction state: discard any live
     * transaction, undo capacity squeezes, and rewind the internal
     * injector (if this txn owns one; an external injector is reset by
     * its owner). Test isolation only (docs/CHECKING.md).
     */
    void
    resetForTest()
    {
        resetState();
        effReadCap_ = readCap_;
        effWriteCap_ = writeCap_;
        lastSeq_ = 0;
        if (ownedFault_ != nullptr)
            ownedFault_->resetForTest();
    }

  private:
    struct ReadEntry
    {
        uint32_t stripe;
        uint64_t version;
    };

    /** Abort: reset to idle, count the event, throw HtmAbort. */
    [[noreturn]] void fail(HtmAbortCause cause, bool retry_ok,
                           uint8_t code = 0, bool injected = false);

    /** Hit @p site on the injector and act on the scripted fault. */
    void faultPoint(FaultSite site);

    /** Reset tracking state to idle. */
    void resetState();

    HtmEngine &eng_;
    ThreadStats *stats_;
    std::unique_ptr<FaultInjector> ownedFault_;
    FaultInjector *fault_;
    size_t readCap_;
    size_t writeCap_;
    size_t effReadCap_;
    size_t effWriteCap_;
    bool active_;
    uint64_t lastSeq_;
    std::vector<ReadEntry> readLog_;
    FixedHashSet readLines_;
    WriteBuffer writes_;
    FixedHashSet writeLines_;
};

} // namespace rhtm

#endif // RHTM_HTM_HTM_TXN_H
