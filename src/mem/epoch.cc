#include "src/mem/epoch.h"

namespace rhtm
{

EpochManager::EpochManager()
    : globalEpoch_(2), maxTid_(0)
{}

void
EpochManager::enterRegion(unsigned tid)
{
    noteThreadUsed(tid);
    // seq_cst so that the announcement is globally visible before any
    // subsequent shared-memory access in the region.
    uint64_t e = globalEpoch_.load(std::memory_order_seq_cst);
    slots_[tid].epoch.store(e, std::memory_order_seq_cst);
    // Re-read: if the epoch advanced between the load and the store we
    // might have announced a stale epoch; announcing again fixes the
    // window (advancers have already counted us out or will see us).
    uint64_t e2 = globalEpoch_.load(std::memory_order_seq_cst);
    if (e2 != e)
        slots_[tid].epoch.store(e2, std::memory_order_seq_cst);
}

void
EpochManager::exitRegion(unsigned tid)
{
    slots_[tid].epoch.store(kQuiescent, std::memory_order_release);
}

bool
EpochManager::tryAdvance()
{
    uint64_t cur = globalEpoch_.load(std::memory_order_acquire);
    unsigned n = maxTid_.load(std::memory_order_acquire);
    for (unsigned i = 0; i <= n && i < kMaxThreads; ++i) {
        uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
        if (e != kQuiescent && e < cur)
            return false;
    }
    return globalEpoch_.compare_exchange_strong(cur, cur + 1,
                                                std::memory_order_acq_rel);
}

uint64_t
EpochManager::reclaimableEpoch() const
{
    uint64_t cur = globalEpoch_.load(std::memory_order_acquire);
    return cur >= 2 ? cur - 2 : 0;
}

void
EpochManager::noteThreadUsed(unsigned tid)
{
    unsigned seen = maxTid_.load(std::memory_order_relaxed);
    while (tid > seen &&
           !maxTid_.compare_exchange_weak(seen, tid,
                                          std::memory_order_acq_rel)) {
    }
}

} // namespace rhtm
