/**
 * @file
 * Epoch-based memory reclamation.
 *
 * Eager STM paths write in place, so a node freed by one transaction
 * must not be recycled while another (possibly doomed) transaction still
 * holds a stale pointer to it: a stale *read* is benign (validation
 * catches it), but a stale *write* into recycled memory would corrupt
 * the new owner. The epoch manager defers recycling until every thread
 * that was inside a transaction at retirement time has left it.
 */

#ifndef RHTM_MEM_EPOCH_H
#define RHTM_MEM_EPOCH_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace rhtm
{

/** A deferred deallocation; freed into the retiring thread's pool. */
struct RetiredBlock
{
    void *ptr;          //!< Block start.
    size_t size;        //!< Size passed back to the pool on reclaim.
    uint64_t epoch;     //!< Global epoch at retirement time.
};

/**
 * Classic three-epoch reclamation manager (Fraser-style).
 *
 * Threads announce the global epoch when they enter a transactional
 * region and announce quiescence when they leave. The global epoch can
 * only advance when every active thread has observed it, so once it has
 * advanced twice past a block's retirement epoch, no thread can still
 * hold a reference obtained before the block was unlinked.
 *
 * All methods are safe for concurrent use; per-thread state is indexed
 * by the caller-provided thread id (assigned by the runtime).
 */
class EpochManager
{
  public:
    /** Maximum number of registered threads. */
    static constexpr unsigned kMaxThreads = 64;

    /** Epoch value meaning "not inside any transactional region". */
    static constexpr uint64_t kQuiescent = ~uint64_t(0);

    EpochManager();

    /**
     * Announce that thread @p tid is entering a transactional region.
     * Must be balanced by exitRegion().
     */
    void enterRegion(unsigned tid);

    /** Announce that thread @p tid left its transactional region. */
    void exitRegion(unsigned tid);

    /**
     * Record the global epoch for a block retired by @p tid. The block
     * becomes reclaimable (see reclaimableEpoch()) after two global
     * epoch advances.
     */
    uint64_t retireEpoch() const
    {
        return globalEpoch_.load(std::memory_order_acquire);
    }

    /**
     * Try to advance the global epoch; succeeds only when every active
     * thread has announced the current epoch.
     *
     * @return true if the epoch advanced.
     */
    bool tryAdvance();

    /**
     * Highest retirement epoch that is now safe to reclaim, i.e. blocks
     * with RetiredBlock::epoch <= this value can be recycled. Returns 0
     * when nothing is safe yet.
     */
    uint64_t reclaimableEpoch() const;

    /** Current global epoch (monotonic). */
    uint64_t currentEpoch() const
    {
        return globalEpoch_.load(std::memory_order_acquire);
    }

    /** Number of epoch slots in use (== highest registered tid + 1). */
    void noteThreadUsed(unsigned tid);

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> epoch{kQuiescent};
    };

    std::atomic<uint64_t> globalEpoch_;
    std::atomic<unsigned> maxTid_;
    Slot slots_[kMaxThreads];
};

} // namespace rhtm

#endif // RHTM_MEM_EPOCH_H
