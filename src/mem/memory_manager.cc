#include "src/mem/memory_manager.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rhtm
{

ThreadMem::~ThreadMem()
{
#ifdef RHTM_SANITIZE_BUILD
    // Not assert(): NDEBUG builds would compile it away, and sanitizer
    // runs are exactly where this lifecycle bug must be loud.
    if (!txAllocs_.empty() || !txFrees_.empty()) {
        std::fprintf(stderr,
                     "ThreadMem tid=%u destroyed with a live journal "
                     "(%zu allocs, %zu frees): owner unwound without "
                     "commit/abort\n",
                     tid_, txAllocs_.size(), txFrees_.size());
        std::abort();
    }
#endif
    // Clear-and-retire: abort semantics for whatever is still
    // journaled (allocations go to limbo, frees are dropped).
    onAbort();
}

void *
ThreadMem::txAlloc(size_t size)
{
    void *p = pool_.alloc(size);
    txAllocs_.push_back({p, size});
    return p;
}

void
ThreadMem::txFree(void *ptr, size_t size)
{
    if (!ptr)
        return;
    txFrees_.push_back({ptr, size});
}

void
ThreadMem::onCommit()
{
    for (const Record &r : txFrees_)
        retire(r.ptr, r.size);
    txFrees_.clear();
    txAllocs_.clear();
}

void
ThreadMem::onAbort()
{
    for (const Record &r : txAllocs_)
        retire(r.ptr, r.size);
    txAllocs_.clear();
    txFrees_.clear();
}

void
ThreadMem::retire(void *ptr, size_t size)
{
    if (!ptr)
        return;
    limbo_.push_back({ptr, size, mgr_->epochs().retireEpoch()});
    if (++retiresSinceReclaim_ >= 32) {
        retiresSinceReclaim_ = 0;
        mgr_->epochs().tryAdvance();
        reclaim();
    }
}

void
ThreadMem::reclaim()
{
    uint64_t safe = mgr_->epochs().reclaimableEpoch();
    while (!limbo_.empty() && limbo_.front().epoch <= safe) {
        pool_.free(limbo_.front().ptr, limbo_.front().size);
        limbo_.pop_front();
    }
}

ThreadMem &
MemoryManager::registerThread()
{
    std::lock_guard<std::mutex> guard(registerLock_);
    unsigned tid = nextTid_.load(std::memory_order_relaxed);
    if (tid >= kMaxThreads)
        throw std::runtime_error("MemoryManager: too many threads");
    mems_[tid].reset(new ThreadMem(this, tid));
    epochs_.noteThreadUsed(tid);
    nextTid_.store(tid + 1, std::memory_order_release);
    return *mems_[tid];
}

void
MemoryManager::drainAll()
{
    // Three advances guarantee every limbo epoch is two behind.
    for (int i = 0; i < 3; ++i)
        epochs_.tryAdvance();
    unsigned n = threadCount();
    for (unsigned t = 0; t < n; ++t)
        mems_[t]->reclaim();
}

} // namespace rhtm
