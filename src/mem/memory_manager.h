/**
 * @file
 * Per-thread transactional memory management: pools, alloc/free
 * journaling, and epoch-deferred reclamation glued together.
 */

#ifndef RHTM_MEM_MEMORY_MANAGER_H
#define RHTM_MEM_MEMORY_MANAGER_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/mem/epoch.h"
#include "src/mem/pool_allocator.h"

namespace rhtm
{

class MemoryManager;

/**
 * A thread's view of the memory subsystem.
 *
 * Transactional allocations and frees are journaled so they can be
 * rolled forward or back with the transaction:
 *  - commit: frees are retired into the epoch limbo list (recycled only
 *    after a grace period); allocations become permanent.
 *  - abort: allocations are retired too (a doomed concurrent transaction
 *    may have glimpsed the pointer through an eagerly published write,
 *    so immediate reuse would be unsafe); journaled frees are dropped.
 *
 * Not thread safe; owned and used by exactly one thread.
 */
class ThreadMem
{
  public:
    /**
     * A ThreadMem destroyed with a live journal (its owner unwound
     * without commit or abort) retires the journaled allocations as an
     * abort would and drops the pending frees, so nothing leaks and
     * nothing double-frees. Under RHTM_SANITIZE builds this is treated
     * as the lifecycle bug it is: the process aborts with a diagnostic.
     */
    ~ThreadMem();

    /** Allocate inside the current transaction (journaled). */
    void *txAlloc(size_t size);

    /** Free inside the current transaction (journaled, deferred). */
    void txFree(void *ptr, size_t size);

    /** Allocate outside any transaction (immediate). */
    void *rawAlloc(size_t size) { return pool_.alloc(size); }

    /**
     * Free outside any transaction. Still routed through the epoch
     * limbo list: the block may have been unlinked while concurrent
     * transactions were live (e.g. privatization), so immediate reuse
     * is only safe after a grace period.
     */
    void rawFree(void *ptr, size_t size) { retire(ptr, size); }

    /** Commit the journal (see class comment). */
    void onCommit();

    /** Roll back the journal (see class comment). */
    void onAbort();

    /** This thread's pool (for stats and direct use in tests). */
    PoolAllocator &pool() { return pool_; }

    /** Blocks waiting in the limbo list. */
    size_t limboSize() const { return limbo_.size(); }

    /** Runtime-assigned thread id. */
    unsigned tid() const { return tid_; }

    /**
     * Reclaim every limbo block whose grace period has passed; also
     * nudges the global epoch forward.
     */
    void reclaim();

    /**
     * Drop any stale transactional journal and reset the reclaim
     * cadence. Test isolation only (the interleaving explorer calls
     * this between runs, after a run that may have been torn down by
     * the scheduler mid-unwind): journaled allocations are retired as
     * an abort would retire them, so nothing leaks or double-frees.
     * The pool and limbo list are left alone -- they hold real memory
     * whose lifecycle is independent of explored-run boundaries.
     */
    void
    resetForTest()
    {
        if (!txAllocs_.empty() || !txFrees_.empty())
            onAbort();
        retiresSinceReclaim_ = 0;
    }

  private:
    friend class MemoryManager;

    struct Record
    {
        void *ptr;
        size_t size;
    };

    ThreadMem(MemoryManager *mgr, unsigned tid) : mgr_(mgr), tid_(tid) {}

    void retire(void *ptr, size_t size);

    MemoryManager *mgr_;
    unsigned tid_;
    PoolAllocator pool_;
    std::vector<Record> txAllocs_;
    std::vector<Record> txFrees_;
    std::deque<RetiredBlock> limbo_;
    size_t retiresSinceReclaim_ = 0;
};

/**
 * Process-wide owner of per-thread memory state and the epoch manager.
 *
 * The TM runtime registers each worker thread once and passes the
 * resulting ThreadMem through its execution context.
 */
class MemoryManager
{
  public:
    static constexpr unsigned kMaxThreads = EpochManager::kMaxThreads;

    MemoryManager() : nextTid_(0) {}

    /**
     * Register the calling thread; returns its ThreadMem. Thread safe.
     * At most kMaxThreads registrations.
     */
    ThreadMem &registerThread();

    /** Epoch manager shared by all threads. */
    EpochManager &epochs() { return epochs_; }

    /** ThreadMem for an already-registered tid. */
    ThreadMem &threadMem(unsigned tid) { return *mems_[tid]; }

    /** Number of registered threads. */
    unsigned threadCount() const
    {
        return nextTid_.load(std::memory_order_acquire);
    }

    /**
     * Force full reclamation. Only legal when no thread is inside a
     * transactional region (e.g. test teardown): advances the epoch
     * until all limbo blocks everywhere are recycled.
     */
    void drainAll();

  private:
    EpochManager epochs_;
    std::mutex registerLock_;
    std::atomic<unsigned> nextTid_;
    std::array<std::unique_ptr<ThreadMem>, kMaxThreads> mems_;
};

} // namespace rhtm

#endif // RHTM_MEM_MEMORY_MANAGER_H
