#include "src/mem/pool_allocator.h"

#include <cassert>
#include <cstring>

namespace rhtm
{

const size_t PoolAllocator::kClassSizes[PoolAllocator::kNumClasses] = {
    16, 24, 32, 48, 64, 96, 128, 192, 256, 384,
    512, 768, 1024, 1536, 2048, 4096,
};

PoolAllocator::PoolAllocator()
    : bytesLive_(0), bytesReserved_(0)
{
    for (size_t i = 0; i < kNumClasses; ++i)
        freeLists_[i] = nullptr;
}

PoolAllocator::~PoolAllocator() = default;

size_t
PoolAllocator::classIndex(size_t size)
{
    for (size_t i = 0; i < kNumClasses; ++i) {
        if (size <= kClassSizes[i])
            return i;
    }
    assert(false && "size exceeds kMaxPooledSize");
    return kNumClasses - 1;
}

void
PoolAllocator::refill(size_t cls)
{
    const size_t block = kClassSizes[cls];
    auto chunk = std::make_unique<char[]>(kChunkSize);
    char *base = chunk.get();
    // Keep 16-byte alignment for every block: all class sizes are
    // multiples of 8, and the sub-16 classes stay aligned because the
    // chunk base is at least 16-byte aligned and 8 | block.
    size_t count = kChunkSize / block;
    for (size_t i = 0; i < count; ++i) {
        auto *node = reinterpret_cast<FreeNode *>(base + i * block);
        node->next = freeLists_[cls];
        freeLists_[cls] = node;
    }
    bytesReserved_ += kChunkSize;
    chunks_.push_back(std::move(chunk));
}

void *
PoolAllocator::alloc(size_t size)
{
    if (size == 0)
        size = 1;
    if (size > kMaxPooledSize) {
        bytesLive_ += size;
        void *p = ::operator new(size);
        std::memset(p, 0, size);
        return p;
    }
    size_t cls = classIndex(size);
    if (!freeLists_[cls])
        refill(cls);
    FreeNode *node = freeLists_[cls];
    freeLists_[cls] = node->next;
    bytesLive_ += kClassSizes[cls];
    std::memset(node, 0, kClassSizes[cls]);
    return node;
}

void
PoolAllocator::free(void *ptr, size_t size)
{
    if (!ptr)
        return;
    if (size == 0)
        size = 1;
    if (size > kMaxPooledSize) {
        bytesLive_ -= size;
        ::operator delete(ptr);
        return;
    }
    size_t cls = classIndex(size);
    auto *node = static_cast<FreeNode *>(ptr);
    node->next = freeLists_[cls];
    freeLists_[cls] = node;
    bytesLive_ -= kClassSizes[cls];
}

} // namespace rhtm
