/**
 * @file
 * Per-thread size-class pool allocator.
 *
 * The paper found the system malloc caused contention and HTM false
 * aborts and switched to tc-malloc's per-thread pools; this allocator
 * plays that role. Each thread owns a PoolAllocator; allocation and
 * deallocation touch only thread-local free lists, so transactions never
 * contend on allocator metadata. Memory obtained from the OS is held for
 * the allocator's lifetime (never returned early), which makes stale
 * transactional reads of freed blocks benign.
 */

#ifndef RHTM_MEM_POOL_ALLOCATOR_H
#define RHTM_MEM_POOL_ALLOCATOR_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rhtm
{

/**
 * Thread-local segregated-fit allocator with sized free.
 *
 * Not thread safe: each thread must use its own instance. Blocks may be
 * freed into a different thread's pool than the one that allocated them
 * (they simply migrate); the backing chunks are owned by the allocating
 * pool and live until it is destroyed.
 */
class PoolAllocator
{
  public:
    /** Largest size served from pooled size classes. */
    static constexpr size_t kMaxPooledSize = 4096;

    PoolAllocator();
    ~PoolAllocator();

    PoolAllocator(const PoolAllocator &) = delete;
    PoolAllocator &operator=(const PoolAllocator &) = delete;

    /**
     * Allocate @p size bytes, 16-byte aligned, zero-initialized.
     * Sizes above kMaxPooledSize fall through to operator new.
     */
    void *alloc(size_t size);

    /**
     * Return a block of @p size bytes previously obtained from any
     * PoolAllocator (or, for large sizes, from alloc()'s fallback).
     */
    void free(void *ptr, size_t size);

    /**
     * Bytes currently handed out minus bytes freed into this pool.
     * May go negative when blocks migrate between pools.
     */
    int64_t bytesLive() const { return bytesLive_; }

    /** Bytes reserved from the OS by this pool. */
    size_t bytesReserved() const { return bytesReserved_; }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    static constexpr size_t kChunkSize = 64 * 1024;
    static constexpr size_t kNumClasses = 16;

    /** Size-class boundaries; index i serves sizes <= kClassSizes[i]. */
    static const size_t kClassSizes[kNumClasses];

    /** Map a byte size to its class index; size <= kMaxPooledSize. */
    static size_t classIndex(size_t size);

    /** Carve a fresh chunk into blocks for class @p cls. */
    void refill(size_t cls);

    FreeNode *freeLists_[kNumClasses];
    std::vector<std::unique_ptr<char[]>> chunks_;
    int64_t bytesLive_;
    size_t bytesReserved_;
};

} // namespace rhtm

#endif // RHTM_MEM_POOL_ALLOCATOR_H
