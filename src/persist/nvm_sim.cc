#include "src/persist/nvm_sim.h"

#include <chrono>

namespace rhtm
{

uint64_t
nvmChecksum(const uint64_t *words, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        uint64_t w = words[i];
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

RecoveryReport
recoverImage(NvmImage &image, const RecoveryOptions &opts)
{
    auto start = std::chrono::steady_clock::now();
    RecoveryReport report;
    const std::vector<uint64_t> &log = image.log;
    size_t pos = 0;
    while (pos < log.size() && log[pos] != 0) {
        uint64_t header = log[pos];
        if (!nvmHeaderValid(header)) {
            // Unparsable header: the append itself was cut short (or
            // the media is corrupt); nothing beyond here has a known
            // extent. Treat the tail as one discarded record.
            ++report.recordsDiscarded;
            break;
        }
        uint64_t entries = nvmHeaderEntries(header);
        size_t sealPos = pos + 1 + 2 * entries;
        if (sealPos >= log.size()) {
            ++report.recordsDiscarded;
            break;
        }
        uint64_t want = kNvmSealBase ^
                        nvmChecksum(&log[pos], 1 + 2 * entries);
        bool sealed = log[sealPos] == want;
        if (sealed || opts.bugReplayUnsealed) {
            for (uint64_t e = 0; e < entries; ++e) {
                uint64_t off = log[pos + 1 + 2 * e];
                uint64_t val = log[pos + 2 + 2 * e];
                if (off < image.data.size()) {
                    image.data[off] = val;
                    ++report.entriesReplayed;
                }
            }
            ++report.recordsReplayed;
        } else {
            ++report.recordsDiscarded;
        }
        pos = sealPos + 1;
    }
    for (uint64_t mark : image.marks) {
        if (nvmMarkValid(mark))
            ++report.marksObserved;
    }
    report.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
}

NvmSim::NvmSim(const PersistConfig &cfg)
    : cfg_(cfg), sched_(cfg.crashes)
{}

void
NvmSim::registerRegion(const uint64_t *base, size_t words)
{
    std::lock_guard<std::mutex> guard(mu_);
    uint64_t start = initialData_.size();
    ranges_.push_back(Range{base, words, start});
    for (size_t i = 0; i < words; ++i) {
        uint64_t v = base[i];
        initialData_.push_back(v);
        vol_.data.push_back(v);
        dur_.data.push_back(v); // Formatting is durable by definition.
    }
}

bool
NvmSim::mapOffset(const uint64_t *addr, uint64_t *offset) const
{
    std::lock_guard<std::mutex> guard(mu_);
    for (const Range &r : ranges_) {
        if (addr >= r.base && addr < r.base + r.words) {
            *offset = r.startOffset +
                      static_cast<uint64_t>(addr - r.base);
            return true;
        }
    }
    return false;
}

uint64_t *
NvmSim::volSlot(uint8_t region, uint64_t offset)
{
    switch (region) {
      case 0: return &vol_.data[offset];
      case 1: return &vol_.log[offset];
      default: return &vol_.marks[offset];
    }
}

std::vector<NvmSim::PendingPwb> &
NvmSim::pendingOf(unsigned tid)
{
    if (pending_.size() <= tid)
        pending_.resize(tid + 1);
    return pending_[tid];
}

void
NvmSim::pwbLocked(unsigned tid, uint8_t region, uint64_t offset)
{
    pendingOf(tid).push_back(
        PendingPwb{region, offset, *volSlot(region, offset)});
    ++pwbs_;
}

void
NvmSim::fenceLocked(unsigned tid)
{
    std::vector<PendingPwb> &queue = pendingOf(tid);
    for (const PendingPwb &p : queue) {
        switch (p.region) {
          case 0: dur_.data[p.offset] = p.value; break;
          case 1: dur_.log[p.offset] = p.value; break;
          default: dur_.marks[p.offset] = p.value; break;
        }
    }
    queue.clear();
    ++pfences_;
}

uint64_t
NvmSim::appendRecord(unsigned tid, uint64_t txnId,
                     const std::vector<DurableWrite> &writes)
{
    std::lock_guard<std::mutex> guard(mu_);
    uint64_t pos = vol_.log.size();
    // Grow both images together: the media has capacity; only the
    // *contents* go through the pwb/pfence discipline.
    size_t grow = 2 + 2 * writes.size(); // header + payload + seal.
    vol_.log.resize(pos + grow, 0);
    dur_.log.resize(pos + grow, 0);
    vol_.log[pos] = nvmRecordHeader(txnId, writes.size());
    pwbLocked(tid, 1, pos);
    for (size_t i = 0; i < writes.size(); ++i) {
        vol_.log[pos + 1 + 2 * i] = writes[i].offset;
        vol_.log[pos + 2 + 2 * i] = writes[i].value;
        pwbLocked(tid, 1, pos + 1 + 2 * i);
        pwbLocked(tid, 1, pos + 2 + 2 * i);
    }
    // Fence the payload before returning: recovery can then always
    // parse an unsealed record's extent and skip it (the seal is the
    // only commit point; see recoverImage()).
    fenceLocked(tid);
    return pos;
}

uint64_t
NvmSim::sealRecord(unsigned tid, uint64_t txnId, uint64_t logPos,
                   const std::vector<DurableWrite> &writes)
{
    std::lock_guard<std::mutex> guard(mu_);
    uint64_t sealPos = logPos + 1 + 2 * writes.size();
    vol_.log[sealPos] =
        kNvmSealBase ^ nvmChecksum(&vol_.log[logPos],
                                   1 + 2 * writes.size());
    pwbLocked(tid, 1, sealPos);
    fenceLocked(tid);
    uint64_t index = history_.size();
    history_.push_back(
        DurableTxnRecord{txnId, tid, index, logPos, writes});
    vol_.marks.push_back(0);
    dur_.marks.push_back(0);
    ++sealed_;
    return index;
}

void
NvmSim::dataWrite(unsigned tid, uint64_t offset, uint64_t value)
{
    std::lock_guard<std::mutex> guard(mu_);
    vol_.data[offset] = value;
    pwbLocked(tid, 0, offset);
}

void
NvmSim::fence(unsigned tid)
{
    std::lock_guard<std::mutex> guard(mu_);
    fenceLocked(tid);
}

void
NvmSim::writeMark(unsigned tid, uint64_t recordIndex, uint64_t txnId)
{
    std::lock_guard<std::mutex> guard(mu_);
    vol_.marks[recordIndex] = nvmMarkWord(txnId);
    pwbLocked(tid, 2, recordIndex);
    fenceLocked(tid);
    ++marks_;
}

bool
NvmSim::crashPoint(FaultSite site, unsigned tid)
{
    std::lock_guard<std::mutex> guard(mu_);
    if (!sched_.onSite(site, tid))
        return false;
    captureLocked(site, tid, sched_.hits(site));
    return true;
}

void
NvmSim::captureLocked(FaultSite site, unsigned tid, uint64_t siteHit)
{
    if (snapshots_.size() >= cfg_.maxSnapshots)
        return;
    CrashSnapshot snap;
    snap.site = site;
    snap.tid = tid;
    snap.siteHit = siteHit;
    snap.image = dur_;
    // Unfenced pwbs at the power loss: by default none retired (the
    // adversarial reading of "issued is not flushed"); with
    // reorderedFlushes a seeded random subset did, and with tornWrites
    // a surviving flush may carry only half the word. Seeded per
    // snapshot index, so a fixed --crash-seed replays byte-identical
    // images in single-threaded runs.
    Rng rng(cfg_.seed + 0x9e3779b97f4a7c15ull * (snapshots_.size() + 1));
    if (cfg_.reorderedFlushes) {
        for (const std::vector<PendingPwb> &queue : pending_) {
            for (const PendingPwb &p : queue) {
                if (rng.nextBounded(2) == 0)
                    continue; // This flush never retired.
                uint64_t value = p.value;
                std::vector<uint64_t> &region =
                    p.region == 0   ? snap.image.data
                    : p.region == 1 ? snap.image.log
                                    : snap.image.marks;
                if (cfg_.tornWrites && rng.nextBounded(2) == 0) {
                    // Low half retired, high half did not.
                    value = (region[p.offset] & 0xFFFFFFFF00000000ull) |
                            (value & 0xFFFFFFFFull);
                }
                region[p.offset] = value;
            }
        }
    }
    snap.history = history_;
    snap.initialData = initialData_;
    snapshots_.push_back(std::move(snap));
}

NvmImage
NvmSim::durableImage() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return dur_;
}

std::vector<DurableTxnRecord>
NvmSim::historyCopy() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return history_;
}

std::vector<uint64_t>
NvmSim::initialData() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return initialData_;
}

size_t
NvmSim::dataWords() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return initialData_.size();
}

uint64_t
NvmSim::pwbCount() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return pwbs_;
}

uint64_t
NvmSim::pfenceCount() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return pfences_;
}

uint64_t
NvmSim::recordsSealed() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return sealed_;
}

uint64_t
NvmSim::marksWritten() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return marks_;
}

uint64_t
NvmSim::crashesCaptured() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return snapshots_.size();
}

void
NvmSim::resetForTest()
{
    std::lock_guard<std::mutex> guard(mu_);
    vol_.data = initialData_;
    dur_.data = initialData_;
    vol_.log.clear();
    dur_.log.clear();
    vol_.marks.clear();
    dur_.marks.clear();
    pending_.clear();
    history_.clear();
    snapshots_.clear();
    pwbs_ = pfences_ = sealed_ = marks_ = 0;
    sched_.resetForTest();
}

} // namespace rhtm
