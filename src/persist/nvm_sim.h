/**
 * @file
 * Simulated non-volatile memory for the durable-commit overlay
 * (docs/PERSISTENCE.md).
 *
 * The model follows the persistent-HyTM literature's machine model:
 * stores reach a volatile cache first and become durable only after an
 * explicit write-back (`pwb`, the CLWB analog) followed by a fence
 * (`pfence`, the SFENCE analog). NvmSim keeps two images of the
 * simulated media -- the volatile one every write lands in and the
 * durable one only pfence-drained write-backs reach -- plus a
 * per-thread queue of issued-but-unfenced pwbs.
 *
 * The media is three regions:
 *   - data:  the shadow durable heap. Setup code registers ordinary
 *            heap ranges; transactional writes to registered words are
 *            redo-logged and written behind.
 *   - log:   the append-only durable redo log. One record per durable
 *            transaction: header, (offset,value) payload, seal word
 *            (magic xor checksum). The payload is fenced before the
 *            seal is written, and the seal is fenced before the commit
 *            locks release, so the sealed set is exactly the durable
 *            commit order.
 *   - marks: one commit-marker word per sealed record, written (and
 *            fenced) after the write-behind drain.
 *
 * A "crash" never kills the process: at a scripted CrashScheduler
 * coordinate the NvmSim atomically snapshots the durable image --
 * dropping, reordering, or tearing the still-unfenced pwbs under a
 * seeded RNG -- together with the seal-order history that is the
 * checker's ground truth. The run continues; every snapshot is
 * recovered and verified after the run (src/check/recovery.h).
 */

#ifndef RHTM_PERSIST_NVM_SIM_H
#define RHTM_PERSIST_NVM_SIM_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/fault/crash_sched.h"
#include "src/fault/fault_injector.h"
#include "src/util/rng.h"

namespace rhtm
{

/** Persistence-overlay configuration (RuntimeConfig::persist). */
struct PersistConfig
{
    /**
     * Master switch. When set, every HTM fast path escalates to the
     * logged slow path (hardware transactions cannot contain pwb
     * ordering, per the Persistent HyTM split) and slow-path commits
     * run the seal/drain/mark protocol.
     */
    bool enabled = false;

    /**
     * Seed for the crash-capture RNG (torn/reordered pwb decisions);
     * 0 inherits RuntimeConfig::rngSeed. This is the --crash-seed
     * determinism knob: same seed, same single-threaded run, byte-
     * identical durable images.
     */
    uint64_t seed = 0;

    /** Crash capture may tear surviving unfenced pwbs (half a word). */
    bool tornWrites = false;

    /**
     * Crash capture persists a seeded random subset of unfenced pwbs
     * (flushes retire out of order). Default: drop them all.
     */
    bool reorderedFlushes = false;

    /** Snapshot budget; further scripted crashes are ignored. */
    size_t maxSnapshots = 64;

    /** Scripted crash coordinates (src/fault/crash_sched.h). */
    CrashSchedule crashes;
};

/** One word of redo payload: data-region offset and new value. */
struct DurableWrite
{
    uint64_t offset;
    uint64_t value;
};

/**
 * The media image: plain word arrays, byte-comparable (the crash
 * determinism guarantee is equality of this struct).
 */
struct NvmImage
{
    std::vector<uint64_t> data;
    std::vector<uint64_t> log;
    std::vector<uint64_t> marks;

    bool operator==(const NvmImage &) const = default;
};

/**
 * Ground-truth history entry: one sealed durable transaction, in seal
 * order (== durable commit order; see the file comment).
 */
struct DurableTxnRecord
{
    uint64_t txnId;
    unsigned tid;
    uint64_t recordIndex; //!< Seal-order position; also its marks slot.
    uint64_t logPos;      //!< Word offset of the record header in log.
    std::vector<DurableWrite> writes;
};

/** Everything captured at one scripted crash point. */
struct CrashSnapshot
{
    FaultSite site;    //!< Crash site that fired.
    unsigned tid;      //!< Thread whose protocol step crashed.
    uint64_t siteHit;  //!< Global hit index of the site at capture.
    NvmImage image;    //!< Durable media as the power loss left it.
    std::vector<DurableTxnRecord> history; //!< Sealed txns at capture.
    std::vector<uint64_t> initialData;     //!< Data region at format.
};

// ---------------------------------------------------------------------
// Log-record encoding (docs/PERSISTENCE.md "Log format").

/** Record header magic, top 16 bits. */
constexpr uint64_t kNvmRecordMagic = 0x52EC;

/** Seal base; the seal word is this xor the record checksum. */
constexpr uint64_t kNvmSealBase = 0x5EA1D00DFEEDFACEull;

/** Commit-marker magic, top 16 bits. */
constexpr uint64_t kNvmMarkMagic = 0x3A4B;

/** Build a header word: magic | entry count | low txn-id bits. */
inline uint64_t
nvmRecordHeader(uint64_t txnId, uint64_t entries)
{
    return (kNvmRecordMagic << 48) | ((entries & 0xFFFF) << 32) |
           (txnId & 0xFFFFFFFF);
}

/** True when @p word carries the record-header magic. */
inline bool
nvmHeaderValid(uint64_t word)
{
    return (word >> 48) == kNvmRecordMagic;
}

/** Entry count of a header word. */
inline uint64_t
nvmHeaderEntries(uint64_t word)
{
    return (word >> 32) & 0xFFFF;
}

/** Build a commit-marker word. */
inline uint64_t
nvmMarkWord(uint64_t txnId)
{
    return (kNvmMarkMagic << 48) | (txnId & 0xFFFFFFFFFFFFull);
}

/** True when @p word is a durable commit marker. */
inline bool
nvmMarkValid(uint64_t word)
{
    return (word >> 48) == kNvmMarkMagic;
}

/** FNV-1a over @p n log words (header + payload), for the seal. */
uint64_t nvmChecksum(const uint64_t *words, size_t n);

// ---------------------------------------------------------------------
// Recovery.

/** Deliberate-bug switches for checker regression tests. */
struct RecoveryOptions
{
    /**
     * Reintroduce the classic recovery bug: replay a record whose
     * seal does not verify (a torn/unsealed tail). The recovery-
     * consistency checker must flag the result (tools/ci.sh runs this
     * reverted-fix leg; see recovery_check_test.cc).
     */
    bool bugReplayUnsealed = false;
};

/** Per-recovery counters (bench_crash's per-phase CSV columns). */
struct RecoveryReport
{
    uint64_t recordsReplayed = 0;
    uint64_t recordsDiscarded = 0; //!< Unsealed/torn records skipped.
    uint64_t entriesReplayed = 0;
    uint64_t marksObserved = 0;    //!< Valid durable commit markers.
    double seconds = 0.0;          //!< Wall-clock replay time.
};

/**
 * Crash recovery: walk @p image's log in append order, replay every
 * record whose seal verifies into the data region, and discard (skip)
 * records whose seal does not -- a record appended but not yet sealed
 * at the crash, or one whose seal pwb never retired. Headers are
 * always durable before a crash site can fire (the payload is fenced
 * inside the append), so an unsealed record's extent is known and
 * recovery continues past it; replay stops only at the zeroed tail or
 * an unparsable header.
 */
RecoveryReport recoverImage(NvmImage &image,
                            const RecoveryOptions &opts = {});

// ---------------------------------------------------------------------

/**
 * The simulated NVM device plus its persistence-order bookkeeping.
 * One per TmRuntime; every operation serializes on an internal mutex
 * (the overlay is a correctness harness, not a fast path -- see
 * docs/PERSISTENCE.md "Cost model").
 */
class NvmSim
{
  public:
    explicit NvmSim(const PersistConfig &cfg);

    NvmSim(const NvmSim &) = delete;
    NvmSim &operator=(const NvmSim &) = delete;

    /**
     * Map @p words heap words starting at @p base onto the durable
     * data region (setup-time, before transactions run). The current
     * heap values become the formatted durable contents.
     */
    void registerRegion(const uint64_t *base, size_t words);

    /** Durable data-region offset of @p addr, or false if unmapped. */
    bool mapOffset(const uint64_t *addr, uint64_t *offset) const;

    // -- Durable-commit protocol steps (called by TxPersist) ----------

    /**
     * Append a record (header + payload) for @p writes, pwb every
     * word, and fence it: on return the payload is durable, the seal
     * is not. Returns the header's log position.
     */
    uint64_t appendRecord(unsigned tid, uint64_t txnId,
                          const std::vector<DurableWrite> &writes);

    /**
     * Write, pwb, and fence the seal word of the record at @p logPos,
     * then append the transaction to the seal-order history and
     * reserve its marks slot. Atomic with respect to crash capture.
     * Returns the record's seal-order index.
     */
    uint64_t sealRecord(unsigned tid, uint64_t txnId, uint64_t logPos,
                        const std::vector<DurableWrite> &writes);

    /** Write-behind one data word: volatile store + queued pwb. */
    void dataWrite(unsigned tid, uint64_t offset, uint64_t value);

    /** Drain this thread's pending pwbs into the durable image. */
    void fence(unsigned tid);

    /** Write, pwb, and fence the commit marker of @p recordIndex. */
    void writeMark(unsigned tid, uint64_t recordIndex, uint64_t txnId);

    /**
     * Crash hook: count the site hit and, when the schedule says so,
     * capture a snapshot (true). The caller keeps running either way.
     */
    bool crashPoint(FaultSite site, unsigned tid);

    // -- Inspection (quiescent callers) -------------------------------

    /** Copy of the durable media image. */
    NvmImage durableImage() const;

    /** Copy of the seal-order history. */
    std::vector<DurableTxnRecord> historyCopy() const;

    /** Copy of the formatted (initial) data region. */
    std::vector<uint64_t> initialData() const;

    /** Captured crash snapshots (stable once threads are quiescent). */
    const std::vector<CrashSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /** Registered data-region size in words. */
    size_t dataWords() const;

    uint64_t pwbCount() const;
    uint64_t pfenceCount() const;
    uint64_t recordsSealed() const;
    uint64_t marksWritten() const;
    uint64_t crashesCaptured() const;

    /**
     * Restore the just-formatted state: log/marks/history/snapshots/
     * pending cleared, data regions rewound to the registration-time
     * contents, crash schedule re-armed. Registered ranges persist.
     */
    void resetForTest();

  private:
    struct Range
    {
        const uint64_t *base;
        size_t words;
        uint64_t startOffset;
    };

    struct PendingPwb
    {
        uint8_t region; //!< 0 = data, 1 = log, 2 = marks.
        uint64_t offset;
        uint64_t value;
    };

    uint64_t *volSlot(uint8_t region, uint64_t offset);
    void pwbLocked(unsigned tid, uint8_t region, uint64_t offset);
    void fenceLocked(unsigned tid);
    std::vector<PendingPwb> &pendingOf(unsigned tid);
    void captureLocked(FaultSite site, unsigned tid, uint64_t siteHit);

    PersistConfig cfg_;
    CrashScheduler sched_;

    mutable std::mutex mu_;
    std::vector<Range> ranges_;
    std::vector<uint64_t> initialData_;
    NvmImage vol_; //!< Volatile (cached) media contents.
    NvmImage dur_; //!< Durable contents (fenced pwbs only).
    std::vector<std::vector<PendingPwb>> pending_; //!< Per tid.
    std::vector<DurableTxnRecord> history_;
    std::vector<CrashSnapshot> snapshots_;

    uint64_t pwbs_ = 0;
    uint64_t pfences_ = 0;
    uint64_t sealed_ = 0;
    uint64_t marks_ = 0;
};

} // namespace rhtm

#endif // RHTM_PERSIST_NVM_SIM_H
