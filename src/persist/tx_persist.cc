#include "src/persist/tx_persist.h"

#include <thread>

namespace rhtm
{

TxPersist::TxPersist(NvmSim *nvm, FaultInjector *injector,
                     ThreadStats *stats, unsigned tid)
    : nvm_(nvm), injector_(injector), stats_(stats), tid_(tid)
{}

void
TxPersist::firePoint(FaultSite site)
{
    if (injector_ != nullptr) {
        uint32_t spins = 0;
        switch (injector_->fire(site, &spins)) {
          case FaultKind::kDelay: {
            volatile uint32_t sink = 0;
            for (uint32_t i = 0; i < spins; ++i)
                sink = sink + 1;
            break;
          }
          case FaultKind::kYield:
            std::this_thread::yield();
            break;
          default:
            // Abort/squeeze kinds have no meaning at a crash site.
            break;
        }
    }
    nvm_->crashPoint(site, tid_);
}

void
TxPersist::stage(const uint64_t *addr, uint64_t value)
{
    uint64_t offset;
    if (!nvm_->mapOffset(addr, &offset))
        return;
    staged_.push_back(DurableWrite{offset, value});
}

void
TxPersist::sealStaged()
{
    if (staged_.empty())
        return;
    txnId_ = ((static_cast<uint64_t>(tid_) + 1) << 32) | ++nextSeq_;
    uint64_t logPos = nvm_->appendRecord(tid_, txnId_, staged_);
    firePoint(FaultSite::kCrashPreLogSeal);
    recordIndex_ = nvm_->sealRecord(tid_, txnId_, logPos, staged_);
    sealedWrites_ = std::move(staged_);
    staged_.clear();
    sealedPending_ = true;
    ++sealedCount_;
    if (stats_ != nullptr) {
        stats_->inc(Counter::kDurableRecordsSealed);
        stats_->inc(Counter::kDurableEntriesLogged,
                    sealedWrites_.size());
    }
    firePoint(FaultSite::kCrashPostSealPreWriteback);
}

void
TxPersist::drainAndMark()
{
    if (!sealedPending_)
        return;
    size_t n = sealedWrites_.size();
    for (size_t i = 0; i < n; ++i) {
        nvm_->dataWrite(tid_, sealedWrites_[i].offset,
                        sealedWrites_[i].value);
        if (i == (n - 1) / 2)
            firePoint(FaultSite::kCrashMidWriteback);
    }
    nvm_->fence(tid_);
    nvm_->writeMark(tid_, recordIndex_, txnId_);
    if (stats_ != nullptr)
        stats_->inc(Counter::kDurableMarksWritten);
    sealedWrites_.clear();
    sealedPending_ = false;
    firePoint(FaultSite::kCrashPostMarker);
}

void
TxPersist::resetForTest()
{
    staged_.clear();
    sealedWrites_.clear();
    sealedPending_ = false;
    recordIndex_ = 0;
    txnId_ = 0;
    nextSeq_ = 0;
    sealedCount_ = 0;
}

} // namespace rhtm
