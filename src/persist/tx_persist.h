/**
 * @file
 * Per-thread durable-commit facade over NvmSim.
 *
 * A session stages every write it makes to a registered durable range
 * (stage-at-write for eager algorithms, stage-at-publish for lazy
 * ones), then drives the three-step durable commit:
 *
 *   sealStaged()    -- while the commit locks are still held, before
 *                      the CommitSeqlock release / orec release /
 *                      global-lock drop that makes the transaction
 *                      visible: append the redo record, fence the
 *                      payload, write and fence the seal. The sealed
 *                      set is therefore always a dependency-consistent
 *                      prefix of the commit order.
 *   drainAndMark()  -- after release: write each value behind into
 *                      the durable data region (pwb per word), fence,
 *                      then write and fence the commit marker.
 *   discardStaged() -- on any abort/restart path before the seal.
 *
 * The four kCrash* fault sites fire between these fence points; the
 * thread's FaultInjector may additionally stretch the windows with
 * delay/yield rules (abort kinds are ignored here -- by seal time the
 * commit is past its point of no return).
 */

#ifndef RHTM_PERSIST_TX_PERSIST_H
#define RHTM_PERSIST_TX_PERSIST_H

#include <cstdint>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/persist/nvm_sim.h"
#include "src/stats/stats.h"

namespace rhtm
{

/** Per-thread durable-commit driver. Not shareable across threads. */
class TxPersist
{
  public:
    TxPersist(NvmSim *nvm, FaultInjector *injector, ThreadStats *stats,
              unsigned tid);

    TxPersist(const TxPersist &) = delete;
    TxPersist &operator=(const TxPersist &) = delete;

    /** True when a simulated NVM device is attached. */
    bool enabled() const { return nvm_ != nullptr; }

    /**
     * Record a transactional write. Writes outside every registered
     * durable range are ignored (volatile heap). Duplicates are kept:
     * replay applies entries in order, so last-write-wins holds.
     */
    void stage(const uint64_t *addr, uint64_t value);

    /** Staged entries for the current transaction. */
    bool hasStaged() const { return !staged_.empty(); }

    /** Abort/restart path: the attempt's staged writes are void. */
    void discardStaged() { staged_.clear(); }

    /**
     * Durable-commit step 1 (commit locks held): append + fence the
     * redo payload, fire kCrashPreLogSeal, seal + fence, fire
     * kCrashPostSealPreWriteback. No-op with nothing staged (read-only
     * transactions have no durable footprint).
     */
    void sealStaged();

    /**
     * Durable-commit step 2 (after the visibility release): write the
     * sealed values behind (kCrashMidWriteback fires mid-drain),
     * fence, write + fence the commit marker, fire kCrashPostMarker.
     * No-op unless a seal is outstanding.
     */
    void drainAndMark();

    /** Records this thread has sealed (white-box tests). */
    uint64_t recordsSealed() const { return sealedCount_; }

    /** Restore the just-constructed state (test isolation). */
    void resetForTest();

  private:
    void firePoint(FaultSite site);

    NvmSim *nvm_;
    FaultInjector *injector_;
    ThreadStats *stats_;
    unsigned tid_;

    std::vector<DurableWrite> staged_;
    std::vector<DurableWrite> sealedWrites_;
    bool sealedPending_ = false;
    uint64_t recordIndex_ = 0;
    uint64_t txnId_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t sealedCount_ = 0;
};

} // namespace rhtm

#endif // RHTM_PERSIST_TX_PERSIST_H
