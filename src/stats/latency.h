/**
 * @file
 * Fixed-size log2 latency histogram for per-operation timings.
 *
 * HDR-style layout: each power-of-two octave is split into 4 linear
 * sub-buckets, giving <= 25% relative error per bucket over the full
 * uint64 nanosecond range in 256 counters. Recording is two shifts and
 * an increment -- cheap enough to sit inside the bench worker loop
 * without perturbing the measured run -- and percentiles are computed
 * once at the end by walking the counters.
 */

#ifndef RHTM_STATS_LATENCY_H
#define RHTM_STATS_LATENCY_H

#include <array>
#include <cstdint>

namespace rhtm
{

/** Log2-octave histogram of nanosecond latencies. */
class LatencyHistogram
{
  public:
    /** Linear sub-buckets per power-of-two octave. */
    static constexpr unsigned kSubBuckets = 4;

    /** Total counter slots. */
    static constexpr unsigned kNumBuckets = 64 * kSubBuckets;

    /** Record one sample of @p ns nanoseconds. */
    void
    record(uint64_t ns)
    {
        ++count_;
        if (ns > max_)
            max_ = ns;
        ++buckets_[bucketOf(ns)];
    }

    /** Fold another histogram (e.g. another thread's) into this one. */
    void
    merge(const LatencyHistogram &other)
    {
        count_ += other.count_;
        if (other.max_ > max_)
            max_ = other.max_;
        for (unsigned i = 0; i < kNumBuckets; ++i)
            buckets_[i] += other.buckets_[i];
    }

    /** Samples recorded. */
    uint64_t count() const { return count_; }

    /** Largest sample seen (exact, not bucketed). */
    uint64_t maxNs() const { return max_; }

    /**
     * Value at percentile @p pct in [0, 100]: the lower bound of the
     * bucket holding the pct-th sample (conservative estimate).
     */
    uint64_t
    percentileNs(double pct) const
    {
        if (count_ == 0)
            return 0;
        uint64_t target =
            static_cast<uint64_t>(pct / 100.0 *
                                  static_cast<double>(count_));
        if (target < 1)
            target = 1;
        if (target > count_)
            target = count_;
        uint64_t seen = 0;
        for (unsigned i = 0; i < kNumBuckets; ++i) {
            seen += buckets_[i];
            if (seen >= target)
                return bucketLowNs(i);
        }
        return max_;
    }

  private:
    static constexpr unsigned kSubBits = 2; // log2(kSubBuckets)

    static unsigned
    bucketOf(uint64_t ns)
    {
        if (ns < kSubBuckets)
            return static_cast<unsigned>(ns);
        unsigned msb =
            63u - static_cast<unsigned>(__builtin_clzll(ns));
        unsigned sub = static_cast<unsigned>(
            (ns >> (msb - kSubBits)) & (kSubBuckets - 1));
        unsigned idx = (msb - kSubBits + 1) * kSubBuckets + sub;
        return idx < kNumBuckets ? idx : kNumBuckets - 1;
    }

    static uint64_t
    bucketLowNs(unsigned idx)
    {
        if (idx < kSubBuckets)
            return idx;
        unsigned octave = idx / kSubBuckets + kSubBits - 1;
        unsigned sub = idx % kSubBuckets;
        return (uint64_t(1) << octave) +
               (uint64_t(sub) << (octave - kSubBits));
    }

    std::array<uint64_t, kNumBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t max_ = 0;
};

} // namespace rhtm

#endif // RHTM_STATS_LATENCY_H
