#include "src/stats/stats.h"

#include <sstream>

namespace rhtm
{

namespace
{

double
ratio(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) / den;
}

} // namespace

double
StatsSummary::conflictAbortsPerOp() const
{
    return ratio(get(Counter::kHtmConflictAborts), operations());
}

double
StatsSummary::capacityAbortsPerOp() const
{
    return ratio(get(Counter::kHtmCapacityAborts), operations());
}

double
StatsSummary::injectedAbortsPerOp() const
{
    return ratio(get(Counter::kHtmInjectedAborts), operations());
}

double
StatsSummary::subscriptionAbortsPerOp() const
{
    return ratio(get(Counter::kHtmSubscriptionAborts), operations());
}

double
StatsSummary::restartsPerSlowPath() const
{
    uint64_t slow = get(Counter::kCommitsMixedPath) +
                    get(Counter::kCommitsSoftwarePath) +
                    get(Counter::kCommitsSerialPath);
    return ratio(get(Counter::kSlowPathRestarts), slow);
}

double
StatsSummary::slowPathRatio() const
{
    return ratio(get(Counter::kFallbacks), operations());
}

double
StatsSummary::prefixSuccessRatio() const
{
    return ratio(get(Counter::kPrefixSuccesses),
                 get(Counter::kPrefixAttempts));
}

double
StatsSummary::postfixSuccessRatio() const
{
    return ratio(get(Counter::kPostfixSuccesses),
                 get(Counter::kPostfixAttempts));
}

uint64_t
StatsSummary::accesses() const
{
    return get(Counter::kFastPathReads) + get(Counter::kFastPathWrites) +
           get(Counter::kSlowPathReads) + get(Counter::kSlowPathWrites);
}

double
StatsSummary::accessesPerOp() const
{
    return ratio(accesses(), operations());
}

void
StatsSummary::accumulate(const ThreadStats &ts)
{
    for (unsigned i = 0; i < kNumCounters; ++i)
        totals[i] += ts.counts[i];
}

std::string
StatsSummary::toString() const
{
    std::ostringstream os;
    os << "operations:            " << operations() << "\n"
       << "fast-path commits:     " << get(Counter::kCommitsFastPath) << "\n"
       << "mixed-path commits:    " << get(Counter::kCommitsMixedPath)
       << "\n"
       << "software-path commits: " << get(Counter::kCommitsSoftwarePath)
       << "\n"
       << "serial-path commits:   " << get(Counter::kCommitsSerialPath)
       << "\n"
       << "HTM conflict aborts:   " << get(Counter::kHtmConflictAborts)
       << " (" << conflictAbortsPerOp() << "/op)\n"
       << "HTM capacity aborts:   " << get(Counter::kHtmCapacityAborts)
       << " (" << capacityAbortsPerOp() << "/op)\n"
       << "HTM injected aborts:   " << get(Counter::kHtmInjectedAborts)
       << " (" << injectedAbortsPerOp() << "/op)\n"
       << "HTM subscription aborts: "
       << get(Counter::kHtmSubscriptionAborts) << " ("
       << subscriptionAbortsPerOp() << "/op)\n"
       << "fast-path attempts:    " << get(Counter::kFastPathAttempts)
       << "\n"
       << "kill-switch activations: "
       << get(Counter::kKillSwitchActivations) << "\n"
       << "kill-switch bypasses:  " << get(Counter::kKillSwitchBypasses)
       << "\n"
       << "slow-path restarts:    " << get(Counter::kSlowPathRestarts)
       << " (" << restartsPerSlowPath() << "/slow-path)\n"
       << "slow-path ratio:       " << slowPathRatio() << "\n"
       << "prefix success ratio:  " << prefixSuccessRatio() << "\n"
       << "postfix success ratio: " << postfixSuccessRatio() << "\n"
       << "serial acquires:       " << get(Counter::kSerialAcquires)
       << " (" << ratio(get(Counter::kSerialWaitTicks),
                        get(Counter::kSerialAcquires))
       << " wait-ticks each)\n"
       << "stalls detected:       " << get(Counter::kStallsDetected)
       << " (yields " << get(Counter::kStallYields) << ", sleeps "
       << get(Counter::kStallSleeps) << ", recovered "
       << get(Counter::kStallRecoveries) << ")\n"
       << "irrevocable upgrades:  "
       << get(Counter::kIrrevocableUpgrades) << "\n"
       << "deferred actions:      commit "
       << get(Counter::kCommitActionsRun) << ", abort "
       << get(Counter::kAbortActionsRun) << "\n"
       << "user-exception aborts: "
       << get(Counter::kUserExceptionAborts) << "\n"
       << "transactional accesses: " << accesses() << " ("
       << accessesPerOp() << "/op)\n";
    if (get(Counter::kDurableRecordsSealed) > 0 ||
        get(Counter::kPersistEscalations) > 0) {
        os << "persist escalations:   "
           << get(Counter::kPersistEscalations) << "\n"
           << "durable records:       "
           << get(Counter::kDurableRecordsSealed) << " sealed ("
           << get(Counter::kDurableEntriesLogged) << " entries), "
           << get(Counter::kDurableMarksWritten) << " marked\n";
    }
    if (get(Counter::kDeadlineExceeded) > 0 ||
        get(Counter::kAdmissionShed) > 0 ||
        get(Counter::kAdmissionQueuedTicks) > 0) {
        os << "deadline exceeded:     "
           << get(Counter::kDeadlineExceeded) << "\n"
           << "admission:             shed "
           << get(Counter::kAdmissionShed) << ", queued-ticks "
           << get(Counter::kAdmissionQueuedTicks) << "\n";
    }
    return os.str();
}

} // namespace rhtm
