/**
 * @file
 * Execution statistics matching the analysis rows of the paper's
 * Figures 4-6: HTM conflict/capacity aborts per operation, slow-path
 * restarts per slow-path transaction, slow-path execution ratio, and
 * the RH prefix/postfix success ratios.
 */

#ifndef RHTM_STATS_STATS_H
#define RHTM_STATS_STATS_H

#include <array>
#include <cstdint>
#include <string>

namespace rhtm
{

/** Countable events; one slot per event per thread. */
enum class Counter : unsigned
{
    kCommitsFastPath = 0,   //!< Pure hardware fast-path commits.
    kCommitsMixedPath,      //!< Mixed (RH) slow-path commits.
    kCommitsSoftwarePath,   //!< All-software slow-path commits.
    kCommitsSerialPath,     //!< Commits under the serial/global lock.
    kHtmConflictAborts,     //!< Simulated HTM conflict aborts.
    kHtmCapacityAborts,     //!< Simulated HTM capacity aborts.
    kHtmExplicitAborts,     //!< Explicit HTM_Abort() calls.
    kHtmOtherAborts,        //!< Injected "interrupt"-style aborts.
    kHtmInjectedAborts,     //!< Aborts fired by the fault injector.
    kHtmSubscriptionAborts, //!< Lock-subscription aborts at begin.
    kFastPathAttempts,      //!< Hardware fast-path begins.
    kKillSwitchActivations, //!< Anti-lemming kill switch trips.
    kKillSwitchBypasses,    //!< Fast-path begins skipped while tripped.
    kFallbacks,             //!< Fast path gave up; entered slow path.
    kSlowPathRestarts,      //!< Slow-path consistency restarts.
    kPrefixAttempts,        //!< RH HTM-prefix transactions started.
    kPrefixSuccesses,       //!< RH HTM-prefix transactions committed.
    kPostfixAttempts,       //!< RH HTM-postfix transactions started.
    kPostfixSuccesses,      //!< RH HTM-postfix transactions committed.
    kOperations,            //!< Committed top-level transactions.
    kReadOnlyCommits,       //!< Transactions committed read-only.
    kSerialAcquires,        //!< Serial ticket-lock acquisitions.
    kSerialWaitTicks,       //!< Wait iterations spent queued for it.
    kStallsDetected,        //!< Watchdog: holder exceeded stall budget.
    kStallYields,           //!< Watchdog escalation: yield steps.
    kStallSleeps,           //!< Watchdog escalation: sleep steps.
    kStallRecoveries,       //!< Stalled waits that cleared and resumed.
    kIrrevocableUpgrades,   //!< becomeIrrevocable() grants.
    kCommitActionsRun,      //!< Deferred onCommit handlers executed.
    kAbortActionsRun,       //!< Deferred onAbort handlers executed.
    kUserExceptionAborts,   //!< Bodies unwound by a user exception.
    kFastPathReads,         //!< Transactional reads inside HTM attempts.
    kFastPathWrites,        //!< Transactional writes inside HTM attempts.
    kSlowPathReads,         //!< Instrumented software/mixed-path reads.
    kSlowPathWrites,        //!< Instrumented software/mixed-path writes.
    kPersistEscalations,    //!< Fast paths escalated for durability.
    kDurableRecordsSealed,  //!< Redo-log records sealed (durable txns).
    kDurableEntriesLogged,  //!< (offset,value) pairs appended to the log.
    kDurableMarksWritten,   //!< Commit markers made durable.
    kDeadlineExceeded,      //!< Transactions unwound at their deadline.
    kAdmissionShed,         //!< Transactions shed by the admission gate.
    kAdmissionQueuedTicks,  //!< Wait iterations spent queued at the gate.
    kCrossShardCommits,     //!< Multi-domain transactions committed.
    kCrossShardRestarts,    //!< Multi-domain prepare/validate failures.
    kCrossShardEscalations, //!< Multi-domain commits that went serial.
    kRevalidations,         //!< Full value-log revalidations run.
    kRevalidationsSkipped,  //!< Revalidations skipped via the filter ring.
    kTsExtensions,          //!< Eager-path timestamp extensions taken.
    kGroupCommitLeads,      //!< Group-commit batches led (clock bumps saved
                            //!< equal the joins below).
    kGroupCommitJoins,      //!< Commits published by another thread's bump.
    kGroupCommitRejects,    //!< Group members bounced to a solo commit.
    kNumCounters
};

/** Number of counter slots. */
constexpr unsigned kNumCounters =
    static_cast<unsigned>(Counter::kNumCounters);

/**
 * Cache-line padded per-thread counter block. Single-writer; readers
 * aggregate after the run, so plain (non-atomic within a thread) counts
 * would suffice, but the slots are written by exactly one thread and
 * read only at quiescence, making plain uint64_t safe.
 */
struct alignas(64) ThreadStats
{
    std::array<uint64_t, kNumCounters> counts{};

    /** Increment @p c by @p delta. */
    void
    inc(Counter c, uint64_t delta = 1)
    {
        counts[static_cast<unsigned>(c)] += delta;
    }

    /** Current value of @p c. */
    uint64_t
    get(Counter c) const
    {
        return counts[static_cast<unsigned>(c)];
    }

    /** Zero every slot. */
    void reset() { counts.fill(0); }
};

/**
 * Aggregated totals plus the derived metrics the paper plots.
 */
struct StatsSummary
{
    std::array<uint64_t, kNumCounters> totals{};

    /** Total of @p c across threads. */
    uint64_t
    get(Counter c) const
    {
        return totals[static_cast<unsigned>(c)];
    }

    /** Committed top-level transactions. */
    uint64_t operations() const { return get(Counter::kOperations); }

    /** HTM conflict aborts per committed operation (figure row 2). */
    double conflictAbortsPerOp() const;

    /** HTM capacity aborts per committed operation (figure row 2). */
    double capacityAbortsPerOp() const;

    /** Injector-fired HTM aborts per committed operation. */
    double injectedAbortsPerOp() const;

    /** Lock-subscription aborts per committed operation. */
    double subscriptionAbortsPerOp() const;

    /** Restarts per slow-path transaction (figure row 3). */
    double restartsPerSlowPath() const;

    /**
     * Fraction of operations that fell back off the pure hardware
     * fast path (figure row 4).
     */
    double slowPathRatio() const;

    /** HTM-prefix success ratio (figure row 5). */
    double prefixSuccessRatio() const;

    /** HTM-postfix success ratio (figure row 5). */
    double postfixSuccessRatio() const;

    /** Total transactional reads+writes, every path and attempt. */
    uint64_t accesses() const;

    /** Transactional accesses per committed operation. */
    double accessesPerOp() const;

    /** Merge another thread's counters into the totals. */
    void accumulate(const ThreadStats &ts);

    /** Human-readable multi-line dump (one metric per line). */
    std::string toString() const;
};

} // namespace rhtm

#endif // RHTM_STATS_STATS_H
