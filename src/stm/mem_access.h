/**
 * @file
 * Compatibility forwarder: the RawMem/EngineMem access policies moved
 * into the shared transaction engine (src/core/engine/mem_access.h).
 */

#ifndef RHTM_STM_MEM_ACCESS_H
#define RHTM_STM_MEM_ACCESS_H

#include "src/core/engine/mem_access.h"

#endif // RHTM_STM_MEM_ACCESS_H
