#include "src/stm/norec.h"

#include <cassert>

#include "src/core/engine/deadline.h"
#include "src/core/engine/group_commit.h"

namespace rhtm
{

namespace
{

/** Pure-STM restart storms are rare; serialize after this many. */
constexpr unsigned kSerializeAfterRestarts = 64;

} // namespace

//
// Eager NOrec
//

NOrecEagerSession::NOrecEagerSession(TmDomain &domain,
                                     ThreadStats *stats,
                                     unsigned access_penalty,
                                     TxPersist *persist,
                                     const RetryPolicy *policy)
    : g_(domain.globals), stats_(stats), penalty_(access_penalty),
      seqlock_(mem_, &domain.globals.clock), persist_(persist),
      policy_(policy)
{}

uint64_t
NOrecEagerSession::stableClock()
{
    for (;;) {
        uint64_t v = mem_.load(&g_.clock);
        if (!clockIsLocked(v))
            return v;
        // Deadline-safe: nothing is held while the clock is someone
        // else's, so the poll may unwind freely.
        if (deadline_ != nullptr)
            deadline_->poll();
        backoff_.pause();
    }
}

void
NOrecEagerSession::begin(TxnHint hint)
{
    (void)hint;
    undo_.clear();
    readLog_.clear();
    writeFilter_.clear();
    // The eager read log exists only to extend; off both fronts it
    // stays empty and the classic protocol is byte-for-byte intact.
    readLog_.setFilterEnabled(commitCfg_.tsExtension &&
                              commitCfg_.readFilter);
    if (commitCfg_.filterSaturateForTest) {
        readLog_.saturateFilterForTest();
        writeFilter_.saturate();
    }
    if (serialized_) {
        // Progress escape hatch: a transaction that keeps restarting
        // takes the writer lock up front and runs exclusively.
        txVersion_ = seqlock_.acquireBlocking(
            [this] { return stableClock(); },
            [this] {
                if (deadline_ != nullptr)
                    deadline_->poll();
                backoff_.pause();
            });
        writeDetected_ = true;
        bindDispatch(kWriterDispatch, this);
        return;
    }
    writeDetected_ = false;
    txVersion_ = stableClock();
    bindDispatch(kReadPhaseDispatch, this);
}

uint64_t
NOrecEagerSession::readPhaseRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    uint64_t v = s->mem_.load(addr);
    if (s->commitCfg_.tsExtension) {
        // Front 3: instead of the unconditional restart below, keep a
        // value log and extend the snapshot across foreign commits.
        while (s->mem_.load(&s->g_.clock) != s->txVersion_) {
            s->txVersion_ = s->extend();
            v = s->mem_.load(addr);
        }
        s->readLog_.push(addr, v);
        return v;
    }
    if (s->mem_.load(&s->g_.clock) != s->txVersion_) {
        // Some writer committed (or is writing): with no read log, the
        // eager design must restart (paper Section 3.1).
        s->restart();
    }
    return v;
}

uint64_t
NOrecEagerSession::extend()
{
    if (commitCfg_.readFilter) {
        uint64_t cur = stableClock();
        if (cur == txVersion_)
            return cur; // The mover was a lock that restored; no-op.
        if (g_.filterRing.coveredDisjoint(txVersion_, cur,
                                          readLog_.filter())) {
            // Every commit in (txVersion_, cur] published a write
            // summary disjoint from our reads: the log still holds by
            // construction, adopt cur without touching it.
            if (stats_) {
                stats_->inc(Counter::kRevalidationsSkipped);
                stats_->inc(Counter::kTsExtensions);
            }
            return cur;
        }
    }
    if (policy_ != nullptr && policy_->revertTsExtensionFix) {
        // BUG (reverted fix, check-matrix leg): value-check against a
        // possibly mid-writeback memory image and adopt a raw --
        // possibly locked -- clock sample. Once txVersion_ equals the
        // locked value, later reads compare equal and sail past
        // validation while the writer is still writing: zombie reads.
        // The correct path below only ever adopts a stable snapshot
        // that held still across the value walk.
        if (!readLog_.consistent(mem_))
            restart();
        return mem_.load(&g_.clock);
    }
    if (stats_)
        stats_->inc(Counter::kRevalidations);
    uint64_t v = readLog_.revalidate(mem_, &g_.clock,
                                     [this] { return stableClock(); });
    if (stats_)
        stats_->inc(Counter::kTsExtensions);
    return v;
}

void
NOrecEagerSession::readPhaseWrite(void *self, uint64_t *addr,
                                  uint64_t value)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    s->acquireClockLock();
    s->writeDetected_ = true;
    s->bindDispatch(kWriterDispatch, s);
    if (s->commitCfg_.readFilter)
        s->writeFilter_.add(addr);
    s->undo_.push(addr, s->mem_.load(addr));
    if (s->persist_ != nullptr)
        s->persist_->stage(addr, value);
    s->mem_.store(addr, value);
}

uint64_t
NOrecEagerSession::writerRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    // We hold the clock: no writer can commit, reads are stable.
    return s->mem_.load(addr);
}

void
NOrecEagerSession::writerWrite(void *self, uint64_t *addr,
                               uint64_t value)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    if (s->commitCfg_.readFilter)
        s->writeFilter_.add(addr);
    s->undo_.push(addr, s->mem_.load(addr));
    if (s->persist_ != nullptr)
        s->persist_->stage(addr, value);
    s->mem_.store(addr, value);
}

void
NOrecEagerSession::acquireClockLock()
{
    if (seqlock_.tryAcquireAt(txVersion_))
        return;
    if (commitCfg_.tsExtension) {
        // Front 3 at the upgrade point: the clock moved between our
        // snapshot and the first write; extend (value-validating the
        // read log) and retry instead of restarting.
        for (;;) {
            txVersion_ = extend();
            if (seqlock_.tryAcquireAt(txVersion_))
                return;
        }
    }
    restart();
}

void
NOrecEagerSession::commit()
{
    if (!writeDetected_)
        return; // Read-only: validated by every read.
    // Durable commit: seal while the clock lock still excludes every
    // other writer (sealed set = prefix of commit order), drain the
    // write-behind after the release.
    if (persist_ != nullptr)
        persist_->sealStaged();
    seqlock_.releaseAdvance(txVersion_,
                            commitCfg_.readFilter ? &g_.filterRing
                                                  : nullptr,
                            writeFilter_);
    writeDetected_ = false;
    if (persist_ != nullptr)
        persist_->drainAndMark();
}

void
NOrecEagerSession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (!writeDetected_) {
        // Holding the clock is what makes an eager NOrec writer
        // infallible: no other writer can commit, every read is
        // direct, and commit() is a plain unlock-and-advance. A failed
        // CAS means some writer moved the clock since our snapshot --
        // restart BEFORE granting (no side effect has run yet).
        acquireClockLock();
        writeDetected_ = true;
        bindDispatch(kWriterDispatch, this);
    }
    irrevocable_ = true;
    // Grant contract: an irrevocable transaction must commit, so the
    // deadline can no longer be honored (docs/OVERLOAD.md).
    if (deadline_ != nullptr)
        deadline_->suppress();
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
NOrecEagerSession::rollbackWriter()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    if (!writeDetected_)
        return;
    undo_.rollback(mem_);
    // Advance the clock anyway: a concurrent reader may have glimpsed
    // the undone values, and the bump forces it to restart. The
    // published summary covers the undone addresses (they were
    // written, then written back), so a glimpsing reader can never
    // pass the disjointness skip.
    seqlock_.releaseAdvance(txVersion_,
                            commitCfg_.readFilter ? &g_.filterRing
                                                  : nullptr,
                            writeFilter_);
    writeDetected_ = false;
}

void
NOrecEagerSession::restart()
{
    throw TxRestart{};
}

void
NOrecEagerSession::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
NOrecEagerSession::onRestart()
{
    rollbackWriter();
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++restarts_ >= kSerializeAfterRestarts)
        serialized_ = true;
    backoff_.pause();
}

void
NOrecEagerSession::onUserAbort()
{
    rollbackWriter();
    // The transaction is over (the exception propagates to the
    // caller): reset the per-transaction escalation state exactly as
    // onComplete() would, so the next transaction does not inherit a
    // stale serialized/restart-count hangover.
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    undo_.clear();
    tally_.flush(stats_);
}

void
NOrecEagerSession::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    undo_.clear();
    tally_.flush(stats_);
}

//
// Lazy NOrec
//

NOrecLazySession::NOrecLazySession(TmDomain &domain,
                                   ThreadStats *stats,
                                   unsigned access_penalty,
                                   TxPersist *persist)
    : g_(domain.globals), stats_(stats), penalty_(access_penalty),
      seqlock_(mem_, &domain.globals.clock), writes_(12), persist_(persist)
{}

uint64_t
NOrecLazySession::stableClock()
{
    for (;;) {
        uint64_t v = mem_.load(&g_.clock);
        if (!clockIsLocked(v))
            return v;
        // Deadline-safe: nothing is held while the clock is someone
        // else's, so the poll may unwind freely.
        if (deadline_ != nullptr)
            deadline_->poll();
        backoff_.pause();
    }
}

void
NOrecLazySession::begin(TxnHint hint)
{
    (void)hint;
    readLog_.clear();
    writes_.clear();
    clockHeld_ = false;
    writes_.setMode(commitCfg_.redoIndex, commitCfg_.readFilter);
    readLog_.setFilterEnabled(commitCfg_.readFilter);
    if (commitCfg_.filterSaturateForTest) {
        writes_.saturateFilterForTest();
        readLog_.saturateFilterForTest();
    }
    if (serialized_) {
        txVersion_ = seqlock_.acquireBlocking(
            [this] { return stableClock(); },
            [this] {
                if (deadline_ != nullptr)
                    deadline_->poll();
                backoff_.pause();
            });
        clockHeld_ = true;
        bindDispatch(kPinnedDispatch, this);
        return;
    }
    txVersion_ = stableClock();
    bindDispatch(kSoftDispatch, this);
}

uint64_t
NOrecLazySession::validate()
{
    if (commitCfg_.readFilter) {
        uint64_t cur = stableClock();
        if (cur == txVersion_)
            return cur; // The mover was a lock that restored; no-op.
        if (g_.filterRing.coveredDisjoint(txVersion_, cur,
                                          readLog_.filter())) {
            // Every commit in (txVersion_, cur] published a write
            // summary disjoint from our read summary: no logged value
            // can have changed, adopt cur without the value walk.
            if (stats_)
                stats_->inc(Counter::kRevalidationsSkipped);
            return cur;
        }
    }
    if (stats_)
        stats_->inc(Counter::kRevalidations);
    return readLog_.revalidate(mem_, &g_.clock,
                               [this] { return stableClock(); });
}

uint64_t
NOrecLazySession::softRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    uint64_t v = s->mem_.load(addr);
    while (s->mem_.load(&s->g_.clock) != s->txVersion_) {
        s->txVersion_ = s->validate();
        v = s->mem_.load(addr);
    }
    s->readLog_.push(addr, v);
    return v;
}

void
NOrecLazySession::softWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    s->writes_.putGrowing(addr, value);
}

uint64_t
NOrecLazySession::pinnedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    // We hold the clock: no writer can commit, reads go direct.
    return s->mem_.load(addr);
}

void
NOrecLazySession::commit()
{
    if (writes_.empty()) {
        if (clockHeld_) { // Serialized but turned out read-only.
            seqlock_.releaseRestore(txVersion_);
            clockHeld_ = false;
        }
        return;
    }
    // Front 4: eligible writers first try the group arena; a combined
    // member returns here fully published by someone else's bump.
    // Durable transactions stay solo (the redo payload must seal under
    // this thread's own lock hold), as do serialized/irrevocable ones
    // (they already hold the clock).
    if (!clockHeld_ && commitCfg_.groupCommit && groupArena_ != nullptr &&
        persist_ == nullptr && groupCommitPath())
        return;
    if (!clockHeld_) {
        txVersion_ = seqlock_.acquireValidating(
            txVersion_, [this] { return validate(); });
        clockHeld_ = true;
    }
    // Stage-at-publish: the lazy write set only becomes the durable
    // redo payload here, once validation has succeeded.
    writes_.forEach([this](uint64_t *addr, uint64_t value) {
        if (persist_ != nullptr)
            persist_->stage(addr, value);
        mem_.store(addr, value);
    });
    if (persist_ != nullptr)
        persist_->sealStaged();
    seqlock_.releaseAdvance(txVersion_,
                            commitCfg_.readFilter ? &g_.filterRing
                                                  : nullptr,
                            writes_.filter());
    clockHeld_ = false;
    if (persist_ != nullptr)
        persist_->drainAndMark();
}

bool
NOrecLazySession::groupValidate(void *self)
{
    // Combiner context: the clock lock is held, memory is quiescent
    // (modulo the batch's own writes, which are the point).
    auto *s = static_cast<NOrecLazySession *>(self);
    return s->readLog_.consistent(s->mem_);
}

void
NOrecLazySession::groupPublish(void *self)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    s->writes_.forEach([s](uint64_t *addr, uint64_t value) {
        s->mem_.store(addr, value);
    });
}

bool
NOrecLazySession::groupCommitPath()
{
    if (groupSlot_ == kGroupSlotUnset)
        groupSlot_ = groupArena_->acquireSlot();
    if (groupSlot_ < 0)
        return false; // Arena full: this session commits solo forever.
    unsigned slot = static_cast<unsigned>(groupSlot_);
    // Combiner body: the caller holds the clock lock with no request
    // of its own posted. Write back, fold in pending peers (the
    // arena's pending hint makes this one load when nobody waits),
    // and publish the batch with a single advance.
    auto combinerPublish = [this] {
        clockHeld_ = true;
        writes_.forEach([this](uint64_t *addr, uint64_t value) {
            mem_.store(addr, value);
        });
        TxFilter batch = writes_.filter();
        GroupCommitArena::CombineResult res = groupArena_->combine(batch);
        if (stats_ && res.joined > 0)
            stats_->inc(Counter::kGroupCommitLeads);
        seqlock_.releaseAdvance(txVersion_,
                                commitCfg_.readFilter ? &g_.filterRing
                                                      : nullptr,
                                batch);
        clockHeld_ = false;
    };
    // Uncontended first try: the clock was free, so skip the arena
    // round-trip entirely (no request copy, no slot CASes) -- solo
    // commits must not pay for the batching they don't need.
    if (seqlock_.tryAcquireAt(txVersion_)) {
        combinerPublish();
        return true;
    }
    GroupRequest req;
    req.self = this;
    req.validate = &groupValidate;
    req.publish = &groupPublish;
    req.readFilter = &readLog_.filter();
    req.writeFilter = &writes_.filter();
    groupArena_->post(slot, req);
    for (;;) {
        if (seqlock_.tryAcquireAt(txVersion_)) {
            // We are the combiner: withdraw our request (we publish
            // ourselves), write back, then fold in any pending peers.
            groupArena_->withdrawOwn(slot);
            combinerPublish();
            return true;
        }
        uint32_t st = groupArena_->stateOf(slot);
        if (st == GroupCommitArena::kCombined) {
            groupArena_->reclaim(slot);
            if (stats_)
                stats_->inc(Counter::kGroupCommitJoins);
            return true;
        }
        if (st == GroupCommitArena::kRejected) {
            groupArena_->reclaim(slot);
            if (stats_)
                stats_->inc(Counter::kGroupCommitRejects);
            return false; // Bounce to the solo commit path.
        }
        if (!clockIsLocked(mem_.load(&g_.clock)) &&
            groupArena_->tryWithdraw(slot)) {
            // The clock moved while unlocked (a combiner finished
            // without us, or a solo writer committed). The slot is
            // ours again, so unwinding is safe: poll the deadline and
            // revalidate -- either may throw -- then repost at the
            // fresh snapshot.
            if (deadline_ != nullptr)
                deadline_->poll();
            txVersion_ = validate();
            groupArena_->post(slot, req);
            continue;
        }
        // Pending and claimed-or-locked: a combiner may be deciding
        // our fate; we must not unwind while it can still publish us.
        backoff_.pause();
    }
}

void
NOrecLazySession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (!clockHeld_) {
        // Same commit-time protocol, hoisted to the upgrade point:
        // CAS-lock the clock, revalidating by value on every failure.
        // validate() restarts on a changed value -- always BEFORE the
        // grant, so the re-executed body replays no side effect.
        txVersion_ = seqlock_.acquireValidating(
            txVersion_, [this] { return validate(); });
        clockHeld_ = true;
    }
    // From here on reads go direct (the pinned descriptor), writes
    // stay buffered, and commit() write-back cannot fail.
    irrevocable_ = true;
    // Grant contract: an irrevocable transaction must commit, so the
    // deadline can no longer be honored (docs/OVERLOAD.md).
    if (deadline_ != nullptr)
        deadline_->suppress();
    bindDispatch(kPinnedDispatch, this);
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
NOrecLazySession::restart()
{
    throw TxRestart{};
}

void
NOrecLazySession::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
NOrecLazySession::onRestart()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    if (clockHeld_) {
        // Nothing was written back; restore the clock unchanged.
        seqlock_.releaseRestore(txVersion_);
        clockHeld_ = false;
    }
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++restarts_ >= kSerializeAfterRestarts)
        serialized_ = true;
    backoff_.pause();
}

void
NOrecLazySession::onUserAbort()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    if (clockHeld_) {
        seqlock_.releaseRestore(txVersion_);
        clockHeld_ = false;
    }
    // The transaction ends here; clear the escalation state like
    // onComplete() so the next transaction starts fresh.
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    tally_.flush(stats_);
}

void
NOrecLazySession::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    tally_.flush(stats_);
}

} // namespace rhtm
