#include "src/stm/norec.h"

#include <cassert>

#include "src/core/engine/deadline.h"

namespace rhtm
{

namespace
{

/** Pure-STM restart storms are rare; serialize after this many. */
constexpr unsigned kSerializeAfterRestarts = 64;

} // namespace

//
// Eager NOrec
//

NOrecEagerSession::NOrecEagerSession(TmDomain &domain,
                                     ThreadStats *stats,
                                     unsigned access_penalty,
                                     TxPersist *persist)
    : g_(domain.globals), stats_(stats), penalty_(access_penalty),
      seqlock_(mem_, &domain.globals.clock), persist_(persist)
{}

uint64_t
NOrecEagerSession::stableClock()
{
    for (;;) {
        uint64_t v = mem_.load(&g_.clock);
        if (!clockIsLocked(v))
            return v;
        // Deadline-safe: nothing is held while the clock is someone
        // else's, so the poll may unwind freely.
        if (deadline_ != nullptr)
            deadline_->poll();
        backoff_.pause();
    }
}

void
NOrecEagerSession::begin(TxnHint hint)
{
    (void)hint;
    undo_.clear();
    if (serialized_) {
        // Progress escape hatch: a transaction that keeps restarting
        // takes the writer lock up front and runs exclusively.
        txVersion_ = seqlock_.acquireBlocking(
            [this] { return stableClock(); },
            [this] {
                if (deadline_ != nullptr)
                    deadline_->poll();
                backoff_.pause();
            });
        writeDetected_ = true;
        bindDispatch(kWriterDispatch, this);
        return;
    }
    writeDetected_ = false;
    txVersion_ = stableClock();
    bindDispatch(kReadPhaseDispatch, this);
}

uint64_t
NOrecEagerSession::readPhaseRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    uint64_t v = s->mem_.load(addr);
    if (s->mem_.load(&s->g_.clock) != s->txVersion_) {
        // Some writer committed (or is writing): with no read log, the
        // eager design must restart (paper Section 3.1).
        s->restart();
    }
    return v;
}

void
NOrecEagerSession::readPhaseWrite(void *self, uint64_t *addr,
                                  uint64_t value)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    s->acquireClockLock();
    s->writeDetected_ = true;
    s->bindDispatch(kWriterDispatch, s);
    s->undo_.push(addr, s->mem_.load(addr));
    if (s->persist_ != nullptr)
        s->persist_->stage(addr, value);
    s->mem_.store(addr, value);
}

uint64_t
NOrecEagerSession::writerRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    // We hold the clock: no writer can commit, reads are stable.
    return s->mem_.load(addr);
}

void
NOrecEagerSession::writerWrite(void *self, uint64_t *addr,
                               uint64_t value)
{
    auto *s = static_cast<NOrecEagerSession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    s->undo_.push(addr, s->mem_.load(addr));
    if (s->persist_ != nullptr)
        s->persist_->stage(addr, value);
    s->mem_.store(addr, value);
}

void
NOrecEagerSession::acquireClockLock()
{
    if (!seqlock_.tryAcquireAt(txVersion_))
        restart();
}

void
NOrecEagerSession::commit()
{
    if (!writeDetected_)
        return; // Read-only: validated by every read.
    // Durable commit: seal while the clock lock still excludes every
    // other writer (sealed set = prefix of commit order), drain the
    // write-behind after the release.
    if (persist_ != nullptr)
        persist_->sealStaged();
    seqlock_.releaseAdvance(txVersion_);
    writeDetected_ = false;
    if (persist_ != nullptr)
        persist_->drainAndMark();
}

void
NOrecEagerSession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (!writeDetected_) {
        // Holding the clock is what makes an eager NOrec writer
        // infallible: no other writer can commit, every read is
        // direct, and commit() is a plain unlock-and-advance. A failed
        // CAS means some writer moved the clock since our snapshot --
        // restart BEFORE granting (no side effect has run yet).
        acquireClockLock();
        writeDetected_ = true;
        bindDispatch(kWriterDispatch, this);
    }
    irrevocable_ = true;
    // Grant contract: an irrevocable transaction must commit, so the
    // deadline can no longer be honored (docs/OVERLOAD.md).
    if (deadline_ != nullptr)
        deadline_->suppress();
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
NOrecEagerSession::rollbackWriter()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    if (!writeDetected_)
        return;
    undo_.rollback(mem_);
    // Advance the clock anyway: a concurrent reader may have glimpsed
    // the undone values, and the bump forces it to restart.
    seqlock_.releaseAdvance(txVersion_);
    writeDetected_ = false;
}

void
NOrecEagerSession::restart()
{
    throw TxRestart{};
}

void
NOrecEagerSession::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
NOrecEagerSession::onRestart()
{
    rollbackWriter();
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++restarts_ >= kSerializeAfterRestarts)
        serialized_ = true;
    backoff_.pause();
}

void
NOrecEagerSession::onUserAbort()
{
    rollbackWriter();
    // The transaction is over (the exception propagates to the
    // caller): reset the per-transaction escalation state exactly as
    // onComplete() would, so the next transaction does not inherit a
    // stale serialized/restart-count hangover.
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    undo_.clear();
    tally_.flush(stats_);
}

void
NOrecEagerSession::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    undo_.clear();
    tally_.flush(stats_);
}

//
// Lazy NOrec
//

NOrecLazySession::NOrecLazySession(TmDomain &domain,
                                   ThreadStats *stats,
                                   unsigned access_penalty,
                                   TxPersist *persist)
    : g_(domain.globals), stats_(stats), penalty_(access_penalty),
      seqlock_(mem_, &domain.globals.clock), writes_(12), persist_(persist)
{}

uint64_t
NOrecLazySession::stableClock()
{
    for (;;) {
        uint64_t v = mem_.load(&g_.clock);
        if (!clockIsLocked(v))
            return v;
        // Deadline-safe: nothing is held while the clock is someone
        // else's, so the poll may unwind freely.
        if (deadline_ != nullptr)
            deadline_->poll();
        backoff_.pause();
    }
}

void
NOrecLazySession::begin(TxnHint hint)
{
    (void)hint;
    readLog_.clear();
    writes_.clear();
    clockHeld_ = false;
    if (serialized_) {
        txVersion_ = seqlock_.acquireBlocking(
            [this] { return stableClock(); },
            [this] {
                if (deadline_ != nullptr)
                    deadline_->poll();
                backoff_.pause();
            });
        clockHeld_ = true;
        bindDispatch(kPinnedDispatch, this);
        return;
    }
    txVersion_ = stableClock();
    bindDispatch(kSoftDispatch, this);
}

uint64_t
NOrecLazySession::validate()
{
    return readLog_.revalidate(mem_, &g_.clock,
                               [this] { return stableClock(); });
}

uint64_t
NOrecLazySession::softRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    uint64_t v = s->mem_.load(addr);
    while (s->mem_.load(&s->g_.clock) != s->txVersion_) {
        s->txVersion_ = s->validate();
        v = s->mem_.load(addr);
    }
    s->readLog_.push(addr, v);
    return v;
}

void
NOrecLazySession::softWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    s->writes_.putGrowing(addr, value);
}

uint64_t
NOrecLazySession::pinnedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<NOrecLazySession *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    uint64_t buffered;
    if (s->writes_.lookup(addr, buffered))
        return buffered;
    // We hold the clock: no writer can commit, reads go direct.
    return s->mem_.load(addr);
}

void
NOrecLazySession::commit()
{
    if (writes_.empty()) {
        if (clockHeld_) { // Serialized but turned out read-only.
            seqlock_.releaseRestore(txVersion_);
            clockHeld_ = false;
        }
        return;
    }
    if (!clockHeld_) {
        txVersion_ = seqlock_.acquireValidating(
            txVersion_, [this] { return validate(); });
        clockHeld_ = true;
    }
    // Stage-at-publish: the lazy write set only becomes the durable
    // redo payload here, once validation has succeeded.
    writes_.forEach([this](uint64_t *addr, uint64_t value) {
        if (persist_ != nullptr)
            persist_->stage(addr, value);
        mem_.store(addr, value);
    });
    if (persist_ != nullptr)
        persist_->sealStaged();
    seqlock_.releaseAdvance(txVersion_);
    clockHeld_ = false;
    if (persist_ != nullptr)
        persist_->drainAndMark();
}

void
NOrecLazySession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (!clockHeld_) {
        // Same commit-time protocol, hoisted to the upgrade point:
        // CAS-lock the clock, revalidating by value on every failure.
        // validate() restarts on a changed value -- always BEFORE the
        // grant, so the re-executed body replays no side effect.
        txVersion_ = seqlock_.acquireValidating(
            txVersion_, [this] { return validate(); });
        clockHeld_ = true;
    }
    // From here on reads go direct (the pinned descriptor), writes
    // stay buffered, and commit() write-back cannot fail.
    irrevocable_ = true;
    // Grant contract: an irrevocable transaction must commit, so the
    // deadline can no longer be honored (docs/OVERLOAD.md).
    if (deadline_ != nullptr)
        deadline_->suppress();
    bindDispatch(kPinnedDispatch, this);
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
NOrecLazySession::restart()
{
    throw TxRestart{};
}

void
NOrecLazySession::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
NOrecLazySession::onRestart()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    if (clockHeld_) {
        // Nothing was written back; restore the clock unchanged.
        seqlock_.releaseRestore(txVersion_);
        clockHeld_ = false;
    }
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++restarts_ >= kSerializeAfterRestarts)
        serialized_ = true;
    backoff_.pause();
}

void
NOrecLazySession::onUserAbort()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    if (clockHeld_) {
        seqlock_.releaseRestore(txVersion_);
        clockHeld_ = false;
    }
    // The transaction ends here; clear the escalation state like
    // onComplete() so the next transaction starts fresh.
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    tally_.flush(stats_);
}

void
NOrecLazySession::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    tally_.flush(stats_);
}

} // namespace rhtm
