#include "src/stm/norec.h"

#include <cassert>

namespace rhtm
{

namespace
{

/** Pure-STM restart storms are rare; serialize after this many. */
constexpr unsigned kSerializeAfterRestarts = 64;

} // namespace

//
// Eager NOrec
//

NOrecEagerSession::NOrecEagerSession(TmGlobals &globals,
                                     ThreadStats *stats,
                                     unsigned access_penalty)
    : g_(globals), stats_(stats), penalty_(access_penalty)
{
    undo_.reserve(256);
}

uint64_t
NOrecEagerSession::stableClock()
{
    for (;;) {
        uint64_t v = mem_.load(&g_.clock);
        if (!clockIsLocked(v))
            return v;
        backoff_.pause();
    }
}

void
NOrecEagerSession::begin(TxnHint hint)
{
    (void)hint;
    undo_.clear();
    if (serialized_) {
        // Progress escape hatch: a transaction that keeps restarting
        // takes the writer lock up front and runs exclusively.
        for (;;) {
            uint64_t e = stableClock();
            if (mem_.cas(&g_.clock, e, clockWithLock(e))) {
                txVersion_ = e;
                break;
            }
            backoff_.pause();
        }
        writeDetected_ = true;
        return;
    }
    writeDetected_ = false;
    txVersion_ = stableClock();
}

uint64_t
NOrecEagerSession::read(const uint64_t *addr)
{
    simDelay(penalty_);
    if (writeDetected_) {
        // We hold the clock: no writer can commit, reads are stable.
        return mem_.load(addr);
    }
    uint64_t v = mem_.load(addr);
    if (mem_.load(&g_.clock) != txVersion_) {
        // Some writer committed (or is writing): with no read log, the
        // eager design must restart (paper Section 3.1).
        restart();
    }
    return v;
}

void
NOrecEagerSession::acquireClockLock()
{
    uint64_t expected = txVersion_;
    if (!mem_.cas(&g_.clock, expected, clockWithLock(txVersion_)))
        restart();
}

void
NOrecEagerSession::write(uint64_t *addr, uint64_t value)
{
    simDelay(penalty_);
    if (!writeDetected_) {
        acquireClockLock();
        writeDetected_ = true;
    }
    undo_.push_back({addr, mem_.load(addr)});
    mem_.store(addr, value);
}

void
NOrecEagerSession::commit()
{
    if (!writeDetected_)
        return; // Read-only: validated by every read.
    mem_.store(&g_.clock, clockUnlockAndAdvance(txVersion_));
    writeDetected_ = false;
}

void
NOrecEagerSession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (!writeDetected_) {
        // Holding the clock is what makes an eager NOrec writer
        // infallible: no other writer can commit, every read is
        // direct, and commit() is a plain unlock-and-advance. A failed
        // CAS means some writer moved the clock since our snapshot --
        // restart BEFORE granting (no side effect has run yet).
        acquireClockLock();
        writeDetected_ = true;
    }
    irrevocable_ = true;
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
NOrecEagerSession::rollbackWriter()
{
    if (!writeDetected_)
        return;
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
        mem_.store(it->addr, it->oldValue);
    // Advance the clock anyway: a concurrent reader may have glimpsed
    // the undone values, and the bump forces it to restart.
    mem_.store(&g_.clock, clockUnlockAndAdvance(txVersion_));
    writeDetected_ = false;
}

void
NOrecEagerSession::restart()
{
    throw TxRestart{};
}

void
NOrecEagerSession::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
NOrecEagerSession::onRestart()
{
    rollbackWriter();
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++restarts_ >= kSerializeAfterRestarts)
        serialized_ = true;
    backoff_.pause();
}

void
NOrecEagerSession::onUserAbort()
{
    rollbackWriter();
    // The transaction is over (the exception propagates to the
    // caller): reset the per-transaction escalation state exactly as
    // onComplete() would, so the next transaction does not inherit a
    // stale serialized/restart-count hangover.
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    undo_.clear();
}

void
NOrecEagerSession::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
    undo_.clear();
}

//
// Lazy NOrec
//

NOrecLazySession::NOrecLazySession(TmGlobals &globals,
                                   ThreadStats *stats,
                                   unsigned access_penalty)
    : g_(globals), stats_(stats), penalty_(access_penalty), writes_(12)
{
    readLog_.reserve(1024);
}

uint64_t
NOrecLazySession::stableClock()
{
    for (;;) {
        uint64_t v = mem_.load(&g_.clock);
        if (!clockIsLocked(v))
            return v;
        backoff_.pause();
    }
}

void
NOrecLazySession::begin(TxnHint hint)
{
    (void)hint;
    readLog_.clear();
    writes_.clear();
    clockHeld_ = false;
    if (serialized_) {
        for (;;) {
            uint64_t e = stableClock();
            if (mem_.cas(&g_.clock, e, clockWithLock(e))) {
                txVersion_ = e;
                clockHeld_ = true;
                return;
            }
            backoff_.pause();
        }
    }
    txVersion_ = stableClock();
}

uint64_t
NOrecLazySession::validate()
{
    for (;;) {
        uint64_t t = stableClock();
        for (const ReadEntry &e : readLog_) {
            if (mem_.load(e.addr) != e.value)
                restart();
        }
        if (mem_.load(&g_.clock) == t)
            return t; // Snapshot extended to t.
    }
}

uint64_t
NOrecLazySession::read(const uint64_t *addr)
{
    simDelay(penalty_);
    uint64_t buffered;
    if (writes_.lookup(addr, buffered))
        return buffered;
    if (clockHeld_)
        return mem_.load(addr);
    uint64_t v = mem_.load(addr);
    while (mem_.load(&g_.clock) != txVersion_) {
        txVersion_ = validate();
        v = mem_.load(addr);
    }
    readLog_.push_back({addr, v});
    return v;
}

void
NOrecLazySession::write(uint64_t *addr, uint64_t value)
{
    simDelay(penalty_);
    writes_.putGrowing(addr, value);
}

void
NOrecLazySession::commit()
{
    if (writes_.empty()) {
        if (clockHeld_) { // Serialized but turned out read-only.
            mem_.store(&g_.clock, txVersion_);
            clockHeld_ = false;
        }
        return;
    }
    if (!clockHeld_) {
        uint64_t expected = txVersion_;
        while (!mem_.cas(&g_.clock, expected,
                         clockWithLock(txVersion_))) {
            txVersion_ = validate();
            expected = txVersion_;
        }
        clockHeld_ = true;
    }
    writes_.forEach(
        [this](uint64_t *addr, uint64_t value) { mem_.store(addr, value); });
    mem_.store(&g_.clock, clockUnlockAndAdvance(txVersion_));
    clockHeld_ = false;
}

void
NOrecLazySession::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    if (!clockHeld_) {
        // Same commit-time protocol, hoisted to the upgrade point:
        // CAS-lock the clock, revalidating by value on every failure.
        // validate() restarts on a changed value -- always BEFORE the
        // grant, so the re-executed body replays no side effect.
        uint64_t expected = txVersion_;
        while (!mem_.cas(&g_.clock, expected,
                         clockWithLock(txVersion_))) {
            txVersion_ = validate();
            expected = txVersion_;
        }
        clockHeld_ = true;
    }
    // From here on reads go direct (the clockHeld_ branch in read()),
    // writes stay buffered, and commit() write-back cannot fail.
    irrevocable_ = true;
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
NOrecLazySession::restart()
{
    throw TxRestart{};
}

void
NOrecLazySession::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
NOrecLazySession::onRestart()
{
    if (clockHeld_) {
        // Nothing was written back; restore the clock unchanged.
        mem_.store(&g_.clock, txVersion_);
        clockHeld_ = false;
    }
    irrevocable_ = false;
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    if (++restarts_ >= kSerializeAfterRestarts)
        serialized_ = true;
    backoff_.pause();
}

void
NOrecLazySession::onUserAbort()
{
    if (clockHeld_) {
        mem_.store(&g_.clock, txVersion_);
        clockHeld_ = false;
    }
    // The transaction ends here; clear the escalation state like
    // onComplete() so the next transaction starts fresh.
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
}

void
NOrecLazySession::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    irrevocable_ = false;
    serialized_ = false;
    restarts_ = 0;
    backoff_.reset();
}

} // namespace rhtm
