/**
 * @file
 * The NOrec STM of Dalessandro, Spear and Scott, in the two flavours
 * the paper evaluates (Section 3.1):
 *
 *  - eager: encounter-time writes. The first write locks the global
 *    clock and subsequent writes go straight to memory; there is no
 *    read log, so a reader must restart whenever any writer commits.
 *  - lazy: a value-based read log and a deferred write set; the clock
 *    is held only across the commit-time write-back, and readers
 *    revalidate by value instead of restarting.
 *
 * These are the pure-software baselines ("NOrec" in the figures); the
 * hybrid algorithms in src/core implement their own slow paths
 * following the paper's pseudocode.
 */

#ifndef RHTM_STM_NOREC_H
#define RHTM_STM_NOREC_H

#include <cstdint>
#include <vector>

#include "src/api/tx_defs.h"
#include "src/core/globals.h"
#include "src/htm/fixed_table.h"
#include "src/stats/stats.h"
#include "src/stm/mem_access.h"
#include "src/util/backoff.h"

namespace rhtm
{

/**
 * Eager (encounter-time-write) NOrec STM session.
 *
 * Divergence note: the paper's eager NOrec keeps no logs at all; this
 * implementation additionally keeps an undo journal of (addr, old
 * value) pairs, used only to roll back in-place writes when user code
 * throws or calls Txn::retry() after the first write. The journal
 * plays no part in validation, so the measured protocol is unchanged.
 */
class NOrecEagerSession : public TxSession
{
  public:
    /**
     * @param globals Shared clock (only TmGlobals::clock is used).
     * @param stats Per-thread counters; may be null.
     */
    NOrecEagerSession(TmGlobals &globals, ThreadStats *stats,
                      unsigned access_penalty = 0);

    void begin(TxnHint hint) override;
    uint64_t read(const uint64_t *addr) override;
    void write(uint64_t *addr, uint64_t value) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "norec"; }

  private:
    /** Spin until the clock is unlocked; returns the stable value. */
    uint64_t stableClock();

    /** CAS the clock from txVersion_ to its locked form, or restart. */
    void acquireClockLock();

    /** Undo in-place writes and release the clock (if held). */
    void rollbackWriter();

    [[noreturn]] void restart();

    struct UndoEntry
    {
        uint64_t *addr;
        uint64_t oldValue;
    };

    TmGlobals &g_;
    ThreadStats *stats_;
    unsigned penalty_;
    RawMem mem_;
    Backoff backoff_;
    uint64_t txVersion_ = 0;
    bool writeDetected_ = false;
    bool serialized_ = false;
    bool irrevocable_ = false;
    unsigned restarts_ = 0;
    std::vector<UndoEntry> undo_;
};

/**
 * Lazy (commit-time-write) NOrec STM session, per the original NOrec
 * algorithm: value-based read validation with snapshot extension, and
 * a redo write set applied while holding the clock at commit.
 */
class NOrecLazySession : public TxSession
{
  public:
    NOrecLazySession(TmGlobals &globals, ThreadStats *stats,
                     unsigned access_penalty = 0);

    void begin(TxnHint hint) override;
    uint64_t read(const uint64_t *addr) override;
    void write(uint64_t *addr, uint64_t value) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "norec-lazy"; }

  private:
    uint64_t stableClock();

    /**
     * Value-validate the read log at a stable clock; returns the new
     * snapshot version, or restarts on a changed value.
     */
    uint64_t validate();

    [[noreturn]] void restart();

    struct ReadEntry
    {
        const uint64_t *addr;
        uint64_t value;
    };

    TmGlobals &g_;
    ThreadStats *stats_;
    unsigned penalty_;
    RawMem mem_;
    Backoff backoff_;
    uint64_t txVersion_ = 0;
    bool serialized_ = false;
    bool clockHeld_ = false;
    bool irrevocable_ = false;
    unsigned restarts_ = 0;
    std::vector<ReadEntry> readLog_;
    WriteBuffer writes_;
};

} // namespace rhtm

#endif // RHTM_STM_NOREC_H
