/**
 * @file
 * The NOrec STM of Dalessandro, Spear and Scott, in the two flavours
 * the paper evaluates (Section 3.1):
 *
 *  - eager: encounter-time writes. The first write locks the global
 *    clock and subsequent writes go straight to memory; there is no
 *    read log, so a reader must restart whenever any writer commits.
 *  - lazy: a value-based read log and a deferred write set; the clock
 *    is held only across the commit-time write-back, and readers
 *    revalidate by value instead of restarting.
 *
 * These are the pure-software baselines ("NOrec" in the figures); the
 * hybrid algorithms in src/core implement their own slow paths
 * following the paper's pseudocode.
 *
 * Composition over the shared engine: both flavours use the
 * CommitSeqlock clock protocol over RawMem (no watchdog epoch -- pure
 * STMs predate the stall machinery and stamp nothing), the eager one
 * the UndoJournal, the lazy one ValueReadLog + RedoBuffer. Each phase
 * is a TxDispatch descriptor; there is no SessionCore because the pure
 * STMs have no hardware transaction, mode ladder, or retry budget.
 */

#ifndef RHTM_STM_NOREC_H
#define RHTM_STM_NOREC_H

#include <cstdint>

#include "src/core/engine/commit_seqlock.h"
#include "src/core/engine/journal.h"
#include "src/core/engine/mem_access.h"
#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"

namespace rhtm
{

/**
 * Eager (encounter-time-write) NOrec STM session.
 *
 * Divergence note: the paper's eager NOrec keeps no logs at all; this
 * implementation additionally keeps an undo journal of (addr, old
 * value) pairs, used only to roll back in-place writes when user code
 * throws or calls Txn::retry() after the first write. The journal
 * plays no part in validation, so the measured protocol is unchanged.
 */
class NOrecEagerSession : public TxSession
{
  public:
    /**
     * @param domain Coordination domain (only its clock is used).
     * @param stats Per-thread counters; may be null.
     * @param policy Reverted-fix gates only (the pure STMs take no
     *        retry budget from it); may be null.
     */
    NOrecEagerSession(TmDomain &domain, ThreadStats *stats,
                      unsigned access_penalty = 0,
                      TxPersist *persist = nullptr,
                      const RetryPolicy *policy = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "norec"; }

    void
    resetForTest() override
    {
        backoff_.reset();
        tally_ = AccessTally{};
        txVersion_ = 0;
        writeDetected_ = false;
        serialized_ = false;
        irrevocable_ = false;
        restarts_ = 0;
        undo_.clear();
        readLog_.clear();
        writeFilter_.clear();
    }

  private:
    static uint64_t readPhaseRead(void *self, const uint64_t *addr);
    static void readPhaseWrite(void *self, uint64_t *addr,
                               uint64_t value);
    static uint64_t writerRead(void *self, const uint64_t *addr);
    static void writerWrite(void *self, uint64_t *addr, uint64_t value);

    static constexpr TxDispatch kReadPhaseDispatch = {&readPhaseRead,
                                                      &readPhaseWrite};
    static constexpr TxDispatch kWriterDispatch = {&writerRead,
                                                   &writerWrite};

    /** Spin until the clock is unlocked; returns the stable value. */
    uint64_t stableClock();

    /** CAS the clock from txVersion_ to its locked form, or restart. */
    void acquireClockLock();

    /**
     * Timestamp extension (commit-path front 3): the clock moved under
     * a read phase; value-validate the read log and adopt the new
     * snapshot instead of restarting. Restarts if a logged value
     * changed. Only called with TmConfig::tsExtension on.
     */
    uint64_t extend();

    /** Undo in-place writes and release the clock (if held). */
    void rollbackWriter();

    [[noreturn]] void restart();

    TmGlobals &g_;
    ThreadStats *stats_;
    unsigned penalty_;
    RawMem mem_;
    CommitSeqlock<RawMem> seqlock_;
    Backoff backoff_;
    AccessTally tally_;
    uint64_t txVersion_ = 0;
    bool writeDetected_ = false;
    bool serialized_ = false;
    bool irrevocable_ = false;
    unsigned restarts_ = 0;
    UndoJournal undo_;
    //! Read-phase value log, kept only for timestamp extension; plays
    //! no part in the classic restart-on-clock-move protocol.
    ValueReadLog readLog_;
    //! Write-set summary published to the CommitFilterRing (front 1).
    TxFilter writeFilter_;
    TxPersist *persist_; //!< Durable-commit driver; null = off.
    const RetryPolicy *policy_; //!< Reverted-fix gates; may be null.
};

/**
 * Lazy (commit-time-write) NOrec STM session, per the original NOrec
 * algorithm: value-based read validation with snapshot extension, and
 * a redo write set applied while holding the clock at commit.
 */
class NOrecLazySession : public TxSession
{
  public:
    NOrecLazySession(TmDomain &domain, ThreadStats *stats,
                     unsigned access_penalty = 0,
                     TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "norec-lazy"; }

    void
    resetForTest() override
    {
        backoff_.reset();
        tally_ = AccessTally{};
        txVersion_ = 0;
        serialized_ = false;
        clockHeld_ = false;
        irrevocable_ = false;
        restarts_ = 0;
        readLog_.clear();
        writes_.clear();
    }

  private:
    static uint64_t softRead(void *self, const uint64_t *addr);
    static void softWrite(void *self, uint64_t *addr, uint64_t value);
    static uint64_t pinnedRead(void *self, const uint64_t *addr);

    static constexpr TxDispatch kSoftDispatch = {&softRead, &softWrite};
    static constexpr TxDispatch kPinnedDispatch = {&pinnedRead,
                                                   &softWrite};

    uint64_t stableClock();

    /**
     * Value-validate the read log at a stable clock; returns the new
     * snapshot version, or restarts on a changed value. With
     * TmConfig::readFilter on, first consults the CommitFilterRing: if
     * every commit since txVersion_ published a write summary disjoint
     * from our read summary, the log is untouched by construction and
     * the value walk is skipped (commit-path front 1).
     */
    uint64_t validate();

    /**
     * Group-commit member/combiner path (commit-path front 4). Posts
     * the write set to the arena and either becomes the combiner
     * (publishing any pending peers under its single clock bump) or is
     * published by one. Returns false if the commit should proceed
     * solo (no slot, or this request was rejected).
     */
    bool groupCommitPath();

    static bool groupValidate(void *self);
    static void groupPublish(void *self);

    [[noreturn]] void restart();

    TmGlobals &g_;
    ThreadStats *stats_;
    unsigned penalty_;
    RawMem mem_;
    CommitSeqlock<RawMem> seqlock_;
    Backoff backoff_;
    AccessTally tally_;
    uint64_t txVersion_ = 0;
    bool serialized_ = false;
    bool clockHeld_ = false;
    bool irrevocable_ = false;
    unsigned restarts_ = 0;
    ValueReadLog readLog_;
    RedoBuffer writes_;
    TxPersist *persist_; //!< Durable-commit driver; null = off.
    //! Arena slot id: kGroupSlotUnset until first needed, -1 when the
    //! arena was full (session then always commits solo). Session
    //! identity -- survives resetForTest on purpose.
    static constexpr int kGroupSlotUnset = -2;
    int groupSlot_ = kGroupSlotUnset;
};

} // namespace rhtm

#endif // RHTM_STM_NOREC_H
