#include "src/stm/tl2.h"

#include <cassert>

namespace rhtm
{

Tl2Session::Tl2Session(Tl2Globals &globals, ThreadStats *stats,
                       unsigned tid, unsigned access_penalty)
    : g_(globals), stats_(stats), tid_(tid), penalty_(access_penalty)
{
    readLog_.reserve(1024);
    owned_.reserve(256);
    undo_.reserve(256);
}

void
Tl2Session::begin(TxnHint hint)
{
    (void)hint;
    readLog_.clear();
    owned_.clear();
    undo_.clear();
    rv_ = g_.clock().load(std::memory_order_acquire);
}

uint64_t
Tl2Session::read(const uint64_t *addr)
{
    simDelay(penalty_);
    size_t idx = g_.orecOf(addr);
    uint64_t o1 = g_.orec(idx).load(std::memory_order_acquire);
    if (Tl2Globals::isLocked(o1)) {
        if (Tl2Globals::ownerOf(o1) == tid_) {
            // We own the line (eager write already in place).
            return mem_.load(addr);
        }
        restart();
    }
    if (o1 > rv_)
        restart(); // Written after our snapshot (no rv extension).
    uint64_t v = mem_.load(addr);
    uint64_t o2 = g_.orec(idx).load(std::memory_order_acquire);
    if (o1 != o2)
        restart();
    readLog_.push_back(idx);
    return v;
}

void
Tl2Session::write(uint64_t *addr, uint64_t value)
{
    simDelay(penalty_);
    size_t idx = g_.orecOf(addr);
    uint64_t o = g_.orec(idx).load(std::memory_order_acquire);
    if (Tl2Globals::isLocked(o)) {
        if (Tl2Globals::ownerOf(o) != tid_)
            restart();
    } else {
        if (o > rv_)
            restart();
        if (!g_.orec(idx).compare_exchange_strong(
                o, Tl2Globals::lockFor(tid_),
                std::memory_order_acq_rel)) {
            restart();
        }
        owned_.push_back({idx, o});
    }
    undo_.push_back({addr, mem_.load(addr)});
    mem_.store(addr, value);
}

void
Tl2Session::commit()
{
    if (owned_.empty()) {
        // Read-only: every read was consistent at rv_.
        return;
    }
    uint64_t wv = g_.clock().fetch_add(2, std::memory_order_acq_rel) + 2;
    if (wv != rv_ + 2) {
        // Someone committed since our snapshot: revalidate the reads.
        for (size_t idx : readLog_) {
            uint64_t o = g_.orec(idx).load(std::memory_order_acquire);
            if (Tl2Globals::isLocked(o)) {
                if (Tl2Globals::ownerOf(o) != tid_)
                    restart();
            } else if (o > rv_) {
                restart();
            }
        }
    }
    for (const OwnedOrec &oo : owned_)
        g_.orec(oo.idx).store(wv, std::memory_order_release);
    owned_.clear();
    undo_.clear();
}

void
Tl2Session::rollback()
{
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
        mem_.store(it->addr, it->oldValue);
    for (const OwnedOrec &oo : owned_)
        g_.orec(oo.idx).store(oo.oldValue, std::memory_order_release);
    owned_.clear();
    undo_.clear();
}

void
Tl2Session::restart()
{
    throw TxRestart{};
}

void
Tl2Session::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
Tl2Session::onRestart()
{
    rollback();
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    backoff_.pause();
}

void
Tl2Session::onUserAbort()
{
    rollback();
}

void
Tl2Session::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    backoff_.reset();
}

} // namespace rhtm
