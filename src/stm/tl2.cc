#include "src/stm/tl2.h"

#include <cassert>

#include "src/core/engine/deadline.h"
#include "src/util/sched_point.h"

namespace rhtm
{

Tl2Session::Tl2Session(Tl2Globals &globals, ThreadStats *stats,
                       unsigned tid, unsigned access_penalty,
                       TxPersist *persist)
    : g_(globals), stats_(stats), tid_(tid), penalty_(access_penalty),
      persist_(persist)
{
    readLog_.reserve(1024);
    owned_.reserve(256);
}

void
Tl2Session::begin(TxnHint hint)
{
    (void)hint;
    readLog_.clear();
    owned_.clear();
    undo_.clear();
    schedPoint(SchedPoint::kRawLoad, &g_.clock());
    rv_ = g_.clock().load(std::memory_order_acquire);
    bindDispatch(kOptimisticDispatch, this);
}

uint64_t
Tl2Session::optimisticRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<Tl2Session *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    size_t idx = s->g_.orecOf(addr);
    schedPoint(SchedPoint::kRawLoad, &s->g_.orec(idx));
    uint64_t o1 = s->g_.orec(idx).load(std::memory_order_acquire);
    if (Tl2Globals::isLocked(o1)) {
        if (Tl2Globals::ownerOf(o1) == s->tid_) {
            // We own the line (eager write already in place).
            return s->mem_.load(addr);
        }
        s->restart();
    }
    if (o1 > s->rv_)
        s->restart(); // Written after our snapshot (no rv extension).
    uint64_t v = s->mem_.load(addr);
    schedPoint(SchedPoint::kRawLoad, &s->g_.orec(idx));
    uint64_t o2 = s->g_.orec(idx).load(std::memory_order_acquire);
    if (o1 != o2)
        s->restart();
    s->readLog_.push_back(idx);
    return v;
}

void
Tl2Session::optimisticWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<Tl2Session *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    size_t idx = s->g_.orecOf(addr);
    schedPoint(SchedPoint::kRawLoad, &s->g_.orec(idx));
    uint64_t o = s->g_.orec(idx).load(std::memory_order_acquire);
    if (Tl2Globals::isLocked(o)) {
        if (Tl2Globals::ownerOf(o) != s->tid_)
            s->restart();
    } else {
        if (o > s->rv_)
            s->restart();
        schedPoint(SchedPoint::kRawRmw, &s->g_.orec(idx));
        if (!s->g_.orec(idx).compare_exchange_strong(
                o, Tl2Globals::lockFor(s->tid_),
                std::memory_order_acq_rel)) {
            s->restart();
        }
        s->owned_.push_back({idx, o});
    }
    s->undo_.push(addr, s->mem_.load(addr));
    if (s->persist_ != nullptr)
        s->persist_->stage(addr, value);
    s->mem_.store(addr, value);
}

uint64_t
Tl2Session::pinnedRead(void *self, const uint64_t *addr)
{
    auto *s = static_cast<Tl2Session *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowReads;
    size_t idx = s->g_.orecOf(addr);
    // 2PL phase: lock-then-read. All earlier reads are pinned by
    // their locks, so the current committed value of a fresh line is
    // always consistent with them; no rv validation, no restart.
    s->lockOrecIrrevocable(idx, false);
    return s->mem_.load(addr);
}

void
Tl2Session::pinnedWrite(void *self, uint64_t *addr, uint64_t value)
{
    auto *s = static_cast<Tl2Session *>(self);
    simDelay(s->penalty_);
    ++s->tally_.slowWrites;
    size_t idx = s->g_.orecOf(addr);
    s->lockOrecIrrevocable(idx, false);
    s->undo_.push(addr, s->mem_.load(addr));
    if (s->persist_ != nullptr)
        s->persist_->stage(addr, value);
    s->mem_.store(addr, value);
}

void
Tl2Session::commit()
{
    if (owned_.empty()) {
        // Read-only: every read was consistent at rv_.
        releaseIrrevocable();
        return;
    }
    schedPoint(SchedPoint::kRawRmw, &g_.clock());
    uint64_t wv = g_.clock().fetch_add(2, std::memory_order_acq_rel) + 2;
    if (!irrevocable_ && wv != rv_ + 2) {
        // Someone committed since our snapshot: revalidate the reads.
        // (An irrevocable committer owns its whole read set, so the
        // scan would be a no-op and commit must not restart anyway.)
        for (size_t idx : readLog_) {
            schedPoint(SchedPoint::kRawLoad, &g_.orec(idx));
            uint64_t o = g_.orec(idx).load(std::memory_order_acquire);
            if (Tl2Globals::isLocked(o)) {
                if (Tl2Globals::ownerOf(o) != tid_)
                    restart();
            } else if (o > rv_) {
                restart();
            }
        }
    }
    // Durable commit: validation has passed and the write set is
    // final, so seal while the orecs are still held -- TL2 commits of
    // disjoint write sets may interleave their log appends, but
    // held-orec sealing keeps the log dependency-consistent with the
    // version order (docs/PERSISTENCE.md "Non-seqlock commit orders").
    if (persist_ != nullptr)
        persist_->sealStaged();
    for (const OwnedOrec &oo : owned_) {
        schedPoint(SchedPoint::kRawStore, &g_.orec(oo.idx));
        g_.orec(oo.idx).store(wv, std::memory_order_release);
    }
    owned_.clear();
    undo_.clear();
    releaseIrrevocable();
    if (persist_ != nullptr)
        persist_->drainAndMark();
}

bool
Tl2Session::lockOrecIrrevocable(size_t idx, bool validate_rv)
{
    for (;;) {
        schedPoint(SchedPoint::kRawLoad, &g_.orec(idx));
        uint64_t o = g_.orec(idx).load(std::memory_order_acquire);
        if (Tl2Globals::isLocked(o)) {
            if (Tl2Globals::ownerOf(o) == tid_)
                return true;
            // Wait the owner out. Safe for the token holder only:
            // every other TL2 thread restarts on contention (never
            // blocks), so the owner always runs to commit or rollback
            // and releases. Pre-grant the deadline may unwind here
            // (rollback releases our locked orecs); post-grant it is
            // suppressed and the poll is a no-op.
            if (deadline_ != nullptr)
                deadline_->poll();
            backoff_.pause();
            continue;
        }
        if (validate_rv && o > rv_)
            return false; // Stale read; caller restarts pre-grant.
        schedPoint(SchedPoint::kRawRmw, &g_.orec(idx));
        if (g_.orec(idx).compare_exchange_strong(
                o, Tl2Globals::lockFor(tid_),
                std::memory_order_acq_rel)) {
            owned_.push_back({idx, o});
            return true;
        }
    }
}

void
Tl2Session::becomeIrrevocable()
{
    if (irrevocable_)
        return;
    uint64_t expected = 0;
    schedPoint(SchedPoint::kRawRmw, &g_.irrevocableOwner());
    if (!g_.irrevocableOwner().compare_exchange_strong(
            expected, uint64_t(tid_) + 1, std::memory_order_acq_rel)) {
        // Another irrevocable transaction is live. We may already hold
        // orecs, so blocking here could deadlock against it; restart
        // (pre-grant, so the body replays no side effect).
        restart();
    }
    // Escalate to 2PL: lock every line we have read, verifying it has
    // not changed since our snapshot. After this loop nobody can
    // invalidate a read, writes wait instead of restarting, and
    // commit() skips validation -- the transaction cannot abort.
    // rollback() only drops the token once irrevocable_ is set, so a
    // deadline unwind out of the owner wait must release it here.
    try {
        for (size_t idx : readLog_) {
            if (!lockOrecIrrevocable(idx, true)) {
                schedPoint(SchedPoint::kRawStore,
                           &g_.irrevocableOwner());
                g_.irrevocableOwner().store(0,
                                            std::memory_order_release);
                restart(); // rollback() releases the locked orecs.
            }
        }
    } catch (const TxnDeadlineExceeded &) {
        schedPoint(SchedPoint::kRawStore, &g_.irrevocableOwner());
        g_.irrevocableOwner().store(0, std::memory_order_release);
        throw;
    }
    irrevocable_ = true;
    // Grant contract: an irrevocable transaction must commit, so the
    // deadline can no longer be honored (docs/OVERLOAD.md).
    if (deadline_ != nullptr)
        deadline_->suppress();
    bindDispatch(kTwoPhaseDispatch, this);
    if (stats_)
        stats_->inc(Counter::kIrrevocableUpgrades);
}

void
Tl2Session::releaseIrrevocable()
{
    if (!irrevocable_)
        return;
    schedPoint(SchedPoint::kRawStore, &g_.irrevocableOwner());
    g_.irrevocableOwner().store(0, std::memory_order_release);
    irrevocable_ = false;
}

void
Tl2Session::rollback()
{
    if (persist_ != nullptr)
        persist_->discardStaged();
    undo_.rollback(mem_);
    for (const OwnedOrec &oo : owned_) {
        schedPoint(SchedPoint::kRawStore, &g_.orec(oo.idx));
        g_.orec(oo.idx).store(oo.oldValue, std::memory_order_release);
    }
    owned_.clear();
    undo_.clear();
    releaseIrrevocable();
}

void
Tl2Session::restart()
{
    throw TxRestart{};
}

void
Tl2Session::onHtmAbort(const HtmAbort &abort)
{
    (void)abort;
    assert(false && "pure STM cannot see hardware aborts");
}

void
Tl2Session::onRestart()
{
    rollback();
    if (stats_)
        stats_->inc(Counter::kSlowPathRestarts);
    backoff_.pause();
}

void
Tl2Session::onUserAbort()
{
    rollback();
    tally_.flush(stats_);
}

void
Tl2Session::onComplete()
{
    if (stats_)
        stats_->inc(Counter::kCommitsSoftwarePath);
    backoff_.reset();
    tally_.flush(stats_);
}

} // namespace rhtm
