/**
 * @file
 * The TL2 STM of Dice, Shalev and Shavit, eager (encounter-time-write)
 * variant as evaluated by the paper (Section 3.1): per-location
 * versioned write locks, a global version clock, read-set logging and
 * commit-time revalidation. Higher constant costs than NOrec but
 * per-location conflict detection, hence better scalability under
 * write-heavy loads (the 40%-mutation crossover in Figure 4).
 *
 * Composition over the shared engine: the UndoJournal backs the eager
 * writes; the optimistic phase and the irrevocable 2PL phase are two
 * TxDispatch descriptors. TL2's clock and orecs are its own (no
 * TmGlobals word is shared), so neither SessionCore nor CommitSeqlock
 * applies.
 */

#ifndef RHTM_STM_TL2_H
#define RHTM_STM_TL2_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/engine/journal.h"
#include "src/core/engine/mem_access.h"
#include "src/core/engine/session.h"
#include "src/core/engine/session_core.h"
#include "src/stats/stats.h"
#include "src/util/backoff.h"

namespace rhtm
{

/**
 * TL2's shared state: the global version clock and the ownership
 * record (orec) table. Orecs map cache lines to versioned locks:
 * even values are versions, odd values are (tid << 1) | 1 locks.
 */
class Tl2Globals
{
  public:
    /** @param orec_count_log2 log2 of the orec-table size. */
    explicit Tl2Globals(unsigned orec_count_log2 = 20)
        : clock_(2), shift_(64 - orec_count_log2),
          orecs_(size_t(1) << orec_count_log2)
    {
        for (auto &o : orecs_)
            o.store(0, std::memory_order_relaxed);
    }

    /** Orec index covering @p addr's cache line. */
    size_t
    orecOf(const void *addr) const
    {
        uint64_t line = reinterpret_cast<uint64_t>(addr) >> 6;
        return (line * 0x9e3779b97f4a7c15ull) >> shift_;
    }

    /** The orec word at @p idx. */
    std::atomic<uint64_t> &orec(size_t idx) { return orecs_[idx]; }

    /** The global version clock (advances by 2). */
    std::atomic<uint64_t> &clock() { return clock_; }

    /**
     * The irrevocability token: 0 when free, owner tid + 1 while an
     * irrevocable transaction is live. At most one transaction may be
     * irrevocable at a time; the holder is the only TL2 thread ever
     * allowed to wait on a locked orec (everyone else restarts), which
     * keeps the 2PL upgrade deadlock-free.
     */
    std::atomic<uint64_t> &irrevocableOwner() { return irrevocable_; }

    /** True when @p orec_value is a lock. */
    static bool isLocked(uint64_t orec_value) { return orec_value & 1; }

    /** Owner tid of a locked orec value. */
    static unsigned
    ownerOf(uint64_t orec_value)
    {
        return static_cast<unsigned>(orec_value >> 1);
    }

    /** Locked orec value for @p tid. */
    static uint64_t
    lockFor(unsigned tid)
    {
        return (static_cast<uint64_t>(tid) << 1) | 1;
    }

    /**
     * Restore the power-on state: clock back to 2, the irrevocability
     * token free, every orec back to version 0. Test isolation only
     * (the interleaving explorer, between runs); callers must
     * guarantee quiescence.
     */
    void
    resetForTest()
    {
        clock_.store(2, std::memory_order_relaxed);
        irrevocable_.store(0, std::memory_order_relaxed);
        for (auto &o : orecs_)
            o.store(0, std::memory_order_relaxed);
    }

  private:
    alignas(64) std::atomic<uint64_t> clock_;
    alignas(64) std::atomic<uint64_t> irrevocable_{0};
    unsigned shift_;
    std::vector<std::atomic<uint64_t>> orecs_;
};

/**
 * Per-thread TL2 session (eager variant, with an undo journal for
 * aborts after encounter-time writes).
 */
class Tl2Session : public TxSession
{
  public:
    Tl2Session(Tl2Globals &globals, ThreadStats *stats, unsigned tid,
               unsigned access_penalty = 0,
               TxPersist *persist = nullptr);

    void begin(TxnHint hint) override;
    void commit() override;
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return irrevocable_; }
    void onHtmAbort(const HtmAbort &abort) override;
    void onRestart() override;
    void onUserAbort() override;
    void onComplete() override;
    const char *name() const override { return "tl2"; }

    void
    resetForTest() override
    {
        backoff_.reset();
        tally_ = AccessTally{};
        rv_ = 0;
        irrevocable_ = false;
        readLog_.clear();
        owned_.clear();
        undo_.clear();
    }

  private:
    struct OwnedOrec
    {
        size_t idx;
        uint64_t oldValue;
    };

    static uint64_t optimisticRead(void *self, const uint64_t *addr);
    static void optimisticWrite(void *self, uint64_t *addr,
                                uint64_t value);
    static uint64_t pinnedRead(void *self, const uint64_t *addr);
    static void pinnedWrite(void *self, uint64_t *addr, uint64_t value);

    static constexpr TxDispatch kOptimisticDispatch = {&optimisticRead,
                                                       &optimisticWrite};
    static constexpr TxDispatch kTwoPhaseDispatch = {&pinnedRead,
                                                     &pinnedWrite};

    /** Undo writes and release owned orecs at their old versions. */
    void rollback();

    /**
     * Acquire the orec at @p idx for the irrevocable 2PL phase,
     * waiting out other owners (only the token holder may wait).
     * @return false when @p validate_rv is set and the unlocked orec
     *         is newer than our snapshot (caller must restart).
     */
    bool lockOrecIrrevocable(size_t idx, bool validate_rv);

    /** Release the irrevocability token if this session holds it. */
    void releaseIrrevocable();

    [[noreturn]] void restart();

    Tl2Globals &g_;
    ThreadStats *stats_;
    unsigned tid_;
    unsigned penalty_;
    RawMem mem_;
    Backoff backoff_;
    AccessTally tally_;
    uint64_t rv_ = 0;
    bool irrevocable_ = false;
    std::vector<size_t> readLog_;
    std::vector<OwnedOrec> owned_;
    UndoJournal undo_;
    TxPersist *persist_; //!< Durable-commit driver; null = off.
};

} // namespace rhtm

#endif // RHTM_STM_TL2_H
