#include "src/store/cross_txn.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "src/core/engine/globals.h"
#include "src/core/engine/mem_access.h"

namespace rhtm
{

namespace
{

/** Sandwich-read retries before the attempt restarts. */
constexpr unsigned kReadSpins = 128;

/** Prepare-side lock-acquisition spins before prepare() fails. */
constexpr unsigned kPrepareSpins = 256;

/** Yield cadence inside bounded and blocking waits. */
constexpr unsigned kYieldEvery = 32;

void
spinPause(unsigned iter)
{
    if (iter % kYieldEvery == kYieldEvery - 1)
        std::this_thread::yield();
}

} // namespace

CrossFamily
crossFamilyOf(AlgoKind kind)
{
    switch (kind) {
    case AlgoKind::kNOrec:
    case AlgoKind::kNOrecLazy:
        return CrossFamily::kClockRaw;
    case AlgoKind::kHybridNOrec:
    case AlgoKind::kHybridNOrecLazy:
    case AlgoKind::kRhNOrec:
        return CrossFamily::kClockEngine;
    case AlgoKind::kLockElision:
        return CrossFamily::kGlobalLock;
    case AlgoKind::kTl2:
        return CrossFamily::kTl2;
    case AlgoKind::kRhTl2:
        return CrossFamily::kRhTl2;
    }
    std::abort();
}

const TxDispatch CrossShardPart::kDispatch = {
    &CrossShardPart::readDispatchFn, &CrossShardPart::writeDispatchFn};

CrossShardPart::CrossShardPart(TmRuntime &rt, ThreadCtx &ctx,
                               unsigned ownerId)
    : rt_(rt), ctx_(ctx), eng_(rt.engine()), g_(rt.globals()),
      tl2_(rt.tl2Globals()), rhTl2_(rt.rhTl2Globals()),
      family_(crossFamilyOf(rt.kind())), ownerId_(ownerId)
{
    bindDispatch(kDispatch, this);
}

uint64_t
CrossShardPart::readDispatchFn(void *self, const uint64_t *addr)
{
    auto *p = static_cast<CrossShardPart *>(self);
    uint64_t buffered;
    if (p->bufferedValue(addr, buffered))
        return buffered;
    return p->escalated_ ? p->readEscalated(addr) : p->readWord(addr);
}

void
CrossShardPart::writeDispatchFn(void *self, uint64_t *addr,
                                uint64_t value)
{
    static_cast<CrossShardPart *>(self)->bufferWrite(addr, value);
}

bool
CrossShardPart::bufferedValue(const uint64_t *addr, uint64_t &out) const
{
    // Linear scan, newest-first so a rewrite of the same word wins.
    for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
        if (it->first == addr) {
            out = it->second;
            return true;
        }
    }
    return false;
}

void
CrossShardPart::bufferWrite(uint64_t *addr, uint64_t value)
{
    for (auto &w : writes_) {
        if (w.first == addr) {
            w.second = value;
            return;
        }
    }
    writes_.emplace_back(addr, value);
}

uint64_t
CrossShardPart::readWord(const uint64_t *addr)
{
    RawMem raw;
    switch (family_) {
    case CrossFamily::kClockRaw:
        // NOrec clock sandwich: every native commit moves the clock,
        // so a stable unlocked pair brackets a committed value.
        for (unsigned i = 0; i < kReadSpins; ++i) {
            uint64_t c1 = raw.load(&g_.clock);
            if (clockIsLocked(c1)) {
                spinPause(i);
                continue;
            }
            uint64_t v = raw.load(addr);
            if (raw.load(&g_.clock) == c1) {
                reads_.push_back({addr, v, 0});
                return v;
            }
            spinPause(i);
        }
        restart();
    case CrossFamily::kClockEngine:
        // Same sandwich through the engine. Silent fallback-free HTM
        // commits can slip between the clock reads, but each such
        // commit is atomic, so v is still some committed value; the
        // cross-snapshot consistency gap is closed by prepare()'s
        // value revalidation under clock + htmLock.
        for (unsigned i = 0; i < kReadSpins; ++i) {
            uint64_t c1 = eng_.directLoad(&g_.clock);
            if (clockIsLocked(c1)) {
                spinPause(i);
                continue;
            }
            uint64_t v = eng_.directLoad(addr);
            if (eng_.directLoad(&g_.clock) == c1) {
                reads_.push_back({addr, v, 0});
                return v;
            }
            spinPause(i);
        }
        restart();
    case CrossFamily::kGlobalLock:
        // Shard frozen since beginAttempt: direct reads, no log.
        return eng_.directLoad(addr);
    case CrossFamily::kTl2: {
        // Orec-stable sandwich. An unlocked, unmoved orec brackets a
        // committed in-place value (eager natives only dirty a word
        // while holding its orec).
        size_t idx = tl2_->orecOf(addr);
        for (unsigned i = 0; i < kReadSpins; ++i) {
            uint64_t o1 =
                tl2_->orec(idx).load(std::memory_order_seq_cst);
            if (Tl2Globals::isLocked(o1)) {
                spinPause(i);
                continue;
            }
            uint64_t v = raw.load(addr);
            if (tl2_->orec(idx).load(std::memory_order_seq_cst) == o1) {
                reads_.push_back({addr, v, idx});
                return v;
            }
            spinPause(i);
        }
        restart();
    }
    case CrossFamily::kRhTl2: {
        // TL2-style versioned read against the attempt's rv. Sound
        // against mid-writeback natives because native write-back
        // stamps the orec BEFORE the value: a torn value implies a
        // moved (or too-new) orec.
        uint64_t *orec = rhTl2_->orecOf(addr);
        for (unsigned i = 0; i < kReadSpins; ++i) {
            uint64_t o1 = eng_.directLoad(orec);
            if (o1 > snapshot_)
                restart();
            uint64_t v = eng_.directLoad(addr);
            if (eng_.directLoad(orec) == o1) {
                reads_.push_back(
                    {addr, v, reinterpret_cast<uint64_t>(orec)});
                return v;
            }
            spinPause(i);
        }
        restart();
    }
    }
    std::abort();
}

uint64_t
CrossShardPart::readEscalated(const uint64_t *addr)
{
    // The shard is frozen (family freeze held): no native commit can
    // race, so direct loads observe committed state. TL2 is the
    // exception -- freezing TL2 means holding the irrevocability token,
    // and committed state is only guaranteed under the word's orec, so
    // reads lock encounter-time (blocking 2PL; safe because only the
    // token holder may block on orecs).
    if (family_ == CrossFamily::kTl2) {
        RawMem raw;
        lockTl2Orec(tl2_->orecOf(addr), /*blocking=*/true,
                    /*written=*/false);
        return raw.load(addr);
    }
    if (family_ == CrossFamily::kClockRaw) {
        RawMem raw;
        return raw.load(addr);
    }
    return eng_.directLoad(addr);
}

bool
CrossShardPart::lockTl2Orec(size_t idx, bool blocking, bool written)
{
    for (auto &o : owned_) {
        if (o.idx == idx) {
            o.written = o.written || written;
            return true;
        }
    }
    const uint64_t mine = Tl2Globals::lockFor(kCrossOwnerBase + ownerId_);
    for (unsigned i = 0;; ++i) {
        uint64_t cur = tl2_->orec(idx).load(std::memory_order_seq_cst);
        if (!Tl2Globals::isLocked(cur)) {
            uint64_t expected = cur;
            if (tl2_->orec(idx).compare_exchange_strong(
                    expected, mine, std::memory_order_seq_cst)) {
                owned_.push_back({idx, cur, written});
                return true;
            }
        }
        if (!blocking && i >= kPrepareSpins)
            return false;
        spinPause(i);
    }
}

void
CrossShardPart::releaseTl2Owned(bool publishVersions)
{
    if (owned_.empty())
        return;
    uint64_t wv = 0;
    if (publishVersions) {
        bool anyWritten = false;
        for (const auto &o : owned_)
            anyWritten = anyWritten || o.written;
        if (anyWritten)
            wv = tl2_->clock().fetch_add(2, std::memory_order_seq_cst) +
                 2;
    }
    // Reverse acquisition order; read-only orecs go back to the exact
    // value they were locked at (the data under them never changed).
    for (auto it = owned_.rbegin(); it != owned_.rend(); ++it) {
        uint64_t release =
            (publishVersions && it->written) ? wv : it->oldValue;
        tl2_->orec(it->idx).store(release, std::memory_order_seq_cst);
    }
    owned_.clear();
}

void
CrossShardPart::freezeBlocking()
{
    RawMem raw;
    switch (family_) {
    case CrossFamily::kClockRaw:
        for (unsigned i = 0;; ++i) {
            uint64_t c = raw.load(&g_.clock);
            if (!clockIsLocked(c)) {
                uint64_t expected = c;
                if (raw.cas(&g_.clock, expected, clockWithLock(c))) {
                    snapshot_ = c;
                    clockHeld_ = true;
                    break;
                }
            }
            spinPause(i);
        }
        break;
    case CrossFamily::kClockEngine:
        for (unsigned i = 0;; ++i) {
            uint64_t c = eng_.directLoad(&g_.clock);
            if (!clockIsLocked(c)) {
                uint64_t expected = c;
                if (eng_.directCas(&g_.clock, expected,
                                   clockWithLock(c))) {
                    snapshot_ = c;
                    clockHeld_ = true;
                    break;
                }
            }
            spinPause(i);
        }
        // htmLock is only ever raised by the clock holder (see
        // hybrid_norec.cc), so with the clock won it is necessarily 0.
        eng_.directStore(&g_.htmLock, 1);
        htmLockHeld_ = true;
        stampEpoch(g_.watchdog.clockEpoch);
        break;
    case CrossFamily::kGlobalLock:
        for (unsigned i = 0;; ++i) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.globalLock, expected, 1))
                break;
            spinPause(i);
        }
        stampEpoch(g_.watchdog.clockEpoch);
        break;
    case CrossFamily::kTl2:
        // Take the irrevocability token: excludes native irrevocables
        // and licenses this thread to block on orecs (2PL reads).
        for (unsigned i = 0;; ++i) {
            uint64_t expected = 0;
            if (tl2_->irrevocableOwner().compare_exchange_strong(
                    expected,
                    static_cast<uint64_t>(kCrossOwnerBase + ownerId_) +
                        1,
                    std::memory_order_seq_cst)) {
                tokenHeld_ = true;
                break;
            }
            spinPause(i);
        }
        break;
    case CrossFamily::kRhTl2:
        for (unsigned i = 0;; ++i) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.htmLock, expected, 1)) {
                htmLockHeld_ = true;
                break;
            }
            spinPause(i);
        }
        stampEpoch(g_.watchdog.clockEpoch);
        break;
    }
    frozen_ = true;
}

void
CrossShardPart::beginAttempt(bool escalated)
{
    reads_.clear();
    writes_.clear();
    owned_.clear();
    escalated_ = escalated;
    rt_.memory().epochs().enterRegion(ctx_.tid());
    active_ = true;
    if (escalated) {
        freezeBlocking();
        return;
    }
    switch (family_) {
    case CrossFamily::kGlobalLock:
        // Freeze-at-begin, bounded: lock-elision has no clock, so the
        // only consistent read protocol is exclusion for the whole
        // attempt.
        for (unsigned i = 0; i < kPrepareSpins; ++i) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.globalLock, expected, 1)) {
                frozen_ = true;
                stampEpoch(g_.watchdog.clockEpoch);
                return;
            }
            spinPause(i);
        }
        restart();
    case CrossFamily::kRhTl2:
        snapshot_ = eng_.directLoad(rhTl2_->clock());
        return;
    default:
        return;
    }
}

bool
CrossShardPart::validateReads() const
{
    RawMem raw;
    for (const auto &e : reads_) {
        uint64_t current;
        switch (family_) {
        case CrossFamily::kClockRaw:
        case CrossFamily::kTl2:
            current = raw.load(e.addr);
            break;
        default:
            current = eng_.directLoad(e.addr);
            break;
        }
        if (current != e.value)
            return false;
    }
    return true;
}

bool
CrossShardPart::prepare()
{
    RawMem raw;
    switch (family_) {
    case CrossFamily::kClockRaw: {
        for (unsigned i = 0; i < kPrepareSpins; ++i) {
            uint64_t c = raw.load(&g_.clock);
            if (!clockIsLocked(c)) {
                uint64_t expected = c;
                if (raw.cas(&g_.clock, expected, clockWithLock(c))) {
                    snapshot_ = c;
                    clockHeld_ = true;
                    if (validateReads())
                        return true;
                    raw.store(&g_.clock, snapshot_);
                    clockHeld_ = false;
                    return false;
                }
            }
            spinPause(i);
        }
        return false;
    }
    case CrossFamily::kClockEngine: {
        for (unsigned i = 0; i < kPrepareSpins; ++i) {
            uint64_t c = eng_.directLoad(&g_.clock);
            if (!clockIsLocked(c)) {
                uint64_t expected = c;
                if (eng_.directCas(&g_.clock, expected,
                                   clockWithLock(c))) {
                    snapshot_ = c;
                    clockHeld_ = true;
                    // Guaranteed 0 while we hold the clock; raising it
                    // stalls every silent hardware commit so the value
                    // revalidation below is against a frozen shard.
                    eng_.directStore(&g_.htmLock, 1);
                    htmLockHeld_ = true;
                    stampEpoch(g_.watchdog.clockEpoch);
                    if (validateReads())
                        return true;
                    eng_.directStore(&g_.htmLock, 0);
                    htmLockHeld_ = false;
                    eng_.directStore(&g_.clock, snapshot_);
                    clockHeld_ = false;
                    stampEpoch(g_.watchdog.clockEpoch);
                    return false;
                }
            }
            spinPause(i);
        }
        return false;
    }
    case CrossFamily::kGlobalLock:
        // Held since beginAttempt; nothing to validate.
        return true;
    case CrossFamily::kTl2: {
        // Lock the read and write footprint's orecs in ascending index
        // order (bounded), then value-revalidate the reads.
        std::vector<std::pair<size_t, bool>> want;
        want.reserve(reads_.size() + writes_.size());
        for (const auto &e : reads_)
            want.emplace_back(static_cast<size_t>(e.meta), false);
        for (const auto &w : writes_)
            want.emplace_back(tl2_->orecOf(w.first), true);
        std::sort(want.begin(), want.end());
        for (const auto &[idx, written] : want) {
            if (!lockTl2Orec(idx, /*blocking=*/false, written)) {
                releaseTl2Owned(false);
                return false;
            }
        }
        if (!validateReads()) {
            releaseTl2Owned(false);
            return false;
        }
        return true;
    }
    case CrossFamily::kRhTl2: {
        for (unsigned i = 0; i < kPrepareSpins; ++i) {
            uint64_t expected = 0;
            if (eng_.directCas(&g_.htmLock, expected, 1)) {
                htmLockHeld_ = true;
                stampEpoch(g_.watchdog.clockEpoch);
                if (validateReads())
                    return true;
                eng_.directStore(&g_.htmLock, 0);
                htmLockHeld_ = false;
                stampEpoch(g_.watchdog.clockEpoch);
                return false;
            }
            spinPause(i);
        }
        return false;
    }
    }
    std::abort();
}

void
CrossShardPart::publish()
{
    RawMem raw;
    switch (family_) {
    case CrossFamily::kClockRaw:
        for (const auto &w : writes_)
            raw.store(w.first, w.second);
        break;
    case CrossFamily::kClockEngine:
    case CrossFamily::kGlobalLock:
        for (const auto &w : writes_)
            eng_.directStore(w.first, w.second);
        break;
    case CrossFamily::kTl2:
        if (escalated_) {
            // Escalated 2PL: write orecs were not pre-locked by a
            // prepare pass; take them now (blocking, token held).
            for (const auto &w : writes_)
                lockTl2Orec(tl2_->orecOf(w.first), /*blocking=*/true,
                            /*written=*/true);
        }
        for (const auto &w : writes_)
            raw.store(w.first, w.second);
        break;
    case CrossFamily::kRhTl2: {
        if (writes_.empty())
            break;
        // Native write-back order: orec first, then the value, clock
        // last. The shard's htmLock is held, so the clock cannot move
        // underneath us.
        uint64_t wv = eng_.directLoad(rhTl2_->clock()) + 2;
        for (const auto &w : writes_) {
            eng_.directStore(rhTl2_->orecOf(w.first), wv);
            eng_.directStore(w.first, w.second);
        }
        eng_.directStore(rhTl2_->clock(), wv);
        break;
    }
    }
}

void
CrossShardPart::releaseAdvance()
{
    RawMem raw;
    switch (family_) {
    case CrossFamily::kClockRaw:
        if (clockHeld_) {
            raw.store(&g_.clock, wrote()
                                     ? clockUnlockAndAdvance(snapshot_)
                                     : snapshot_);
            clockHeld_ = false;
        }
        break;
    case CrossFamily::kClockEngine:
        if (htmLockHeld_) {
            eng_.directStore(&g_.htmLock, 0);
            htmLockHeld_ = false;
        }
        if (clockHeld_) {
            eng_.directStore(&g_.clock,
                             wrote() ? clockUnlockAndAdvance(snapshot_)
                                     : snapshot_);
            clockHeld_ = false;
            stampEpoch(g_.watchdog.clockEpoch);
        }
        break;
    case CrossFamily::kGlobalLock:
        if (frozen_) {
            eng_.directStore(&g_.globalLock, 0);
            frozen_ = false;
            stampEpoch(g_.watchdog.clockEpoch);
        }
        break;
    case CrossFamily::kTl2:
        releaseTl2Owned(true);
        break;
    case CrossFamily::kRhTl2:
        if (htmLockHeld_) {
            eng_.directStore(&g_.htmLock, 0);
            htmLockHeld_ = false;
            stampEpoch(g_.watchdog.clockEpoch);
        }
        break;
    }
}

void
CrossShardPart::releaseRestore()
{
    RawMem raw;
    switch (family_) {
    case CrossFamily::kClockRaw:
        if (clockHeld_) {
            raw.store(&g_.clock, snapshot_);
            clockHeld_ = false;
        }
        break;
    case CrossFamily::kClockEngine:
        if (htmLockHeld_) {
            eng_.directStore(&g_.htmLock, 0);
            htmLockHeld_ = false;
        }
        if (clockHeld_) {
            eng_.directStore(&g_.clock, snapshot_);
            clockHeld_ = false;
            stampEpoch(g_.watchdog.clockEpoch);
        }
        break;
    case CrossFamily::kGlobalLock:
        // Freeze persists until rollbackAttempt: the lock was taken at
        // begin, not by prepare, so an unrelated shard's prepare
        // failure must not drop it early.
        break;
    case CrossFamily::kTl2:
        releaseTl2Owned(false);
        break;
    case CrossFamily::kRhTl2:
        if (htmLockHeld_) {
            eng_.directStore(&g_.htmLock, 0);
            htmLockHeld_ = false;
            stampEpoch(g_.watchdog.clockEpoch);
        }
        break;
    }
}

void
CrossShardPart::publishEscalated()
{
    publish();
}

void
CrossShardPart::releaseEscalated()
{
    releaseAdvance();
    if (tokenHeld_) {
        tl2_->irrevocableOwner().store(0, std::memory_order_seq_cst);
        tokenHeld_ = false;
    }
    frozen_ = false;
}

void
CrossShardPart::rollbackAttempt()
{
    if (!active_)
        return;
    releaseRestore();
    if (frozen_ && family_ == CrossFamily::kGlobalLock) {
        eng_.directStore(&g_.globalLock, 0);
        stampEpoch(g_.watchdog.clockEpoch);
    }
    frozen_ = false;
    if (tokenHeld_) {
        tl2_->irrevocableOwner().store(0, std::memory_order_seq_cst);
        tokenHeld_ = false;
    }
    reads_.clear();
    writes_.clear();
    rt_.memory().epochs().exitRegion(ctx_.tid());
    active_ = false;
    escalated_ = false;
}

void
CrossShardPart::finishCommitted()
{
    reads_.clear();
    writes_.clear();
    rt_.memory().epochs().exitRegion(ctx_.tid());
    active_ = false;
    escalated_ = false;
}

void
CrossShardPart::becomeIrrevocable()
{
    // Unsupported inside cross-shard bodies: escalation (decided by
    // the coordinator, never mid-body) is the irrevocable analogue.
    std::abort();
}

} // namespace rhtm
