/**
 * @file
 * CrossShardPart: one shard's view of a cross-shard transaction.
 *
 * A cross-shard transaction runs one logical body over several
 * TmRuntimes at once. Per involved shard it keeps a value read log and
 * a redo write buffer, reads committed state with the shard family's
 * consistency protocol, and commits through the engine's ordered
 * two-phase MultiDomainCommit (prepare = lock + revalidate, publish,
 * release in reverse). This class is both sides of that coin: a
 * TxSession (so Txn and the transactional containers work unchanged
 * against it) and a DomainCommitPart (so multiDomainCommit() can drive
 * it).
 *
 * Families (by the shard's AlgoKind):
 *
 *  - clock/raw (norec, norec-lazy): every native commit locks the
 *    NOrec clock, so a clock-stable sandwich (c1 unlocked, load, c2 ==
 *    c1) yields a committed value. Prepare = CAS the clock locked at
 *    its current value + value-revalidate the read log (the NOrec
 *    commit, via this shard's domain seqlock).
 *  - clock/engine (hy-norec, hy-norec-lazy, rh-norec): same protocol
 *    through HtmEngine direct ops. Hardware fast paths may commit
 *    without moving the clock when no fallback is registered; those
 *    silent commits are atomic (a sandwich load sees pre- or
 *    post-state, never a torn write) and any resulting cross-read
 *    staleness is caught by prepare's value revalidation, which runs
 *    with the clock locked AND htmLock raised (fast paths subscribe
 *    htmLock, so nothing can commit mid-validation). Raising htmLock
 *    after winning the clock is race-free: every native raises it only
 *    while holding the clock (see hybrid_norec.cc, rh_norec.cc).
 *  - global-lock (lock-elision): there is no clock to validate
 *    against, so the shard is frozen for the whole attempt -- the
 *    global lock is acquired at begin (bounded spin, then restart),
 *    body reads are direct under the held lock, and prepare is a
 *    no-op. Fast paths subscribe the lock word and serial natives
 *    spin on it, so the freeze excludes every native commit.
 *  - tl2: orec-stable sandwich reads (locked or moved orec =>
 *    restart); prepare CAS-locks every read/written orec with a
 *    cross-owner id far above the native tid range, then
 *    value-revalidates. Publication stores values under the held
 *    orecs; release stamps written orecs with a fresh clock version
 *    and restores read-only orecs to the value they were locked at.
 *  - rh-tl2: reads validate orec version <= the attempt's clock
 *    snapshot with an orec-stable sandwich (sound because native
 *    write-back stores the orec before the value); prepare takes the
 *    shard's HTM lock and value-revalidates; publication follows the
 *    native order (orec = wv, then value, clock last).
 *
 * Every prepare-side wait is bounded (spin cap, then fail), so
 * cross-shard committers -- which acquire shards in ascending domain-id
 * order -- can never deadlock against each other or against natives.
 * Repeated failure escalates: the coordinator serializes under a
 * store-level mutex and calls freeze() on every involved shard in
 * domain order (blocking acquires of the same words), after which the
 * body reads directly and publication cannot fail. See docs/STORE.md.
 *
 * Not supported inside cross-shard bodies: becomeIrrevocable() (the
 * escalated mode IS the irrevocable analogue) and tx.retry().
 */

#ifndef RHTM_STORE_CROSS_TXN_H
#define RHTM_STORE_CROSS_TXN_H

#include <cstdint>
#include <vector>

#include "src/api/runtime.h"
#include "src/core/engine/multi_domain_commit.h"

namespace rhtm
{

/** Read/validate protocol family of a shard's AlgoKind. */
enum class CrossFamily : uint8_t
{
    kClockRaw,   //!< norec, norec-lazy (RawMem clock sandwich).
    kClockEngine, //!< hy-norec, hy-norec-lazy, rh-norec.
    kGlobalLock, //!< lock-elision (freeze-at-begin).
    kTl2,        //!< tl2 (orec locks).
    kRhTl2,      //!< rh-tl2 (orec versions + HTM lock).
};

CrossFamily crossFamilyOf(AlgoKind kind);

/**
 * TL2 cross-commit owner ids start here, far above any plausible
 * native tid, so Tl2Globals::ownerOf can never confuse a cross lock
 * with a native thread's eager lock.
 */
constexpr unsigned kCrossOwnerBase = 1u << 20;

class CrossShardPart final : public TxSession, public DomainCommitPart
{
  public:
    /**
     * @param rt      The shard's runtime.
     * @param ctx     This worker's ThreadCtx registered on @p rt.
     * @param ownerId Store-wide worker index (lock owner identity).
     */
    CrossShardPart(TmRuntime &rt, ThreadCtx &ctx, unsigned ownerId);

    TmRuntime &runtime() { return rt_; }
    ThreadCtx &threadCtx() { return ctx_; }
    bool wrote() const { return !writes_.empty(); }

    // -----------------------------------------------------------------
    // Attempt lifecycle (driven by the store's cross-txn coordinator).

    /**
     * Start one attempt. Optimistic mode samples the family's snapshot
     * (and freezes a global-lock shard, bounded -- may throw
     * TxRestart); escalated mode takes the family's freeze with
     * blocking waits (coordinator holds the store escalation mutex and
     * calls parts in ascending domain order, so the blocking is
     * deadlock-free).
     */
    void beginAttempt(bool escalated);

    /** Abort the attempt: drop any held freeze/locks, clear buffers. */
    void rollbackAttempt();

    /** Post-commit cleanup (buffers only; locks already released). */
    void finishCommitted();

    /** Escalated-mode publication (no prepare; freeze already held). */
    void publishEscalated();

    /** Escalated-mode release, called in descending domain order. */
    void releaseEscalated();

    // -----------------------------------------------------------------
    // DomainCommitPart (optimistic two-phase commit).

    uint64_t domainId() const override { return rt_.domain().id(); }
    bool prepare() override;
    void publish() override;
    void releaseAdvance() override;
    void releaseRestore() override;

    // -----------------------------------------------------------------
    // TxSession. The coordinator, not the session, owns begin/commit;
    // these exist so Txn and the transactional containers bind.

    void begin(TxnHint hint) override { (void)hint; }
    void commit() override {}
    void becomeIrrevocable() override;
    bool isIrrevocable() const override { return escalated_; }
    void onHtmAbort(const HtmAbort &abort) override { (void)abort; }
    void onRestart() override {}
    void onUserAbort() override { rollbackAttempt(); }
    void onComplete() override {}
    const char *name() const override { return "cross-shard"; }

  private:
    struct ReadEntry
    {
        const uint64_t *addr;
        uint64_t value;
        uint64_t meta; //!< TL2 orec index / RH-TL2 orec pointer.
    };

    struct OwnedOrec
    {
        size_t idx;
        uint64_t oldValue;
        bool written;
    };

    static uint64_t readDispatchFn(void *self, const uint64_t *addr);
    static void writeDispatchFn(void *self, uint64_t *addr,
                                uint64_t value);
    static const TxDispatch kDispatch;

    uint64_t readWord(const uint64_t *addr);
    uint64_t readEscalated(const uint64_t *addr);
    void bufferWrite(uint64_t *addr, uint64_t value);
    bool bufferedValue(const uint64_t *addr, uint64_t &out) const;

    [[noreturn]] static void restart() { throw TxRestart{}; }

    bool lockTl2Orec(size_t idx, bool blocking, bool written);
    void releaseTl2Owned(bool publishVersions);
    void freezeBlocking();
    bool validateReads() const;

    TmRuntime &rt_;
    ThreadCtx &ctx_;
    HtmEngine &eng_;
    TmGlobals &g_;
    Tl2Globals *tl2_;
    RhTl2Globals *rhTl2_;
    CrossFamily family_;
    unsigned ownerId_;

    std::vector<ReadEntry> reads_;
    std::vector<std::pair<uint64_t *, uint64_t>> writes_;
    std::vector<OwnedOrec> owned_; //!< TL2 orecs this attempt holds.

    uint64_t snapshot_ = 0;  //!< Clock sample (rv / locked-at value).
    bool active_ = false;    //!< Attempt in flight (epoch slot held).
    bool escalated_ = false;
    bool frozen_ = false;    //!< Family freeze held (C always; all
                             //!< families in escalated mode).
    bool clockHeld_ = false; //!< Clock seqlock held (families A/B).
    bool htmLockHeld_ = false;
    bool tokenHeld_ = false; //!< TL2 irrevocable token (escalated).
};

} // namespace rhtm

#endif // RHTM_STORE_CROSS_TXN_H
