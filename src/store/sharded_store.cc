#include "src/store/sharded_store.h"

#include <algorithm>
#include <cstdlib>

namespace rhtm
{

struct ShardedStore::Shard
{
    explicit Shard(unsigned bucketsLog2) : values(bucketsLog2) {}

    TxHashMap values; //!< Authoritative key -> value table.
    TxRbTree index;   //!< Ordered key index (native ops only).
};

ShardedStore::ShardedStore(StoreConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.shards == 0)
        cfg_.shards = 1;
    shards_.reserve(cfg_.shards);
    data_.reserve(cfg_.shards);
    for (unsigned s = 0; s < cfg_.shards; ++s) {
        RuntimeConfig rc = cfg_.runtime;
        // Decorrelate per-shard RNG streams (contention managers,
        // injectors) without changing the caller-visible seed.
        rc.rngSeed = cfg_.runtime.rngSeed + s * 0x9e3779b9u;
        shards_.push_back(std::make_unique<TmRuntime>(cfg_.kind, rc));
        data_.push_back(std::make_unique<Shard>(cfg_.hashBucketsLog2));
    }
}

ShardedStore::~ShardedStore()
{
    // Drain the structures back into a thread arena so node memory is
    // not leaked; any registered worker's arena serves (quiescent).
    if (!workers_.empty()) {
        for (unsigned s = 0; s < shardCount(); ++s) {
            ThreadMem &mem = workers_[0]->ctxs_[s]->mem();
            data_[s]->values.clearUnsync(mem);
            data_[s]->index.clearUnsync(mem);
        }
    }
}

StoreWorker &
ShardedStore::registerWorker()
{
    std::lock_guard<std::mutex> guard(registerLock_);
    auto worker = std::unique_ptr<StoreWorker>(
        new StoreWorker(static_cast<unsigned>(workers_.size())));
    for (unsigned s = 0; s < shardCount(); ++s) {
        ThreadCtx &ctx = shards_[s]->registerThread();
        worker->ctxs_.push_back(&ctx);
        worker->parts_.push_back(std::make_unique<CrossShardPart>(
            *shards_[s], ctx, worker->id()));
    }
    workers_.push_back(std::move(worker));
    return *workers_.back();
}

unsigned
ShardedStore::shardOf(uint64_t key) const
{
    key *= 0x9e3779b97f4a7c15ull;
    key ^= key >> 32;
    return static_cast<unsigned>(key % shards_.size());
}

uint64_t
ShardedStore::keyForShard(unsigned shard, uint64_t salt) const
{
    // Distinct salts probe distinct 1024-key windows, so the returned
    // keys never collide across salts; the hash spreads shards finely
    // enough that a window always contains every shard.
    uint64_t base = salt * 1024;
    for (uint64_t j = 0; j < 1024; ++j) {
        if (shardOf(base + j) == shard)
            return base + j;
    }
    std::abort();
}

void
ShardedStore::seed(StoreWorker &w, uint64_t keyCount, uint64_t value)
{
    for (uint64_t key = 0; key < keyCount; ++key)
        put(w, key, value);
}

TxnOutcome
ShardedStore::runNative(StoreWorker &w, unsigned shard,
                        const StoreOpts &opts, StoreOpRecord &rec,
                        const std::function<void(Txn &)> &body)
{
    if (observer_ != nullptr)
        observer_->onTxnBegin(w.id());
    TxnOptions topts;
    topts.deadline = opts.deadline;
    topts.allowShed = opts.allowShed;
    TxnOutcome out =
        shards_[shard]->runWith(*w.ctxs_[shard], topts, [&](Txn &tx) {
            rec.reads.clear();
            rec.writes.clear();
            body(tx);
        });
    if (out == TxnOutcome::kCommitted && observer_ != nullptr)
        observer_->onTxnCommit(rec);
    return out;
}

TxnOutcome
ShardedStore::get(StoreWorker &w, uint64_t key, uint64_t &valueOut,
                  bool &found, const StoreOpts &opts)
{
    unsigned s = shardOf(key);
    StoreOpRecord rec;
    rec.worker = w.id();
    bool f = false;
    uint64_t v = 0;
    TxnOutcome out = runNative(w, s, opts, rec, [&](Txn &tx) {
        f = data_[s]->values.get(tx, key, v);
        if (f)
            rec.reads.emplace_back(key, v);
    });
    if (out == TxnOutcome::kCommitted) {
        found = f;
        valueOut = v;
    }
    return out;
}

TxnOutcome
ShardedStore::put(StoreWorker &w, uint64_t key, uint64_t value,
                  const StoreOpts &opts)
{
    unsigned s = shardOf(key);
    StoreOpRecord rec;
    rec.worker = w.id();
    return runNative(w, s, opts, rec, [&](Txn &tx) {
        bool inserted = data_[s]->values.put(tx, key, value);
        if (inserted)
            data_[s]->index.put(tx, static_cast<int64_t>(key),
                                static_cast<int64_t>(key));
        rec.writes.emplace_back(key, value);
    });
}

TxnOutcome
ShardedStore::scan(StoreWorker &w, unsigned shard, uint64_t lo,
                   uint64_t hi, size_t limit,
                   std::vector<std::pair<uint64_t, uint64_t>> &out,
                   const StoreOpts &opts)
{
    StoreOpRecord rec;
    rec.worker = w.id();
    return runNative(w, shard, opts, rec, [&](Txn &tx) {
        out.clear();
        std::vector<std::pair<int64_t, int64_t>> keys;
        data_[shard]->index.scanRange(tx, static_cast<int64_t>(lo),
                                      static_cast<int64_t>(hi), limit,
                                      keys);
        for (const auto &[key, unused] : keys) {
            (void)unused;
            uint64_t v = 0;
            if (data_[shard]->values.get(
                    tx, static_cast<uint64_t>(key), v)) {
                out.emplace_back(static_cast<uint64_t>(key), v);
                rec.reads.emplace_back(static_cast<uint64_t>(key), v);
            }
        }
    });
}

TxnOutcome
ShardedStore::multiRmw(StoreWorker &w,
                       const std::vector<uint64_t> &keys,
                       uint64_t delta, const StoreOpts &opts)
{
    std::vector<std::pair<unsigned, uint64_t>> byShard;
    byShard.reserve(keys.size());
    for (uint64_t key : keys)
        byShard.emplace_back(shardOf(key), key);
    std::sort(byShard.begin(), byShard.end());

    bool single = true;
    for (const auto &[s, key] : byShard) {
        (void)key;
        if (s != byShard.front().first) {
            single = false;
            break;
        }
    }
    // A read that observed this txn's own earlier write (duplicate key
    // in the RMW set) is not an external read; recording it would
    // misorder against the record's flat reads-then-writes layout.
    auto alreadyWrote = [](const StoreOpRecord &rec, uint64_t key) {
        for (const auto &[wk, wv] : rec.writes) {
            (void)wv;
            if (wk == key)
                return true;
        }
        return false;
    };

    if (single && !byShard.empty()) {
        unsigned s = byShard.front().first;
        StoreOpRecord rec;
        rec.worker = w.id();
        return runNative(w, s, opts, rec, [&](Txn &tx) {
            for (const auto &[unused, key] : byShard) {
                (void)unused;
                uint64_t old = 0;
                bool f = data_[s]->values.get(tx, key, old);
                uint64_t next = (f ? old : 0) + delta;
                bool inserted = data_[s]->values.put(tx, key, next);
                if (inserted)
                    data_[s]->index.put(tx, static_cast<int64_t>(key),
                                        static_cast<int64_t>(key));
                if (f && !alreadyWrote(rec, key))
                    rec.reads.emplace_back(key, old);
                rec.writes.emplace_back(key, next);
            }
        });
    }
    if (byShard.empty())
        return TxnOutcome::kCommitted;
    return runCross(w, byShard, delta, opts);
}

TxnOutcome
ShardedStore::runCross(
    StoreWorker &w,
    const std::vector<std::pair<unsigned, uint64_t>> &byShard,
    uint64_t delta, const StoreOpts &opts)
{
    // Involved shards, ordered by domain id (= lock acquisition and
    // freeze order).
    std::vector<std::pair<CrossShardPart *, unsigned>> order;
    for (const auto &[s, key] : byShard) {
        (void)key;
        if (order.empty() || order.back().second != s)
            order.emplace_back(w.parts_[s].get(), s);
    }
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  return a.first->domainId() < b.first->domainId();
              });
    std::vector<DomainCommitPart *> parts;
    for (const auto &[p, s] : order) {
        (void)s;
        parts.push_back(p);
    }

    TmRuntime &rt0 = order.front().first->runtime();
    ThreadCtx &ctx0 = order.front().first->threadCtx();
    AdmissionGate *gate = rt0.admission();
    if (gate != nullptr &&
        !gate->admit(rt0.engine(), rt0.globals(), rt0.config().retry,
                     &ctx0.mutableStats(), nullptr, ctx0.injector(),
                     opts.allowShed)) {
        return TxnOutcome::kAdmissionShed;
    }

    if (observer_ != nullptr)
        observer_->onTxnBegin(w.id());

    using Clock = std::chrono::steady_clock;
    const bool hasDeadline = opts.deadline.count() > 0;
    const Clock::time_point deadlineAt = Clock::now() + opts.deadline;

    StoreOpRecord rec;
    rec.worker = w.id();
    TxnOutcome result = TxnOutcome::kCommitted;
    unsigned attempts = 0;

    auto rollbackAll = [&]() {
        for (auto &[p, s] : order) {
            p->rollbackAttempt();
            ThreadCtx &ctx = *w.ctxs_[s];
            ctx.actions().runAbort(ctx.mem(), &ctx.mutableStats());
        }
    };

    for (;;) {
        if (hasDeadline && Clock::now() >= deadlineAt) {
            ctx0.mutableStats().inc(Counter::kDeadlineExceeded);
            result = TxnOutcome::kDeadlineExceeded;
            break;
        }
        const bool escalated = attempts >= cfg_.rmwMaxAttempts;
        std::unique_lock<std::mutex> esc(escalationLock_,
                                         std::defer_lock);
        if (escalated)
            esc.lock();
        rec.reads.clear();
        rec.writes.clear();
        try {
            // Begin in ascending domain order (matters for escalated
            // blocking freezes; harmless otherwise).
            for (auto &[p, s] : order) {
                w.ctxs_[s]->actions().clear();
                p->beginAttempt(escalated);
            }
            for (auto &[p, s] : order) {
                ThreadCtx &ctx = *w.ctxs_[s];
                Txn tx(p, &ctx.mem(), ctx.tid(), &ctx.actions());
                for (const auto &[ks, key] : byShard) {
                    if (ks != s)
                        continue;
                    uint64_t old = 0;
                    bool f = data_[s]->values.get(tx, key, old);
                    uint64_t next = (f ? old : 0) + delta;
                    data_[s]->values.put(tx, key, next);
                    // Skip own-write echoes (duplicate RMW keys), as
                    // in the single-shard path.
                    bool echoed = false;
                    for (const auto &[wk, wv] : rec.writes) {
                        (void)wv;
                        if (wk == key) {
                            echoed = true;
                            break;
                        }
                    }
                    if (f && !echoed)
                        rec.reads.emplace_back(key, old);
                    rec.writes.emplace_back(key, next);
                }
            }
        } catch (const TxRestart &) {
            rollbackAll();
            ctx0.mutableStats().inc(Counter::kCrossShardRestarts);
            ++attempts;
            continue;
        } catch (...) {
            rollbackAll();
            throw;
        }

        bool committed;
        if (escalated) {
            for (auto &[p, s] : order) {
                (void)s;
                p->publishEscalated();
            }
            for (auto it = order.rbegin(); it != order.rend(); ++it)
                it->first->releaseEscalated();
            ctx0.mutableStats().inc(Counter::kCrossShardEscalations);
            committed = true;
        } else {
            committed = multiDomainCommit(parts);
        }
        if (!committed) {
            rollbackAll();
            ctx0.mutableStats().inc(Counter::kCrossShardRestarts);
            ++attempts;
            continue;
        }
        for (auto &[p, s] : order) {
            p->finishCommitted();
            ThreadCtx &ctx = *w.ctxs_[s];
            ctx.actions().runCommit(ctx.mem(), &ctx.mutableStats());
        }
        ctx0.mutableStats().inc(Counter::kCrossShardCommits);
        ctx0.mutableStats().inc(Counter::kOperations);
        break;
    }

    if (gate != nullptr)
        gate->onOutcome(result == TxnOutcome::kCommitted);
    if (result == TxnOutcome::kCommitted && observer_ != nullptr)
        observer_->onTxnCommit(rec);
    return result;
}

StatsSummary
ShardedStore::stats() const
{
    StatsSummary total;
    for (const auto &rt : shards_) {
        StatsSummary s = rt->stats();
        for (unsigned i = 0; i < kNumCounters; ++i)
            total.totals[i] += s.totals[i];
    }
    return total;
}

StatsSummary
ShardedStore::shardStats(unsigned shard) const
{
    return shards_[shard]->stats();
}

void
ShardedStore::resetStats()
{
    for (const auto &rt : shards_)
        rt->resetStats();
}

} // namespace rhtm
