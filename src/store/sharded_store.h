/**
 * @file
 * ShardedStore: a multi-shard transactional key-value store built on
 * shard-scoped TM domains (docs/STORE.md).
 *
 * Each shard is a full TmRuntime -- its own TmDomain (coordination
 * words, kill switch, watchdog, admission gate), its own simulated-HTM
 * engine, its own memory manager -- holding a hash-partitioned slice of
 * the key space in two transactional structures: a TxHashMap (the
 * authoritative key -> value table, point reads/writes) and a TxRbTree
 * (an ordered key index backing range scans).
 *
 * Single-shard operations (get / put / scan) run as ordinary native
 * transactions on the owning shard, with the full per-shard machinery
 * (fast paths, fallback, deadlines, admission). Multi-key RMWs whose
 * keys span shards run as cross-shard transactions: per-shard
 * CrossShardPart sessions read optimistically under each shard's
 * protocol and commit through multiDomainCommit() -- shards' commit
 * locks acquired in ascending domain-id order, each shard's read log
 * revalidated under its lock, writes published, locks released in
 * reverse. Repeated validation failure escalates to a store-serialized
 * frozen mode that cannot fail.
 *
 * Range scans are per-shard operations: keys hash across shards, so a
 * key-range scan addresses one shard's ordered index (the OLTP loop
 * picks a shard and scans its slice). A store-wide scan is a loop over
 * shards and is NOT atomic across them; the rb-tree index is only ever
 * mutated by native single-shard transactions (cross-shard bodies
 * touch the hash map alone), which keeps cross-shard read validation
 * value-based and structure-free.
 *
 * History checking hooks in through StoreObserver WITHOUT this layer
 * depending on src/check: the store reports committed operations as
 * flat read/write sets and the test/bench layer (which may include
 * src/check) turns them into checker events.
 */

#ifndef RHTM_STORE_SHARDED_STORE_H
#define RHTM_STORE_SHARDED_STORE_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/api/runtime.h"
#include "src/store/cross_txn.h"
#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_rbtree.h"

namespace rhtm
{

/** Everything configurable about a ShardedStore. */
struct StoreConfig
{
    /** Number of shards (each a full TmRuntime + TmDomain). */
    unsigned shards = 4;

    /** TM algorithm every shard runs. */
    AlgoKind kind = AlgoKind::kRhNOrec;

    /** Per-shard runtime configuration (applied to every shard). */
    RuntimeConfig runtime;

    /** log2 of each shard's hash-map bucket count. */
    unsigned hashBucketsLog2 = 14;

    /**
     * Optimistic cross-shard commit attempts before the RMW escalates
     * to the store-serialized frozen mode.
     */
    unsigned rmwMaxAttempts = 8;
};

/** Per-request bounds (mirrors TxnOptions for store operations). */
struct StoreOpts
{
    /** Wall-clock budget; zero = unbounded. */
    std::chrono::nanoseconds deadline{0};

    /** Permit the shard's admission gate to shed the request. */
    bool allowShed = true;
};

/**
 * One committed store operation, reported to the observer as flat
 * key/value read and write sets (each in execution order). Reads that
 * observed the operation's own earlier write (duplicate keys in a
 * multi-key RMW) are omitted: they carry no external constraint, and
 * the flat layout cannot express their position among the writes.
 */
struct StoreOpRecord
{
    unsigned worker = 0;
    std::vector<std::pair<uint64_t, uint64_t>> reads;
    std::vector<std::pair<uint64_t, uint64_t>> writes;
};

/**
 * Synchronous operation observer for history checking. onTxnBegin is
 * invoked before the operation's first attempt starts, onTxnCommit
 * after its commit has returned -- real-time sound bracketing for a
 * serializability checker. Callbacks run on the worker's thread;
 * implementations synchronize internally.
 */
class StoreObserver
{
  public:
    virtual ~StoreObserver() = default;
    virtual void onTxnBegin(unsigned worker) = 0;
    virtual void onTxnCommit(const StoreOpRecord &rec) = 0;
};

class ShardedStore;

/**
 * A store client bound to one OS thread: a registered ThreadCtx plus a
 * CrossShardPart on every shard. Obtain via ShardedStore::
 * registerWorker(); not shareable across threads.
 */
class StoreWorker
{
  public:
    unsigned id() const { return id_; }

  private:
    friend class ShardedStore;

    explicit StoreWorker(unsigned id) : id_(id) {}

    unsigned id_;
    std::vector<ThreadCtx *> ctxs_; //!< One per shard.
    std::vector<std::unique_ptr<CrossShardPart>> parts_;
};

class ShardedStore
{
  public:
    explicit ShardedStore(StoreConfig cfg);
    ~ShardedStore();

    ShardedStore(const ShardedStore &) = delete;
    ShardedStore &operator=(const ShardedStore &) = delete;

    /** Register the calling thread on every shard; thread safe. */
    StoreWorker &registerWorker();

    /** Shard owning @p key (hash partitioning). */
    unsigned shardOf(uint64_t key) const;

    /**
     * A deterministic key owned by @p shard, distinct per @p salt
     * (disjoint-key workloads: worker w uses salts {w*K .. w*K+K-1}).
     */
    uint64_t keyForShard(unsigned shard, uint64_t salt) const;

    /**
     * Insert keys 0 .. keyCount-1 with @p value (native transactions
     * on each owning shard). Call before the timed phase.
     */
    void seed(StoreWorker &w, uint64_t keyCount, uint64_t value);

    /** Point lookup. @p found reports presence on kCommitted. */
    TxnOutcome get(StoreWorker &w, uint64_t key, uint64_t &valueOut,
                   bool &found, const StoreOpts &opts = StoreOpts());

    /** Point insert-or-update. */
    TxnOutcome put(StoreWorker &w, uint64_t key, uint64_t value,
                   const StoreOpts &opts = StoreOpts());

    /**
     * Range scan of @p shard's slice: every (key, value) with
     * lo <= key <= hi in ascending order, up to @p limit (0 = all).
     */
    TxnOutcome scan(StoreWorker &w, unsigned shard, uint64_t lo,
                    uint64_t hi, size_t limit,
                    std::vector<std::pair<uint64_t, uint64_t>> &out,
                    const StoreOpts &opts = StoreOpts());

    /**
     * Atomically add @p delta to every key in @p keys (duplicates
     * allowed; applied once per occurrence). Keys on one shard commit
     * natively; keys spanning shards commit through the cross-shard
     * two-phase protocol, escalating after cfg.rmwMaxAttempts failed
     * optimistic attempts.
     */
    TxnOutcome multiRmw(StoreWorker &w,
                        const std::vector<uint64_t> &keys,
                        uint64_t delta,
                        const StoreOpts &opts = StoreOpts());

    /** Counter totals summed over every shard's runtime. */
    StatsSummary stats() const;

    /** One shard's counter totals. */
    StatsSummary shardStats(unsigned shard) const;

    /** Zero every shard's statistics (workers must be quiescent). */
    void resetStats();

    /** Shard count. */
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** A shard's runtime (white-box tests). */
    TmRuntime &shardRuntime(unsigned shard) { return *shards_[shard]; }

    /** Install (or clear) the operation observer; quiescent use only. */
    void setObserver(StoreObserver *observer) { observer_ = observer; }

    const StoreConfig &config() const { return cfg_; }

  private:
    struct Shard;

    TxnOutcome runNative(StoreWorker &w, unsigned shard,
                         const StoreOpts &opts, StoreOpRecord &rec,
                         const std::function<void(Txn &)> &body);
    TxnOutcome runCross(StoreWorker &w,
                        const std::vector<std::pair<unsigned,
                                                    uint64_t>> &byShard,
                        uint64_t delta, const StoreOpts &opts);

    StoreConfig cfg_;
    std::vector<std::unique_ptr<TmRuntime>> shards_;
    std::vector<std::unique_ptr<Shard>> data_;
    std::vector<std::unique_ptr<StoreWorker>> workers_;
    std::mutex registerLock_;
    std::mutex escalationLock_; //!< Serializes escalated cross-RMWs.
    StoreObserver *observer_ = nullptr;
};

} // namespace rhtm

#endif // RHTM_STORE_SHARDED_STORE_H
