#include "src/structures/tx_hashmap.h"

namespace rhtm
{

TxHashMap::TxHashMap(unsigned bucket_count_log2)
    : mask_((size_t(1) << bucket_count_log2) - 1),
      buckets_(new Node *[size_t(1) << bucket_count_log2]())
{}

bool
TxHashMap::get(Txn &tx, uint64_t key, uint64_t &value_out) const
{
    Node *n = tx.loadPtr(&buckets_[bucketOf(key)]);
    while (n != nullptr) {
        if (tx.load(&n->key) == key) {
            value_out = tx.load(&n->value);
            return true;
        }
        n = tx.loadPtr(&n->next);
    }
    return false;
}

bool
TxHashMap::contains(Txn &tx, uint64_t key) const
{
    uint64_t ignored;
    return get(tx, key, ignored);
}

bool
TxHashMap::put(Txn &tx, uint64_t key, uint64_t value)
{
    Node **head = &buckets_[bucketOf(key)];
    Node *n = tx.loadPtr(head);
    while (n != nullptr) {
        if (tx.load(&n->key) == key) {
            tx.store(&n->value, value);
            return false;
        }
        n = tx.loadPtr(&n->next);
    }
    Node *fresh = tx.allocObject<Node>();
    tx.store(&fresh->key, key);
    tx.store(&fresh->value, value);
    tx.storePtr(&fresh->next, tx.loadPtr(head));
    tx.storePtr(head, fresh);
    return true;
}

bool
TxHashMap::putIfAbsent(Txn &tx, uint64_t key, uint64_t value)
{
    Node **head = &buckets_[bucketOf(key)];
    Node *n = tx.loadPtr(head);
    while (n != nullptr) {
        if (tx.load(&n->key) == key)
            return false;
        n = tx.loadPtr(&n->next);
    }
    Node *fresh = tx.allocObject<Node>();
    tx.store(&fresh->key, key);
    tx.store(&fresh->value, value);
    tx.storePtr(&fresh->next, tx.loadPtr(head));
    tx.storePtr(head, fresh);
    return true;
}

bool
TxHashMap::remove(Txn &tx, uint64_t key)
{
    Node **head = &buckets_[bucketOf(key)];
    Node *prev = nullptr;
    Node *n = tx.loadPtr(head);
    while (n != nullptr) {
        Node *next = tx.loadPtr(&n->next);
        if (tx.load(&n->key) == key) {
            if (prev == nullptr)
                tx.storePtr(head, next);
            else
                tx.storePtr(&prev->next, next);
            tx.freeObject(n);
            return true;
        }
        prev = n;
        n = next;
    }
    return false;
}

uint64_t
TxHashMap::addTo(Txn &tx, uint64_t key, uint64_t delta)
{
    Node **head = &buckets_[bucketOf(key)];
    Node *n = tx.loadPtr(head);
    while (n != nullptr) {
        if (tx.load(&n->key) == key) {
            uint64_t v = tx.load(&n->value) + delta;
            tx.store(&n->value, v);
            return v;
        }
        n = tx.loadPtr(&n->next);
    }
    Node *fresh = tx.allocObject<Node>();
    tx.store(&fresh->key, key);
    tx.store(&fresh->value, delta);
    tx.storePtr(&fresh->next, tx.loadPtr(head));
    tx.storePtr(head, fresh);
    return delta;
}

uint64_t
TxHashMap::sizeUnsync() const
{
    uint64_t count = 0;
    for (size_t b = 0; b <= mask_; ++b) {
        for (Node *n = buckets_[b]; n != nullptr; n = n->next)
            ++count;
    }
    return count;
}

void
TxHashMap::clearUnsync(ThreadMem &mem)
{
    for (size_t b = 0; b <= mask_; ++b) {
        Node *n = buckets_[b];
        buckets_[b] = nullptr;
        while (n != nullptr) {
            Node *next = n->next;
            mem.rawFree(n, sizeof(Node));
            n = next;
        }
    }
}

} // namespace rhtm
