/**
 * @file
 * Transactional chained hash map (fixed bucket count), the workhorse
 * dictionary for the STAMP-style workloads (vacation reservations,
 * genome segment tables, intruder dictionaries).
 */

#ifndef RHTM_STRUCTURES_TX_HASHMAP_H
#define RHTM_STRUCTURES_TX_HASHMAP_H

#include <cstdint>
#include <memory>

#include "src/api/txn.h"

namespace rhtm
{

/**
 * Fixed-capacity chained hash map from uint64 keys to uint64 values.
 * Bucket heads are transactional words; chain nodes come from the
 * transactional heap. No resizing (the workloads size it up front),
 * which also keeps transaction footprints predictable.
 */
class TxHashMap
{
  public:
    /** @param bucket_count_log2 log2 of the bucket count. */
    explicit TxHashMap(unsigned bucket_count_log2 = 16);

    TxHashMap(const TxHashMap &) = delete;
    TxHashMap &operator=(const TxHashMap &) = delete;

    /**
     * Look up @p key.
     * @return true and set @p value_out when present.
     */
    bool get(Txn &tx, uint64_t key, uint64_t &value_out) const;

    /** True when @p key is present. */
    bool contains(Txn &tx, uint64_t key) const;

    /**
     * Insert or update @p key.
     * @return true if the key was newly inserted.
     */
    bool put(Txn &tx, uint64_t key, uint64_t value);

    /**
     * Insert @p key only if absent.
     * @return true if inserted; false if the key already existed.
     */
    bool putIfAbsent(Txn &tx, uint64_t key, uint64_t value);

    /**
     * Remove @p key.
     * @return true if the key was present.
     */
    bool remove(Txn &tx, uint64_t key);

    /**
     * Add @p delta to the value of @p key, inserting @p delta as the
     * initial value when absent. Returns the new value.
     */
    uint64_t addTo(Txn &tx, uint64_t key, uint64_t delta);

    /** Entry count by traversal; quiescent use only. */
    uint64_t sizeUnsync() const;

    /** Free every node into @p mem; quiescent use only. */
    void clearUnsync(ThreadMem &mem);

    /** Visit (key, value) pairs; quiescent use only. */
    template <typename Fn>
    void
    forEachUnsync(Fn fn) const
    {
        for (size_t b = 0; b <= mask_; ++b) {
            for (Node *n = buckets_[b]; n != nullptr; n = n->next)
                fn(n->key, n->value);
        }
    }

  private:
    struct Node
    {
        uint64_t key;
        uint64_t value;
        Node *next;
    };

    size_t
    bucketOf(uint64_t key) const
    {
        key *= 0x9e3779b97f4a7c15ull;
        key ^= key >> 32;
        return key & mask_;
    }

    size_t mask_;
    std::unique_ptr<Node *[]> buckets_;
};

} // namespace rhtm

#endif // RHTM_STRUCTURES_TX_HASHMAP_H
