#include "src/structures/tx_list.h"

namespace rhtm
{

bool
TxList::contains(Txn &tx, int64_t key) const
{
    Node *n = tx.loadPtr(&head_);
    while (n != nullptr) {
        int64_t k = static_cast<int64_t>(tx.load(&n->key));
        if (k == key)
            return true;
        if (k > key)
            return false;
        n = tx.loadPtr(&n->next);
    }
    return false;
}

bool
TxList::insert(Txn &tx, int64_t key)
{
    Node *prev = nullptr;
    Node *n = tx.loadPtr(&head_);
    while (n != nullptr) {
        int64_t k = static_cast<int64_t>(tx.load(&n->key));
        if (k == key)
            return false;
        if (k > key)
            break;
        prev = n;
        n = tx.loadPtr(&n->next);
    }
    Node *fresh = tx.allocObject<Node>();
    tx.storeI64(reinterpret_cast<int64_t *>(&fresh->key), key);
    tx.storePtr(&fresh->next, n);
    if (prev == nullptr)
        tx.storePtr(&head_, fresh);
    else
        tx.storePtr(&prev->next, fresh);
    return true;
}

bool
TxList::remove(Txn &tx, int64_t key)
{
    Node *prev = nullptr;
    Node *n = tx.loadPtr(&head_);
    while (n != nullptr) {
        int64_t k = static_cast<int64_t>(tx.load(&n->key));
        if (k > key)
            return false;
        Node *next = tx.loadPtr(&n->next);
        if (k == key) {
            if (prev == nullptr)
                tx.storePtr(&head_, next);
            else
                tx.storePtr(&prev->next, next);
            tx.freeObject(n);
            return true;
        }
        prev = n;
        n = next;
    }
    return false;
}

bool
TxList::popMin(Txn &tx, int64_t &key_out)
{
    Node *n = tx.loadPtr(&head_);
    if (n == nullptr)
        return false;
    key_out = static_cast<int64_t>(tx.load(&n->key));
    tx.storePtr(&head_, tx.loadPtr(&n->next));
    tx.freeObject(n);
    return true;
}

uint64_t
TxList::sizeUnsync() const
{
    uint64_t count = 0;
    for (Node *n = head_; n != nullptr; n = n->next)
        ++count;
    return count;
}

bool
TxList::isSortedUnsync() const
{
    if (head_ == nullptr)
        return true;
    int64_t prev = static_cast<int64_t>(head_->key);
    for (Node *n = head_->next; n != nullptr; n = n->next) {
        int64_t k = static_cast<int64_t>(n->key);
        if (k <= prev)
            return false;
        prev = k;
    }
    return true;
}

void
TxList::clearUnsync(ThreadMem &mem)
{
    Node *n = head_;
    head_ = nullptr;
    while (n != nullptr) {
        Node *next = n->next;
        mem.rawFree(n, sizeof(Node));
        n = next;
    }
}

} // namespace rhtm
