/**
 * @file
 * Transactional sorted linked-list set. Long read chains make it a
 * good stressor for read-set capacity and prefix-length adaptation.
 */

#ifndef RHTM_STRUCTURES_TX_LIST_H
#define RHTM_STRUCTURES_TX_LIST_H

#include <cstdint>

#include "src/api/txn.h"

namespace rhtm
{

/** Sorted singly-linked set of int64 keys. */
class TxList
{
  public:
    TxList() : head_(nullptr) {}

    TxList(const TxList &) = delete;
    TxList &operator=(const TxList &) = delete;

    /** True when @p key is present. */
    bool contains(Txn &tx, int64_t key) const;

    /**
     * Insert @p key.
     * @return true if it was not already present.
     */
    bool insert(Txn &tx, int64_t key);

    /**
     * Remove @p key.
     * @return true if it was present.
     */
    bool remove(Txn &tx, int64_t key);

    /**
     * Remove the smallest key.
     * @return true and set @p key_out when the list was non-empty.
     */
    bool popMin(Txn &tx, int64_t &key_out);

    /** Element count by traversal; quiescent use only. */
    uint64_t sizeUnsync() const;

    /** True when keys ascend strictly; quiescent use only. */
    bool isSortedUnsync() const;

    /** Free every node into @p mem; quiescent use only. */
    void clearUnsync(ThreadMem &mem);

  private:
    struct Node
    {
        uint64_t key;
        Node *next;
    };

    Node *head_;
};

} // namespace rhtm

#endif // RHTM_STRUCTURES_TX_LIST_H
