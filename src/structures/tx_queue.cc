#include "src/structures/tx_queue.h"

namespace rhtm
{

void
TxQueue::push(Txn &tx, uint64_t value)
{
    Node *fresh = tx.allocObject<Node>();
    tx.store(&fresh->value, value);
    tx.storePtr(&fresh->next, static_cast<Node *>(nullptr));
    Node *tail = tx.loadPtr(&tail_);
    if (tail == nullptr) {
        tx.storePtr(&head_, fresh);
        tx.storePtr(&tail_, fresh);
    } else {
        tx.storePtr(&tail->next, fresh);
        tx.storePtr(&tail_, fresh);
    }
}

bool
TxQueue::pop(Txn &tx, uint64_t &value_out)
{
    Node *head = tx.loadPtr(&head_);
    if (head == nullptr)
        return false;
    value_out = tx.load(&head->value);
    Node *next = tx.loadPtr(&head->next);
    tx.storePtr(&head_, next);
    if (next == nullptr)
        tx.storePtr(&tail_, static_cast<Node *>(nullptr));
    tx.freeObject(head);
    return true;
}

bool
TxQueue::empty(Txn &tx) const
{
    return tx.loadPtr(&head_) == nullptr;
}

uint64_t
TxQueue::sizeUnsync() const
{
    uint64_t count = 0;
    for (Node *n = head_; n != nullptr; n = n->next)
        ++count;
    return count;
}

void
TxQueue::clearUnsync(ThreadMem &mem)
{
    Node *n = head_;
    head_ = nullptr;
    tail_ = nullptr;
    while (n != nullptr) {
        Node *next = n->next;
        mem.rawFree(n, sizeof(Node));
        n = next;
    }
}

} // namespace rhtm
