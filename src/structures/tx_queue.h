/**
 * @file
 * Transactional FIFO queue (intruder's packet stream uses one).
 */

#ifndef RHTM_STRUCTURES_TX_QUEUE_H
#define RHTM_STRUCTURES_TX_QUEUE_H

#include <cstdint>

#include "src/api/txn.h"

namespace rhtm
{

/**
 * Unbounded FIFO of uint64 payloads. Head and tail are transactional
 * words; push and pop conflict only when the queue is short, which is
 * exactly the contention profile the intruder workload exercises.
 */
class TxQueue
{
  public:
    TxQueue() : head_(nullptr), tail_(nullptr) {}

    TxQueue(const TxQueue &) = delete;
    TxQueue &operator=(const TxQueue &) = delete;

    /** Append @p value. */
    void push(Txn &tx, uint64_t value);

    /**
     * Remove the oldest element.
     * @return true and set @p value_out when the queue was non-empty.
     */
    bool pop(Txn &tx, uint64_t &value_out);

    /** True when empty. */
    bool empty(Txn &tx) const;

    /** Element count by traversal; quiescent use only. */
    uint64_t sizeUnsync() const;

    /** Visit values head-to-tail; quiescent use only. */
    template <typename Fn>
    void
    forEachUnsync(Fn fn) const
    {
        for (const Node *n = head_; n != nullptr; n = n->next)
            fn(n->value);
    }

    /** Free every node into @p mem; quiescent use only. */
    void clearUnsync(ThreadMem &mem);

  private:
    struct Node
    {
        uint64_t value;
        Node *next;
    };

    Node *head_;
    Node *tail_;
};

} // namespace rhtm

#endif // RHTM_STRUCTURES_TX_QUEUE_H
