#include "src/structures/tx_rbtree.h"

#include <sstream>
#include <vector>

namespace rhtm
{

//
// Null-tolerant accessors (TreeMap's colorOf/parentOf/leftOf/rightOf).
//

uint64_t
TxRbTree::colorOf(Txn &tx, Node *n)
{
    return n == nullptr ? kBlack : tx.load(&n->color);
}

TxRbTree::Node *
TxRbTree::parentOf(Txn &tx, Node *n)
{
    return n == nullptr ? nullptr : tx.loadPtr(&n->parent);
}

TxRbTree::Node *
TxRbTree::leftOf(Txn &tx, Node *n)
{
    return n == nullptr ? nullptr : tx.loadPtr(&n->left);
}

TxRbTree::Node *
TxRbTree::rightOf(Txn &tx, Node *n)
{
    return n == nullptr ? nullptr : tx.loadPtr(&n->right);
}

void
TxRbTree::setColor(Txn &tx, Node *n, uint64_t color)
{
    if (n != nullptr && tx.load(&n->color) != color)
        tx.store(&n->color, color);
}

//
// Lookup
//

TxRbTree::Node *
TxRbTree::getEntry(Txn &tx, int64_t key) const
{
    Node *p = tx.loadPtr(&root_);
    while (p != nullptr) {
        int64_t k = static_cast<int64_t>(tx.load(&p->key));
        if (key < k)
            p = tx.loadPtr(&p->left);
        else if (key > k)
            p = tx.loadPtr(&p->right);
        else
            return p;
    }
    return nullptr;
}

bool
TxRbTree::get(Txn &tx, int64_t key, int64_t &value_out) const
{
    Node *p = getEntry(tx, key);
    if (p == nullptr)
        return false;
    value_out = static_cast<int64_t>(tx.load(&p->value));
    return true;
}

bool
TxRbTree::contains(Txn &tx, int64_t key) const
{
    return getEntry(tx, key) != nullptr;
}

TxRbTree::Node *
TxRbTree::ceilingEntry(Txn &tx, int64_t key) const
{
    // TreeMap getCeilingEntry: the leftmost node with node.key >= key.
    Node *p = tx.loadPtr(&root_);
    Node *best = nullptr;
    while (p != nullptr) {
        int64_t k = static_cast<int64_t>(tx.load(&p->key));
        if (key <= k) {
            best = p; // Candidate; a smaller ceiling may sit left.
            if (key == k)
                break;
            p = tx.loadPtr(&p->left);
        } else {
            p = tx.loadPtr(&p->right);
        }
    }
    return best;
}

size_t
TxRbTree::scanRange(Txn &tx, int64_t lo, int64_t hi, size_t limit,
                    std::vector<std::pair<int64_t, int64_t>> &out) const
{
    size_t appended = 0;
    for (Node *p = ceilingEntry(tx, lo); p != nullptr;
         p = successor(tx, p)) {
        int64_t k = static_cast<int64_t>(tx.load(&p->key));
        if (k > hi)
            break;
        out.emplace_back(k,
                         static_cast<int64_t>(tx.load(&p->value)));
        ++appended;
        if (limit != 0 && appended >= limit)
            break;
    }
    return appended;
}

//
// Insertion (TreeMap put + fixAfterInsertion)
//

bool
TxRbTree::put(Txn &tx, int64_t key, int64_t value)
{
    Node *t = tx.loadPtr(&root_);
    if (t == nullptr) {
        Node *n = tx.allocObject<Node>();
        tx.storeI64(reinterpret_cast<int64_t *>(&n->key), key);
        tx.storeI64(reinterpret_cast<int64_t *>(&n->value), value);
        tx.store(&n->color, kBlack);
        tx.storePtr(&root_, n);
        return true;
    }
    Node *parent;
    int64_t k;
    do {
        parent = t;
        k = static_cast<int64_t>(tx.load(&t->key));
        if (key < k) {
            t = tx.loadPtr(&t->left);
        } else if (key > k) {
            t = tx.loadPtr(&t->right);
        } else {
            tx.storeI64(reinterpret_cast<int64_t *>(&t->value), value);
            return false;
        }
    } while (t != nullptr);

    Node *n = tx.allocObject<Node>();
    tx.storeI64(reinterpret_cast<int64_t *>(&n->key), key);
    tx.storeI64(reinterpret_cast<int64_t *>(&n->value), value);
    tx.storePtr(&n->parent, parent);
    if (key < k)
        tx.storePtr(&parent->left, n);
    else
        tx.storePtr(&parent->right, n);
    fixAfterInsertion(tx, n);
    return true;
}

void
TxRbTree::rotateLeft(Txn &tx, Node *p)
{
    if (p == nullptr)
        return;
    Node *r = tx.loadPtr(&p->right);
    Node *rl = tx.loadPtr(&r->left);
    tx.storePtr(&p->right, rl);
    if (rl != nullptr)
        tx.storePtr(&rl->parent, p);
    Node *pp = tx.loadPtr(&p->parent);
    tx.storePtr(&r->parent, pp);
    if (pp == nullptr)
        tx.storePtr(&root_, r);
    else if (tx.loadPtr(&pp->left) == p)
        tx.storePtr(&pp->left, r);
    else
        tx.storePtr(&pp->right, r);
    tx.storePtr(&r->left, p);
    tx.storePtr(&p->parent, r);
}

void
TxRbTree::rotateRight(Txn &tx, Node *p)
{
    if (p == nullptr)
        return;
    Node *l = tx.loadPtr(&p->left);
    Node *lr = tx.loadPtr(&l->right);
    tx.storePtr(&p->left, lr);
    if (lr != nullptr)
        tx.storePtr(&lr->parent, p);
    Node *pp = tx.loadPtr(&p->parent);
    tx.storePtr(&l->parent, pp);
    if (pp == nullptr)
        tx.storePtr(&root_, l);
    else if (tx.loadPtr(&pp->right) == p)
        tx.storePtr(&pp->right, l);
    else
        tx.storePtr(&pp->left, l);
    tx.storePtr(&l->right, p);
    tx.storePtr(&p->parent, l);
}

void
TxRbTree::fixAfterInsertion(Txn &tx, Node *x)
{
    tx.store(&x->color, kRed);
    while (x != nullptr && x != tx.loadPtr(&root_) &&
           colorOf(tx, parentOf(tx, x)) == kRed) {
        if (parentOf(tx, x) ==
            leftOf(tx, parentOf(tx, parentOf(tx, x)))) {
            Node *y = rightOf(tx, parentOf(tx, parentOf(tx, x)));
            if (colorOf(tx, y) == kRed) {
                setColor(tx, parentOf(tx, x), kBlack);
                setColor(tx, y, kBlack);
                setColor(tx, parentOf(tx, parentOf(tx, x)), kRed);
                x = parentOf(tx, parentOf(tx, x));
            } else {
                if (x == rightOf(tx, parentOf(tx, x))) {
                    x = parentOf(tx, x);
                    rotateLeft(tx, x);
                }
                setColor(tx, parentOf(tx, x), kBlack);
                setColor(tx, parentOf(tx, parentOf(tx, x)), kRed);
                rotateRight(tx, parentOf(tx, parentOf(tx, x)));
            }
        } else {
            Node *y = leftOf(tx, parentOf(tx, parentOf(tx, x)));
            if (colorOf(tx, y) == kRed) {
                setColor(tx, parentOf(tx, x), kBlack);
                setColor(tx, y, kBlack);
                setColor(tx, parentOf(tx, parentOf(tx, x)), kRed);
                x = parentOf(tx, parentOf(tx, x));
            } else {
                if (x == leftOf(tx, parentOf(tx, x))) {
                    x = parentOf(tx, x);
                    rotateRight(tx, x);
                }
                setColor(tx, parentOf(tx, x), kBlack);
                setColor(tx, parentOf(tx, parentOf(tx, x)), kRed);
                rotateLeft(tx, parentOf(tx, parentOf(tx, x)));
            }
        }
    }
    setColor(tx, tx.loadPtr(&root_), kBlack);
}

//
// Deletion (TreeMap deleteEntry + fixAfterDeletion)
//

TxRbTree::Node *
TxRbTree::successor(Txn &tx, Node *t) const
{
    if (t == nullptr)
        return nullptr;
    Node *r = tx.loadPtr(&t->right);
    if (r != nullptr) {
        Node *p = r;
        for (Node *l = tx.loadPtr(&p->left); l != nullptr;
             l = tx.loadPtr(&p->left)) {
            p = l;
        }
        return p;
    }
    Node *p = tx.loadPtr(&t->parent);
    Node *ch = t;
    while (p != nullptr && ch == tx.loadPtr(&p->right)) {
        ch = p;
        p = tx.loadPtr(&p->parent);
    }
    return p;
}

bool
TxRbTree::remove(Txn &tx, int64_t key)
{
    Node *p = getEntry(tx, key);
    if (p == nullptr)
        return false;
    deleteEntry(tx, p);
    return true;
}

void
TxRbTree::deleteEntry(Txn &tx, Node *p)
{
    // Interior node: copy the successor's pair, then delete the
    // successor instead (it has at most one child).
    if (tx.loadPtr(&p->left) != nullptr &&
        tx.loadPtr(&p->right) != nullptr) {
        Node *s = successor(tx, p);
        tx.store(&p->key, tx.load(&s->key));
        tx.store(&p->value, tx.load(&s->value));
        p = s;
    }

    Node *pl = tx.loadPtr(&p->left);
    Node *replacement = pl != nullptr ? pl : tx.loadPtr(&p->right);

    if (replacement != nullptr) {
        Node *pp = tx.loadPtr(&p->parent);
        tx.storePtr(&replacement->parent, pp);
        if (pp == nullptr)
            tx.storePtr(&root_, replacement);
        else if (p == tx.loadPtr(&pp->left))
            tx.storePtr(&pp->left, replacement);
        else
            tx.storePtr(&pp->right, replacement);
        tx.storePtr(&p->left, static_cast<Node *>(nullptr));
        tx.storePtr(&p->right, static_cast<Node *>(nullptr));
        tx.storePtr(&p->parent, static_cast<Node *>(nullptr));
        if (tx.load(&p->color) == kBlack)
            fixAfterDeletion(tx, replacement);
    } else if (tx.loadPtr(&p->parent) == nullptr) {
        tx.storePtr(&root_, static_cast<Node *>(nullptr));
    } else {
        if (tx.load(&p->color) == kBlack)
            fixAfterDeletion(tx, p);
        Node *pp = tx.loadPtr(&p->parent);
        if (pp != nullptr) {
            if (p == tx.loadPtr(&pp->left))
                tx.storePtr(&pp->left, static_cast<Node *>(nullptr));
            else if (p == tx.loadPtr(&pp->right))
                tx.storePtr(&pp->right, static_cast<Node *>(nullptr));
            tx.storePtr(&p->parent, static_cast<Node *>(nullptr));
        }
    }
    tx.freeObject(p);
}

void
TxRbTree::fixAfterDeletion(Txn &tx, Node *x)
{
    while (x != tx.loadPtr(&root_) && colorOf(tx, x) == kBlack) {
        if (x == leftOf(tx, parentOf(tx, x))) {
            Node *sib = rightOf(tx, parentOf(tx, x));
            if (colorOf(tx, sib) == kRed) {
                setColor(tx, sib, kBlack);
                setColor(tx, parentOf(tx, x), kRed);
                rotateLeft(tx, parentOf(tx, x));
                sib = rightOf(tx, parentOf(tx, x));
            }
            if (colorOf(tx, leftOf(tx, sib)) == kBlack &&
                colorOf(tx, rightOf(tx, sib)) == kBlack) {
                setColor(tx, sib, kRed);
                x = parentOf(tx, x);
            } else {
                if (colorOf(tx, rightOf(tx, sib)) == kBlack) {
                    setColor(tx, leftOf(tx, sib), kBlack);
                    setColor(tx, sib, kRed);
                    rotateRight(tx, sib);
                    sib = rightOf(tx, parentOf(tx, x));
                }
                setColor(tx, sib, colorOf(tx, parentOf(tx, x)));
                setColor(tx, parentOf(tx, x), kBlack);
                setColor(tx, rightOf(tx, sib), kBlack);
                rotateLeft(tx, parentOf(tx, x));
                x = tx.loadPtr(&root_);
            }
        } else {
            Node *sib = leftOf(tx, parentOf(tx, x));
            if (colorOf(tx, sib) == kRed) {
                setColor(tx, sib, kBlack);
                setColor(tx, parentOf(tx, x), kRed);
                rotateRight(tx, parentOf(tx, x));
                sib = leftOf(tx, parentOf(tx, x));
            }
            if (colorOf(tx, rightOf(tx, sib)) == kBlack &&
                colorOf(tx, leftOf(tx, sib)) == kBlack) {
                setColor(tx, sib, kRed);
                x = parentOf(tx, x);
            } else {
                if (colorOf(tx, leftOf(tx, sib)) == kBlack) {
                    setColor(tx, rightOf(tx, sib), kBlack);
                    setColor(tx, sib, kRed);
                    rotateLeft(tx, sib);
                    sib = leftOf(tx, parentOf(tx, x));
                }
                setColor(tx, sib, colorOf(tx, parentOf(tx, x)));
                setColor(tx, parentOf(tx, x), kBlack);
                setColor(tx, leftOf(tx, sib), kBlack);
                rotateRight(tx, parentOf(tx, x));
                x = tx.loadPtr(&root_);
            }
        }
    }
    setColor(tx, x, kBlack);
}

//
// Quiescent helpers (plain pointer access; no transactions running)
//

uint64_t
TxRbTree::sizeUnsync() const
{
    uint64_t count = 0;
    std::vector<const Node *> stack;
    if (root_)
        stack.push_back(root_);
    while (!stack.empty()) {
        const Node *n = stack.back();
        stack.pop_back();
        ++count;
        if (n->left)
            stack.push_back(n->left);
        if (n->right)
            stack.push_back(n->right);
    }
    return count;
}

int
TxRbTree::validateNode(const Node *n, const Node *parent, int64_t lo,
                       bool has_lo, int64_t hi, bool has_hi,
                       std::string *why) const
{
    if (n == nullptr)
        return 1; // Null leaves are black.
    auto fail = [&](const std::string &msg) {
        if (why) {
            std::ostringstream os;
            os << msg << " at key "
               << static_cast<int64_t>(n->key);
            *why = os.str();
        }
        return -1;
    };
    if (n->parent != parent)
        return fail("bad parent link");
    int64_t k = static_cast<int64_t>(n->key);
    if ((has_lo && k <= lo) || (has_hi && k >= hi))
        return fail("BST order violated");
    if (n->color == kRed) {
        if ((n->left && n->left->color == kRed) ||
            (n->right && n->right->color == kRed)) {
            return fail("red node with red child");
        }
    } else if (n->color != kBlack) {
        return fail("invalid color value");
    }
    int lh = validateNode(n->left, n, lo, has_lo, k, true, why);
    if (lh < 0)
        return -1;
    int rh = validateNode(n->right, n, k, true, hi, has_hi, why);
    if (rh < 0)
        return -1;
    if (lh != rh)
        return fail("black height mismatch");
    return lh + (n->color == kBlack ? 1 : 0);
}

bool
TxRbTree::validateStructure(std::string *why) const
{
    if (root_ == nullptr)
        return true;
    if (root_->color != kBlack) {
        if (why)
            *why = "root is not black";
        return false;
    }
    return validateNode(root_, nullptr, 0, false, 0, false, why) >= 0;
}

void
TxRbTree::clearUnsync(ThreadMem &mem)
{
    std::vector<Node *> stack;
    if (root_)
        stack.push_back(root_);
    root_ = nullptr;
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        if (n->left)
            stack.push_back(n->left);
        if (n->right)
            stack.push_back(n->right);
        mem.rawFree(n, sizeof(Node));
    }
}

} // namespace rhtm
