/**
 * @file
 * Transactional red-black tree, ported from the java.util.TreeMap
 * algorithm (the paper derives its microbenchmark from the Java 6.0
 * JDK TreeMap, Section 3.5). Exposes the key-value put/delete/get
 * interface the benchmark uses.
 */

#ifndef RHTM_STRUCTURES_TX_RBTREE_H
#define RHTM_STRUCTURES_TX_RBTREE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/api/txn.h"

namespace rhtm
{

/**
 * A red-black tree map from int64 keys to int64 values.
 *
 * All mutating and reading operations take the caller's transaction
 * handle, so tree operations compose with other transactional work.
 * The tree header (root pointer) lives in the object; nodes are
 * allocated from the transactional heap.
 *
 * Structural validation helpers are provided for tests; they must only
 * be called while no transactions are running.
 */
class TxRbTree
{
  public:
    TxRbTree() : root_(nullptr) {}

    TxRbTree(const TxRbTree &) = delete;
    TxRbTree &operator=(const TxRbTree &) = delete;

    /**
     * Look up @p key.
     * @return true and set @p value_out when present.
     */
    bool get(Txn &tx, int64_t key, int64_t &value_out) const;

    /** True when @p key is present. */
    bool contains(Txn &tx, int64_t key) const;

    /**
     * Insert or update @p key.
     * @return true if the key was newly inserted.
     */
    bool put(Txn &tx, int64_t key, int64_t value);

    /**
     * Remove @p key.
     * @return true if the key was present.
     */
    bool remove(Txn &tx, int64_t key);

    /**
     * Append every (key, value) with lo <= key <= hi to @p out in
     * ascending key order, stopping after @p limit entries (0 = no
     * limit). The in-order walk (ceiling search + successor chain)
     * reads every traversed link transactionally, so the scan
     * serializes with concurrent put/remove like any other operation.
     * @return number of entries appended.
     */
    size_t scanRange(Txn &tx, int64_t lo, int64_t hi, size_t limit,
                     std::vector<std::pair<int64_t, int64_t>> &out) const;

    /** Node count by traversal; quiescent use only. */
    uint64_t sizeUnsync() const;

    /**
     * Check every red-black invariant (BST order, root black, no
     * red-red edges, uniform black height, parent links). Quiescent
     * use only.
     *
     * @param why Optional failure description.
     * @return true when all invariants hold.
     */
    bool validateStructure(std::string *why = nullptr) const;

    /** Free every node into @p mem; quiescent use only. */
    void clearUnsync(ThreadMem &mem);

  private:
    struct Node
    {
        uint64_t key;
        uint64_t value;
        Node *left;
        Node *right;
        Node *parent;
        uint64_t color;
    };

    static constexpr uint64_t kRed = 0;
    static constexpr uint64_t kBlack = 1;

    // TreeMap-style helpers, null-tolerant.
    static uint64_t colorOf(Txn &tx, Node *n);
    static Node *parentOf(Txn &tx, Node *n);
    static Node *leftOf(Txn &tx, Node *n);
    static Node *rightOf(Txn &tx, Node *n);
    static void setColor(Txn &tx, Node *n, uint64_t color);

    Node *getEntry(Txn &tx, int64_t key) const;
    Node *ceilingEntry(Txn &tx, int64_t key) const;
    Node *successor(Txn &tx, Node *t) const;
    void rotateLeft(Txn &tx, Node *p);
    void rotateRight(Txn &tx, Node *p);
    void fixAfterInsertion(Txn &tx, Node *x);
    void fixAfterDeletion(Txn &tx, Node *x);
    void deleteEntry(Txn &tx, Node *p);

    /** Validation walker; returns black height or -1 on failure. */
    int validateNode(const Node *n, const Node *parent, int64_t lo,
                     bool has_lo, int64_t hi, bool has_hi,
                     std::string *why) const;

    Node *root_;
};

} // namespace rhtm

#endif // RHTM_STRUCTURES_TX_RBTREE_H
