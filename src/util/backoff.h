/**
 * @file
 * Spin-wait and bounded exponential backoff helpers.
 */

#ifndef RHTM_UTIL_BACKOFF_H
#define RHTM_UTIL_BACKOFF_H

#include <cstdint>
#include <thread>

#include "src/util/sched_point.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rhtm
{

/** One CPU relax hint (PAUSE on x86, no-op elsewhere). */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    std::this_thread::yield();
#endif
}

/**
 * Busy-work delay of roughly @p cycles CPU cycles. Used by the
 * instrumentation-cost model: the paper's software paths pay a dynamic
 * libitm call plus logging per shared access, which a simulation built
 * on raw atomics would otherwise omit entirely (see DESIGN.md).
 */
inline void
simDelay(unsigned cycles)
{
    for (unsigned i = 0; i < cycles; ++i)
        asm volatile("");
}

/** What one backoff step did (observable for tests and stats). */
enum class BackoffAction : uint8_t
{
    kSpun,   //!< Busy-spun with PAUSE hints.
    kYielded //!< Yielded the OS thread (escalated wait).
};

/**
 * Bounded exponential backoff for contended retry loops.
 *
 * Spins with PAUSE for short waits and yields to the OS once the wait
 * grows, which keeps oversubscribed runs (more threads than cores) from
 * livelocking on a preempted lock holder.
 */
class Backoff
{
  public:
    /** @param max_spins Cap on the doubling spin count before yielding. */
    explicit Backoff(uint32_t max_spins = 1024)
        : limit_(1), maxSpins_(max_spins)
    {}

    /** Wait one backoff step and grow the next step. */
    BackoffAction
    pause()
    {
        // Every pure-STM unbounded wait loop (NOrec/TL2 spinning on a
        // locked clock) funnels through here, so this one wait point
        // keeps the interleaving explorer from generating spin-only
        // schedules for any of them.
        schedWaitPoint(SchedPoint::kWaitSpin);
        if (limit_ >= maxSpins_) {
            std::this_thread::yield();
            return BackoffAction::kYielded;
        }
        for (uint32_t i = 0; i < limit_; ++i)
            cpuRelax();
        limit_ <<= 1;
        return BackoffAction::kSpun;
    }

    /** Reset to the initial (shortest) wait. */
    void reset() { limit_ = 1; }

    /** Spin count of the next kSpun step (doubles until the cap). */
    uint32_t limit() const { return limit_; }

    /** Cap at which steps turn into yields. */
    uint32_t maxSpins() const { return maxSpins_; }

  private:
    uint32_t limit_;
    uint32_t maxSpins_;
};

/**
 * Spin until @p cond returns true, yielding periodically so that the
 * waited-on thread can run even when the host is oversubscribed.
 */
template <typename Cond>
inline void
spinUntil(Cond cond)
{
    uint32_t spins = 0;
    while (!cond()) {
        if (++spins >= 64) {
            std::this_thread::yield();
            spins = 0;
        } else {
            cpuRelax();
        }
    }
}

} // namespace rhtm

#endif // RHTM_UTIL_BACKOFF_H
