/**
 * @file
 * Sense-reversing thread barrier for benchmark start/stop alignment.
 */

#ifndef RHTM_UTIL_BARRIER_H
#define RHTM_UTIL_BARRIER_H

#include <atomic>
#include <cstdint>

#include "src/util/backoff.h"

namespace rhtm
{

/**
 * Reusable sense-reversing barrier.
 *
 * All participating threads block until the last one arrives; the
 * barrier then flips sense and can be reused immediately. Benchmarks use
 * it so every thread starts timing at the same instant.
 */
class SenseBarrier
{
  public:
    /** @param parties Number of threads that must arrive per round. */
    explicit SenseBarrier(uint32_t parties)
        : parties_(parties), waiting_(parties), sense_(false)
    {}

    /** Block until all parties have arrived at this round. */
    void
    arriveAndWait()
    {
        bool my_sense = !sense_.load(std::memory_order_relaxed);
        if (waiting_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            waiting_.store(parties_, std::memory_order_relaxed);
            sense_.store(my_sense, std::memory_order_release);
        } else {
            spinUntil([&] {
                return sense_.load(std::memory_order_acquire) == my_sense;
            });
        }
    }

  private:
    const uint32_t parties_;
    std::atomic<uint32_t> waiting_;
    std::atomic<bool> sense_;
};

} // namespace rhtm

#endif // RHTM_UTIL_BARRIER_H
