#include "src/util/cli.h"

#include <cstdlib>
#include <sstream>

namespace rhtm
{

CliOptions::CliOptions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string tok(argv[i]);
        if (tok.rfind("--", 0) != 0) {
            errors_.push_back(tok);
            continue;
        }
        std::string body = tok.substr(2);
        auto eq = body.find('=');
        if (eq == std::string::npos) {
            values_[body] = "1";
        } else {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
        }
    }
}

bool
CliOptions::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
CliOptions::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

int64_t
CliOptions::getInt(const std::string &key, int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? v : def;
}

double
CliOptions::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? v : def;
}

std::vector<int64_t>
CliOptions::getIntList(const std::string &key,
                       const std::vector<int64_t> &def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::vector<int64_t> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        char *end = nullptr;
        int64_t v = std::strtoll(item.c_str(), &end, 10);
        if (end && *end == '\0')
            out.push_back(v);
    }
    return out.empty() ? def : out;
}

} // namespace rhtm
