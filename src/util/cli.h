/**
 * @file
 * Minimal command-line option parser for the benchmark drivers.
 */

#ifndef RHTM_UTIL_CLI_H
#define RHTM_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rhtm
{

/**
 * Tiny --key=value option parser.
 *
 * Recognizes "--key=value" and bare "--flag" (stored as "1"). Unknown
 * keys are collected so drivers can reject typos. Far smaller than a
 * real flags library, but the benches need only a handful of knobs.
 */
class CliOptions
{
  public:
    /** Parse argv; never throws, malformed tokens land in errors(). */
    CliOptions(int argc, char **argv);

    /** True if --key was present. */
    bool has(const std::string &key) const;

    /** String value of --key, or @p def when absent. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Integer value of --key, or @p def when absent or unparsable. */
    int64_t getInt(const std::string &key, int64_t def) const;

    /** Double value of --key, or @p def when absent or unparsable. */
    double getDouble(const std::string &key, double def) const;

    /** Comma-separated integer list of --key, or @p def when absent. */
    std::vector<int64_t> getIntList(const std::string &key,
                                    const std::vector<int64_t> &def) const;

    /** Tokens that did not look like --key[=value]. */
    const std::vector<std::string> &errors() const { return errors_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> errors_;
};

} // namespace rhtm

#endif // RHTM_UTIL_CLI_H
