/**
 * @file
 * Fast pseudo-random number generation for workloads and benchmarks.
 */

#ifndef RHTM_UTIL_RNG_H
#define RHTM_UTIL_RNG_H

#include <cstdint>

namespace rhtm
{

/**
 * xorshift128+ pseudo-random generator.
 *
 * Deterministic given a seed, cheap enough to call inside transaction
 * bodies without perturbing the measured behaviour, and independent per
 * thread (no shared state). Not cryptographically secure; used only for
 * workload generation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is legal. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into the two state words.
        state_[0] = splitMix(seed);
        state_[1] = splitMix(seed);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t s1 = state_[0];
        const uint64_t s0 = state_[1];
        state_[0] = s0;
        s1 ^= s1 << 23;
        state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
        return state_[1] + s0;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive; requires lo <= hi. */
    uint64_t
    nextRange(uint64_t lo, uint64_t hi)
    {
        return lo + nextBounded(hi - lo + 1);
    }

    /** True with probability pct/100. */
    bool
    nextPercent(unsigned pct)
    {
        return nextBounded(100) < pct;
    }

  private:
    uint64_t
    splitMix(uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[2];
};

} // namespace rhtm

#endif // RHTM_UTIL_RNG_H
