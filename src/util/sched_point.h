/**
 * @file
 * Cooperative scheduling points for the deterministic interleaving
 * explorer (src/check/, docs/CHECKING.md).
 *
 * The TM stack calls schedPoint()/schedWaitPoint() at every place
 * where thread interleaving is observable: shared-memory accesses,
 * the commit-seqlock transitions, the serial-lock FIFO, the fault
 * sites, and every unbounded wait loop. In a normal run no client is
 * installed and a point is a single thread-local load and branch. An
 * exploration installs a per-thread SchedClient that blocks the
 * calling thread until the explorer's scheduler grants it the next
 * step, which turns the whole runtime into a deterministic,
 * replayable state machine over scheduling decisions.
 *
 * Wait points (schedWaitPoint) mark iterations of a loop that cannot
 * make progress until some other thread acts -- a spinner on the
 * locked clock, the serial-ticket queue, a stalled-holder watchdog
 * step. The scheduler parks a thread yielding at a wait point until
 * another thread completes a step, which keeps bounded programs from
 * generating unbounded spin-only schedules.
 *
 * Hard rule for placing points: never at a program point where the
 * caller holds a non-TM lock (e.g. inside HtmEngine's publication
 * guard) -- the explorer suspends threads at points, and a suspended
 * mutex holder would deadlock every other thread against the OS lock
 * rather than against TM state the scheduler can reason about.
 */

#ifndef RHTM_UTIL_SCHED_POINT_H
#define RHTM_UTIL_SCHED_POINT_H

#include <cstdint>

namespace rhtm
{

/** Where in the protocol a scheduling point sits. */
enum class SchedPoint : uint8_t
{
    kThreadStart = 0, //!< Worker about to execute its first step.
    kRawLoad,         //!< RawMem load (pure-STM shared read).
    kRawStore,        //!< RawMem store (pure-STM shared write).
    kRawRmw,          //!< RawMem CAS / fetch-add.
    kDirectLoad,      //!< HtmEngine::directLoad (slow-path read).
    kDirectStore,     //!< HtmEngine::directStore (slow-path write).
    kDirectRmw,       //!< HtmEngine CAS / fetch-add.
    kHtmBegin,        //!< HtmTxn::begin.
    kHtmRead,         //!< HtmTxn transactional read.
    kHtmWrite,        //!< HtmTxn transactional (buffered) write.
    kHtmCommit,       //!< HtmTxn::commit entry (before publication).
    kEarlySubscribe,  //!< htmEarlySubscribe's coordination-word read.
    kSeqlockAcquire,  //!< CommitSeqlock CAS attempt on the clock.
    kSeqlockRelease,  //!< CommitSeqlock unlock (advance or restore).
    kSerialTicket,    //!< Serial FIFO: about to take a ticket.
    kSerialAcquired,  //!< Serial FIFO: ticket served, lock raised.
    kSerialRelease,   //!< Serial FIFO: about to drop the lock.
    kFaultSite,       //!< A protocol-level fault-injection site.
    kKillSwitchDecay, //!< Between the cooldown load and its CAS.
    kWaitSpin,        //!< One iteration of an unbounded wait loop.
};

/** Printable name ("raw-load", "seqlock-acquire", ...). */
inline const char *
schedPointName(SchedPoint p)
{
    switch (p) {
      case SchedPoint::kThreadStart: return "thread-start";
      case SchedPoint::kRawLoad: return "raw-load";
      case SchedPoint::kRawStore: return "raw-store";
      case SchedPoint::kRawRmw: return "raw-rmw";
      case SchedPoint::kDirectLoad: return "direct-load";
      case SchedPoint::kDirectStore: return "direct-store";
      case SchedPoint::kDirectRmw: return "direct-rmw";
      case SchedPoint::kHtmBegin: return "htm-begin";
      case SchedPoint::kHtmRead: return "htm-read";
      case SchedPoint::kHtmWrite: return "htm-write";
      case SchedPoint::kHtmCommit: return "htm-commit";
      case SchedPoint::kEarlySubscribe: return "early-subscribe";
      case SchedPoint::kSeqlockAcquire: return "seqlock-acquire";
      case SchedPoint::kSeqlockRelease: return "seqlock-release";
      case SchedPoint::kSerialTicket: return "serial-ticket";
      case SchedPoint::kSerialAcquired: return "serial-acquired";
      case SchedPoint::kSerialRelease: return "serial-release";
      case SchedPoint::kFaultSite: return "fault-site";
      case SchedPoint::kKillSwitchDecay: return "kill-switch-decay";
      case SchedPoint::kWaitSpin: return "wait-spin";
    }
    return "unknown";
}

/**
 * True for points that (may) mutate shared state. The explorer's
 * sleep-set reduction treats two pending steps as independent when
 * they touch different addresses or are both pure reads.
 */
inline bool
schedPointWrites(SchedPoint p)
{
    switch (p) {
      case SchedPoint::kThreadStart:
      case SchedPoint::kRawLoad:
      case SchedPoint::kDirectLoad:
      case SchedPoint::kHtmRead:
      case SchedPoint::kEarlySubscribe:
      case SchedPoint::kWaitSpin:
        return false;
      default:
        return true;
    }
}

/**
 * Per-thread hook the explorer installs. schedYield() runs on the
 * instrumented thread and blocks it until the scheduler grants the
 * next step; it may throw to tear a run down (the unwind follows the
 * normal user-exception abort path).
 */
class SchedClient
{
  public:
    virtual ~SchedClient() = default;

    /**
     * @param point Which protocol window the thread is at.
     * @param addr The shared word involved, or nullptr when the point
     *             is not tied to one address.
     * @param wait True when this is one iteration of a loop that
     *             cannot progress until another thread acts.
     */
    virtual void schedYield(SchedPoint point, const void *addr,
                            bool wait) = 0;
};

namespace detail
{
inline thread_local SchedClient *tlsSchedClient = nullptr;
} // namespace detail

/** Install @p client for the calling thread (nullptr to remove). */
inline void
setSchedClient(SchedClient *client)
{
    detail::tlsSchedClient = client;
}

/** The calling thread's installed client, or nullptr. */
inline SchedClient *
schedClient()
{
    return detail::tlsSchedClient;
}

/** Scheduling point: no-op unless a client is installed. */
inline void
schedPoint(SchedPoint point, const void *addr = nullptr)
{
    if (detail::tlsSchedClient != nullptr)
        detail::tlsSchedClient->schedYield(point, addr, false);
}

/** Wait-loop scheduling point (see class comment). */
inline void
schedWaitPoint(SchedPoint point, const void *addr = nullptr)
{
    if (detail::tlsSchedClient != nullptr)
        detail::tlsSchedClient->schedYield(point, addr, true);
}

} // namespace rhtm

#endif // RHTM_UTIL_SCHED_POINT_H
