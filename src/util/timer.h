/**
 * @file
 * Monotonic wall-clock stopwatch.
 */

#ifndef RHTM_UTIL_TIMER_H
#define RHTM_UTIL_TIMER_H

#include <chrono>

namespace rhtm
{

/** Simple monotonic stopwatch used by the benchmark harness. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch at the current instant. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        auto delta = Clock::now() - start_;
        return std::chrono::duration<double>(delta).count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace rhtm

#endif // RHTM_UTIL_TIMER_H
