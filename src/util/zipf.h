/**
 * @file
 * Seeded Zipfian key generator for skewed workloads.
 *
 * OLTP benchmarks live and die by key skew: a handful of hot keys
 * concentrate conflicts in a way uniform draws never do, which is
 * exactly the regime where the hybrid fallback machinery (and a
 * sharded store's hot shard) gets exercised. This generator draws
 * ranks from the Zipf(theta) distribution -- P(rank = k) proportional
 * to 1/(k+1)^theta -- deterministically from a seed, so benchmark runs
 * replay identical request streams.
 *
 * Implementation: the exact inverse-CDF method. The cumulative weights
 * are precomputed once (O(n) setup, O(n) memory) and each draw is one
 * Rng::next() plus a binary search (O(log n)). For the key-space sizes
 * benchmarks use (<= a few million) this beats the approximate
 * rejection methods on both accuracy and code size; theta = 0 degrades
 * to an exact uniform draw.
 */

#ifndef RHTM_UTIL_ZIPF_H
#define RHTM_UTIL_ZIPF_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace rhtm
{

/**
 * Zipfian rank generator over [0, n). Rank 0 is the hottest key;
 * callers wanting the hot keys scattered through the key space should
 * permute the rank (e.g. hash it) before use.
 */
class ZipfGenerator
{
  public:
    /**
     * @param n     Key-space size; must be >= 1.
     * @param theta Skew exponent. 0 = uniform; 0.99 is the classic
     *              YCSB hot-key mix; larger = more skewed.
     * @param seed  Rng seed (deterministic streams per seed).
     */
    ZipfGenerator(uint64_t n, double theta, uint64_t seed)
        : rng_(seed), cdf_(n == 0 ? 1 : n)
    {
        double sum = 0.0;
        for (uint64_t k = 0; k < cdf_.size(); ++k) {
            sum += 1.0 /
                   std::pow(static_cast<double>(k + 1), theta);
            cdf_[k] = sum;
        }
        total_ = sum;
    }

    /** Number of distinct ranks. */
    uint64_t n() const { return cdf_.size(); }

    /** Draw the next rank in [0, n()). */
    uint64_t
    next()
    {
        // 53-bit mantissa draw: uniform in [0, 1).
        double u = static_cast<double>(rng_.next() >> 11) *
                   (1.0 / 9007199254740992.0);
        double target = u * total_;
        auto it =
            std::upper_bound(cdf_.begin(), cdf_.end(), target);
        if (it == cdf_.end())
            --it; // target == total_ (rounding): clamp to last rank.
        return static_cast<uint64_t>(it - cdf_.begin());
    }

  private:
    Rng rng_;
    std::vector<double> cdf_;
    double total_ = 0.0;
};

} // namespace rhtm

#endif // RHTM_UTIL_ZIPF_H
