#include "src/workloads/adversary.h"

#include <thread>

#include "src/util/backoff.h"

namespace rhtm
{

const char *
pathologyName(Pathology p)
{
    switch (p) {
      case Pathology::kCapacityBomb: return "adv-capacity-bomb";
      case Pathology::kSerialStorm: return "adv-serial-storm";
      case Pathology::kClockFlood: return "adv-clock-flood";
      case Pathology::kReaderSkew: return "adv-reader-skew";
    }
    return "unknown";
}

bool
pathologyFromString(const std::string &name, Pathology &out)
{
    for (Pathology p : allPathologies()) {
        if (name == pathologyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

const std::vector<Pathology> &
allPathologies()
{
    static const std::vector<Pathology> all = {
        Pathology::kCapacityBomb,
        Pathology::kSerialStorm,
        Pathology::kClockFlood,
        Pathology::kReaderSkew,
    };
    return all;
}

AdversaryWorkload::AdversaryWorkload(AdversaryParams params)
    : params_(params)
{
    if (params_.slots < 2)
        params_.slots = 2;
    if (params_.scanSlots > params_.slots)
        params_.scanSlots = params_.slots;
    if (params_.hotSlots < 2)
        params_.hotSlots = 2;
    if (params_.hotSlots > params_.slots)
        params_.hotSlots = params_.slots;
    if (params_.hotPrefix < 2)
        params_.hotPrefix = 2;
    if (params_.hotPrefix > params_.slots)
        params_.hotPrefix = params_.slots;
    if (params_.readerEvery == 0)
        params_.readerEvery = 1;
}

const char *
AdversaryWorkload::name() const
{
    return pathologyName(params_.pathology);
}

void
AdversaryWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    (void)ctx;
    constexpr uint64_t kInitial = 1000;
    words_.assign(uint64_t(params_.slots) * kStride, 0);
    for (unsigned i = 0; i < params_.slots; ++i)
        rt.poke(slot(i), kInitial);
    expectedSum_ = uint64_t(params_.slots) * kInitial;
}

void
AdversaryWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    switch (params_.pathology) {
      case Pathology::kCapacityBomb:
        opCapacityBomb(rt, ctx, rng);
        return;
      case Pathology::kSerialStorm:
        opSerialStorm(rt, ctx, rng);
        return;
      case Pathology::kClockFlood:
        opClockFlood(rt, ctx, rng);
        return;
      case Pathology::kReaderSkew:
        opReaderSkew(rt, ctx, rng);
        return;
    }
}

void
AdversaryWorkload::opCapacityBomb(TmRuntime &rt, ThreadCtx &ctx,
                                  Rng &rng)
{
    // A sequential scan wider than the HTM read set ahead of a 1-slot
    // transfer: the hardware attempt can never commit, so every op
    // pays the full retry budget before falling back.
    uint64_t start =
        rng.nextBounded(params_.slots - params_.scanSlots + 1);
    uint64_t from = rng.nextBounded(params_.slots);
    uint64_t to = rng.nextBounded(params_.slots);
    (void)rt.runWith(ctx, opts_, [&](Txn &tx) {
        uint64_t sink = 0;
        for (unsigned i = 0; i < params_.scanSlots; ++i)
            sink += tx.load(slot(start + i));
        if (from != to && sink != 0) {
            uint64_t a = tx.load(slot(from));
            if (a > 0) {
                tx.store(slot(from), a - 1);
                tx.store(slot(to), tx.load(slot(to)) + 1);
            }
        }
    });
}

void
AdversaryWorkload::opSerialStorm(TmRuntime &rt, ThreadCtx &ctx,
                                 Rng &rng)
{
    // Long holds on a handful of hot words: conflict aborts exhaust
    // the retry budget and the losers convoy through the serial FIFO.
    uint64_t from = rng.nextBounded(params_.hotSlots);
    uint64_t to = rng.nextBounded(params_.hotSlots);
    (void)rt.runWith(ctx, opts_, [&](Txn &tx) {
        uint64_t a = tx.load(slot(from));
        uint64_t b = tx.load(slot(to));
        // Stretch the conflict window, yielding mid-hold so other
        // threads get to commit conflicting writes inside it even when
        // cores are scarce (see AdversaryParams::holdYields).
        unsigned chunks = params_.holdYields + 1;
        for (unsigned i = 0; i < chunks; ++i) {
            simDelay(params_.holdSpins / chunks);
            if (i + 1 < chunks)
                std::this_thread::yield();
        }
        if (from != to && a > 0) {
            tx.store(slot(from), a - 1);
            tx.store(slot(to), b + 1);
        }
    });
}

void
AdversaryWorkload::opClockFlood(TmRuntime &rt, ThreadCtx &ctx,
                                Rng &rng)
{
    if (rng.nextPercent(10)) {
        // The victim: a long reader that must revalidate on every
        // clock bump the flood produces.
        uint64_t start =
            rng.nextBounded(params_.slots - params_.scanSlots + 1);
        (void)rt.runWith(ctx, opts_, [&](Txn &tx) {
            uint64_t sink = 0;
            for (unsigned i = 0; i < params_.scanSlots; ++i)
                sink += tx.load(slot(start + i));
            (void)sink;
        });
        return;
    }
    // The flood: tiny committing transfers, each one a clock bump.
    uint64_t from = rng.nextBounded(params_.slots);
    uint64_t to = rng.nextBounded(params_.slots);
    (void)rt.runWith(ctx, opts_, [&](Txn &tx) {
        if (from == to)
            return;
        uint64_t a = tx.load(slot(from));
        if (a > 0) {
            tx.store(slot(from), a - 1);
            tx.store(slot(to), tx.load(slot(to)) + 1);
        }
    });
}

void
AdversaryWorkload::opReaderSkew(TmRuntime &rt, ThreadCtx &ctx,
                                Rng &rng)
{
    if (rng.nextBounded(params_.readerEvery) == 0) {
        // The starved reader: a full-array sum whose validation window
        // the hot-prefix writers almost never leave open.
        (void)rt.runWith(ctx, opts_, [&](Txn &tx) {
            uint64_t sink = 0;
            for (unsigned i = 0; i < params_.slots; ++i)
                sink += tx.load(slot(i));
            (void)sink;
        });
        return;
    }
    uint64_t from = rng.nextBounded(params_.hotPrefix);
    uint64_t to = rng.nextBounded(params_.hotPrefix);
    (void)rt.runWith(ctx, opts_, [&](Txn &tx) {
        if (from == to)
            return;
        uint64_t a = tx.load(slot(from));
        if (a > 0) {
            tx.store(slot(from), a - 1);
            tx.store(slot(to), tx.load(slot(to)) + 1);
        }
    });
}

bool
AdversaryWorkload::verify(TmRuntime &rt, std::string *why) const
{
    uint64_t sum = 0;
    for (unsigned i = 0; i < params_.slots; ++i)
        sum += rt.peek(slot(i));
    if (sum != expectedSum_) {
        if (why != nullptr) {
            *why = std::string(name()) + ": word-array sum " +
                   std::to_string(sum) + " != expected " +
                   std::to_string(expectedSum_);
        }
        return false;
    }
    return true;
}

} // namespace rhtm
