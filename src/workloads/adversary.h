/**
 * @file
 * Adversarial pathology kernels (docs/OVERLOAD.md).
 *
 * Where the STAMP-style kernels model applications, these model
 * attackers: each pathology is a transaction profile chosen to drive
 * one of the hybrid's overload amplifiers -- capacity-doomed hardware
 * attempts, serial-FIFO convoys, commit-clock invalidation floods,
 * reader starvation -- as hard as a workload can. They exist to show
 * tail-latency collapse with the admission gate off and bounded p99
 * with it on (bench_adversary), and to feed the chaos/regression
 * harnesses a worst case that ordinary kernels never reach.
 *
 * Every pathology preserves one global invariant (the word-array sum),
 * so the adversarial sweeps double as correctness stress tests exactly
 * like the STAMP kernels do.
 */

#ifndef RHTM_WORKLOADS_ADVERSARY_H
#define RHTM_WORKLOADS_ADVERSARY_H

#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace rhtm
{

/** The named pathologies (docs/OVERLOAD.md for the mechanism). */
enum class Pathology : uint8_t
{
    /**
     * Invisible-reads capacity bomb: every op scans a sequential block
     * larger than the HTM read capacity before a tiny transfer, so the
     * hardware attempt is doomed to a capacity abort and the whole
     * fleet herds onto the instrumented fallback at once.
     */
    kCapacityBomb = 0,

    /**
     * Serial-storm convoy: long transactions hammer a handful of hot
     * words, conflict aborts exhaust every retry budget, and the
     * losers pile into the serial FIFO -- whose single-file drain then
     * dooms every hardware attempt subscribed to serialLock.
     */
    kSerialStorm,

    /**
     * Clock-bump flood: a torrent of tiny committing writers advances
     * the global clock so fast that the occasional long reader
     * revalidates (or restarts) on nearly every read.
     */
    kClockFlood,

    /**
     * Reader-starvation skew: rare full-array readers against a
     * current of hot-prefix writers; the readers' validation window
     * almost never closes, stretching their latency tail unboundedly.
     */
    kReaderSkew,
};

/** Canonical short name ("adv-capacity-bomb", ...). */
const char *pathologyName(Pathology p);

/** Parse a short name back to a pathology. @return true on success. */
bool pathologyFromString(const std::string &name, Pathology &out);

/** All pathologies, in enum order. */
const std::vector<Pathology> &allPathologies();

/**
 * Tuning for the adversary kernels. Slots are line-padded (one word
 * per 64-byte cache line), so a scan of N slots occupies N HTM
 * read-set lines: the defaults size the capacity-bomb scan past the
 * full unscaled read capacity (HtmConfig::readCapacityLines = 4096
 * lines) so the hardware attempt is structurally doomed for every
 * thread, not merely unlucky.
 */
struct AdversaryParams
{
    Pathology pathology = Pathology::kCapacityBomb;
    unsigned slots = 4608;       //!< Shared line-padded slot count.
    unsigned scanSlots = 4224;   //!< Capacity-bomb scan length.
    unsigned hotSlots = 4;       //!< Serial-storm hot-slot count.
    unsigned holdSpins = 150000; //!< Serial-storm in-txn delay.

    /**
     * Serial-storm: yields interleaved into the in-txn hold. A pure
     * spin only overlaps other transactions when cores are plentiful;
     * yielding mid-window models the real trigger -- preemption inside
     * a transaction -- and guarantees conflicting commits land in the
     * window on any core count (including a 1-CPU CI box, where
     * spinning threads just time-slice past each other).
     */
    unsigned holdYields = 4;
    unsigned hotPrefix = 16;     //!< Reader-skew writer working set.
    unsigned readerEvery = 8;    //!< Reader-skew: 1-in-N ops scan.
};

/**
 * One adversarial kernel. The transaction bounds used for every op are
 * settable (setTxnOptions), so one instance serves both the
 * admission-off baseline and the deadline+admission A/B arm.
 */
class AdversaryWorkload : public Workload
{
  public:
    explicit AdversaryWorkload(AdversaryParams params = AdversaryParams());

    const char *name() const override;
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

    /** Bounds applied to every op's transaction (default: unbounded). */
    void setTxnOptions(const TxnOptions &opts) { opts_ = opts; }

  private:
    void opCapacityBomb(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);
    void opSerialStorm(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);
    void opClockFlood(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);
    void opReaderSkew(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);

    /** One word per cache line, so scans count in HTM read-set lines. */
    static constexpr unsigned kStride = 8;
    uint64_t *slot(uint64_t i) { return &words_[i * kStride]; }
    const uint64_t *slot(uint64_t i) const { return &words_[i * kStride]; }

    AdversaryParams params_;
    TxnOptions opts_;
    std::vector<uint64_t> words_;
    uint64_t expectedSum_ = 0;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_ADVERSARY_H
