#include "src/workloads/genome.h"

#include <map>
#include <sstream>
#include <utility>

namespace rhtm
{

GenomeWorkload::GenomeWorkload(GenomeParams params)
    : params_(params), unique_(13), next_(13)
{}

void
GenomeWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    (void)rt;
    (void)ctx;
    // Sample every position `duplication` times and shuffle: the
    // nucleotide stream the sequencer would emit.
    samples_.clear();
    samples_.reserve(size_t(params_.genomeLength) * params_.duplication);
    for (unsigned d = 0; d < params_.duplication; ++d) {
        for (unsigned p = 0; p < params_.genomeLength; ++p)
            samples_.push_back(p);
    }
    Rng rng(424242);
    for (size_t i = samples_.size(); i > 1; --i)
        std::swap(samples_[i - 1], samples_[rng.nextBounded(i)]);
    cursor_.store(0, std::memory_order_release);
}

void
GenomeWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    (void)rng;
    size_t idx = cursor_.fetch_add(1, std::memory_order_acq_rel);
    // Wrap: keep hashing (phase-1-style re-probes) after the stream is
    // exhausted so timed runs of any length stay busy.
    uint64_t segment = samples_[idx % samples_.size()];

    rt.run(ctx, [&](Txn &tx) {
        // Phase 1: deduplicate the segment.
        bool fresh = unique_.putIfAbsent(tx, segment, 1);
        if (!fresh)
            return; // Duplicate: nothing to link.
        // Phase 2: link to the overlap successor (the segment starting
        // one position later), both directions so the chain closes no
        // matter the processing order.
        if (segment + 1 < params_.genomeLength)
            next_.putIfAbsent(tx, segment, segment + 1);
        if (segment > 0)
            next_.putIfAbsent(tx, segment - 1, segment);
    });
}

bool
GenomeWorkload::verify(TmRuntime &rt, std::string *why) const
{
    (void)rt;
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    size_t processed = cursor_.load(std::memory_order_acquire);
    if (processed < samples_.size())
        return true; // Partial run: dedup set is a subset, fine.

    // The full stream was consumed at least once: every segment must
    // be present exactly once, and the chain must be complete.
    if (unique_.sizeUnsync() != params_.genomeLength) {
        std::ostringstream os;
        os << "dedup set has " << unique_.sizeUnsync()
           << " segments, want " << params_.genomeLength;
        return fail(os.str());
    }
    std::map<uint64_t, uint64_t> links;
    next_.forEachUnsync([&](uint64_t k, uint64_t v) { links[k] = v; });
    for (unsigned p = 0; p + 1 < params_.genomeLength; ++p) {
        auto it = links.find(p);
        if (it == links.end() || it->second != p + 1) {
            std::ostringstream os;
            os << "chain broken at position " << p;
            return fail(os.str());
        }
    }
    return true;
}

} // namespace rhtm
