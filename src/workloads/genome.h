/**
 * @file
 * Genome: the STAMP gene-sequencing kernel. A genome is sampled into
 * overlapping segments (with duplicates); threads first deduplicate
 * the segments into a shared hash set, then match overlapping segments
 * to link the sequence back together. Moderate transactions, low to
 * moderate contention, heavy instrumentation cost from the hash
 * probing (Section 3.6).
 */

#ifndef RHTM_WORKLOADS_GENOME_H
#define RHTM_WORKLOADS_GENOME_H

#include <atomic>
#include <vector>

#include "src/structures/tx_hashmap.h"
#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the genome kernel. */
struct GenomeParams
{
    unsigned genomeLength = 8192; //!< Positions in the genome.
    unsigned duplication = 4;     //!< Copies of each segment sampled.
};

/**
 * The genome kernel. Each op processes one sampled segment: phase-1
 * style dedup insert, and -- when the segment is new -- a phase-2
 * style link of the segment to its overlap successor. The kernel
 * reconstructs the chain 0 -> 1 -> ... -> N-1; verify() walks it.
 */
class GenomeWorkload : public Workload
{
  public:
    explicit GenomeWorkload(GenomeParams params = GenomeParams());

    const char *name() const override { return "genome"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    GenomeParams params_;
    std::vector<uint64_t> samples_; //!< Shuffled segment stream.
    std::atomic<size_t> cursor_{0}; //!< Next sample to process.
    TxHashMap unique_;              //!< Dedup set: segment -> 1.
    TxHashMap next_;                //!< Chain links: pos -> pos + 1.
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_GENOME_H
