#include "src/workloads/intruder.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <sstream>

namespace rhtm
{

IntruderWorkload::IntruderWorkload(IntruderParams params)
    : params_(params), assembly_(12), attacks_(12)
{
    // Bitmaps live in one 64-bit word.
    if (params_.maxFragsPerFlow > 48)
        params_.maxFragsPerFlow = 48;
    if (params_.seedDepth == 0)
        params_.seedDepth = 1;
}

uint64_t
IntruderWorkload::fragmentAt(uint64_t idx) const
{
    uint64_t pos = idx % stream_.size();
    uint64_t round = idx / stream_.size();
    uint64_t frag = stream_[pos];
    // Offset the flow id so wrapped rounds form fresh flows.
    uint64_t flow = (frag >> 32) + round * params_.flows;
    return (flow << 32) | (frag & 0xffffffffull);
}

void
IntruderWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    // One stream round: every flow's fragments, globally shuffled.
    stream_.clear();
    Rng rng(7919);
    for (unsigned f = 0; f < params_.flows; ++f) {
        uint64_t flow = f + 1;
        unsigned count = 1 + static_cast<unsigned>(rng.nextBounded(
                                 params_.maxFragsPerFlow));
        for (unsigned i = 0; i < count; ++i)
            stream_.push_back(encodeFragment(flow, i, count));
    }
    for (size_t i = stream_.size(); i > 1; --i)
        std::swap(stream_[i - 1], stream_[rng.nextBounded(i)]);

    // Prime the queue so consumers always find work.
    uint64_t depth = std::min<uint64_t>(params_.seedDepth,
                                        stream_.size());
    constexpr uint64_t kBatch = 64;
    for (uint64_t base = 0; base < depth; base += kBatch) {
        rt.run(ctx, [&](Txn &tx) {
            uint64_t end = std::min(base + kBatch, depth);
            for (uint64_t i = base; i < end; ++i)
                packets_.push(tx, fragmentAt(i));
        });
    }
    cursor_.store(depth, std::memory_order_release);
}

void
IntruderWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    (void)rng;
    uint64_t inject_idx = cursor_.fetch_add(1, std::memory_order_acq_rel);
    uint64_t inject = fragmentAt(inject_idx);

    // Capture (inject) + reassembly in one transaction; detection runs
    // after completion (STAMP's three phases, the first two
    // transactional).
    uint64_t completed_flow = 0;
    rt.run(ctx, [&](Txn &tx) {
        completed_flow = 0;
        packets_.push(tx, inject);
        uint64_t frag = 0;
        if (!packets_.pop(tx, frag))
            return; // Unreachable: we just pushed.
        uint64_t flow = frag >> 32;
        unsigned index = static_cast<unsigned>((frag >> 16) & 0xffff);
        unsigned count = static_cast<unsigned>(frag & 0xffff);

        uint64_t bitmap = 0;
        assembly_.get(tx, flow, bitmap);
        bitmap |= uint64_t(1) << index;
        uint64_t full = (uint64_t(1) << count) - 1;
        if (bitmap == full) {
            assembly_.remove(tx, flow);
            tx.store(&completedFlows_, tx.load(&completedFlows_) + 1);
            completed_flow = flow;
        } else {
            assembly_.put(tx, flow, bitmap);
        }
    });

    if (completed_flow != 0) {
        // Detection: the signature scan itself is thread-local; only
        // the verdict is published.
        bool attack = (completed_flow % params_.attackEvery) == 0;
        if (attack) {
            rt.run(ctx, [&](Txn &tx) {
                attacks_.putIfAbsent(tx, completed_flow, 1);
            });
        }
    }
}

bool
IntruderWorkload::verify(TmRuntime &rt, std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // Replay the stream to find how many fragments of each flow were
    // injected (cursor_ fragments, in deterministic order).
    uint64_t injected = cursor_.load(std::memory_order_acquire);
    std::unordered_map<uint64_t, unsigned> pushed;   // flow -> fragments injected
    std::unordered_map<uint64_t, unsigned> full_count; // flow -> total fragments
    for (uint64_t idx = 0; idx < injected; ++idx) {
        uint64_t frag = fragmentAt(idx);
        uint64_t flow = frag >> 32;
        pushed[flow]++;
        full_count[flow] = static_cast<unsigned>(frag & 0xffff);
    }

    std::unordered_map<uint64_t, unsigned> queued;
    packets_.forEachUnsync([&](uint64_t frag) { queued[frag >> 32]++; });
    std::unordered_map<uint64_t, unsigned> partial;
    assembly_.forEachUnsync([&](uint64_t flow, uint64_t bitmap) {
        partial[flow] =
            static_cast<unsigned>(__builtin_popcountll(bitmap));
    });

    uint64_t complete = 0;
    uint64_t expected_attacks = 0;
    for (auto &[flow, n_pushed] : pushed) {
        unsigned q = queued.count(flow) ? queued[flow] : 0;
        unsigned p = partial.count(flow) ? partial[flow] : 0;
        bool is_complete =
            (q == 0 && p == 0 && n_pushed == full_count[flow]);
        if (!is_complete && q + p != n_pushed) {
            std::ostringstream os;
            os << "flow " << flow << ": " << q << " queued + " << p
               << " assembled != " << n_pushed << " injected";
            return fail(os.str());
        }
        if (is_complete) {
            ++complete;
            if (flow % params_.attackEvery == 0)
                ++expected_attacks;
        }
    }
    for (auto &[flow, q] : queued) {
        (void)q;
        if (!pushed.count(flow))
            return fail("queue holds a fragment of an unknown flow");
    }

    uint64_t done = const_cast<TmRuntime &>(rt).peek(&completedFlows_);
    if (done != complete) {
        std::ostringstream os;
        os << "completion counter " << done << " != derived "
           << complete;
        return fail(os.str());
    }
    if (attacks_.sizeUnsync() != expected_attacks) {
        std::ostringstream os;
        os << "attack ledger " << attacks_.sizeUnsync()
           << " != expected " << expected_attacks;
        return fail(os.str());
    }
    return true;
}

} // namespace rhtm
