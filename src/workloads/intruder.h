/**
 * @file
 * Intruder: the STAMP network-intrusion-detection kernel. Packet
 * fragments flow through a shared queue into a per-flow reassembly
 * dictionary; completed flows are scanned for attack signatures.
 * Short-to-moderate transactions with high contention on the queue
 * ends and the reassembly map -- the profile the paper calls out in
 * Section 3.6.
 */

#ifndef RHTM_WORKLOADS_INTRUDER_H
#define RHTM_WORKLOADS_INTRUDER_H

#include <atomic>
#include <vector>

#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_queue.h"
#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the intruder kernel. */
struct IntruderParams
{
    unsigned flows = 2048;          //!< Flows per stream round.
    unsigned maxFragsPerFlow = 8;   //!< Fragments per flow (1..max).
    unsigned attackEvery = 16;      //!< Every Nth flow is an attack.
    unsigned seedDepth = 256;       //!< Fragments queued at setup.
};

/**
 * The intruder kernel. setup() pre-generates a shuffled fragment
 * stream and primes the queue; every op transactionally injects the
 * next stream fragment and consumes/reassembles the oldest one, so
 * the queue depth stays constant and a timed run never drains. The
 * stream wraps with fresh flow ids, making runs of any length valid.
 */
class IntruderWorkload : public Workload
{
  public:
    explicit IntruderWorkload(IntruderParams params = IntruderParams());

    const char *name() const override { return "intruder"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    /** Fragment encoding: flow (32b) | index (16b) | count (16b). */
    static uint64_t
    encodeFragment(uint64_t flow, unsigned index, unsigned count)
    {
        return (flow << 32) | (uint64_t(index) << 16) | count;
    }

    /** The idx-th fragment of the (wrapping) stream. */
    uint64_t fragmentAt(uint64_t idx) const;

    IntruderParams params_;
    std::vector<uint64_t> stream_;  //!< One shuffled round, flow ids 1..flows.
    std::atomic<uint64_t> cursor_{0}; //!< Fragments injected so far.
    TxQueue packets_;
    TxHashMap assembly_;   //!< flow -> bitmap of received fragments.
    TxHashMap attacks_;    //!< flow -> 1 for detected attacks.
    alignas(64) uint64_t completedFlows_ = 0;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_INTRUDER_H
