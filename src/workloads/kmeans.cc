#include "src/workloads/kmeans.h"

#include <sstream>

namespace rhtm
{

KmeansWorkload::KmeansWorkload(KmeansParams params) : params_(params)
{
    if (params_.dims > 8)
        params_.dims = 8;
    clusters_.resize(params_.clusters);
    Rng rng(777);
    centers_.resize(params_.clusters);
    for (auto &c : centers_) {
        c.resize(params_.dims);
        for (auto &x : c)
            x = rng.nextBounded(params_.pointRange);
    }
}

void
KmeansWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    (void)rt;
    (void)ctx;
    for (auto &c : clusters_) {
        c.count = 0;
        for (auto &s : c.coordSum)
            s = 0;
    }
    pointsFolded_.store(0, std::memory_order_release);
}

void
KmeansWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    // Draw a point and find its nearest center outside the
    // transaction (thread-local arithmetic, like STAMP's distance
    // computation between the transactional updates).
    uint64_t point[8];
    for (unsigned d = 0; d < params_.dims; ++d)
        point[d] = rng.nextBounded(params_.pointRange);
    unsigned best = 0;
    uint64_t best_dist = ~uint64_t(0);
    for (unsigned c = 0; c < params_.clusters; ++c) {
        uint64_t dist = 0;
        for (unsigned d = 0; d < params_.dims; ++d) {
            int64_t diff = static_cast<int64_t>(point[d]) -
                           static_cast<int64_t>(centers_[c][d]);
            dist += static_cast<uint64_t>(diff * diff);
        }
        if (dist < best_dist) {
            best_dist = dist;
            best = c;
        }
    }
    // Fold the point into the chosen cluster transactionally.
    rt.run(ctx, [&](Txn &tx) {
        Cluster &cl = clusters_[best];
        tx.store(&cl.count, tx.load(&cl.count) + 1);
        for (unsigned d = 0; d < params_.dims; ++d) {
            tx.store(&cl.coordSum[d],
                     tx.load(&cl.coordSum[d]) + point[d]);
        }
    });
    pointsFolded_.fetch_add(1, std::memory_order_acq_rel);
}

bool
KmeansWorkload::verify(TmRuntime &rt, std::string *why) const
{
    (void)rt;
    // Every folded point landed in exactly one cluster.
    uint64_t total = 0;
    for (const Cluster &cl : clusters_)
        total += cl.count;
    if (total != pointsFolded_.load(std::memory_order_acquire)) {
        if (why) {
            std::ostringstream os;
            os << "cluster counts " << total << " != points folded "
               << pointsFolded_.load();
            *why = os.str();
        }
        return false;
    }
    // Coordinate sums must be consistent with counts: each coordinate
    // mean must lie inside the coordinate range.
    for (unsigned c = 0; c < params_.clusters; ++c) {
        const Cluster &cl = clusters_[c];
        if (cl.count == 0)
            continue;
        for (unsigned d = 0; d < params_.dims; ++d) {
            uint64_t mean = cl.coordSum[d] / cl.count;
            if (mean >= params_.pointRange) {
                if (why) {
                    std::ostringstream os;
                    os << "cluster " << c << " dim " << d
                       << " mean out of range (torn update)";
                    *why = os.str();
                }
                return false;
            }
        }
    }
    return true;
}

} // namespace rhtm
