/**
 * @file
 * Kmeans: the STAMP clustering kernel. Threads stream points, find
 * the nearest center (thread-local arithmetic), and transactionally
 * fold the point into that cluster's accumulator -- small transactions
 * whose contention is set by the number of clusters.
 */

#ifndef RHTM_WORKLOADS_KMEANS_H
#define RHTM_WORKLOADS_KMEANS_H

#include <atomic>
#include <vector>

#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the kmeans kernel. */
struct KmeansParams
{
    unsigned clusters = 16;  //!< Accumulator count (contention knob).
    unsigned dims = 4;       //!< Point dimensionality.
    unsigned pointRange = 1024; //!< Coordinate range.
};

/** The kmeans kernel (one assignment pass, repeated). */
class KmeansWorkload : public Workload
{
  public:
    explicit KmeansWorkload(KmeansParams params = KmeansParams());

    const char *name() const override { return "kmeans"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    struct alignas(64) Cluster
    {
        uint64_t count;
        uint64_t coordSum[8];
    };

    KmeansParams params_;
    std::vector<Cluster> clusters_;
    std::vector<std::vector<uint64_t>> centers_; //!< Fixed centers.
    std::atomic<uint64_t> pointsFolded_{0};
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_KMEANS_H
