#include "src/workloads/labyrinth.h"

#include <map>
#include <set>
#include <sstream>

#include "src/mem/memory_manager.h"

namespace rhtm
{

LabyrinthWorkload::LabyrinthWorkload(LabyrinthParams params)
    : params_(params)
{
    grid_.resize(size_t(params_.width) * params_.height, 0);
    pending_.resize(MemoryManager::kMaxThreads);
}

void
LabyrinthWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    (void)rt;
    (void)ctx;
    for (auto &c : grid_)
        c = 0;
    for (auto &p : pending_)
        p.clear();
    nextRouteId_.store(1, std::memory_order_release);
    routed_.store(0, std::memory_order_release);
    irrevocableRouted_.store(0, std::memory_order_release);
    sideEffects_.store(0, std::memory_order_release);
}

void
LabyrinthWorkload::buildPath(unsigned x0, unsigned y0, unsigned x1,
                             unsigned y1, std::vector<size_t> &out) const
{
    out.clear();
    unsigned x = x0, y = y0;
    out.push_back(cellIndex(x, y));
    while (x != x1) {
        x = x < x1 ? x + 1 : x - 1;
        out.push_back(cellIndex(x, y));
    }
    while (y != y1) {
        y = y < y1 ? y + 1 : y - 1;
        out.push_back(cellIndex(x, y));
    }
}

void
LabyrinthWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    auto &my_pending = pending_[ctx.tid()];

    // Rip up an old route once a few have accumulated, keeping the
    // grid from saturating (STAMP routes a fixed work list; churn
    // keeps a timed run representative).
    if (my_pending.size() >= 4) {
        Route route = std::move(my_pending.front());
        my_pending.erase(my_pending.begin());
        rt.run(ctx, [&](Txn &tx) {
            for (size_t cell : route.cells) {
                // Only clear cells still owned by this route.
                if (tx.load(&grid_[cell]) == route.id)
                    tx.store(&grid_[cell], 0);
            }
        });
    }

    unsigned x0 = static_cast<unsigned>(rng.nextBounded(params_.width));
    unsigned y0 = static_cast<unsigned>(rng.nextBounded(params_.height));
    unsigned x1 = static_cast<unsigned>(rng.nextBounded(params_.width));
    unsigned y1 = static_cast<unsigned>(rng.nextBounded(params_.height));
    uint64_t id = nextRouteId_.fetch_add(1, std::memory_order_acq_rel);

    Route route;
    route.id = id;
    buildPath(x0, y0, x1, y1, route.cells);

    // Decide outside the transaction so a restarted attempt makes the
    // same choice: e.g. a route whose claim must reach an external
    // system (a real router would emit the path to hardware).
    bool want_irrevocable =
        irrevocablePct_ > 0 && rng.nextBounded(100) < irrevocablePct_;

    bool claimed = false;
    rt.run(ctx, [&](Txn &tx) {
        claimed = false;
        // Probe the whole path first (large read set)...
        for (size_t cell : route.cells) {
            if (tx.load(&grid_[cell]) != 0)
                return; // Blocked: commit nothing.
        }
        if (want_irrevocable) {
            // The path is claimable: upgrade between probe and claim.
            // Everything above may replay (the upgrade itself can
            // restart pre-grant); everything below runs exactly once.
            tx.becomeIrrevocable();
            sideEffects_.fetch_add(1, std::memory_order_acq_rel);
        }
        // ...then claim it (large write set).
        for (size_t cell : route.cells)
            tx.store(&grid_[cell], id);
        claimed = true;
    });

    if (claimed) {
        routed_.fetch_add(1, std::memory_order_acq_rel);
        if (want_irrevocable)
            irrevocableRouted_.fetch_add(1, std::memory_order_acq_rel);
        my_pending.push_back(std::move(route));
    }
}

bool
LabyrinthWorkload::verify(TmRuntime &rt, std::string *why) const
{
    (void)rt;
    // The zero-replay invariant: a side effect performed after an
    // irrevocability grant runs exactly once per upgraded claim. A
    // granted transaction that was aborted and replayed (the bug class
    // irrevocability exists to exclude) would double-run it.
    uint64_t effects = sideEffects_.load(std::memory_order_acquire);
    uint64_t upgraded = irrevocableRouted_.load(std::memory_order_acquire);
    if (effects != upgraded) {
        if (why) {
            std::ostringstream os;
            os << "irrevocable side effects ran " << effects
               << " times for " << upgraded
               << " upgraded claims (replayed grant)";
            *why = os.str();
        }
        return false;
    }
    // Every outstanding route owns its complete path; no cell belongs
    // to a route that is not outstanding.
    std::map<uint64_t, uint64_t> owned_cells;
    for (size_t i = 0; i < grid_.size(); ++i) {
        if (grid_[i] != 0)
            owned_cells[grid_[i]]++;
    }
    std::map<uint64_t, uint64_t> expected;
    for (const auto &per_thread : pending_) {
        for (const Route &r : per_thread)
            expected[r.id] = r.cells.size();
    }
    for (auto &[id, cells] : owned_cells) {
        auto it = expected.find(id);
        if (it == expected.end()) {
            if (why) {
                std::ostringstream os;
                os << "grid cell owned by unknown route " << id;
                *why = os.str();
            }
            return false;
        }
    }
    for (auto &[id, cells] : expected) {
        // A pending route must own every distinct cell of its path
        // (the same cell can appear once; L-paths never self-cross
        // except degenerate start==end single cells).
        std::set<uint64_t> distinct;
        for (const auto &per_thread : pending_) {
            for (const Route &r : per_thread) {
                if (r.id != id)
                    continue;
                for (size_t c : r.cells)
                    distinct.insert(c);
            }
        }
        uint64_t got = owned_cells.count(id) ? owned_cells[id] : 0;
        if (got != distinct.size()) {
            if (why) {
                std::ostringstream os;
                os << "route " << id << " owns " << got << " cells, want "
                   << distinct.size() << " (torn claim)";
                *why = os.str();
            }
            return false;
        }
    }
    return true;
}

} // namespace rhtm
