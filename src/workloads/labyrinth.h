/**
 * @file
 * Labyrinth: the STAMP maze-routing kernel. Each transaction routes a
 * path across a shared grid and claims every cell along it: very long
 * transactions with large read and write sets -- the capacity-abort
 * stressor that drives hardware transactions to the software fallback.
 */

#ifndef RHTM_WORKLOADS_LABYRINTH_H
#define RHTM_WORKLOADS_LABYRINTH_H

#include <atomic>
#include <vector>

#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the labyrinth kernel. */
struct LabyrinthParams
{
    unsigned width = 128;   //!< Grid width.
    unsigned height = 128;  //!< Grid height.
};

/**
 * The labyrinth kernel. Each op picks random endpoints and attempts
 * to claim the L-shaped route between them (all cells free or already
 * fading); on obstruction the transaction commits nothing and the op
 * counts as a failed route. Completed routes are released ("ripped
 * up") by the same thread a few ops later, so the grid keeps churning.
 */
class LabyrinthWorkload : public Workload
{
  public:
    explicit LabyrinthWorkload(LabyrinthParams params = LabyrinthParams());

    const char *name() const override { return "labyrinth"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

    /** Routed-path count so far (for bench reporting). */
    uint64_t routed() const
    {
        return routed_.load(std::memory_order_acquire);
    }

    /** Routes claimed by an irrevocable transaction. */
    uint64_t irrevocableRouted() const
    {
        return irrevocableRouted_.load(std::memory_order_acquire);
    }

    /**
     * Simulated external side effects performed after an
     * irrevocability grant (one per upgraded claim). verify() checks
     * this equals irrevocableRouted(): a granted transaction that
     * aborted and replayed would run its side effect twice.
     */
    uint64_t sideEffects() const
    {
        return sideEffects_.load(std::memory_order_acquire);
    }

  private:
    struct Route
    {
        uint64_t id;
        std::vector<size_t> cells;
    };

    size_t
    cellIndex(unsigned x, unsigned y) const
    {
        return size_t(y) * params_.width + x;
    }

    /** Build the L-shaped path between two points. */
    void buildPath(unsigned x0, unsigned y0, unsigned x1, unsigned y1,
                   std::vector<size_t> &out) const;

    LabyrinthParams params_;
    std::vector<uint64_t> grid_; //!< 0 = free, else route id.
    std::atomic<uint64_t> nextRouteId_{1};
    std::atomic<uint64_t> routed_{0};
    std::atomic<uint64_t> irrevocableRouted_{0};
    std::atomic<uint64_t> sideEffects_{0};
    // Per-thread pending routes awaiting rip-up (indexed by tid).
    std::vector<std::vector<Route>> pending_;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_LABYRINTH_H
