#include "src/workloads/rbtree_bench.h"

namespace rhtm
{

RbTreeBenchWorkload::RbTreeBenchWorkload(RbTreeBenchParams params)
    : params_(params), keyRange_(uint64_t(params.initialSize) * 2)
{}

void
RbTreeBenchWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    // Insert every other key: the tree holds initialSize nodes and
    // stays near that size in steady state (puts and deletes are
    // drawn uniformly over a 2x key range).
    for (uint64_t k = 0; k < keyRange_; k += 2) {
        rt.run(ctx, [&](Txn &tx) {
            tree_.put(tx, static_cast<int64_t>(k),
                      static_cast<int64_t>(k));
        });
    }
}

void
RbTreeBenchWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    int64_t key = static_cast<int64_t>(rng.nextBounded(keyRange_));
    if (rng.nextPercent(params_.mutationPct)) {
        if (rng.nextPercent(50)) {
            rt.run(ctx, [&](Txn &tx) { tree_.put(tx, key, key); });
        } else {
            rt.run(ctx, [&](Txn &tx) { tree_.remove(tx, key); });
        }
    } else {
        // Lookups are statically read-only: the GCC analysis the paper
        // relies on is conveyed through the hint.
        rt.run(ctx,
               [&](Txn &tx) {
                   int64_t v;
                   (void)tree_.get(tx, key, v);
               },
               TxnHint::kReadOnly);
    }
}

bool
RbTreeBenchWorkload::verify(TmRuntime &rt, std::string *why) const
{
    (void)rt;
    return tree_.validateStructure(why);
}

} // namespace rhtm
