/**
 * @file
 * The red-black tree microbenchmark of Figure 4: a TreeMap-derived
 * tree exposing put/delete/get, parameterized by tree size and
 * mutation ratio (the fraction of write transactions).
 */

#ifndef RHTM_WORKLOADS_RBTREE_BENCH_H
#define RHTM_WORKLOADS_RBTREE_BENCH_H

#include "src/structures/tx_rbtree.h"
#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the red-black tree microbenchmark. */
struct RbTreeBenchParams
{
    unsigned initialSize = 10000; //!< Nodes after setup (Figure 4).
    unsigned mutationPct = 10;    //!< Write-transaction percentage.
};

/** The Figure 4 microbenchmark as a Workload. */
class RbTreeBenchWorkload : public Workload
{
  public:
    explicit RbTreeBenchWorkload(
        RbTreeBenchParams params = RbTreeBenchParams());

    const char *name() const override { return "rbtree"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    RbTreeBenchParams params_;
    uint64_t keyRange_;
    TxRbTree tree_;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_RBTREE_BENCH_H
