#include "src/workloads/ssca2.h"

#include <sstream>

namespace rhtm
{

Ssca2Workload::Ssca2Workload(Ssca2Params params)
    : params_(params), edges_(14)
{
    vertices_.resize(params_.nodes);
}

void
Ssca2Workload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    (void)rt;
    (void)ctx;
    for (auto &v : vertices_) {
        v.outDegree = 0;
        v.inDegree = 0;
        v.weightSum = 0;
    }
}

void
Ssca2Workload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    uint64_t u = rng.nextBounded(params_.nodes);
    uint64_t v = rng.nextBounded(params_.nodes);
    uint64_t w = 1 + rng.nextBounded(100);
    rt.run(ctx, [&](Txn &tx) {
        // Claim the next adjacency slot of u and record the edge:
        // 3 reads + 4 writes over a wide address range.
        uint64_t slot = tx.load(&vertices_[u].outDegree);
        tx.store(&vertices_[u].outDegree, slot + 1);
        tx.store(&vertices_[v].inDegree,
                 tx.load(&vertices_[v].inDegree) + 1);
        tx.store(&vertices_[u].weightSum,
                 tx.load(&vertices_[u].weightSum) + w);
        edges_.put(tx, (u << 32) | slot, (v << 32) | w);
    });
}

bool
Ssca2Workload::verify(TmRuntime &rt, std::string *why) const
{
    (void)rt;
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    // Degree counters must match the edge table exactly.
    std::vector<uint64_t> out_deg(params_.nodes, 0);
    std::vector<uint64_t> in_deg(params_.nodes, 0);
    std::vector<uint64_t> weight(params_.nodes, 0);
    uint64_t edge_count = 0;
    bool bad_slot = false;
    edges_.forEachUnsync([&](uint64_t key, uint64_t value) {
        uint64_t u = key >> 32;
        uint64_t slot = key & 0xffffffffull;
        uint64_t v = value >> 32;
        uint64_t w = value & 0xffffffffull;
        ++edge_count;
        if (u >= params_.nodes || v >= params_.nodes) {
            bad_slot = true;
            return;
        }
        if (slot >= vertices_[u].outDegree)
            bad_slot = true;
        out_deg[u]++;
        in_deg[v]++;
        weight[u] += w;
    });
    if (bad_slot)
        return fail("edge record with out-of-range vertex or slot");
    uint64_t total_out = 0;
    for (unsigned n = 0; n < params_.nodes; ++n) {
        if (vertices_[n].outDegree != out_deg[n] ||
            vertices_[n].inDegree != in_deg[n] ||
            vertices_[n].weightSum != weight[n]) {
            std::ostringstream os;
            os << "vertex " << n << " counters disagree with edge table";
            return fail(os.str());
        }
        total_out += vertices_[n].outDegree;
    }
    if (total_out != edge_count)
        return fail("edge table size disagrees with degree sum");
    return true;
}

} // namespace rhtm
