/**
 * @file
 * SSCA2: the STAMP scalable-synthetic-compact-applications graph
 * kernel. Threads add edges to a large directed multigraph: tiny
 * read-modify-write transactions over a wide address range, hence
 * mostly uncontended -- the "small, uncontended" profile the paper
 * groups Kmeans and Labyrinth with (Section 3.6).
 */

#ifndef RHTM_WORKLOADS_SSCA2_H
#define RHTM_WORKLOADS_SSCA2_H

#include <vector>

#include "src/structures/tx_hashmap.h"
#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the SSCA2 kernel. */
struct Ssca2Params
{
    unsigned nodes = 16384; //!< Vertex count.
};

/** The SSCA2 kernel: transactional edge insertion. */
class Ssca2Workload : public Workload
{
  public:
    explicit Ssca2Workload(Ssca2Params params = Ssca2Params());

    const char *name() const override { return "ssca2"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    struct alignas(64) Vertex
    {
        uint64_t outDegree;
        uint64_t inDegree;
        uint64_t weightSum;
    };

    Ssca2Params params_;
    std::vector<Vertex> vertices_;
    TxHashMap edges_; //!< (u << 32 | slot) -> packed edge record.
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_SSCA2_H
