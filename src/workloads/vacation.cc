#include "src/workloads/vacation.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace rhtm
{

VacationParams
VacationParams::low()
{
    VacationParams p;
    p.queryRangePct = 90;
    p.reservePct = 90;
    p.cancelPct = 5;
    return p;
}

VacationParams
VacationParams::high()
{
    VacationParams p;
    p.queryRangePct = 10;
    p.reservePct = 70;
    p.cancelPct = 20;
    p.queriesPerTxn = 8; // Heavier, slower transactions.
    return p;
}

VacationWorkload::VacationWorkload(VacationParams params)
    : params_(params)
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        free_[t] = std::make_unique<TxHashMap>(12);
        reserved_[t] = std::make_unique<TxHashMap>(12);
        total_[t] = std::make_unique<TxHashMap>(12);
    }
    customerCount_ = std::make_unique<TxHashMap>(12);
    customerRes_.reserve(params_.customers);
    for (unsigned c = 0; c < params_.customers; ++c)
        customerRes_.push_back(std::make_unique<TxList>());
}

void
VacationWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    // Populate in batches to keep setup transactions small.
    constexpr unsigned kBatch = 64;
    for (unsigned t = 0; t < kNumTables; ++t) {
        for (unsigned base = 0; base < params_.resourcesPerTable;
             base += kBatch) {
            rt.run(ctx, [&](Txn &tx) {
                unsigned end =
                    std::min(base + kBatch, params_.resourcesPerTable);
                for (unsigned id = base; id < end; ++id) {
                    free_[t]->put(tx, id, kInitialUnits);
                    reserved_[t]->put(tx, id, 0);
                    total_[t]->put(tx, id, kInitialUnits);
                }
            });
        }
    }
}

void
VacationWorkload::opReserve(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    uint64_t range = std::max<uint64_t>(
        1, uint64_t(params_.resourcesPerTable) * params_.queryRangePct /
               100);
    unsigned customer =
        static_cast<unsigned>(rng.nextBounded(params_.customers));

    // Pre-draw the query set outside the transaction so a restart
    // replays the same queries (and no allocation in the hot path).
    struct Query
    {
        unsigned table;
        uint64_t id;
    };
    Query queries[16];
    unsigned nq = std::min(params_.queriesPerTxn, 16u);
    for (unsigned i = 0; i < nq; ++i) {
        queries[i].table =
            static_cast<unsigned>(rng.nextBounded(kNumTables));
        queries[i].id = rng.nextBounded(range);
    }

    rt.run(ctx, [&](Txn &tx) {
        // Query phase: find the probed resource with the most units.
        bool have_best = false;
        Query best{0, 0};
        uint64_t best_free = 0;
        for (unsigned i = 0; i < nq; ++i) {
            const Query &q = queries[i];
            uint64_t f = 0;
            if (free_[q.table]->get(tx, q.id, f) &&
                (!have_best || f > best_free)) {
                best = q;
                best_free = f;
                have_best = true;
            }
        }
        if (!have_best || best_free == 0)
            return; // Nothing reservable.
        int64_t key =
            static_cast<int64_t>(resourceKey(best.table, best.id));
        if (!customerRes_[customer]->insert(tx, key))
            return; // Customer already holds this resource.
        free_[best.table]->addTo(tx, best.id, uint64_t(0) - 1);
        reserved_[best.table]->addTo(tx, best.id, 1);
        customerCount_->addTo(tx, customer, 1);
    });
}

void
VacationWorkload::opCancel(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    unsigned customer =
        static_cast<unsigned>(rng.nextBounded(params_.customers));
    rt.run(ctx, [&](Txn &tx) {
        int64_t key = 0;
        while (customerRes_[customer]->popMin(tx, key)) {
            unsigned table = static_cast<unsigned>(
                static_cast<uint64_t>(key) >> 32);
            uint64_t id = static_cast<uint64_t>(key) & 0xffffffffull;
            free_[table]->addTo(tx, id, 1);
            reserved_[table]->addTo(tx, id, uint64_t(0) - 1);
            customerCount_->addTo(tx, customer, uint64_t(0) - 1);
        }
    });
}

void
VacationWorkload::opUpdateTables(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    unsigned table = static_cast<unsigned>(rng.nextBounded(kNumTables));
    uint64_t id = rng.nextBounded(params_.resourcesPerTable);
    bool grow = rng.nextPercent(50);
    uint64_t delta = 1 + rng.nextBounded(4);
    rt.run(ctx, [&](Txn &tx) {
        if (grow) {
            free_[table]->addTo(tx, id, delta);
            total_[table]->addTo(tx, id, delta);
        } else {
            uint64_t f = 0;
            if (!free_[table]->get(tx, id, f))
                return;
            uint64_t shrink = std::min(f, delta);
            if (shrink == 0)
                return;
            free_[table]->addTo(tx, id, uint64_t(0) - shrink);
            total_[table]->addTo(tx, id, uint64_t(0) - shrink);
        }
    });
}

void
VacationWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    unsigned roll = static_cast<unsigned>(rng.nextBounded(100));
    if (roll < params_.reservePct)
        opReserve(rt, ctx, rng);
    else if (roll < params_.reservePct + params_.cancelPct)
        opCancel(rt, ctx, rng);
    else
        opUpdateTables(rt, ctx, rng);
}

bool
VacationWorkload::verify(TmRuntime &rt, std::string *why) const
{
    (void)rt;
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // Per resource: free + reserved == total.
    uint64_t reserved_sum = 0;
    for (unsigned t = 0; t < kNumTables; ++t) {
        std::map<uint64_t, uint64_t> f, r, tot;
        free_[t]->forEachUnsync([&](uint64_t k, uint64_t v) { f[k] = v; });
        reserved_[t]->forEachUnsync(
            [&](uint64_t k, uint64_t v) { r[k] = v; });
        total_[t]->forEachUnsync(
            [&](uint64_t k, uint64_t v) { tot[k] = v; });
        for (auto &[id, total] : tot) {
            uint64_t fr = f.count(id) ? f[id] : 0;
            uint64_t rs = r.count(id) ? r[id] : 0;
            if (fr + rs != total) {
                std::ostringstream os;
                os << "table " << t << " id " << id << ": free " << fr
                   << " + reserved " << rs << " != total " << total;
                return fail(os.str());
            }
            reserved_sum += rs;
        }
    }

    // Customer ledgers match the resource tables.
    uint64_t customer_sum = 0;
    customerCount_->forEachUnsync(
        [&](uint64_t, uint64_t v) { customer_sum += v; });
    if (customer_sum != reserved_sum) {
        std::ostringstream os;
        os << "customer ledger " << customer_sum
           << " != reserved units " << reserved_sum;
        return fail(os.str());
    }
    uint64_t list_sum = 0;
    for (const auto &list : customerRes_)
        list_sum += list->sizeUnsync();
    if (list_sum != reserved_sum) {
        std::ostringstream os;
        os << "reservation lists " << list_sum << " != reserved units "
           << reserved_sum;
        return fail(os.str());
    }
    return true;
}

} // namespace rhtm
