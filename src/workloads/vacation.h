/**
 * @file
 * Vacation: the STAMP online-transaction-processing kernel. A travel
 * reservation system with three resource tables (flights, rooms, cars)
 * and a customer table; transactions make reservations, cancel
 * customers, and update the resource tables. Moderately long
 * transactions; the low/high variants differ in how concentrated the
 * queried id range is (low touches 90% of each table, high hammers a
 * 10% hot set, matching STAMP's -q knob).
 */

#ifndef RHTM_WORKLOADS_VACATION_H
#define RHTM_WORKLOADS_VACATION_H

#include <vector>

#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_list.h"
#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the two contention variants. */
struct VacationParams
{
    unsigned resourcesPerTable = 1024;  //!< Ids per resource table.
    unsigned customers = 1024;          //!< Customer id range.
    unsigned queriesPerTxn = 4;         //!< Resources probed per txn.
    unsigned queryRangePct = 90;        //!< Portion of each table used.
    unsigned reservePct = 80;           //!< % reservation transactions.
    unsigned cancelPct = 10;            //!< % customer cancellations.
    // Remainder: table-update transactions.

    /** STAMP vacation-low flavour. */
    static VacationParams low();

    /** STAMP vacation-high flavour. */
    static VacationParams high();
};

/** The vacation kernel. */
class VacationWorkload : public Workload
{
  public:
    explicit VacationWorkload(VacationParams params = VacationParams());

    const char *name() const override { return "vacation"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    static constexpr unsigned kNumTables = 3; // flights, rooms, cars.
    static constexpr uint64_t kInitialUnits = 64;

    /** Key for a (table, id) resource in the reservation lists. */
    static uint64_t
    resourceKey(unsigned table, uint64_t id)
    {
        return (uint64_t(table) << 32) | id;
    }

    void opReserve(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);
    void opCancel(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);
    void opUpdateTables(TmRuntime &rt, ThreadCtx &ctx, Rng &rng);

    VacationParams params_;
    // Per table: free units, reserved units, total units (three maps so
    // every count is one transactional word).
    std::unique_ptr<TxHashMap> free_[kNumTables];
    std::unique_ptr<TxHashMap> reserved_[kNumTables];
    std::unique_ptr<TxHashMap> total_[kNumTables];
    // Customer id -> list of reserved resource keys.
    std::unique_ptr<TxHashMap> customerCount_;
    std::vector<std::unique_ptr<TxList>> customerRes_;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_VACATION_H
