/**
 * @file
 * Common interface for the STAMP-style application kernels
 * (Section 3.6). Each workload reproduces the transaction profile of
 * its STAMP counterpart -- length, read/write mix, contention -- and
 * carries a verifiable invariant so the benchmarks double as
 * correctness stress tests.
 */

#ifndef RHTM_WORKLOADS_WORKLOAD_H
#define RHTM_WORKLOADS_WORKLOAD_H

#include <memory>
#include <string>

#include "src/api/runtime.h"
#include "src/util/rng.h"

namespace rhtm
{

/**
 * One application kernel. Lifecycle:
 *
 *   setup(rt, ctx)            -- single-threaded population;
 *   runOp(rt, ctx, rng) x N   -- concurrently from all worker threads;
 *   verify(rt, why)           -- quiescent invariant check.
 *
 * Implementations own their data structures and must be reusable for
 * several timed runs between setup and destruction.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Kernel name for reports. */
    virtual const char *name() const = 0;

    /** Build initial state; called once, single-threaded. */
    virtual void setup(TmRuntime &rt, ThreadCtx &ctx) = 0;

    /**
     * Execute one unit of application work (one or a few
     * transactions). Thread safe across registered contexts.
     */
    virtual void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) = 0;

    /**
     * Check the kernel's global invariant while quiescent.
     * @param why Optional failure description.
     * @return true when consistent.
     */
    virtual bool verify(TmRuntime &rt, std::string *why) const = 0;

    /**
     * Ask the kernel to upgrade roughly @p pct percent of its ops to
     * irrevocability mid-transaction (0 disables). Kernels that have
     * no natural upgrade point may ignore it.
     */
    void setIrrevocablePct(unsigned pct) { irrevocablePct_ = pct; }

    /** Configured irrevocable-op percentage. */
    unsigned irrevocablePct() const { return irrevocablePct_; }

  protected:
    unsigned irrevocablePct_ = 0;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_WORKLOAD_H
