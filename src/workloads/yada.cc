#include "src/workloads/yada.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace rhtm
{

namespace
{

constexpr uint64_t kBad = 1;
constexpr uint64_t kGood = 2;

} // namespace

YadaWorkload::YadaWorkload(YadaParams params)
    : params_(params), mesh_(13)
{}

void
YadaWorkload::setup(TmRuntime &rt, ThreadCtx &ctx)
{
    Rng rng(31337);
    constexpr unsigned kBatch = 64;
    for (unsigned base = 0; base < params_.initialTriangles;
         base += kBatch) {
        rt.run(ctx, [&](Txn &tx) {
            unsigned end =
                std::min(base + kBatch, params_.initialTriangles);
            for (unsigned i = base; i < end; ++i) {
                uint64_t id =
                    nextId_.fetch_add(1, std::memory_order_acq_rel);
                bool bad = rng.nextPercent(params_.initialBadPct);
                mesh_.put(tx, id, bad ? kBad : kGood);
                if (bad)
                    workQueue_.push(tx, id);
                tx.store(&created_, tx.load(&created_) + 1);
            }
        });
    }
}

void
YadaWorkload::runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng)
{
    // Draw the children's badness outside the transaction so restarts
    // replay identically.
    bool child_bad[8];
    unsigned children = std::min(params_.childrenPerRefine, 8u);
    for (unsigned i = 0; i < children; ++i)
        child_bad[i] = rng.nextPercent(params_.childBadPct);
    uint64_t child_ids[8];
    for (unsigned i = 0; i < children; ++i)
        child_ids[i] = nextId_.fetch_add(1, std::memory_order_acq_rel);

    rt.run(ctx, [&](Txn &tx) {
        uint64_t id = 0;
        if (!workQueue_.pop(tx, id)) {
            // Mesh fully refined: new geometry arrives (a fresh bad
            // triangle), keeping a timed run in steady state.
            mesh_.put(tx, child_ids[0], kBad);
            workQueue_.push(tx, child_ids[0]);
            tx.store(&created_, tx.load(&created_) + 1);
            tx.store(&reseeds_, tx.load(&reseeds_) + 1);
            return;
        }
        // The triangle must be a bad mesh member; retire it.
        mesh_.remove(tx, id);
        tx.store(&retired_, tx.load(&retired_) + 1);
        tx.store(&refinements_, tx.load(&refinements_) + 1);
        // Insert the cavity's replacement triangles.
        for (unsigned i = 0; i < children; ++i) {
            mesh_.put(tx, child_ids[i], child_bad[i] ? kBad : kGood);
            if (child_bad[i])
                workQueue_.push(tx, child_ids[i]);
            tx.store(&created_, tx.load(&created_) + 1);
        }
    });
}

bool
YadaWorkload::verify(TmRuntime &rt, std::string *why) const
{
    auto &mut_rt = const_cast<TmRuntime &>(rt);
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    uint64_t created = mut_rt.peek(&created_);
    uint64_t retired = mut_rt.peek(&retired_);
    uint64_t refinements = mut_rt.peek(&refinements_);

    // Conservation: live mesh == created - retired.
    if (mesh_.sizeUnsync() != created - retired) {
        std::ostringstream os;
        os << "mesh holds " << mesh_.sizeUnsync() << ", want "
           << created - retired;
        return fail(os.str());
    }
    // Each refinement retires exactly one triangle and creates
    // `children`; setup creates the seed.
    uint64_t expected_created =
        params_.initialTriangles +
        refinements * std::min(params_.childrenPerRefine, 8u) +
        mut_rt.peek(&reseeds_);
    if (created != expected_created) {
        std::ostringstream os;
        os << "created " << created << ", want " << expected_created;
        return fail(os.str());
    }
    if (retired != refinements)
        return fail("retired count disagrees with refinements");

    // Every queued triangle is a bad mesh member, and every bad mesh
    // member is queued exactly once.
    std::map<uint64_t, unsigned> queued;
    workQueue_.forEachUnsync([&](uint64_t id) { queued[id]++; });
    uint64_t bad_in_mesh = 0;
    bool mismatch = false;
    mesh_.forEachUnsync([&](uint64_t id, uint64_t quality) {
        if (quality == kBad) {
            ++bad_in_mesh;
            auto it = queued.find(id);
            if (it == queued.end() || it->second != 1)
                mismatch = true;
        }
    });
    if (mismatch)
        return fail("bad triangle not queued exactly once");
    uint64_t queued_total = 0;
    for (auto &[id, n] : queued)
        queued_total += n;
    if (queued_total != bad_in_mesh)
        return fail("queue holds retired or duplicate triangles");
    return true;
}

} // namespace rhtm
